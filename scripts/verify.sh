#!/usr/bin/env sh
# Full offline verification gate: formatting, lints, release build, docs,
# tests, and a quick-bench smoke pass. Every step works with no network
# access (the workspace has zero external dependencies). Fails fast on the
# first broken step.
#
# The quick-bench step runs the throughput bench binaries in quick
# (1-iteration) mode: their bit-identity assertions (planner vs naive
# extraction, batched vs single-query k-NN) execute on every verify.
# Skip it with SKIP_QUICK_BENCH=1 when iterating on unrelated changes.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

if [ "${SKIP_QUICK_BENCH:-0}" != 1 ]; then
    echo "==> quick-bench smoke (equivalence assertions in bench binaries)"
    cargo run --release -q -p cbir-bench --bin exp_extraction_throughput -- --quick
    cargo run --release -q -p cbir-bench --bin exp_batch_throughput -- --quick
fi

echo "verify: all checks passed"
