#!/usr/bin/env sh
# Full offline verification gate: formatting, lints, release build, docs,
# tests, and a quick-bench smoke pass. Every step works with no network
# access (the workspace has zero external dependencies). Fails fast on the
# first broken step.
#
# The quick-bench step runs the throughput bench binaries in quick
# (1-iteration) mode: their bit-identity assertions (planner vs naive
# extraction, batched vs single-query k-NN) execute on every verify.
# Skip it with SKIP_QUICK_BENCH=1 when iterating on unrelated changes.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

if [ "${SKIP_QUICK_BENCH:-0}" != 1 ]; then
    echo "==> quick-bench smoke (equivalence assertions in bench binaries)"
    cargo run --release -q -p cbir-bench --bin exp_extraction_throughput -- --quick
    cargo run --release -q -p cbir-bench --bin exp_batch_throughput -- --quick
    cargo run --release -q -p cbir-bench --bin exp_serve_throughput -- --quick
    cargo run --release -q -p cbir-bench --bin exp_obs_overhead -- --quick
    cargo run --release -q -p cbir-bench --bin exp_mmap_ingest -- --quick
    cargo run --release -q -p cbir-bench --bin exp_approx_search -- --quick
    cargo run --release -q -p cbir-bench --bin exp_router_scaling -- --quick
    cargo run --release -q -p cbir-bench --bin exp_chaos_serving -- --quick
    cargo run --release -q -p cbir-bench --bin exp_epoll_serving -- --quick
fi

echo "==> server smoke test (generate -> index -> serve -> rpc-query -> shutdown)"
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
CBIR=target/release/cbir
"$CBIR" generate "$SMOKE_DIR/photos" --classes 2 --per-class 3 --size 32 >/dev/null
"$CBIR" index "$SMOKE_DIR/photos" --db "$SMOKE_DIR/photos.cbir" >/dev/null
"$CBIR" serve "$SMOKE_DIR/photos.cbir" --port 0 --addr-file "$SMOKE_DIR/addr" \
    --index linear --measure l1 >/dev/null &
SERVER_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr" ] || { echo "server never wrote its address"; exit 1; }
ADDR=$(cat "$SMOKE_DIR/addr")
"$CBIR" rpc-ctl "$ADDR" ping >/dev/null
QUERY_IMG=$(ls "$SMOKE_DIR"/photos/*.ppm | head -1)
KNN_OUT=$("$CBIR" rpc-query "$ADDR" "$QUERY_IMG" --db "$SMOKE_DIR/photos.cbir" -k 3)
echo "$KNN_OUT" | grep -q "class-" || { echo "rpc-query knn returned no hits"; exit 1; }
BYID_OUT=$("$CBIR" rpc-query "$ADDR" --id 0 -k 2)
echo "$BYID_OUT" | grep -q "class-" || { echo "rpc-query --id returned no hits"; exit 1; }
"$CBIR" rpc-ctl "$ADDR" stats >/dev/null

echo "==> epoll smoke (serve --event-loop -> 64-conn pipelined storm -> digest parity)"
# The same pipelined storm against the epoll engine and the blocking
# engine (already serving above) must produce identical reply bytes:
# rpc-storm digests every reply frame in (connection, request) order.
"$CBIR" serve "$SMOKE_DIR/photos.cbir" --port 0 --addr-file "$SMOKE_DIR/addr-epoll" \
    --index linear --measure l1 --event-loop >/dev/null &
EPOLL_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr-epoll" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr-epoll" ] || { echo "epoll server never wrote its address"; exit 1; }
EADDR=$(cat "$SMOKE_DIR/addr-epoll")
BLOCKING_DIGEST=$("$CBIR" rpc-storm "$ADDR" --conns 64 --requests 16 | awk '/^digest/ {print $2}')
EPOLL_DIGEST=$("$CBIR" rpc-storm "$EADDR" --conns 64 --requests 16 | awk '/^digest/ {print $2}')
[ -n "$BLOCKING_DIGEST" ] || { echo "rpc-storm printed no digest"; exit 1; }
[ "$BLOCKING_DIGEST" = "$EPOLL_DIGEST" ] || {
    echo "epoll storm digest diverges from blocking: $EPOLL_DIGEST vs $BLOCKING_DIGEST"
    exit 1
}
"$CBIR" rpc-ctl "$EADDR" stats | grep -q "epoll wakeups" \
    || { echo "epoll server stats missing epoll wakeups"; exit 1; }
"$CBIR" rpc-ctl "$EADDR" shutdown >/dev/null
wait "$EPOLL_PID"

echo "==> approximate-search smoke (rpc-query --recall-target -> counters in stats)"
# A sub-1.0 recall target must route through the two-stage path: the
# reply carries per-query candidate counts, and the server's stats
# export accumulates nonzero coarse/rerank counters.
APPROX_OUT=$("$CBIR" rpc-query "$ADDR" "$QUERY_IMG" --db "$SMOKE_DIR/photos.cbir" \
    -k 3 --recall-target 0.9)
echo "$APPROX_OUT" | grep -q "class-" || { echo "approx rpc-query returned no hits"; exit 1; }
echo "$APPROX_OUT" | grep -q "approx:" \
    || { echo "approx rpc-query reply carried no candidate counts"; exit 1; }
"$CBIR" stats "$ADDR" | grep -q '"coarse_candidates": [1-9]' \
    || { echo "cbir stats shows no coarse candidates after approx query"; exit 1; }
"$CBIR" stats "$ADDR" | grep -q '"rerank_evaluations": [1-9]' \
    || { echo "cbir stats shows no rerank evaluations after approx query"; exit 1; }

echo "==> observability smoke (stats export, explain, traced bit-identity)"
# Both export formats must parse as non-empty text with the expected
# leading tokens.
"$CBIR" stats "$ADDR" | grep -q '"enabled"' \
    || { echo "cbir stats json missing enabled key"; exit 1; }
"$CBIR" stats "$ADDR" --format prometheus | grep -q '^cbir_queue_depth ' \
    || { echo "cbir stats prometheus missing queue gauge"; exit 1; }
"$CBIR" rpc-ctl "$ADDR" explain | grep -q '"traces"' \
    || { echo "rpc-ctl explain missing traces key"; exit 1; }
# Tracing must be bit-invisible: a query with --trace-sample-n 1 writes
# its trace to stderr and leaves stdout byte-identical to an untraced run.
"$CBIR" query "$SMOKE_DIR/photos.cbir" "$QUERY_IMG" -k 3 \
    > "$SMOKE_DIR/untraced.out"
"$CBIR" query "$SMOKE_DIR/photos.cbir" "$QUERY_IMG" -k 3 --trace-sample-n 1 \
    > "$SMOKE_DIR/traced.out" 2> "$SMOKE_DIR/traced.err"
cmp -s "$SMOKE_DIR/untraced.out" "$SMOKE_DIR/traced.out" \
    || { echo "tracing changed query stdout"; exit 1; }
grep -q "trace #" "$SMOKE_DIR/traced.err" \
    || { echo "traced query produced no trace on stderr"; exit 1; }
"$CBIR" trace "$SMOKE_DIR/photos.cbir" "$QUERY_IMG" -k 3 --format json \
    | grep -q '"spans"' || { echo "cbir trace json missing spans"; exit 1; }

echo "==> abort-mid-request smoke (torn client, server keeps serving)"
# A client that promises a payload, sends 3 bytes, and vanishes. The
# server must reap the torn connection and keep answering others.
"$CBIR" rpc-ctl "$ADDR" abort >/dev/null
AFTER_OUT=$("$CBIR" rpc-query "$ADDR" --id 1 -k 2)
echo "$AFTER_OUT" | grep -q "class-" || { echo "server stopped serving after torn client"; exit 1; }

"$CBIR" rpc-ctl "$ADDR" shutdown >/dev/null
wait "$SERVER_PID"

echo "==> crash-recovery smoke (fault-injected save leaves old snapshot intact)"
"$CBIR" fsck "$SMOKE_DIR/photos.cbir" >/dev/null
cp "$SMOKE_DIR/photos.cbir" "$SMOKE_DIR/before-crash.cbir"
# Crash the save at fault point 2 (mid-write): re-indexing must fail...
if CBIR_FAULT_SAVE_OP=2 "$CBIR" index "$SMOKE_DIR/photos" \
    --db "$SMOKE_DIR/photos.cbir" >/dev/null 2>&1; then
    echo "fault-injected save unexpectedly succeeded"; exit 1
fi
# ...and the previous snapshot must still be on disk, bit for bit.
cmp -s "$SMOKE_DIR/photos.cbir" "$SMOKE_DIR/before-crash.cbir" \
    || { echo "interrupted save corrupted the existing snapshot"; exit 1; }
"$CBIR" fsck "$SMOKE_DIR/photos.cbir" >/dev/null
"$CBIR" info "$SMOKE_DIR/photos.cbir" >/dev/null
# A deliberately corrupted copy (truncated mid-section) must be caught
# with a nonzero exit.
DB_SIZE=$(wc -c < "$SMOKE_DIR/photos.cbir")
head -c $((DB_SIZE - 7)) "$SMOKE_DIR/photos.cbir" > "$SMOKE_DIR/corrupt.cbir"
if "$CBIR" fsck "$SMOKE_DIR/corrupt.cbir" >/dev/null 2>&1; then
    echo "fsck passed a corrupted file"; exit 1
fi

echo "==> live-store smoke (ingest -> serve -> rpc-insert -> compact -> kill -9 -> restart -> parity)"
SEG_DIR="$SMOKE_DIR/photos.seg"
"$CBIR" ingest "$SMOKE_DIR/photos" --store "$SEG_DIR" >/dev/null
"$CBIR" fsck "$SEG_DIR" >/dev/null
"$CBIR" serve "$SEG_DIR" --port 0 --addr-file "$SMOKE_DIR/addr-live" \
    --index linear --measure l1 >/dev/null &
LIVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr-live" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr-live" ] || { echo "live server never wrote its address"; exit 1; }
LADDR=$(cat "$SMOKE_DIR/addr-live")
# Insert a new image over RPC, make it durable with a compaction, then
# kill the server without ceremony: the store must come back from the
# committed manifest alone.
cp "$QUERY_IMG" "$SMOKE_DIR/extra.ppm"
"$CBIR" rpc-insert "$LADDR" "$SMOKE_DIR/extra.ppm" --db "$SEG_DIR" >/dev/null
"$CBIR" compact "$LADDR" >/dev/null
kill -9 "$LIVE_PID"
wait "$LIVE_PID" 2>/dev/null || true
"$CBIR" fsck "$SEG_DIR" >/dev/null
# Restart over the same directory; the serving path must agree with a
# fresh offline build over the same set of images.
"$CBIR" serve "$SEG_DIR" --port 0 --addr-file "$SMOKE_DIR/addr-live2" \
    --index linear --measure l1 >/dev/null &
LIVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr-live2" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr-live2" ] || { echo "restarted live server never wrote its address"; exit 1; }
LADDR=$(cat "$SMOKE_DIR/addr-live2")
LIVE_HITS=$("$CBIR" rpc-query "$LADDR" "$QUERY_IMG" --db "$SEG_DIR" -k 3 \
    | awk '/^(class-|extra)/ {print $1}')
cp "$SMOKE_DIR/extra.ppm" "$SMOKE_DIR/photos/extra.ppm"
"$CBIR" index "$SMOKE_DIR/photos" --db "$SMOKE_DIR/photos-all.cbir" >/dev/null
FRESH_HITS=$("$CBIR" query "$SMOKE_DIR/photos-all.cbir" "$QUERY_IMG" -k 3 \
    | awk '/^(class-|extra)/ {print $1}')
[ -n "$LIVE_HITS" ] || { echo "live rpc-query returned no hits"; exit 1; }
[ "$LIVE_HITS" = "$FRESH_HITS" ] || {
    echo "live store hits diverge from a fresh offline build:"
    echo "live:  $LIVE_HITS"
    echo "fresh: $FRESH_HITS"
    exit 1
}
"$CBIR" rpc-ctl "$LADDR" shutdown >/dev/null
wait "$LIVE_PID"

echo "==> router smoke (shard-plan -> 2x2 tier -> bit-identity, replica kill, stats)"
# Reference: one backend serving the union corpus.
"$CBIR" serve "$SMOKE_DIR/photos.cbir" --port 0 --addr-file "$SMOKE_DIR/addr-union" \
    --index linear --measure l1 >/dev/null &
UNION_PID=$!
# Split the same corpus into 2 shards and serve each shard twice (2
# replicas), then front the four backends with a router.
"$CBIR" shard-plan "$SMOKE_DIR/photos.cbir" --shards 2 --scheme mod \
    --out-dir "$SMOKE_DIR/shards" >/dev/null
BACKEND_PIDS=""
for S in 0 1; do
    for R in 0 1; do
        "$CBIR" serve "$SMOKE_DIR/shards/shard-$S.db" --port 0 \
            --addr-file "$SMOKE_DIR/addr-s$S-r$R" \
            --index linear --measure l1 >/dev/null &
        BACKEND_PIDS="$BACKEND_PIDS $!"
        [ "$S$R" = "00" ] && KILL_PID=$!
    done
done
for F in addr-union addr-s0-r0 addr-s0-r1 addr-s1-r0 addr-s1-r1; do
    for _ in $(seq 1 100); do
        [ -s "$SMOKE_DIR/$F" ] && break
        sleep 0.1
    done
    [ -s "$SMOKE_DIR/$F" ] || { echo "backend $F never wrote its address"; exit 1; }
done
UADDR=$(cat "$SMOKE_DIR/addr-union")
"$CBIR" route "$SMOKE_DIR/shards/PLAN.txt" \
    "$(cat "$SMOKE_DIR/addr-s0-r0"),$(cat "$SMOKE_DIR/addr-s0-r1")" \
    "$(cat "$SMOKE_DIR/addr-s1-r0"),$(cat "$SMOKE_DIR/addr-s1-r1")" \
    --port 0 --addr-file "$SMOKE_DIR/addr-router" --cooldown-ms 200 >/dev/null &
ROUTER_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr-router" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr-router" ] || { echo "router never wrote its address"; exit 1; }
RADDR=$(cat "$SMOKE_DIR/addr-router")
# Routed replies must match the single union node byte for byte.
"$CBIR" rpc-query "$RADDR" --id 0 -k 4 > "$SMOKE_DIR/router-knn.out"
"$CBIR" rpc-query "$UADDR" --id 0 -k 4 > "$SMOKE_DIR/union-knn.out"
grep -q "class-" "$SMOKE_DIR/router-knn.out" \
    || { echo "routed rpc-query returned no hits"; exit 1; }
cmp -s "$SMOKE_DIR/router-knn.out" "$SMOKE_DIR/union-knn.out" \
    || { echo "routed reply diverges from single-node reply"; exit 1; }
# Kill shard 0's primary without ceremony: the router must fail over to
# the surviving replica with the answer still byte-identical.
kill -9 "$KILL_PID"
wait "$KILL_PID" 2>/dev/null || true
"$CBIR" rpc-query "$RADDR" --id 0 -k 4 > "$SMOKE_DIR/router-knn2.out"
cmp -s "$SMOKE_DIR/router-knn2.out" "$SMOKE_DIR/union-knn.out" \
    || { echo "reply after replica kill diverges from single-node reply"; exit 1; }
# Stats aggregate across backends; prometheus export carries the
# router's per-replica series.
"$CBIR" rpc-ctl "$RADDR" stats | grep -q "requests [1-9]" \
    || { echo "routed stats show no aggregated backend requests"; exit 1; }
"$CBIR" stats "$RADDR" --format prometheus | grep -q '^cbir_router_replica_' \
    || { echo "router prometheus export missing cbir_router_replica_ series"; exit 1; }
"$CBIR" rpc-ctl "$RADDR" shutdown >/dev/null
wait "$ROUTER_PID"
for PID in $BACKEND_PIDS; do
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
done
"$CBIR" rpc-ctl "$UADDR" shutdown >/dev/null
wait "$UNION_PID"

echo "==> chaos smoke (pass-through proxy bit-identity, partial-results serving)"
# A pass-through chaos proxy must be wire-invisible: replies routed
# through it are byte-identical to replies from the backend itself.
"$CBIR" serve "$SMOKE_DIR/photos.cbir" --port 0 --addr-file "$SMOKE_DIR/addr-chaos-up" \
    --index linear --measure l1 >/dev/null &
CHAOS_UP_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr-chaos-up" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr-chaos-up" ] || { echo "chaos upstream never wrote its address"; exit 1; }
CUADDR=$(cat "$SMOKE_DIR/addr-chaos-up")
"$CBIR" chaos-proxy "$CUADDR" --port 0 --addr-file "$SMOKE_DIR/addr-chaos" \
    --mode pass >/dev/null &
CHAOS_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr-chaos" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr-chaos" ] || { echo "chaos proxy never wrote its address"; exit 1; }
CADDR=$(cat "$SMOKE_DIR/addr-chaos")
"$CBIR" rpc-query "$CADDR" --id 0 -k 3 > "$SMOKE_DIR/via-proxy.out"
"$CBIR" rpc-query "$CUADDR" --id 0 -k 3 > "$SMOKE_DIR/via-direct.out"
cmp -s "$SMOKE_DIR/via-proxy.out" "$SMOKE_DIR/via-direct.out" \
    || { echo "pass-through chaos proxy altered the reply"; exit 1; }
kill "$CHAOS_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true
"$CBIR" rpc-ctl "$CUADDR" shutdown >/dev/null
wait "$CHAOS_UP_PID"
# Partial-results serving: front the 2-shard plan with shard 1 pointing
# at a dead address. With --allow-partial the router must answer from
# the surviving shard and flag the reply as degraded 1/2.
"$CBIR" serve "$SMOKE_DIR/shards/shard-0.db" --port 0 \
    --addr-file "$SMOKE_DIR/addr-part-s0" --index linear --measure l1 >/dev/null &
PART_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr-part-s0" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr-part-s0" ] || { echo "partial-smoke backend never wrote its address"; exit 1; }
"$CBIR" route "$SMOKE_DIR/shards/PLAN.txt" \
    "$(cat "$SMOKE_DIR/addr-part-s0")" "127.0.0.1:1" \
    --port 0 --addr-file "$SMOKE_DIR/addr-part-router" \
    --cooldown-ms 200 --allow-partial >/dev/null &
PART_ROUTER_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr-part-router" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr-part-router" ] || { echo "partial-smoke router never wrote its address"; exit 1; }
PRADDR=$(cat "$SMOKE_DIR/addr-part-router")
PART_OUT=$("$CBIR" rpc-query "$PRADDR" --id 0 -k 3)
echo "$PART_OUT" | grep -q "class-" \
    || { echo "degraded rpc-query returned no hits"; exit 1; }
echo "$PART_OUT" | grep -q "degraded: answered by 1/2 shards" \
    || { echo "degraded reply not flagged with shard coverage"; exit 1; }
"$CBIR" stats "$PRADDR" | grep -q '"degraded_replies": [1-9]' \
    || { echo "router stats show no degraded replies after partial answer"; exit 1; }
"$CBIR" rpc-ctl "$PRADDR" shutdown >/dev/null
wait "$PART_ROUTER_PID"
"$CBIR" rpc-ctl "$(cat "$SMOKE_DIR/addr-part-s0")" shutdown >/dev/null
wait "$PART_PID"

echo "verify: all checks passed"
