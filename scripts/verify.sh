#!/usr/bin/env sh
# Full offline verification gate: formatting, lints, release build, tests.
# Every step works with no network access (the workspace has zero
# external dependencies). Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "verify: all checks passed"
