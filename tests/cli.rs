//! Integration tests for the `cbir` command-line tool: generate → index →
//! info → query → evaluate over real files, exercising the compiled binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cbir")
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn cbir binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cbir_cli_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_generate_index_query_evaluate() {
    let dir = temp_workspace("flow");
    let corpus = dir.join("corpus");
    let db = dir.join("db.cbir");
    let corpus_s = corpus.to_str().unwrap();
    let db_s = db.to_str().unwrap();

    // generate
    let (ok, stdout, stderr) = run(&[
        "generate",
        corpus_s,
        "--classes",
        "4",
        "--per-class",
        "5",
        "--size",
        "32",
    ]);
    assert!(ok, "generate failed: {stderr}");
    assert!(stdout.contains("wrote 20 images"), "{stdout}");
    let ppms = std::fs::read_dir(&corpus).unwrap().count();
    assert_eq!(ppms, 20);

    // index
    let (ok, stdout, stderr) = run(&[
        "index",
        corpus_s,
        "--db",
        db_s,
        "--pipeline",
        "color",
        "--threads",
        "2",
    ]);
    assert!(ok, "index failed: {stderr}");
    assert!(stdout.contains("indexed 20 images"), "{stdout}");
    assert!(db.exists());

    // info
    let (ok, stdout, _) = run(&["info", db_s]);
    assert!(ok);
    assert!(stdout.contains("images:   20"), "{stdout}");
    assert!(stdout.contains("color-hist"), "{stdout}");
    assert!(stdout.contains("labeled:  20/20"), "{stdout}");

    // query with a corpus member: itself must rank first at distance 0.
    let query_img = std::fs::read_dir(&corpus)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .starts_with("class-2")
        })
        .unwrap();
    let (ok, stdout, stderr) = run(&[
        "query",
        db_s,
        query_img.to_str().unwrap(),
        "-k",
        "3",
        "--index",
        "vp",
    ]);
    assert!(ok, "query failed: {stderr}");
    assert!(stdout.contains("0.0000"), "self-match missing: {stdout}");
    assert!(stdout.contains("vp-tree"), "{stdout}");

    // evaluate
    let (ok, stdout, stderr) = run(&["evaluate", db_s, "-k", "4", "--index", "antipole"]);
    assert!(ok, "evaluate failed: {stderr}");
    assert!(stdout.contains("mAP"), "{stdout}");
    assert!(stdout.contains("antipole"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_not_panicked() {
    let dir = temp_workspace("errs");
    let db = dir.join("missing.cbir");

    // Query against a missing database.
    let (ok, _, stderr) = run(&["query", db.to_str().unwrap(), "nope.ppm"]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");

    // Index an empty directory.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let (ok, _, stderr) = run(&[
        "index",
        empty.to_str().unwrap(),
        "--db",
        dir.join("out.cbir").to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(stderr.contains("no images"), "{stderr}");

    // Unknown subcommand exits with usage.
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");

    // Corrupt database file.
    let bad = dir.join("bad.cbir");
    std::fs::write(&bad, b"not a database").unwrap();
    let (ok, _, stderr) = run(&["info", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bmp_ingest_works_too() {
    let dir = temp_workspace("bmp");
    // Write a few BMP images directly through the library.
    use cbir::image::codec::encode_bmp_rgb;
    use cbir::image::{Rgb, RgbImage};
    for i in 0..3u32 {
        let img = RgbImage::filled(24, 24, Rgb::new((i * 80) as u8, 30, 200));
        std::fs::write(dir.join(format!("class-{i}-img.bmp")), encode_bmp_rgb(&img)).unwrap();
    }
    let db = dir.join("db.cbir");
    let (ok, stdout, stderr) = run(&[
        "index",
        dir.to_str().unwrap(),
        "--db",
        db.to_str().unwrap(),
        "--pipeline",
        "color",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("indexed 3 images"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Observability surface: `cbir trace`, `cbir stats`, `rpc-ctl explain`.
//
// The JSON these commands emit is consumed by scripts, so the tests parse
// it with a minimal recursive-descent parser (no external dependency) and
// assert the documented schema key by key.
// ---------------------------------------------------------------------------

/// A parsed JSON value, just enough to validate output schemas.
#[derive(Debug)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn expect(&self, key: &str) -> &Json {
        self.get(key)
            .unwrap_or_else(|| panic!("missing key {key:?} in {self:?}"))
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn as_num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn as_bool(&self) -> bool {
        match self {
            Json::Bool(b) => *b,
            other => panic!("expected bool, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(c) => return Err(format!("unsupported escape \\{}", *c as char)),
                            None => return Err("unterminated escape".into()),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        s.push(c as char);
                        *pos += 1;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid number at offset {start}"))
        }
    }
}

/// Build a tiny indexed database for the observability tests; returns the
/// workspace dir, db path, and one corpus image path.
fn obs_fixture(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
    let dir = temp_workspace(tag);
    let corpus = dir.join("corpus");
    let db = dir.join("db.cbir");
    let (ok, _, stderr) = run(&[
        "generate",
        corpus.to_str().unwrap(),
        "--classes",
        "3",
        "--per-class",
        "4",
        "--size",
        "32",
    ]);
    assert!(ok, "generate failed: {stderr}");
    let (ok, _, stderr) = run(&[
        "index",
        corpus.to_str().unwrap(),
        "--db",
        db.to_str().unwrap(),
        "--pipeline",
        "color",
    ]);
    assert!(ok, "index failed: {stderr}");
    let img = std::fs::read_dir(&corpus)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "ppm"))
        .unwrap();
    (dir, db, img)
}

const TRACE_KEYS: &[&str] = &[
    "seq",
    "op",
    "index",
    "queries",
    "total_ns",
    "spans",
    "distance_evaluations",
    "nodes_visited",
    "subtrees_pruned",
    "postfilter_candidates",
    "results",
];

fn assert_trace_schema(trace: &Json) {
    for key in TRACE_KEYS {
        trace.expect(key);
    }
    let spans = trace.expect("spans").as_arr();
    assert!(!spans.is_empty(), "trace has no spans");
    for span in spans {
        span.expect("name").as_str();
        span.expect("start_ns").as_num();
        span.expect("dur_ns").as_num();
    }
}

#[test]
fn trace_command_emits_documented_schema() {
    let (dir, db, img) = obs_fixture("trace");
    let db_s = db.to_str().unwrap();
    let img_s = img.to_str().unwrap();

    // JSON format parses and carries every documented key.
    let (ok, stdout, stderr) = run(&["trace", db_s, img_s, "-k", "3", "--format", "json"]);
    assert!(ok, "trace --format json failed: {stderr}");
    let trace = Json::parse(&stdout).unwrap_or_else(|e| panic!("bad trace JSON: {e}\n{stdout}"));
    assert_trace_schema(&trace);
    assert_eq!(trace.expect("op").as_str(), "knn");
    assert_eq!(trace.expect("queries").as_num(), 1.0);
    // query_by_example runs extract → search → rank.
    let names: Vec<&str> = trace
        .expect("spans")
        .as_arr()
        .iter()
        .map(|s| s.expect("name").as_str())
        .collect();
    assert_eq!(names, ["extract", "search", "rank"], "{stdout}");

    // Text format renders a timeline with the counters footer.
    let (ok, stdout, stderr) = run(&["trace", db_s, img_s, "-k", "3", "--index", "vp"]);
    assert!(ok, "trace text failed: {stderr}");
    assert!(stdout.contains("trace #"), "{stdout}");
    assert!(stdout.contains("vp-tree"), "{stdout}");
    assert!(stdout.contains("counters:"), "{stdout}");
    assert!(stdout.contains("distance evaluations"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traced_query_stdout_is_bit_identical() {
    let (dir, db, img) = obs_fixture("bitid");
    let db_s = db.to_str().unwrap();
    let img_s = img.to_str().unwrap();

    let (ok, plain, stderr) = run(&["query", db_s, img_s, "-k", "5"]);
    assert!(ok, "untraced query failed: {stderr}");
    let (ok, traced, traced_err) = run(&["query", db_s, img_s, "-k", "5", "--trace-sample-n", "1"]);
    assert!(ok, "traced query failed: {traced_err}");
    assert_eq!(plain, traced, "tracing changed query stdout");
    assert!(
        traced_err.contains("trace #"),
        "traces should land on stderr: {traced_err}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_and_explain_rpcs_emit_documented_schemas() {
    let (dir, db, img) = obs_fixture("stats");
    let db_s = db.to_str().unwrap();
    let addr_file = dir.join("addr.txt");

    let mut server = Command::new(bin())
        .args([
            "serve",
            db_s,
            "--port",
            "0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--trace-sample-n",
            "1",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn cbir serve");

    // Wait for the server to write its bound address.
    let mut addr = String::new();
    for _ in 0..100 {
        if let Ok(s) = std::fs::read_to_string(&addr_file) {
            if !s.is_empty() {
                addr = s;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(!addr.is_empty(), "server never wrote its address");

    // Drive one query through so the counters are non-zero.
    let (ok, _, stderr) = run(&[
        "rpc-query",
        &addr,
        img.to_str().unwrap(),
        "--db",
        db_s,
        "-k",
        "3",
    ]);
    assert!(ok, "rpc-query failed: {stderr}");

    // JSON stats: every documented section, with the query visible.
    let (ok, stdout, stderr) = run(&["stats", &addr]);
    assert!(ok, "stats failed: {stderr}");
    let snap = Json::parse(&stdout).unwrap_or_else(|e| panic!("bad stats JSON: {e}\n{stdout}"));
    for key in [
        "enabled",
        "trace_sample_n",
        "queue_depth",
        "indexes",
        "stages",
        "latency",
        "trace_count",
    ] {
        snap.expect(key);
    }
    assert!(snap.expect("enabled").as_bool(), "counters should be on");
    let indexes = snap.expect("indexes").as_arr();
    assert!(!indexes.is_empty());
    let mut queries_total = 0.0;
    for row in indexes {
        for key in [
            "index",
            "queries",
            "distance_evaluations",
            "nodes_visited",
            "subtrees_pruned",
            "postfilter_candidates",
            "results",
        ] {
            row.expect(key);
        }
        queries_total += row.expect("queries").as_num();
    }
    assert!(queries_total >= 1.0, "rpc query not counted: {stdout}");
    for row in snap.expect("stages").as_arr() {
        for key in ["stage", "hits", "misses", "nanos"] {
            row.expect(key);
        }
    }
    for op in ["knn", "range"] {
        let lat = snap.expect("latency").expect(op);
        for key in ["count", "sum_us", "p50_us", "p95_us", "p99_us"] {
            lat.expect(key);
        }
    }
    assert!(snap.expect("trace_count").as_num() >= 1.0, "{stdout}");

    // Prometheus format: well-formed text exposition.
    let (ok, prom, stderr) = run(&["stats", &addr, "--format", "prometheus"]);
    assert!(ok, "stats --format prometheus failed: {stderr}");
    let mut samples = 0usize;
    for line in prom.lines() {
        if line.is_empty() || line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        // Every sample line is `metric{labels} value` or `metric value`.
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value: {line:?}"
        );
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name: {line:?}"
        );
        if let Some(rest) = name_part.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "bad label block: {line:?}"
                );
            }
        }
        samples += 1;
    }
    assert!(samples > 20, "suspiciously few samples:\n{prom}");
    for metric in [
        "cbir_index_queries_total",
        "cbir_index_distance_evaluations_total",
        "cbir_index_subtrees_pruned_total",
        "cbir_stage_hits_total",
        "cbir_query_latency_microseconds",
        "cbir_queue_depth",
    ] {
        assert!(prom.contains(metric), "missing metric {metric}:\n{prom}");
    }

    // explain: a JSON object holding the sampled traces.
    let (ok, stdout, stderr) = run(&["rpc-ctl", &addr, "explain"]);
    assert!(ok, "explain failed: {stderr}");
    let traces = Json::parse(&stdout).unwrap_or_else(|e| panic!("bad explain JSON: {e}\n{stdout}"));
    let list = traces.expect("traces").as_arr();
    assert!(!list.is_empty(), "server sampled no traces: {stdout}");
    for t in list {
        assert_trace_schema(t);
    }

    let (ok, _, stderr) = run(&["rpc-ctl", &addr, "shutdown"]);
    assert!(ok, "shutdown failed: {stderr}");
    server.wait().expect("server exit");
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawn a `cbir` subcommand that serves until shutdown, wait for its
/// `--addr-file`, and return (child, bound address).
fn spawn_serving(args: &[&str], addr_file: &PathBuf) -> (std::process::Child, String) {
    let child = Command::new(bin())
        .args(args)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn cbir");
    let mut addr = String::new();
    for _ in 0..100 {
        if let Ok(s) = std::fs::read_to_string(addr_file) {
            if !s.is_empty() {
                addr = s;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(!addr.is_empty(), "process never wrote {addr_file:?}");
    (child, addr)
}

/// The routing tier's degraded-mode metrics are part of the documented
/// stats schema: the JSON export always carries a `router_tier` section
/// plus per-replica health/breaker rows, and the Prometheus exposition
/// from a router process carries the matching families.
#[test]
fn router_stats_emit_degraded_mode_schema() {
    let (dir, db, _img) = obs_fixture("routerstats");
    let shards_dir = dir.join("shards");
    let (ok, _, stderr) = run(&[
        "shard-plan",
        db.to_str().unwrap(),
        "--shards",
        "2",
        "--out-dir",
        shards_dir.to_str().unwrap(),
    ]);
    assert!(ok, "shard-plan failed: {stderr}");

    let mut backends = Vec::new();
    let mut backend_addrs = Vec::new();
    for s in 0..2 {
        let shard_db = shards_dir.join(format!("shard-{s}.db"));
        let addr_file = dir.join(format!("shard-{s}.addr"));
        let (child, addr) = spawn_serving(
            &[
                "serve",
                shard_db.to_str().unwrap(),
                "--port",
                "0",
                "--addr-file",
                addr_file.to_str().unwrap(),
            ],
            &addr_file,
        );
        backends.push(child);
        backend_addrs.push(addr);
    }

    let route_addr_file = dir.join("route.addr");
    let (mut router, route_addr) = spawn_serving(
        &[
            "route",
            shards_dir.join("PLAN.txt").to_str().unwrap(),
            &backend_addrs[0],
            &backend_addrs[1],
            "--port",
            "0",
            "--addr-file",
            route_addr_file.to_str().unwrap(),
            "--hedge-ms",
            "50",
            "--probe-ms",
            "25",
            "--allow-partial",
        ],
        &route_addr_file,
    );

    // Route one query so the per-replica counters move.
    let (ok, _, stderr) = run(&["rpc-query", &route_addr, "--id", "0", "-k", "3"]);
    assert!(ok, "routed rpc-query failed: {stderr}");

    // JSON: per-replica rows carry health/breaker/probe fields, and the
    // tier-wide degraded-mode section is always present.
    let (ok, stdout, stderr) = run(&["stats", &route_addr]);
    assert!(ok, "stats via router failed: {stderr}");
    let snap = Json::parse(&stdout).unwrap_or_else(|e| panic!("bad stats JSON: {e}\n{stdout}"));
    let replicas = snap.expect("router").as_arr();
    assert_eq!(replicas.len(), 2, "one row per backend replica: {stdout}");
    for row in replicas {
        for key in [
            "shard",
            "replica",
            "requests",
            "failures",
            "failovers",
            "shed",
            "healthy",
            "breaker_open",
            "probe_rejoins",
            "latency",
        ] {
            row.expect(key);
        }
        assert!(
            row.expect("healthy").as_bool(),
            "replica unhealthy: {stdout}"
        );
        assert!(
            !row.expect("breaker_open").as_bool(),
            "breaker open: {stdout}"
        );
    }
    let tier = snap.expect("router_tier");
    for key in [
        "hedges_fired",
        "hedges_won",
        "degraded_replies",
        "breaker_opens",
        "retry_budget_exhausted",
        "probe_failures",
        "probe_latency",
    ] {
        tier.expect(key);
    }
    // Healthy topology: nothing degraded, no breaker opened, no budget
    // exhausted, no probe failed.
    assert_eq!(tier.expect("degraded_replies").as_num(), 0.0, "{stdout}");
    assert_eq!(tier.expect("breaker_opens").as_num(), 0.0, "{stdout}");
    assert_eq!(tier.expect("probe_failures").as_num(), 0.0, "{stdout}");
    // The 25ms prober has had time to run at least once.
    let probe_count = tier.expect("probe_latency").expect("count").as_num();
    assert!(probe_count >= 1.0, "prober never ran: {stdout}");

    // Prometheus from the router process carries the new families.
    let (ok, prom, stderr) = run(&["stats", &route_addr, "--format", "prometheus"]);
    assert!(ok, "stats --format prometheus via router failed: {stderr}");
    for metric in [
        "cbir_router_requests_total",
        "cbir_router_replica_healthy",
        "cbir_router_replica_breaker_open",
        "cbir_router_replica_probe_rejoins_total",
        "cbir_router_hedges_fired_total",
        "cbir_router_hedges_won_total",
        "cbir_router_degraded_replies_total",
        "cbir_router_breaker_opens_total",
        "cbir_router_retry_budget_exhausted_total",
        "cbir_router_probe_failures_total",
        "cbir_router_probe_latency_microseconds",
    ] {
        assert!(prom.contains(metric), "missing metric {metric}:\n{prom}");
    }

    let (ok, _, stderr) = run(&["rpc-ctl", &route_addr, "shutdown"]);
    assert!(ok, "router shutdown failed: {stderr}");
    router.wait().expect("router exit");
    for (addr, mut child) in backend_addrs.iter().zip(backends) {
        let (ok, _, stderr) = run(&["rpc-ctl", addr, "shutdown"]);
        assert!(ok, "backend shutdown failed: {stderr}");
        child.wait().expect("backend exit");
    }
    std::fs::remove_dir_all(&dir).ok();
}
