//! Integration tests for the `cbir` command-line tool: generate → index →
//! info → query → evaluate over real files, exercising the compiled binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cbir")
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn cbir binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cbir_cli_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_generate_index_query_evaluate() {
    let dir = temp_workspace("flow");
    let corpus = dir.join("corpus");
    let db = dir.join("db.cbir");
    let corpus_s = corpus.to_str().unwrap();
    let db_s = db.to_str().unwrap();

    // generate
    let (ok, stdout, stderr) = run(&[
        "generate",
        corpus_s,
        "--classes",
        "4",
        "--per-class",
        "5",
        "--size",
        "32",
    ]);
    assert!(ok, "generate failed: {stderr}");
    assert!(stdout.contains("wrote 20 images"), "{stdout}");
    let ppms = std::fs::read_dir(&corpus).unwrap().count();
    assert_eq!(ppms, 20);

    // index
    let (ok, stdout, stderr) = run(&[
        "index",
        corpus_s,
        "--db",
        db_s,
        "--pipeline",
        "color",
        "--threads",
        "2",
    ]);
    assert!(ok, "index failed: {stderr}");
    assert!(stdout.contains("indexed 20 images"), "{stdout}");
    assert!(db.exists());

    // info
    let (ok, stdout, _) = run(&["info", db_s]);
    assert!(ok);
    assert!(stdout.contains("images:   20"), "{stdout}");
    assert!(stdout.contains("color-hist"), "{stdout}");
    assert!(stdout.contains("labeled:  20/20"), "{stdout}");

    // query with a corpus member: itself must rank first at distance 0.
    let query_img = std::fs::read_dir(&corpus)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .starts_with("class-2")
        })
        .unwrap();
    let (ok, stdout, stderr) = run(&[
        "query",
        db_s,
        query_img.to_str().unwrap(),
        "-k",
        "3",
        "--index",
        "vp",
    ]);
    assert!(ok, "query failed: {stderr}");
    assert!(stdout.contains("0.0000"), "self-match missing: {stdout}");
    assert!(stdout.contains("vp-tree"), "{stdout}");

    // evaluate
    let (ok, stdout, stderr) = run(&["evaluate", db_s, "-k", "4", "--index", "antipole"]);
    assert!(ok, "evaluate failed: {stderr}");
    assert!(stdout.contains("mAP"), "{stdout}");
    assert!(stdout.contains("antipole"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_not_panicked() {
    let dir = temp_workspace("errs");
    let db = dir.join("missing.cbir");

    // Query against a missing database.
    let (ok, _, stderr) = run(&["query", db.to_str().unwrap(), "nope.ppm"]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");

    // Index an empty directory.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let (ok, _, stderr) = run(&[
        "index",
        empty.to_str().unwrap(),
        "--db",
        dir.join("out.cbir").to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(stderr.contains("no images"), "{stderr}");

    // Unknown subcommand exits with usage.
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");

    // Corrupt database file.
    let bad = dir.join("bad.cbir");
    std::fs::write(&bad, b"not a database").unwrap();
    let (ok, _, stderr) = run(&["info", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bmp_ingest_works_too() {
    let dir = temp_workspace("bmp");
    // Write a few BMP images directly through the library.
    use cbir::image::codec::encode_bmp_rgb;
    use cbir::image::{Rgb, RgbImage};
    for i in 0..3u32 {
        let img = RgbImage::filled(24, 24, Rgb::new((i * 80) as u8, 30, 200));
        std::fs::write(dir.join(format!("class-{i}-img.bmp")), encode_bmp_rgb(&img)).unwrap();
    }
    let db = dir.join("db.cbir");
    let (ok, stdout, stderr) = run(&[
        "index",
        dir.to_str().unwrap(),
        "--db",
        db.to_str().unwrap(),
        "--pipeline",
        "color",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("indexed 3 images"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
