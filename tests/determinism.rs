//! Reproducibility guarantees: every randomized component of the system is
//! a pure function of its seed, so published experiment numbers can be
//! regenerated bit-for-bit.

use cbir::index::Dataset;
use cbir::workload::{clustered, histograms, queries, uniform, Corpus, CorpusSpec};
use cbir::{build_index, ImageDatabase, IndexKind, Measure, Pipeline, SearchStats};

#[test]
fn corpora_are_bitwise_reproducible() {
    let spec = CorpusSpec {
        classes: 5,
        images_per_class: 6,
        image_size: 40,
        jitter: 0.6,
        noise: 0.07,
        seed: 12345,
    };
    let a = Corpus::generate(spec.clone());
    let b = Corpus::generate(spec);
    for (x, y) in a.images.iter().zip(&b.images) {
        assert_eq!(x.as_slice(), y.as_slice());
    }
}

#[test]
fn vector_workloads_are_bitwise_reproducible() {
    assert_eq!(uniform(200, 6, 10.0, 9), uniform(200, 6, 10.0, 9));
    assert_eq!(
        clustered(300, 4, 6, 1.0, 50.0, 3),
        clustered(300, 4, 6, 1.0, 50.0, 3)
    );
    assert_eq!(histograms(50, 16, 1.0, 7), histograms(50, 16, 1.0, 7));
    let data = uniform(100, 3, 5.0, 2);
    assert_eq!(queries(&data, 30, 0.2, 4), queries(&data, 30, 0.2, 4));
}

#[test]
fn extraction_and_search_are_reproducible_across_database_instances() {
    let corpus = Corpus::generate(CorpusSpec {
        classes: 4,
        images_per_class: 8,
        image_size: 48,
        jitter: 0.5,
        noise: 0.05,
        seed: 777,
    });
    let build = || {
        let mut db = ImageDatabase::new(Pipeline::full_default());
        for (i, img) in corpus.images.iter().enumerate() {
            db.insert(format!("i{i}"), img).unwrap();
        }
        db
    };
    let a = build();
    let b = build();
    for i in 0..a.len() {
        assert_eq!(a.descriptor(i).unwrap(), b.descriptor(i).unwrap());
    }
}

#[test]
fn randomized_index_builds_are_reproducible() {
    // VP-tree, Antipole, and M-tree all use seeded internal RNGs: two
    // builds over the same data must answer every query with identical
    // traversal costs, not just identical results.
    let vectors = clustered(800, 8, 8, 1.0, 60.0, 21);
    let ds = Dataset::from_vectors(&vectors).unwrap();
    for kind in [
        IndexKind::VpTree,
        IndexKind::Antipole { diameter: None },
        IndexKind::MTree,
        IndexKind::RStar,
        IndexKind::KdTree,
    ] {
        let x = build_index(&kind, ds.clone(), Measure::L2).unwrap();
        let y = build_index(&kind, ds.clone(), Measure::L2).unwrap();
        for qi in [0usize, 123, 799] {
            let q = ds.vector(qi);
            let mut sx = SearchStats::new();
            let mut sy = SearchStats::new();
            assert_eq!(
                x.knn_search(q, 7, &mut sx),
                y.knn_search(q, 7, &mut sy),
                "{} results differ between identical builds",
                kind.name()
            );
            assert_eq!(sx, sy, "{} traversal costs differ", kind.name());
        }
    }
}
