//! Cross-crate integration tests: corpus generation → codec round-trip →
//! feature extraction → indexing → retrieval → evaluation → persistence,
//! exercised through the public facade only.

use cbir::core::eval::{average_precision, mean, precision_at_k};
use cbir::core::persist;
use cbir::image::codec::{decode, encode_bmp_rgb, encode_ppm, PnmEncoding};
use cbir::workload::{Corpus, CorpusSpec};
use cbir::{
    FeatureSpec, ImageDatabase, IndexKind, Measure, Pipeline, Quantizer, QueryEngine, SearchStats,
};
use std::collections::HashSet;

fn corpus() -> Corpus {
    Corpus::generate(CorpusSpec {
        classes: 6,
        images_per_class: 10,
        image_size: 48,
        jitter: 0.4,
        noise: 0.04,
        seed: 31415,
    })
}

fn build_db(corpus: &Corpus, pipeline: Pipeline) -> ImageDatabase {
    let mut db = ImageDatabase::new(pipeline);
    for (i, img) in corpus.images.iter().enumerate() {
        db.insert_labeled(format!("img-{i}"), corpus.labels[i] as u32, img)
            .unwrap();
    }
    db
}

#[test]
fn retrieval_beats_chance_by_a_wide_margin() {
    let corpus = corpus();
    let db = build_db(&corpus, Pipeline::color_histogram_default());
    let engine = QueryEngine::build(db, IndexKind::Linear, Measure::L1).unwrap();

    let mut p10s = Vec::new();
    for query in (0..corpus.len()).step_by(5) {
        let mut stats = SearchStats::new();
        let hits = engine.query_by_id(query, 10, &mut stats).unwrap();
        let ranked: Vec<usize> = hits.iter().map(|h| h.id).collect();
        let relevant: HashSet<usize> = corpus.relevant_to(query).into_iter().collect();
        p10s.push(precision_at_k(&ranked, &relevant, 10));
    }
    let p10 = mean(&p10s);
    // Chance P@10 is 9/59 ≈ 0.15; color histograms must do far better on a
    // color-structured corpus.
    assert!(p10 > 0.5, "P@10 = {p10}, barely above chance");
}

#[test]
fn every_index_returns_identical_rankings() {
    let corpus = corpus();
    let reference: Vec<_> = {
        let db = build_db(&corpus, Pipeline::color_histogram_default());
        let engine = QueryEngine::build(db, IndexKind::Linear, Measure::L2).unwrap();
        let mut stats = SearchStats::new();
        engine.query_by_id(17, 12, &mut stats).unwrap()
    };
    for kind in [
        IndexKind::KdTree,
        IndexKind::VpTree,
        IndexKind::Antipole { diameter: None },
        IndexKind::RStar,
        IndexKind::MTree,
    ] {
        let db = build_db(&corpus, Pipeline::color_histogram_default());
        let engine = QueryEngine::build(db, kind.clone(), Measure::L2).unwrap();
        let mut stats = SearchStats::new();
        let hits = engine.query_by_id(17, 12, &mut stats).unwrap();
        assert_eq!(
            hits,
            reference,
            "{} disagrees with linear scan",
            kind.name()
        );
    }
}

#[test]
fn indexes_prune_relative_to_linear_scan() {
    let corpus = Corpus::generate(CorpusSpec {
        classes: 10,
        images_per_class: 30,
        image_size: 32,
        jitter: 0.4,
        noise: 0.04,
        seed: 99,
    });
    // Compact signature keeps dimensionality friendly to pruning.
    let pipeline = Pipeline::new(
        32,
        vec![FeatureSpec::ColorHistogram(Quantizer::UniformRgb {
            per_channel: 2,
        })],
    )
    .unwrap();
    let db = build_db(&corpus, pipeline);
    let n = db.len() as u64;

    let linear = QueryEngine::build(db.clone(), IndexKind::Linear, Measure::L2).unwrap();
    let mut lin_stats = SearchStats::new();
    linear.query_by_id(5, 10, &mut lin_stats).unwrap();
    assert_eq!(lin_stats.distance_computations, n);

    for kind in [
        IndexKind::VpTree,
        IndexKind::Antipole { diameter: None },
        IndexKind::MTree,
    ] {
        let engine = QueryEngine::build(db.clone(), kind.clone(), Measure::L2).unwrap();
        let mut stats = SearchStats::new();
        engine.query_by_id(5, 10, &mut stats).unwrap();
        assert!(
            stats.distance_computations < n,
            "{}: {} computations vs {} linear",
            kind.name(),
            stats.distance_computations,
            n
        );
    }
}

#[test]
fn codecs_feed_the_pipeline_losslessly() {
    let corpus = corpus();
    let img = &corpus.images[0];
    let pipeline = Pipeline::color_histogram_default();

    let direct = pipeline.extract(img).unwrap();

    let ppm = encode_ppm(img, PnmEncoding::Binary);
    let via_ppm = pipeline.extract(&decode(&ppm).unwrap().into_rgb()).unwrap();
    assert_eq!(direct, via_ppm);

    let bmp = encode_bmp_rgb(img);
    let via_bmp = pipeline.extract(&decode(&bmp).unwrap().into_rgb()).unwrap();
    assert_eq!(direct, via_bmp);
}

#[test]
fn persistence_preserves_query_results() {
    let corpus = corpus();
    let db = build_db(&corpus, Pipeline::color_histogram_default());
    let bytes = persist::save_to_vec(&db).unwrap();
    let loaded = persist::load_from_slice(&bytes).unwrap();

    let e1 = QueryEngine::build(db, IndexKind::VpTree, Measure::L1).unwrap();
    let e2 = QueryEngine::build(loaded, IndexKind::VpTree, Measure::L1).unwrap();
    let query = &corpus.images[33];
    let mut s1 = SearchStats::new();
    let mut s2 = SearchStats::new();
    assert_eq!(
        e1.query_by_example(query, 8, &mut s1).unwrap(),
        e2.query_by_example(query, 8, &mut s2).unwrap()
    );
}

#[test]
fn multi_feature_pipeline_end_to_end() {
    let corpus = Corpus::generate(CorpusSpec {
        classes: 4,
        images_per_class: 8,
        image_size: 64,
        jitter: 0.4,
        noise: 0.03,
        seed: 8,
    });
    let db = build_db(&corpus, Pipeline::full_default());
    assert_eq!(db.dim(), Pipeline::full_default().dim());
    let engine = QueryEngine::build(db, IndexKind::VpTree, Measure::L1).unwrap();
    let mut aps = Vec::new();
    for query in (0..corpus.len()).step_by(4) {
        let mut stats = SearchStats::new();
        let hits = engine
            .query_by_id(query, corpus.len() - 1, &mut stats)
            .unwrap();
        let ranked: Vec<usize> = hits.iter().map(|h| h.id).collect();
        let relevant: HashSet<usize> = corpus.relevant_to(query).into_iter().collect();
        aps.push(average_precision(&ranked, &relevant));
    }
    let map = mean(&aps);
    let chance = 7.0 / 31.0;
    assert!(
        map > chance + 0.2,
        "full pipeline mAP {map} too close to chance {chance}"
    );
}

#[test]
fn query_cost_scales_sublinearly_on_clustered_signatures() {
    // Doubling the corpus should not double the antipole tree's query cost
    // on class-clustered data (the sub-linearity claim, in miniature).
    let mut costs = Vec::new();
    for images_per_class in [15usize, 30] {
        let corpus = Corpus::generate(CorpusSpec {
            classes: 8,
            images_per_class,
            image_size: 32,
            jitter: 0.3,
            noise: 0.03,
            seed: 5,
        });
        let db = build_db(&corpus, Pipeline::color_histogram_default());
        let engine =
            QueryEngine::build(db, IndexKind::Antipole { diameter: None }, Measure::L1).unwrap();
        let mut total = 0u64;
        for q in (0..corpus.len()).step_by(9) {
            let mut stats = SearchStats::new();
            engine.query_by_id(q, 5, &mut stats).unwrap();
            total += stats.distance_computations;
        }
        costs.push(total as f64 / (corpus.len() / 9 + 1) as f64);
    }
    assert!(
        costs[1] < costs[0] * 2.0,
        "query cost doubled with corpus size: {costs:?}"
    );
}
