//! Near-duplicate detection with range search, plus a tour of the codec
//! and persistence layers: images round-trip through the PPM codec, the
//! signature database round-trips through the binary persistence format,
//! and duplicates are found with a tight-radius range query.
//!
//! Run with: `cargo run --release --example near_duplicate`

use cbir::core::persist;
use cbir::image::codec::{decode_pnm, encode_ppm, PnmEncoding};
use cbir::image::{Rgb, RgbImage};
use cbir::workload::{Corpus, CorpusSpec, Pcg32};
use cbir::{ImageDatabase, IndexKind, Measure, Pipeline, QueryEngine, SearchStats};

/// Simulate a re-encoded / lightly edited copy: brightness shift + a
/// small amount of pixel noise.
fn perturb(img: &RgbImage, rng: &mut Pcg32) -> RgbImage {
    let shift = rng.range_f32(-6.0, 6.0);
    RgbImage::from_fn(img.width(), img.height(), |x, y| {
        let p = img.pixel(x, y);
        let noise = rng.range_f32(-2.0, 2.0);
        let adj = |c: u8| (c as f32 + shift + noise).clamp(0.0, 255.0) as u8;
        Rgb::new(adj(p.r()), adj(p.g()), adj(p.b()))
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::generate(CorpusSpec {
        classes: 12,
        images_per_class: 6,
        image_size: 64,
        jitter: 0.8,
        noise: 0.03,
        seed: 2024,
    });
    let mut rng = Pcg32::new(555);

    // Insert originals; every 4th image also gets a perturbed near-copy —
    // and every image passes through the PPM codec first, as it would when
    // ingested from disk.
    let mut db = ImageDatabase::new(Pipeline::color_histogram_default());
    let mut duplicate_of = Vec::new(); // (copy id, original id)
    for (i, img) in corpus.images.iter().enumerate() {
        let bytes = encode_ppm(img, PnmEncoding::Binary);
        let decoded = decode_pnm(&bytes)?.into_rgb();
        assert_eq!(&decoded, img, "PPM codec must round-trip exactly");
        let orig_id = db.insert(format!("orig-{i:03}"), &decoded)?;
        if i % 4 == 0 {
            let copy = perturb(img, &mut rng);
            let copy_id = db.insert(format!("copy-{i:03}"), &copy)?;
            duplicate_of.push((copy_id, orig_id));
        }
    }
    println!(
        "database: {} images ({} with planted near-duplicates)",
        db.len(),
        duplicate_of.len()
    );

    // Persistence round-trip before querying.
    let bytes = persist::save_to_vec(&db)?;
    let db = persist::load_from_slice(&bytes)?;
    println!("persisted + reloaded: {} bytes", bytes.len());

    // Range search with a tight radius flags near-duplicates.
    let engine = QueryEngine::build(db, IndexKind::Antipole { diameter: None }, Measure::L1)?;
    let radius = 0.25; // tight L1 radius on normalized histograms

    let mut found = 0usize;
    let mut false_alarms = 0usize;
    let mut total_computations = 0u64;
    for &(copy_id, orig_id) in &duplicate_of {
        let mut stats = SearchStats::new();
        let desc: Vec<f32> = engine.database().descriptor(copy_id)?.to_vec();
        let hits = engine.query_by_descriptor(&desc, 4, &mut stats)?;
        total_computations += stats.distance_computations;
        // Nearest non-self hit inside the radius is the duplicate verdict.
        match hits.iter().find(|h| h.id != copy_id) {
            Some(h) if h.id == orig_id && h.distance <= radius => found += 1,
            Some(h) if h.distance <= radius => false_alarms += 1,
            _ => {}
        }
    }
    println!(
        "\nduplicate detection: {found}/{} originals recovered, {false_alarms} false alarms",
        duplicate_of.len()
    );
    println!(
        "mean query cost: {:.0} distance computations over {} images",
        total_computations as f64 / duplicate_of.len() as f64,
        engine.database().len()
    );
    Ok(())
}
