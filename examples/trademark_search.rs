//! Trademark-style shape retrieval: find marks with similar silhouettes
//! regardless of color — the classic early application of shape-based image
//! indexing.
//!
//! Uses a shape-heavy pipeline (Hu invariants, shape summary, edge
//! orientation, distance-transform histogram) and compares it against a
//! color-only pipeline on a corpus whose classes differ mainly by shape.
//!
//! Run with: `cargo run --release --example trademark_search`

use cbir::core::eval::{average_precision, mean};
use cbir::image::color::{hsv_to_rgb, Hsv};
use cbir::image::RgbImage;
use cbir::workload::{Pcg32, Shape};
use cbir::{FeatureSpec, ImageDatabase, IndexKind, Measure, Pipeline, QueryEngine, SearchStats};
use std::collections::HashSet;

const CLASSES: usize = 6;
const PER_CLASS: usize = 15;
const SIZE: u32 = 64;

/// Render a "trademark": one shape family per class, random ink/paper hues
/// per image (so color is a nuisance variable, not a signal).
fn render_mark(class: usize, instance: usize) -> RgbImage {
    let mut rng = Pcg32::with_stream(0x7247_de3a, (class * 1000 + instance) as u64);
    // Class-defining silhouette (deterministic per class, jittered per
    // instance).
    let mut class_rng = Pcg32::with_stream(0x7247_de3a, class as u64);
    let template = match class % 4 {
        0 => Shape::Disc {
            cx: 0.5,
            cy: 0.5,
            r: 0.28,
        },
        1 => Shape::Rectangle {
            cx: 0.5,
            cy: 0.5,
            hw: 0.3,
            hh: 0.12,
            angle: class_rng.range_f32(0.0, 1.5),
        },
        2 => Shape::Polygon {
            cx: 0.5,
            cy: 0.5,
            r: 0.3,
            sides: 3 + (class % 3) as u32,
            angle: class_rng.range_f32(0.0, 1.0),
        },
        _ => Shape::Ring {
            cx: 0.5,
            cy: 0.5,
            outer: 0.3,
            inner: 0.17,
        },
    };
    let shape = template.jitter(&mut rng, 0.6);
    // Random, class-uninformative colors.
    let ink = hsv_to_rgb(Hsv {
        h: rng.range_f32(0.0, 360.0),
        s: rng.range_f32(0.6, 1.0),
        v: rng.range_f32(0.25, 0.5),
    });
    let paper = hsv_to_rgb(Hsv {
        h: rng.range_f32(0.0, 360.0),
        s: rng.range_f32(0.0, 0.3),
        v: rng.range_f32(0.85, 1.0),
    });
    RgbImage::from_fn(SIZE, SIZE, |x, y| {
        let ux = (x as f32 + 0.5) / SIZE as f32;
        let uy = (y as f32 + 0.5) / SIZE as f32;
        if shape.contains(ux, uy) {
            ink
        } else {
            paper
        }
    })
}

fn shape_pipeline() -> Pipeline {
    Pipeline::new(
        64,
        vec![
            FeatureSpec::HuMoments,
            FeatureSpec::ShapeSummary,
            FeatureSpec::EdgeOrientation { bins: 16 },
            FeatureSpec::DtHistogram { bins: 16 },
        ],
    )
    .expect("static pipeline")
}

fn evaluate(pipeline: Pipeline, label: &str) -> Result<f64, Box<dyn std::error::Error>> {
    let mut db = ImageDatabase::new(pipeline);
    for class in 0..CLASSES {
        for instance in 0..PER_CLASS {
            db.insert_labeled(
                format!("mark-{class}-{instance}"),
                class as u32,
                &render_mark(class, instance),
            )?;
        }
    }
    let engine = QueryEngine::build(db, IndexKind::VpTree, Measure::L1)?;
    let mut aps = Vec::new();
    for query in 0..CLASSES * PER_CLASS {
        let mut stats = SearchStats::new();
        let hits = engine.query_by_id(query, CLASSES * PER_CLASS - 1, &mut stats)?;
        let ranked: Vec<usize> = hits.iter().map(|h| h.id).collect();
        let relevant: HashSet<usize> = (0..CLASSES * PER_CLASS)
            .filter(|&i| i != query && i / PER_CLASS == query / PER_CLASS)
            .collect();
        aps.push(average_precision(&ranked, &relevant));
    }
    let map = mean(&aps);
    println!("{label:<24} mAP = {map:.3}");
    Ok(map)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "trademark retrieval: {CLASSES} shape classes x {PER_CLASS} marks, colors randomized\n"
    );
    let shape_map = evaluate(shape_pipeline(), "shape features")?;
    let color_map = evaluate(Pipeline::color_histogram_default(), "color histogram")?;
    let chance = (PER_CLASS - 1) as f64 / (CLASSES * PER_CLASS - 1) as f64;
    println!("{:<24} mAP = {chance:.3}", "(chance)");
    println!(
        "\nshape features {} color histograms on shape-defined classes.",
        if shape_map > color_map {
            "beat"
        } else {
            "did NOT beat"
        }
    );
    Ok(())
}
