//! Batched search: run many queries through the engine in one call,
//! with per-worker scratch reuse and aggregated cost statistics.
//!
//! Run with: `cargo run --release --example batch_search`

use cbir::workload::{Corpus, CorpusSpec};
use cbir::{evaluate_engine, BatchStats, ImageDatabase, IndexKind, Measure, Pipeline, QueryEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deterministic corpus: 6 classes x 20 images.
    let corpus = Corpus::generate(CorpusSpec {
        classes: 6,
        images_per_class: 20,
        image_size: 64,
        jitter: 0.5,
        noise: 0.05,
        seed: 11,
    });

    let mut db = ImageDatabase::new(Pipeline::color_histogram_default());
    for (i, img) in corpus.images.iter().enumerate() {
        db.insert_labeled(format!("img-{i:03}"), corpus.labels[i] as u32, img)?;
    }
    println!("database: {} signatures, dim {}", db.len(), db.dim());

    // 2. Build an engine over a VP-tree.
    let engine = QueryEngine::build(db, IndexKind::VpTree, Measure::L1)?;

    // 3. Batch the queries: every stored descriptor queries the index in
    //    one call. `threads` fans the batch out across worker threads;
    //    each worker reuses one scratch buffer, so the steady state does
    //    zero per-query heap allocation.
    let queries: Vec<Vec<f32>> = (0..engine.database().len())
        .map(|id| engine.database().descriptor(id).unwrap().to_vec())
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());

    let mut stats = BatchStats::new();
    let results = engine.knn_batch(&queries, 5, threads, &mut stats)?;

    let self_hits = results
        .iter()
        .enumerate()
        .filter(|(i, hits)| hits.first().map(|h| h.id) == Some(*i))
        .count();
    println!(
        "\nbatch of {} queries on {} thread(s): top hit is the query itself for {}/{}",
        stats.queries(),
        threads,
        self_hits,
        queries.len()
    );
    println!(
        "cost: {:.0} distance computations/query mean, p50 {}, p95 {}",
        stats.mean_comps(),
        stats.p50_comps(),
        stats.p95_comps()
    );

    // 4. The retrieval benchmark rides the same batched path.
    let report = evaluate_engine(&engine, 10, threads)?;
    println!(
        "\nleave-one-out over {} labeled queries: P@10 {:.3}, mAP {:.3}",
        report.evaluated, report.precision_at_k, report.mean_average_precision
    );
    Ok(())
}
