//! Relevance feedback: Rocchio query refinement over two feedback rounds.
//!
//! A deliberately hard query (an image blended between two classes) is
//! retrieved, the user "marks" results by class ground truth, and the
//! refined query is re-run. Precision improves round over round — the
//! classic interaction loop of the early retrieval systems.
//!
//! Run with: `cargo run --release --example relevance_feedback`

use cbir::core::feedback::{refine_query_by_ids, RocchioParams};
use cbir::features::normalize_l1;
use cbir::image::RgbImage;
use cbir::workload::{Corpus, CorpusSpec};
use cbir::{ImageDatabase, IndexKind, Measure, Pipeline, QueryEngine, SearchStats};

const TARGET_CLASS: u32 = 2;
const K: usize = 15;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::generate(CorpusSpec {
        classes: 8,
        images_per_class: 25,
        image_size: 64,
        jitter: 0.6,
        noise: 0.05,
        seed: 99,
    });
    let mut db = ImageDatabase::new(Pipeline::color_histogram_default());
    for (i, img) in corpus.images.iter().enumerate() {
        db.insert_labeled(format!("img-{i:03}"), corpus.labels[i] as u32, img)?;
    }
    let engine = QueryEngine::build(db, IndexKind::VpTree, Measure::L2)?;

    // A confusing query: half class-2 pixels, half class-5 pixels.
    let a = &corpus.images[TARGET_CLASS as usize * 25];
    let b = &corpus.images[5 * 25];
    let query_img = RgbImage::from_fn(64, 64, |x, y| {
        if (x * 7 + y * 3) % 10 < 5 {
            a.pixel(x, y)
        } else {
            b.pixel(x, y)
        }
    });

    let mut query = engine.database().extract(&query_img)?;
    let params = RocchioParams::default();
    println!("searching for class {TARGET_CLASS} with a 50/50 blended query\n");
    println!("{:<8} {:>12} {:>14}", "round", "P@15", "relevant seen");

    for round in 0..3 {
        let mut stats = SearchStats::new();
        let hits = engine.query_by_descriptor(&query, K, &mut stats)?;
        let relevant_ids: Vec<usize> = hits
            .iter()
            .filter(|h| h.label == Some(TARGET_CLASS))
            .map(|h| h.id)
            .collect();
        let non_relevant_ids: Vec<usize> = hits
            .iter()
            .filter(|h| h.label != Some(TARGET_CLASS))
            .map(|h| h.id)
            .collect();
        let p = relevant_ids.len() as f64 / K as f64;
        println!("{:<8} {:>12.3} {:>10}/{K}", round, p, relevant_ids.len());

        // The "user" marks everything by ground truth; refine and repeat.
        query = refine_query_by_ids(
            engine.database(),
            &query,
            &relevant_ids,
            &non_relevant_ids,
            &params,
        )?;
        // The database holds L1-normalized histograms; restore the refined
        // query to unit mass so L2 compares like with like (Rocchio's
        // direction matters, its magnitude does not).
        normalize_l1(&mut query);
    }
    println!("\n(precision should rise across rounds as the query migrates");
    println!("toward the relevant class centroid)");
    Ok(())
}
