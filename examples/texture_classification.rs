//! Texture classification by nearest-neighbour retrieval: GLCM + Tamura +
//! wavelet signatures on grayscale texture patches (a Brodatz-style
//! protocol on procedural textures).
//!
//! Run with: `cargo run --release --example texture_classification`

use cbir::image::{Rgb, RgbImage};
use cbir::workload::{Pcg32, Texture};
use cbir::{FeatureSpec, ImageDatabase, IndexKind, Measure, Pipeline, QueryEngine, SearchStats};

const CLASSES: usize = 8;
const TRAIN_PER_CLASS: usize = 10;
const TEST_PER_CLASS: usize = 5;
const SIZE: u32 = 64;

fn texture_patch(texture: &Texture, rng: &mut Pcg32) -> RgbImage {
    let t = texture.jitter(rng, 0.7);
    // Random global brightness/contrast per patch, so raw intensity is not
    // a reliable cue.
    let gain = rng.range_f32(0.7, 1.0);
    let bias = rng.range_f32(0.0, 0.25);
    RgbImage::from_fn(SIZE, SIZE, |x, y| {
        let v = ((t.eval(x as f32, y as f32) * gain + bias).clamp(0.0, 1.0) * 255.0) as u8;
        Rgb::new(v, v, v)
    })
}

fn texture_pipeline() -> Pipeline {
    Pipeline::new(
        64,
        vec![
            FeatureSpec::Glcm { levels: 16 },
            FeatureSpec::Tamura,
            FeatureSpec::Wavelet { levels: 3 },
        ],
    )
    .expect("static pipeline")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One texture family per class.
    let mut class_rng = Pcg32::new(0x7e87);
    let class_textures: Vec<Texture> = (0..CLASSES)
        .map(|_| Texture::random(&mut class_rng, SIZE as f32))
        .collect();

    // Train database.
    let mut db = ImageDatabase::new(texture_pipeline());
    for (class, tex) in class_textures.iter().enumerate() {
        let mut rng = Pcg32::with_stream(0x7e87, class as u64);
        for i in 0..TRAIN_PER_CLASS {
            db.insert_labeled(
                format!("tex-{class}-{i}"),
                class as u32,
                &texture_patch(tex, &mut rng),
            )?;
        }
    }
    let engine = QueryEngine::build(db, IndexKind::VpTree, Measure::L2)?;

    // Held-out test patches, classified by 3-NN majority vote.
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut confusion = vec![vec![0u32; CLASSES]; CLASSES];
    for (class, tex) in class_textures.iter().enumerate() {
        let mut rng = Pcg32::with_stream(0xbeef, class as u64 + 100);
        for _ in 0..TEST_PER_CLASS {
            let patch = texture_patch(tex, &mut rng);
            let mut stats = SearchStats::new();
            let hits = engine.query_by_example(&patch, 3, &mut stats)?;
            let mut votes = [0u32; CLASSES];
            for h in &hits {
                votes[h.label.unwrap() as usize] += 1;
            }
            let predicted = votes
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| v)
                .map(|(i, _)| i)
                .unwrap();
            confusion[class][predicted] += 1;
            if predicted == class {
                correct += 1;
            }
            total += 1;
        }
    }

    println!(
        "texture classification: {CLASSES} classes, {TRAIN_PER_CLASS} train / {TEST_PER_CLASS} test patches each"
    );
    println!(
        "3-NN accuracy: {correct}/{total} = {:.1}%",
        100.0 * correct as f64 / total as f64
    );
    println!("(chance: {:.1}%)\n", 100.0 / CLASSES as f64);
    println!("confusion matrix (rows = truth):");
    print!("     ");
    for c in 0..CLASSES {
        print!("{c:>4}");
    }
    println!();
    for (truth, row) in confusion.iter().enumerate() {
        print!("  {truth:>2} ");
        for &n in row {
            print!("{n:>4}");
        }
        println!();
    }
    Ok(())
}
