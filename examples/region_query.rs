//! Region query: find *where* a small template occurs inside larger scenes
//! — "find this logo in these images" — using integral-histogram sliding-
//! window search, then rank whole scenes by their best window.
//!
//! Run with: `cargo run --release --example region_query`

use cbir::features::{find_best_window, Quantizer};
use cbir::image::{Rgb, RgbImage};
use cbir::workload::Pcg32;

const SCENES: usize = 6;
const SIZE: u32 = 96;

/// A busy scene of random color blocks; scene `i` (for even `i`) hides the
/// "logo" (red ring on yellow) at a known position.
fn scene(i: usize, logo: &RgbImage) -> (RgbImage, Option<(u32, u32)>) {
    let mut rng = Pcg32::with_stream(0x5ce7e, i as u64);
    let mut img = RgbImage::from_fn(SIZE, SIZE, |x, y| {
        let cell = (x / 16 + 17 * (y / 16)) as u64;
        let mut cell_rng = Pcg32::with_stream(0xb10c + i as u64, cell);
        let _ = (x, y);
        Rgb::new(
            cell_rng.below(200) as u8,
            (55 + cell_rng.below(200)) as u8,
            (30 + cell_rng.below(180)) as u8,
        )
    });
    if i.is_multiple_of(2) {
        let max = SIZE - logo.width();
        let (lx, ly) = (
            rng.below(max as usize) as u32,
            rng.below(max as usize) as u32,
        );
        for (x, y, p) in logo.enumerate_pixels() {
            img.set(lx + x, ly + y, p);
        }
        (img, Some((lx, ly)))
    } else {
        (img, None)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "logo": red ring on a yellow field.
    let logo = RgbImage::from_fn(20, 20, |x, y| {
        let dx = x as f32 - 9.5;
        let dy = y as f32 - 9.5;
        let r = (dx * dx + dy * dy).sqrt();
        if (5.0..8.5).contains(&r) {
            Rgb::new(210, 25, 25)
        } else {
            Rgb::new(235, 210, 60)
        }
    });
    let quantizer = Quantizer::rgb_compact();

    println!("searching {SCENES} scenes for a 20x20 logo (stride 2)\n");
    println!(
        "{:<7} {:>9} {:>12} {:>12} {:>9}",
        "scene", "planted", "found-at", "distance", "verdict"
    );
    let mut correct = 0usize;
    for i in 0..SCENES {
        let (img, planted) = scene(i, &logo);
        let m = find_best_window(&img, &logo, &quantizer, 2)?;
        // Decision rule: a sufficiently close histogram means "present".
        let present = m.distance < 0.5;
        let ok = match planted {
            Some((px, py)) => present && m.x.abs_diff(px) <= 4 && m.y.abs_diff(py) <= 4,
            None => !present,
        };
        if ok {
            correct += 1;
        }
        println!(
            "{:<7} {:>9} {:>12} {:>12.3} {:>9}",
            i,
            planted.map_or("no".into(), |(x, y)| format!("({x},{y})")),
            format!("({}, {})", m.x, m.y),
            m.distance,
            if ok { "correct" } else { "WRONG" }
        );
    }
    println!("\n{correct}/{SCENES} scenes decided correctly");
    Ok(())
}
