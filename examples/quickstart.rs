//! Quickstart: build a small synthetic image database, index it, and run
//! query-by-example retrieval.
//!
//! Run with: `cargo run --release --example quickstart`

use cbir::image::{Rgb, RgbImage};
use cbir::workload::{Corpus, CorpusSpec};
use cbir::{ImageDatabase, IndexKind, Measure, Pipeline, QueryEngine, SearchStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a deterministic corpus: 8 classes x 12 images.
    let corpus = Corpus::generate(CorpusSpec {
        classes: 8,
        images_per_class: 12,
        image_size: 64,
        jitter: 0.5,
        noise: 0.05,
        seed: 7,
    });
    println!("corpus: {} images in 8 classes", corpus.len());

    // 2. Extract color-histogram signatures into a database.
    let mut db = ImageDatabase::new(Pipeline::color_histogram_default());
    for (i, img) in corpus.images.iter().enumerate() {
        db.insert_labeled(format!("img-{i:03}"), corpus.labels[i] as u32, img)?;
    }
    println!(
        "database: {} signatures of dimension {}",
        db.len(),
        db.dim()
    );

    // 3. Build a metric index (Antipole tree, auto-tuned cluster diameter).
    let engine = QueryEngine::build(db, IndexKind::Antipole { diameter: None }, Measure::L1)?;

    // 4. Query by an external example: a fresh jitter of class 3's look is
    //    approximated here by reusing one of its images blended toward
    //    white (as if re-photographed under brighter light).
    let base = &corpus.images[3 * 12];
    let query = RgbImage::from_fn(base.width(), base.height(), |x, y| {
        let p = base.pixel(x, y);
        let lift = |c: u8| (c as u16 + 25).min(255) as u8;
        Rgb::new(lift(p.r()), lift(p.g()), lift(p.b()))
    });

    let mut stats = SearchStats::new();
    let hits = engine.query_by_example(&query, 5, &mut stats)?;
    println!("\ntop-5 for a brightened class-3 image:");
    println!("{:<10} {:>8} {:>7}", "name", "class", "dist");
    for h in &hits {
        println!(
            "{:<10} {:>8} {:>7.4}",
            h.name,
            h.label.map(|l| l.to_string()).unwrap_or_default(),
            h.distance
        );
    }
    println!(
        "\ncost: {} distance computations over {} images ({} nodes visited)",
        stats.distance_computations,
        corpus.len(),
        stats.nodes_visited
    );

    let same_class = hits.iter().filter(|h| h.label == Some(3)).count();
    println!("{same_class}/5 results share the query's class");
    Ok(())
}
