//! # `cbir` — content-based image indexing
//!
//! A complete, from-scratch implementation of a content-based image
//! indexing system: feature signatures (color, texture, shape/edge),
//! similarity measures, and exact metric/spatial index structures for
//! query-by-example retrieval over large image databases.
//!
//! This facade crate re-exports the workspace layers:
//!
//! - [`image`] — raster substrate: typed buffers, color spaces, PNM/BMP
//!   codecs, convolution/Gaussian/Sobel/threshold/morphology operators;
//! - [`features`] — signatures: color histograms and correlograms, GLCM and
//!   Tamura texture, Haar wavelet signatures, edge-orientation histograms,
//!   distance transforms, moment invariants, and the composable
//!   [`features::Pipeline`];
//! - [`distance`] — similarity measures: Minkowski family, histogram
//!   intersection/chi-square/match distance, quadratic-form, Hausdorff;
//! - [`index`] — search structures: sequential scan, k-d tree, VP-tree,
//!   Antipole tree, R\*-tree, all exact, all instrumented with distance-
//!   computation counters;
//! - [`core`] — the engine: [`ImageDatabase`], [`QueryEngine`], retrieval
//!   evaluation, binary persistence;
//! - [`workload`] — deterministic synthetic corpora and vector workloads
//!   used by the test and benchmark suites;
//! - [`server`] — the network serving layer: a TCP query server with
//!   dynamic micro-batching and admission control, plus the matching
//!   blocking [`server::Client`] (`cbir serve` / `cbir rpc-query`);
//! - [`router`] — the sharded, replicated scatter-gather tier: a
//!   `CBIRRPC1` front-end that splits a corpus across replica groups of
//!   backend servers and merges per-shard results bit-identically
//!   (`cbir shard-plan` / `cbir route`);
//! - [`obs`] — observability: process-wide pruning/stage counters,
//!   latency histograms, sampled per-query traces, and JSON/Prometheus
//!   export (`cbir stats` / `cbir trace`).
//!
//! ## Quickstart
//!
//! ```
//! use cbir::{ImageDatabase, QueryEngine, IndexKind, Measure, Pipeline, SearchStats};
//! use cbir::image::{RgbImage, Rgb};
//!
//! // 1. Extract signatures into a database.
//! let mut db = ImageDatabase::new(Pipeline::color_histogram_default());
//! db.insert("sunset", &RgbImage::filled(64, 64, Rgb::new(230, 120, 40))).unwrap();
//! db.insert("ocean", &RgbImage::filled(64, 64, Rgb::new(20, 80, 200))).unwrap();
//!
//! // 2. Build an index and query by example.
//! let engine = QueryEngine::build(db, IndexKind::Antipole { diameter: None }, Measure::L1).unwrap();
//! let mut stats = SearchStats::new();
//! let query = RgbImage::filled(64, 64, Rgb::new(220, 110, 50));
//! let hits = engine.query_by_example(&query, 1, &mut stats).unwrap();
//! assert_eq!(hits[0].name, "sunset");
//! ```

#![warn(missing_docs)]

pub use cbir_core as core;
pub use cbir_distance as distance;
pub use cbir_features as features;
pub use cbir_image as image;
pub use cbir_index as index;
pub use cbir_obs as obs;
pub use cbir_router as router;
pub use cbir_server as server;
pub use cbir_workload as workload;

pub use cbir_core::{
    build_index, evaluate_engine, merge_shards, split_database, BatchItem, CompactionStats,
    CoreError, CorpusSnapshot, CorpusStore, EvalReport, ImageDatabase, ImageMeta, IndexKind,
    PinnedView, QueryEngine, Ranked, RocchioParams, ServedCorpus, ShardPlan, ShardScheme,
    StoreOptions,
};
pub use cbir_distance::{DistanceKernel, Measure};
pub use cbir_features::{FeatureSpec, Pipeline, Quantizer};
pub use cbir_index::{BatchStats, Neighbor, SearchIndex, SearchStats};
