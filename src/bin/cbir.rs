//! `cbir` — command-line interface to the content-based image indexing
//! system.
//!
//! ```text
//! cbir generate <dir> [--classes N] [--per-class M] [--size S] [--seed K]
//! cbir index <dir> --db <file> [--pipeline full|color|texture|shape] [--threads N]
//! cbir query <db> <image>... [-k N] [--measure M] [--index I] [--threads N]
//! cbir info <db>
//! cbir fsck <db>
//! cbir evaluate <db> [-k N] [--measure M] [--index I] [--threads N]
//! cbir trace <db> <image> [-k N] [--format text|json]
//! cbir stats <addr> [--format json|prometheus]
//! ```
//!
//! Images are read in any supported container (PPM/PGM/PBM/BMP). Class
//! labels are inferred from a `class-<n>-` file-name prefix when present,
//! so corpora written by `generate` evaluate out of the box.

use cbir::core::persist;
use cbir::image::codec::{decode, encode_ppm, PnmEncoding};
use cbir::image::RgbImage;
use cbir::router::{Router, RouterConfig};
use cbir::server::protocol::{decode_response, encode_request, read_frame, write_frame};
use cbir::server::{
    ChaosProxy, Client, EventLoopConfig, Hit, Request, Response, RetryPolicy, RetryingClient,
    SchedulerConfig, Server, StatsSnapshot, WireMode,
};
use cbir::workload::{Corpus, CorpusSpec};
use cbir::{
    evaluate_engine, merge_shards, split_database, BatchItem, BatchStats, CorpusStore, FeatureSpec,
    ImageDatabase, ImageMeta, IndexKind, Measure, Pipeline, QueryEngine, SearchStats, ServedCorpus,
    ShardPlan, ShardScheme, StoreOptions,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:
  cbir generate <dir> [--classes N] [--per-class M] [--size S] [--seed K]
      write a deterministic synthetic corpus as PPM files

  cbir index <dir> --db <file> [--pipeline full|color|texture|shape] [--threads N]
      extract signatures from every image in <dir> and save a database

  cbir query <db> <image>... [-k N] [--measure l1|l2|linf|chisq|match|cosine|intersect]
                             [--index linear|kd|vp|antipole|rstar|mtree] [--threads N]
                             [--trace-sample-n N] [--recall-target R]
      rank database images by similarity to the example image(s);
      multiple images run as one batch; --trace-sample-n 1 prints a
      per-query stage trace to stderr (stdout stays byte-identical);
      --recall-target R in (0,1] trades recall for speed via two-stage
      coarse-to-fine search (1.0, the default, is exact)

  cbir info <db>
      print database statistics

  cbir evaluate <db> [-k N] [--measure M] [--index I] [--threads N]
      leave-one-out retrieval evaluation over the database's class labels

  cbir trace <db> <image> [-k N] [--measure M] [--index I] [--format text|json]
      run one traced query and print its stage timeline plus pruning
      counters (text renders a timeline, json emits the raw trace)

  cbir stats <addr> [--format json|prometheus]
      fetch a running server's observability snapshot (per-index pruning
      counters, stage cache hits, latency quantiles, queue depth)

  cbir fsck <db-or-segdir>
      validate a database file — or a whole segment directory (manifest
      plus every referenced segment) — section by section (checksums,
      lengths); prints per-file per-section status and exits nonzero on
      the first corruption

  cbir ingest <imgdir> --store <segdir> [--pipeline full|color|texture|shape]
                       [--threads N] [--memtable-limit N]
      extract signatures from every image in <imgdir> into a live segment
      store (created with --pipeline if <segdir> has no MANIFEST yet),
      then compact the memtable into immutable segments

  cbir compact <segdir-or-addr>
      fold a store's memtable and tombstones into fresh immutable
      segments; a target containing ':' is treated as a running server's
      address and compacted over RPC

  cbir serve <db-or-segdir> [--mmap] [--port P] [--addr-file F] [--measure M] [--index I]
                  [--max-batch N] [--max-delay-us N] [--queue-cap N] [--threads N]
                  [--idle-timeout-ms N] [--write-timeout-ms N] [--trace-sample-n N]
                  [--recall-target R] [--event-loop] [--max-conns N] [--mutation-workers N]
      serve the database over TCP (CBIRRPC1) with dynamic micro-batching;
      a segment directory (or --mmap, which migrates a database file to
      <db>.seg/ on first use) serves mmap-backed segments with live
      insert/delete/compact RPCs enabled; --port 0 picks an ephemeral
      port, --addr-file writes the bound address; timeout 0 disables
      idle reaping / write timeouts; --trace-sample-n N samples every
      Nth query into the trace ring (see rpc-ctl explain);
      --recall-target R forces every k-NN request to recall target R,
      overriding what clients ask for; --event-loop serves all
      connections from one nonblocking epoll thread (linux/x86-64) with
      replies bit-identical to the default thread-per-connection engine,
      capped at --max-conns simultaneous sockets (default 8192)

  cbir shard-plan <db> [--shards N] [--scheme mod|range] [--out-dir DIR]
      split a database file into N per-shard databases plus a PLAN.txt
      under --out-dir (default <db>.shards/), verifying that merging the
      shards back reproduces the input bit-for-bit; each shard file is
      served by an ordinary `cbir serve`, the plan feeds `cbir route`

  cbir route <plan> <shard0-replicas> <shard1-replicas>... [--port P] [--addr-file F]
                    [--cooldown-ms N] [--read-timeout-ms N] [--hedge-ms N] [--probe-ms N]
                    [--allow-partial] [--breaker-threshold N] [--retry-budget N]
      serve the union corpus over TCP (CBIRRPC1) by scatter-gathering
      across backend servers: one positional argument per shard, each a
      comma-separated replica address list (primary first); replies on
      the exact path are frame-level bit-identical to a single node
      serving the union corpus, and a replica failing with a transient
      error fails over to a sibling (cooldown --cooldown-ms, default
      1000); any cbir client/tool works against the router unchanged.
      Degraded-mode knobs: --hedge-ms N sends a hedged duplicate to a
      sibling replica when a shard reply is slower than max(N, observed
      p99); --probe-ms N health-probes every replica each N ms and
      rejoins recovered ones; --allow-partial answers scatter queries
      from the shards that are up (replies carry answered/total shard
      coverage) instead of failing; --breaker-threshold N opens a
      replica's circuit breaker after N consecutive failures (0 = off,
      default 5); --retry-budget N caps concurrent failover retries
      (token bucket, default 100)

  cbir chaos-proxy <upstream> [--port P] [--addr-file F] [--mode M]
      wire-level fault-injection proxy for chaos drills: forwards every
      connection to <upstream> under --mode, one of pass, drop,
      blackhole, delay-ms:N, throttle:BYTES_PER_SEC, torn:SEED:MAXPREFIX
      (tear replies after a seeded prefix), flip:SEED:WINDOW (flip one
      seeded bit in flight); mode choices are deterministic per seed and
      accept order, so drills replay

  cbir rpc-query <addr> [<image>...] --db <file-or-segdir> [-k N] [--radius R] [--deadline-us D]
  cbir rpc-query <addr> --id N [-k N] [--deadline-us D] [--retries N] [--recall-target R]
      query a running server; example images are extracted locally with
      the pipeline stored in --db (a database file or segment store
      directory), or --id queries by database image id; --retries > 0
      reconnects and resends on transient failures; --recall-target R
      in (0,1] requests two-stage approximate search (replies report
      per-query coarse/rerank candidate counts)

  cbir rpc-storm <addr> [--conns N] [--requests N] [-k N] [--seed S]
      open N connections (default 64), pipeline --requests knn-by-id
      queries on each (write every frame, then read every reply), and
      print a digest over all reply frame bytes in (connection, request)
      order; the digest is engine-independent, so running the same storm
      against a blocking serve and an --event-loop serve of the same
      corpus must print the same digest

  cbir rpc-insert <addr> <image>... --db <file-or-segdir>
      insert example images into a live server, extracted locally with
      the pipeline in --db; class labels inferred from file names

  cbir rpc-ctl <addr> ping|stats|explain|shutdown|abort
  cbir rpc-ctl <addr> delete --id N
      probe, inspect counters, dump sampled query traces as JSON
      (explain), gracefully stop a running server, tombstone a live
      store row by global id (delete), or abort: open a connection,
      send a deliberately truncated frame, and vanish (exercises the
      server's torn-client handling)"
    );
    std::process::exit(2);
}

/// Minimal flag parser: positional args plus `--flag value` pairs.
struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Flags that are pure switches: present or absent, never taking a value.
const BOOL_FLAGS: &[&str] = &["mmap", "allow-partial", "event-loop"];

impl Args {
    fn parse(args: &[String]) -> Self {
        let mut positional = Vec::new();
        let mut flags = BTreeMap::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                if BOOL_FLAGS.contains(&name) {
                    flags.insert(name.to_string(), "true".to_string());
                    continue;
                }
                // A following "--flag" is a missing value, not a value.
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().cloned().expect("peeked"),
                    _ => usage(),
                };
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.flag(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value for --{name}: {v}");
                std::process::exit(2);
            }),
        }
    }
}

fn pipeline_by_name(name: &str) -> Pipeline {
    match name {
        "full" => Pipeline::full_default(),
        "color" => Pipeline::color_histogram_default(),
        "texture" => Pipeline::new(
            64,
            vec![
                FeatureSpec::Glcm { levels: 16 },
                FeatureSpec::Tamura,
                FeatureSpec::Wavelet { levels: 3 },
            ],
        )
        .expect("static pipeline"),
        "shape" => Pipeline::new(
            64,
            vec![
                FeatureSpec::HuMoments,
                FeatureSpec::ShapeSummary,
                FeatureSpec::RegionShape,
                FeatureSpec::EdgeOrientation { bins: 16 },
            ],
        )
        .expect("static pipeline"),
        other => {
            eprintln!("error: unknown pipeline {other:?} (full|color|texture|shape)");
            std::process::exit(2);
        }
    }
}

fn measure_by_name(name: &str) -> Measure {
    match name {
        "l1" => Measure::L1,
        "l2" => Measure::L2,
        "linf" => Measure::LInf,
        "chisq" => Measure::ChiSquare,
        "match" => Measure::Match,
        "cosine" => Measure::Cosine,
        "intersect" => Measure::Intersection,
        other => {
            eprintln!("error: unknown measure {other:?}");
            std::process::exit(2);
        }
    }
}

fn index_by_name(name: &str) -> IndexKind {
    match name {
        "linear" => IndexKind::Linear,
        "kd" => IndexKind::KdTree,
        "vp" => IndexKind::VpTree,
        "antipole" => IndexKind::Antipole { diameter: None },
        "rstar" => IndexKind::RStar,
        "mtree" => IndexKind::MTree,
        other => {
            eprintln!("error: unknown index {other:?}");
            std::process::exit(2);
        }
    }
}

fn label_from_name(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("class-")?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn list_images(dir: &Path) -> Result<Vec<PathBuf>, Box<dyn std::error::Error>> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("ppm" | "pgm" | "pbm" | "bmp")
            )
        })
        .collect();
    out.sort();
    Ok(out)
}

fn cmd_generate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir = PathBuf::from(args.positional.first().unwrap_or_else(|| usage()));
    let classes: usize = args.flag_parse("classes", 8);
    let per_class: usize = args.flag_parse("per-class", 16);
    let size: u32 = args.flag_parse("size", 64);
    let seed: u64 = args.flag_parse("seed", 7);
    std::fs::create_dir_all(&dir)?;
    let corpus = Corpus::generate(CorpusSpec {
        classes,
        images_per_class: per_class,
        image_size: size,
        jitter: 0.5,
        noise: 0.05,
        seed,
    });
    for (i, img) in corpus.images.iter().enumerate() {
        let label = corpus.labels[i];
        let path = dir.join(format!("class-{label}-{i:04}.ppm"));
        std::fs::write(path, encode_ppm(img, PnmEncoding::Binary))?;
    }
    println!(
        "wrote {} images ({classes} classes x {per_class}) to {}",
        corpus.len(),
        dir.display()
    );
    Ok(())
}

fn cmd_index(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir = PathBuf::from(args.positional.first().unwrap_or_else(|| usage()));
    let db_path = args.flag("db").unwrap_or_else(|| usage()).to_string();
    let pipeline = pipeline_by_name(args.flag("pipeline").unwrap_or("full"));
    let threads: usize = args.flag_parse(
        "threads",
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    );

    let paths = list_images(&dir)?;
    if paths.is_empty() {
        return Err(format!("no images (.ppm/.pgm/.pbm/.bmp) in {}", dir.display()).into());
    }
    let start = std::time::Instant::now();
    let mut decoded = Vec::with_capacity(paths.len());
    for p in &paths {
        let bytes = std::fs::read(p)?;
        let name = p
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        decoded.push((name, decode(&bytes)?.into_rgb()));
    }
    let items: Vec<BatchItem> = decoded
        .iter()
        .map(|(name, image)| BatchItem {
            name: name.clone(),
            label: label_from_name(name),
            image,
        })
        .collect();
    let mut db = ImageDatabase::new(pipeline);
    db.insert_batch(&items, threads)?;
    persist::save_file(&db, &db_path)?;
    println!(
        "indexed {} images (dim {}) into {} in {:.2}s using {threads} threads",
        db.len(),
        db.dim(),
        db_path,
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.positional.first().unwrap_or_else(|| usage());
    let img_paths = &args.positional[1..];
    if img_paths.is_empty() {
        usage();
    }
    let k: usize = args.flag_parse("k", 10);
    let measure = measure_by_name(args.flag("measure").unwrap_or("l1"));
    let kind = index_by_name(args.flag("index").unwrap_or("antipole"));
    let threads: usize = args.flag_parse(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    let recall_target: f32 = args.flag_parse("recall-target", 1.0);

    let trace_every: u64 = args.flag_parse("trace-sample-n", 0);
    if trace_every > 0 {
        cbir::obs::set_trace_sample_n(trace_every);
    }

    let db = persist::load_file(db_path)?;
    let n = db.len();
    let engine = QueryEngine::build(db, kind, measure)?;
    let mut images = Vec::with_capacity(img_paths.len());
    for p in img_paths {
        images.push(decode(&std::fs::read(p)?)?.into_rgb());
    }
    let refs: Vec<&_> = images.iter().collect();
    let queries = engine.database().extract_batch(&refs, threads)?;
    let mut stats = BatchStats::new();
    let results = engine.knn_batch_approx(&queries, k, recall_target, threads, &mut stats)?;

    // Traces go to stderr so stdout stays byte-identical with and
    // without sampling (verified by scripts/verify.sh).
    if trace_every > 0 {
        for t in cbir::obs::traces() {
            eprint!("{}", cbir::obs::render_trace(&t));
        }
    }

    for (hits, img_path) in results.iter().zip(img_paths) {
        if img_paths.len() > 1 {
            println!("query: {img_path}");
        }
        println!("{:<28} {:>7} {:>9}", "name", "label", "distance");
        for h in hits {
            println!(
                "{:<28} {:>7} {:>9.4}",
                h.name,
                h.label.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
                h.distance
            );
        }
        println!();
    }
    println!(
        "{} distance computations over {n} images, {} quer{} ({} index)",
        stats.total().distance_computations,
        stats.queries(),
        if stats.queries() == 1 { "y" } else { "ies" },
        engine.index_kind().name(),
    );
    let totals = stats.total();
    if totals.coarse_candidates > 0 {
        println!(
            "approx search (recall target {recall_target}): {} coarse candidates, \
             {} rerank evaluations",
            totals.coarse_candidates, totals.rerank_evaluations,
        );
    }
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.positional.first().unwrap_or_else(|| usage());
    let db = persist::load_file(db_path)?;
    println!("database: {db_path}");
    println!("images:   {}", db.len());
    println!("dim:      {}", db.dim());
    println!("balanced: {}", db.is_balanced());
    println!("canonical: {}px", db.pipeline().canonical_size());
    println!("features:");
    for seg in db.layout() {
        println!(
            "  {:<14} [{:>4}..{:>4})  ({} components)",
            seg.kind.name(),
            seg.start,
            seg.end,
            seg.len()
        );
    }
    let labeled = db.metas().iter().filter(|m| m.label.is_some()).count();
    println!("labeled:  {labeled}/{}", db.len());
    Ok(())
}

fn print_fsck_sections(report: &persist::FsckReport, indent: &str) {
    for s in &report.sections {
        match &s.error {
            None => println!(
                "{indent}{:<12} offset {:>8} len {:>10}  ok",
                s.name, s.offset, s.len
            ),
            Some(e) => println!(
                "{indent}{:<12} offset {:>8} len {:>10}  CORRUPT: {e}",
                s.name, s.offset, s.len
            ),
        }
    }
    if let Some(e) = &report.error {
        println!("{indent}error: {e}");
    }
}

fn fsck_verdict(report: &persist::FsckReport) -> Result<(), Box<dyn std::error::Error>> {
    if report.is_ok() {
        println!("ok: all sections validate");
        Ok(())
    } else {
        match report.first_corrupt_offset {
            Some(off) => Err(format!("corrupt: first corrupt offset {off}").into()),
            None => Err("corrupt: file does not validate".into()),
        }
    }
}

/// Validate a segment directory: the manifest, then every referenced
/// segment file (full checksum pass, per-file per-section report).
fn fsck_dir(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let report = persist::fsck_dir(dir)?;
    println!("store:    {}", dir.display());
    println!("manifest: format {}", report.manifest.format);
    print_fsck_sections(&report.manifest, "  ");
    for (name, seg) in &report.segments {
        println!("{name}: format {}", seg.format);
        print_fsck_sections(seg, "  ");
    }
    for (name, err) in &report.missing {
        println!("{name}: MISSING: {err}");
    }
    for name in &report.orphans {
        println!("{name}: orphan (not referenced by the manifest; reclaimed at next compaction)");
    }
    if report.is_ok() {
        println!(
            "ok: manifest and {} segment file(s) validate",
            report.segments.len()
        );
        return Ok(());
    }
    let first_offset = std::iter::once(&report.manifest)
        .chain(report.segments.iter().map(|(_, r)| r))
        .filter_map(|r| r.first_corrupt_offset)
        .next();
    match first_offset {
        Some(off) => Err(format!("corrupt: first corrupt offset {off}").into()),
        None => Err("corrupt: store does not validate".into()),
    }
}

fn cmd_fsck(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.positional.first().unwrap_or_else(|| usage());
    if Path::new(db_path).is_dir() {
        return fsck_dir(Path::new(db_path));
    }
    let report = persist::fsck_file(db_path)?;
    println!("database: {db_path}");
    println!("format:   {}", report.format);
    print_fsck_sections(&report, "  ");
    fsck_verdict(&report)
}

fn cmd_evaluate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.positional.first().unwrap_or_else(|| usage());
    let k: usize = args.flag_parse("k", 10);
    let measure = measure_by_name(args.flag("measure").unwrap_or("l1"));
    let kind = index_by_name(args.flag("index").unwrap_or("linear"));
    let threads: usize = args.flag_parse(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let db = persist::load_file(db_path)?;
    let n = db.len();
    let engine = QueryEngine::build(db, kind, measure)?;
    let report = evaluate_engine(&engine, k, threads)?;

    println!(
        "leave-one-out evaluation over {} labeled queries (of {n} images, {threads} threads):",
        report.evaluated
    );
    println!("  P@{k}:        {:.3}", report.precision_at_k);
    println!("  mAP:         {:.3}", report.mean_average_precision);
    println!("  R-precision: {:.3}", report.r_precision);
    println!("  nDCG@{k}:     {:.3}", report.ndcg_at_k);
    println!(
        "  cost:        {:.0} distance computations/query mean, p50 {}, p95 {} ({} index, {} measure)",
        report.stats.mean_comps(),
        report.stats.p50_comps(),
        report.stats.p95_comps(),
        engine.index_kind().name(),
        engine.measure().name(),
    );
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.positional.first().unwrap_or_else(|| usage());
    let img_path = args.positional.get(1).unwrap_or_else(|| usage());
    let k: usize = args.flag_parse("k", 10);
    let measure = measure_by_name(args.flag("measure").unwrap_or("l1"));
    let kind = index_by_name(args.flag("index").unwrap_or("antipole"));
    let format = args.flag("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        eprintln!("error: unknown format {format:?} (text|json)");
        std::process::exit(2);
    }

    let db = persist::load_file(db_path)?;
    let engine = QueryEngine::build(db, kind, measure)?;
    let image = decode(&std::fs::read(img_path)?)?.into_rgb();
    cbir::obs::set_trace_sample_n(1);
    let mut stats = SearchStats::new();
    engine.query_by_example(&image, k, &mut stats)?;
    let trace = cbir::obs::latest_trace()
        .ok_or("no trace captured (observability disabled in this build?)")?;
    match format {
        "json" => println!("{}", cbir::obs::trace_to_json(&trace)),
        _ => print!("{}", cbir::obs::render_trace(&trace)),
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let addr = args.positional.first().unwrap_or_else(|| usage());
    let format = args.flag("format").unwrap_or("json");
    let prometheus = match format {
        "json" => false,
        "prometheus" => true,
        other => {
            eprintln!("error: unknown format {other:?} (json|prometheus)");
            std::process::exit(2);
        }
    };
    let mut client = Client::connect(addr)?;
    print!("{}", client.obs_stats(prometheus)?);
    Ok(())
}

fn print_server_stats(snap: &StatsSnapshot) {
    println!(
        "requests {} (admitted {}, shed {}, refused-shutdown {}), executed {} in {} batches, \
         expired {}, errors {}",
        snap.requests,
        snap.admitted,
        snap.shed,
        snap.rejected_shutdown,
        snap.executed,
        snap.batches,
        snap.expired,
        snap.errors,
    );
    println!(
        "latency p50 {}us p95 {}us, {} distance computations, queue depth {}",
        snap.latency_p50_us, snap.latency_p95_us, snap.distance_computations, snap.queue_depth,
    );
    println!(
        "io timeouts {}, panics isolated {}, epoll wakeups {}, max pipeline depth {}",
        snap.io_timeouts, snap.panics_isolated, snap.epoll_wakeups, snap.max_pipeline_depth,
    );
    let hist: Vec<String> = snap
        .batch_hist
        .iter()
        .filter(|(_, count)| *count > 0)
        .map(|(bound, count)| {
            if *bound == u64::MAX {
                format!("larger: {count}")
            } else {
                format!("<={bound}: {count}")
            }
        })
        .collect();
    if !hist.is_empty() {
        println!("batch sizes: {}", hist.join(", "));
    }
}

fn cmd_serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.positional.first().unwrap_or_else(|| usage());
    let port: u16 = args.flag_parse("port", 7878);
    let measure = measure_by_name(args.flag("measure").unwrap_or("l1"));
    let kind = index_by_name(args.flag("index").unwrap_or("vp"));
    let defaults = SchedulerConfig::default();
    // Timeout flags take milliseconds; 0 disables the timeout entirely.
    let timeout_flag = |name: &str, default: Option<Duration>| -> Option<Duration> {
        let default_ms = default.map_or(0, |d| d.as_millis() as u64);
        match args.flag_parse(name, default_ms) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    };
    let config = SchedulerConfig {
        max_batch: args.flag_parse("max-batch", defaults.max_batch),
        max_delay: Duration::from_micros(
            args.flag_parse("max-delay-us", defaults.max_delay.as_micros() as u64),
        ),
        queue_cap: args.flag_parse("queue-cap", defaults.queue_cap),
        exec_threads: args.flag_parse("threads", defaults.exec_threads),
        idle_timeout: timeout_flag("idle-timeout-ms", defaults.idle_timeout),
        write_timeout: timeout_flag("write-timeout-ms", defaults.write_timeout),
        recall_target_override: args.flag("recall-target").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value for --recall-target: {v}");
                std::process::exit(2);
            })
        }),
    };

    let trace_every: u64 = args.flag_parse("trace-sample-n", 0);
    if trace_every > 0 {
        cbir::obs::set_trace_sample_n(trace_every);
    }

    let open_start = std::time::Instant::now();
    let serve_live = Path::new(db_path).is_dir() || args.has("mmap");
    let (corpus, n, mode) = if serve_live {
        let store = open_serving_store(Path::new(db_path), StoreOptions::new(kind, measure))?;
        let snap = store.snapshot();
        let mode = format!(
            "live store: {} segment(s) + {} memtable row(s), epoch {}",
            snap.segments_len(),
            snap.memtable_rows(),
            snap.epoch()
        );
        (ServedCorpus::Live(store), snap.len(), mode)
    } else {
        let db = persist::load_file(db_path)?;
        let n = db.len();
        let mode = format!("{} index, static", kind.name());
        let engine = QueryEngine::build(db, kind, measure)?;
        (ServedCorpus::Static(Arc::new(engine)), n, mode)
    };
    let (handle, engine_name) = if args.has("event-loop") {
        let event_defaults = EventLoopConfig::default();
        let event_config = EventLoopConfig {
            max_conns: args.flag_parse("max-conns", event_defaults.max_conns),
            mutation_workers: args.flag_parse("mutation-workers", event_defaults.mutation_workers),
        };
        (
            Server::spawn_event_corpus(corpus, ("127.0.0.1", port), config, event_config)?,
            "event-loop engine",
        )
    } else {
        (
            Server::spawn_corpus(corpus, ("127.0.0.1", port), config)?,
            "blocking engine",
        )
    };
    let addr = handle.local_addr();
    println!(
        "listening on {addr} ({n} images, {mode}, {engine_name}, opened in {:.1}ms)",
        open_start.elapsed().as_secs_f64() * 1e3
    );
    if let Some(addr_file) = args.flag("addr-file") {
        std::fs::write(addr_file, addr.to_string())?;
    }
    // Blocks until a client sends the shutdown op.
    let snap = handle.join();
    println!("server stopped; final counters:");
    print_server_stats(&snap);
    Ok(())
}

fn cmd_shard_plan(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.positional.first().unwrap_or_else(|| usage());
    let shards: usize = args.flag_parse("shards", 2);
    let scheme = match args.flag("scheme").unwrap_or("mod") {
        "mod" => ShardScheme::Mod,
        "range" => ShardScheme::Range,
        other => {
            eprintln!("error: unknown scheme {other:?} (mod|range)");
            std::process::exit(2);
        }
    };
    let out_dir = args
        .flag("out-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{db_path}.shards")));

    let db = persist::load_file(db_path)?;
    let plan = ShardPlan::new(scheme, db.dim(), db.len() as u64, shards)?;
    let parts = split_database(&db, &plan)?;

    // A plan is only worth deploying if it reassembles the corpus
    // exactly — check before writing anything.
    let rebuilt = merge_shards(&parts, &plan)?;
    if rebuilt.len() != db.len() {
        return Err("shard round-trip changed the row count".into());
    }
    for g in 0..db.len() {
        let (a, b) = (rebuilt.descriptor(g)?, db.descriptor(g)?);
        if a.len() != b.len() || !a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()) {
            return Err(format!("shard round-trip diverged at row {g}").into());
        }
    }

    std::fs::create_dir_all(&out_dir)?;
    plan.save(out_dir.join("PLAN.txt"))?;
    println!(
        "plan: {} scheme, {} rows x {} dim -> {} shard(s), saved {}",
        match scheme {
            ShardScheme::Mod => "mod",
            ShardScheme::Range => "range",
        },
        plan.total_rows(),
        plan.dim(),
        plan.shards(),
        out_dir.join("PLAN.txt").display()
    );
    for (s, part) in parts.iter().enumerate() {
        let path = out_dir.join(format!("shard-{s}.db"));
        persist::save_file(part, &path)?;
        println!(
            "  shard {s}: {} row(s) -> {}",
            plan.rows_of(s),
            path.display()
        );
    }
    println!(
        "serve each shard with `cbir serve`, then `cbir route {}`",
        out_dir.join("PLAN.txt").display()
    );
    Ok(())
}

fn cmd_route(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if args.positional.len() < 2 {
        usage();
    }
    let plan = ShardPlan::load(&args.positional[0])?;
    let groups: Vec<Vec<String>> = args.positional[1..]
        .iter()
        .map(|g| g.split(',').map(|a| a.trim().to_string()).collect())
        .collect();
    if groups.len() != plan.shards() {
        return Err(format!(
            "plan has {} shard(s) but {} replica group(s) were given",
            plan.shards(),
            groups.len()
        )
        .into());
    }
    let port: u16 = args.flag_parse("port", 7979);
    let opt_ms = |name: &str| match args.flag_parse(name, 0u64) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let config = RouterConfig {
        cooldown: Duration::from_millis(args.flag_parse("cooldown-ms", 1000)),
        read_timeout: opt_ms("read-timeout-ms"),
        hedge: opt_ms("hedge-ms"),
        probe_interval: opt_ms("probe-ms"),
        allow_partial: args.has("allow-partial"),
        breaker_threshold: args.flag_parse("breaker-threshold", 5),
        retry_budget: args.flag_parse("retry-budget", 100),
        ..RouterConfig::default()
    };
    let degraded_knobs = [
        config.hedge.map(|d| format!("hedge {}ms", d.as_millis())),
        config
            .probe_interval
            .map(|d| format!("probe {}ms", d.as_millis())),
        config.allow_partial.then(|| "partial results".to_string()),
    ]
    .into_iter()
    .flatten()
    .collect::<Vec<_>>()
    .join(", ");
    let replicas: usize = groups.iter().map(Vec::len).sum();
    let handle = Router::spawn(plan.clone(), groups, ("127.0.0.1", port), config)?;
    let addr = handle.local_addr();
    println!(
        "routing on {addr} ({} rows, {} shard(s), {replicas} replica(s))",
        plan.total_rows(),
        plan.shards()
    );
    if !degraded_knobs.is_empty() {
        println!("degraded-mode serving on: {degraded_knobs}");
    }
    if let Some(addr_file) = args.flag("addr-file") {
        std::fs::write(addr_file, addr.to_string())?;
    }
    // Blocks until a client sends the shutdown op; backends keep running.
    handle.join();
    println!("router stopped (backends left running)");
    Ok(())
}

/// Parse a `--mode` string for `cbir chaos-proxy`.
fn parse_wire_mode(s: &str) -> Result<WireMode, Box<dyn std::error::Error>> {
    let bad =
        |what: &str| -> Box<dyn std::error::Error> { format!("invalid --mode {s}: {what}").into() };
    let mut parts = s.split(':');
    let head = parts.next().unwrap_or("");
    let mut num = |what: &'static str| -> Result<u64, Box<dyn std::error::Error>> {
        parts
            .next()
            .ok_or_else(|| bad(what))?
            .parse()
            .map_err(|_| bad(what))
    };
    let mode = match head {
        "pass" => WireMode::Pass,
        "drop" => WireMode::Drop,
        "blackhole" => WireMode::BlackHole,
        "delay-ms" => WireMode::Delay(Duration::from_millis(num("expected delay-ms:N")?)),
        "throttle" => WireMode::Throttle {
            bytes_per_sec: num("expected throttle:BYTES_PER_SEC")?.max(1),
        },
        "torn" => WireMode::TornReply {
            seed: num("expected torn:SEED:MAXPREFIX")?,
            max_prefix: num("expected torn:SEED:MAXPREFIX")?.max(1),
        },
        "flip" => WireMode::FlipBit {
            seed: num("expected flip:SEED:WINDOW")?,
            window: num("expected flip:SEED:WINDOW")?.max(1),
        },
        _ => return Err(bad("unknown mode")),
    };
    if parts.next().is_some() {
        return Err(bad("trailing fields"));
    }
    Ok(mode)
}

fn cmd_chaos_proxy(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let upstream = args.positional.first().unwrap_or_else(|| usage()).clone();
    let mode = parse_wire_mode(args.flag("mode").unwrap_or("pass"))?;
    let port: u16 = args.flag_parse("port", 0);
    let handle = ChaosProxy::spawn(upstream.clone(), mode.clone(), ("127.0.0.1", port))?;
    let addr = handle.local_addr();
    println!("chaos proxy on {addr} -> {upstream} (mode: {mode:?})");
    if let Some(addr_file) = args.flag("addr-file") {
        std::fs::write(addr_file, addr.to_string())?;
    }
    // The proxy has no in-band shutdown op (it is transparent by
    // design); it runs until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Open a live segment store for serving: a directory opens directly; a
/// database file is migrated (once) into a `<file>.seg/` sibling store,
/// which is opened on every subsequent serve.
fn open_serving_store(
    path: &Path,
    options: StoreOptions,
) -> Result<Arc<CorpusStore>, Box<dyn std::error::Error>> {
    if path.is_dir() {
        return Ok(CorpusStore::open(path, options)?);
    }
    let seg_dir = PathBuf::from(format!("{}.seg", path.display()));
    if seg_dir.join(persist::MANIFEST_FILE).is_file() {
        return Ok(CorpusStore::open(&seg_dir, options)?);
    }
    let db = persist::load_file(path)?;
    eprintln!(
        "migrating {} ({} images) into segment store {}",
        path.display(),
        db.len(),
        seg_dir.display()
    );
    Ok(CorpusStore::create_from_database(&seg_dir, &db, options)?)
}

/// Extract query descriptors with the pipeline stored in `db_ref` — a
/// database file or a segment store directory (whose manifest carries
/// the same pipeline config).
fn extract_descriptors(
    db_ref: &str,
    images: &[RgbImage],
) -> Result<Vec<Vec<f32>>, Box<dyn std::error::Error>> {
    let path = Path::new(db_ref);
    if path.is_dir() {
        let manifest = persist::parse_manifest(&persist::read_file_bytes(
            path.join(persist::MANIFEST_FILE),
        )?)?;
        let mut out = Vec::with_capacity(images.len());
        for img in images {
            out.push(if manifest.balanced {
                manifest.pipeline.extract_balanced(img)?
            } else {
                manifest.pipeline.extract(img)?
            });
        }
        Ok(out)
    } else {
        let db = persist::load_file(path)?;
        let refs: Vec<&_> = images.iter().collect();
        Ok(db.extract_batch(&refs, 1)?)
    }
}

fn cmd_ingest(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir = PathBuf::from(args.positional.first().unwrap_or_else(|| usage()));
    let store_dir = PathBuf::from(args.flag("store").unwrap_or_else(|| usage()));
    let threads: usize = args.flag_parse(
        "threads",
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    );
    let mut options = StoreOptions::new(IndexKind::VpTree, Measure::L1);
    options.memtable_limit = args.flag_parse("memtable-limit", options.memtable_limit);

    let store = if store_dir.join(persist::MANIFEST_FILE).is_file() {
        CorpusStore::open(&store_dir, options)?
    } else {
        let pipeline = pipeline_by_name(args.flag("pipeline").unwrap_or("full"));
        CorpusStore::create(&store_dir, pipeline, false, options)?
    };

    let paths = list_images(&dir)?;
    if paths.is_empty() {
        return Err(format!("no images (.ppm/.pgm/.pbm/.bmp) in {}", dir.display()).into());
    }
    let start = std::time::Instant::now();
    let mut decoded = Vec::with_capacity(paths.len());
    for p in &paths {
        let bytes = std::fs::read(p)?;
        let name = p
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        decoded.push((name, decode(&bytes)?.into_rgb()));
    }

    // Extract in parallel against the store's pipeline, then land the
    // whole batch on the memtable and compact it into segments.
    let snap = store.snapshot();
    let threads = threads.clamp(1, decoded.len());
    let chunk_len = decoded.len().div_ceil(threads);
    let mut descriptors: Vec<Vec<f32>> = Vec::with_capacity(decoded.len());
    let chunks: Vec<Result<Vec<Vec<f32>>, cbir::CoreError>> = std::thread::scope(|s| {
        let snap = &snap;
        let handles: Vec<_> = decoded
            .chunks(chunk_len)
            .map(|chunk| s.spawn(move || chunk.iter().map(|(_, img)| snap.extract(img)).collect()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("extract worker panicked"))
            .collect()
    });
    for chunk in chunks {
        descriptors.extend(chunk?);
    }

    let items: Vec<(ImageMeta, Vec<f32>)> = decoded
        .iter()
        .zip(descriptors)
        .map(|((name, _), desc)| {
            (
                ImageMeta {
                    name: name.clone(),
                    label: label_from_name(name),
                },
                desc,
            )
        })
        .collect();
    let n = items.len();
    store.insert_batch(items)?;
    let stats = store.compact()?;
    println!(
        "ingested {n} images into {} in {:.2}s using {threads} threads \
         ({} segment(s), {} rows, epoch {})",
        store_dir.display(),
        start.elapsed().as_secs_f64(),
        stats.segments,
        stats.rows,
        stats.epoch
    );
    Ok(())
}

fn cmd_compact(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let target = args.positional.first().unwrap_or_else(|| usage());
    if target.contains(':') {
        let mut client = Client::connect(target.as_str())?;
        let (epoch, segments, rows) = client.compact()?;
        println!("compacted over rpc: epoch {epoch}, {segments} segment(s), {rows} rows");
        return Ok(());
    }
    // Index/measure choice is irrelevant to compaction itself; open with
    // cheap defaults rather than requiring flags.
    let store = CorpusStore::open(target, StoreOptions::new(IndexKind::Linear, Measure::L1))?;
    let stats = store.compact()?;
    if stats.skipped {
        println!(
            "nothing to compact: epoch {}, {} segment(s), {} rows",
            stats.epoch, stats.segments, stats.rows
        );
    } else {
        println!(
            "compacted: epoch {}, {} segment(s), {} rows, {} bytes written",
            stats.epoch, stats.segments, stats.rows, stats.bytes_written
        );
    }
    Ok(())
}

fn cmd_rpc_insert(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let addr = args.positional.first().unwrap_or_else(|| usage());
    let img_paths = &args.positional[1..];
    if img_paths.is_empty() {
        usage();
    }
    let db_ref = args.flag("db").ok_or(
        "rpc-insert needs --db <file-or-segdir> (the corpus the server was started from) \
         to extract descriptors",
    )?;
    let mut names = Vec::with_capacity(img_paths.len());
    let mut images = Vec::with_capacity(img_paths.len());
    for p in img_paths {
        names.push(
            Path::new(p)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.clone()),
        );
        images.push(decode(&std::fs::read(p)?)?.into_rgb());
    }
    let descriptors = extract_descriptors(db_ref, &images)?;
    let mut client = Client::connect(addr.as_str())?;
    for (name, desc) in names.iter().zip(&descriptors) {
        let (id, epoch) = client.insert(name, label_from_name(name), desc)?;
        println!("inserted {name} as id {id} (epoch {epoch})");
    }
    Ok(())
}

fn print_hits(hits: &[Hit]) {
    println!("{:<28} {:>7} {:>9}", "name", "label", "distance");
    for h in hits {
        println!(
            "{:<28} {:>7} {:>9.4}",
            h.name,
            h.label.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
            h.distance
        );
    }
    println!();
}

/// Hits plus the optional `(coarse_candidates, rerank_evaluations)`
/// counts an approximate query reports (absent on the retrying client).
/// Hits plus optional approximate-search counts plus optional degraded
/// shard coverage (`Some((answered, total))` only on a partial reply).
type HitsWithCounts = (Vec<Hit>, Option<(u64, u64)>, Option<(u32, u32)>);

/// Plain or retrying RPC connection, so `rpc-query` shares one code path.
enum RpcClient {
    Plain(Client),
    Retrying(RetryingClient),
}

impl RpcClient {
    fn open(addr: &str, retries: u32) -> Result<RpcClient, Box<dyn std::error::Error>> {
        if retries == 0 {
            Ok(RpcClient::Plain(Client::connect(addr)?))
        } else {
            let policy = RetryPolicy {
                max_retries: retries,
                ..RetryPolicy::default()
            };
            Ok(RpcClient::Retrying(RetryingClient::connect(addr, policy)?))
        }
    }

    /// k-NN by id; the plain client also reports per-query approximate
    /// candidate counts (the retrying client's loop drops them).
    fn knn_by_id(
        &mut self,
        id: usize,
        k: usize,
        deadline_us: u64,
        recall_target: f32,
    ) -> Result<HitsWithCounts, Box<dyn std::error::Error>> {
        match self {
            RpcClient::Plain(c) => {
                let reply = c.knn_by_id_detailed(id, k, deadline_us, recall_target)?;
                let coverage = reply
                    .degraded
                    .then_some((reply.shards_answered, reply.shards_total));
                Ok((
                    reply.hits,
                    Some((reply.coarse_candidates, reply.rerank_evaluations)),
                    coverage,
                ))
            }
            RpcClient::Retrying(c) => {
                Ok((c.knn_by_id(id, k, deadline_us, recall_target)?, None, None))
            }
        }
    }

    /// k-NN over a raw descriptor (counts reported as for
    /// [`RpcClient::knn_by_id`]).
    fn knn(
        &mut self,
        descriptor: &[f32],
        k: usize,
        deadline_us: u64,
        recall_target: f32,
    ) -> Result<HitsWithCounts, Box<dyn std::error::Error>> {
        match self {
            RpcClient::Plain(c) => {
                let reply = c.knn_detailed(descriptor, k, deadline_us, recall_target)?;
                let coverage = reply
                    .degraded
                    .then_some((reply.shards_answered, reply.shards_total));
                Ok((
                    reply.hits,
                    Some((reply.coarse_candidates, reply.rerank_evaluations)),
                    coverage,
                ))
            }
            RpcClient::Retrying(c) => Ok((
                c.knn(descriptor, k, deadline_us, recall_target)?,
                None,
                None,
            )),
        }
    }

    fn range(
        &mut self,
        descriptor: &[f32],
        radius: f32,
        deadline_us: u64,
    ) -> Result<Vec<Hit>, Box<dyn std::error::Error>> {
        match self {
            RpcClient::Plain(c) => Ok(c.range(descriptor, radius, deadline_us)?),
            RpcClient::Retrying(c) => Ok(c.range(descriptor, radius, deadline_us)?),
        }
    }

    fn report_retries(&self) {
        if let RpcClient::Retrying(c) = self {
            let stats = c.retry_stats();
            if stats.retries > 0 || stats.reconnects > 0 {
                println!(
                    "(recovered from transient failures: {} retries, {} reconnects)",
                    stats.retries, stats.reconnects
                );
            }
        }
    }
}

fn print_approx_counts(counts: Option<(u64, u64)>) {
    if let Some((coarse, rerank)) = counts {
        if coarse > 0 || rerank > 0 {
            println!("(approx: {coarse} coarse candidates, {rerank} rerank evaluations)");
        }
    }
}

/// Printed only when a routed reply was degraded — exact (full-coverage)
/// replies stay byte-for-byte what a single node would print.
fn print_degraded(coverage: Option<(u32, u32)>) {
    if let Some((answered, total)) = coverage {
        println!("(degraded: answered by {answered}/{total} shards)");
    }
}

fn cmd_rpc_query(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let addr = args.positional.first().unwrap_or_else(|| usage());
    let k: usize = args.flag_parse("k", 10);
    let deadline_us: u64 = args.flag_parse("deadline-us", 0);
    let retries: u32 = args.flag_parse("retries", 0);
    let recall_target: f32 = args.flag_parse("recall-target", 1.0);
    let mut client = RpcClient::open(addr, retries)?;

    if let Some(id) = args.flag("id") {
        let id: usize = id.parse().map_err(|_| format!("invalid --id: {id}"))?;
        let (hits, counts, coverage) = client.knn_by_id(id, k, deadline_us, recall_target)?;
        print_hits(&hits);
        print_approx_counts(counts);
        print_degraded(coverage);
        client.report_retries();
        return Ok(());
    }

    let img_paths = &args.positional[1..];
    if img_paths.is_empty() {
        usage();
    }
    // The server speaks raw descriptors; the stored pipeline turns the
    // example images into descriptors of the dimension the server expects.
    let db_path = args.flag("db").ok_or(
        "rpc-query with images needs --db <file-or-segdir> (the corpus the server was \
         started from) to extract descriptors",
    )?;
    let mut images = Vec::with_capacity(img_paths.len());
    for p in img_paths {
        images.push(decode(&std::fs::read(p)?)?.into_rgb());
    }
    let queries = extract_descriptors(db_path, &images)?;

    let radius = args.flag("radius");
    for (query, img_path) in queries.iter().zip(img_paths) {
        if img_paths.len() > 1 {
            println!("query: {img_path}");
        }
        let (hits, counts, coverage) = match radius {
            Some(r) => {
                let r: f32 = r.parse().map_err(|_| format!("invalid --radius: {r}"))?;
                (client.range(query, r, deadline_us)?, None, None)
            }
            None => client.knn(query, k, deadline_us, recall_target)?,
        };
        print_hits(&hits);
        print_approx_counts(counts);
        print_degraded(coverage);
    }
    client.report_retries();
    Ok(())
}

/// Simulate a client dying mid-request: open a connection, send a frame
/// header that promises more payload than ever arrives, and vanish. A
/// hardened server must reap the torn connection without disturbing
/// other clients.
fn rpc_abort(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::Write as _;
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(b"CBIRRPC1")?;
    // Claim a 4096-byte payload, deliver 3 bytes, hang up.
    stream.write_all(&4096u32.to_le_bytes())?;
    stream.write_all(&[0xde, 0xad, 0x01])?;
    stream.flush()?;
    drop(stream);
    println!("sent truncated frame to {addr} and dropped the connection");
    Ok(())
}

/// Pipelined load storm: N connections each write a burst of knn-by-id
/// request frames, then read every reply back. The FNV-1a digest over
/// all reply frame bytes (folded in connection/request order) is
/// deterministic for a given corpus and storm shape, so the same storm
/// against the blocking and event-loop engines must print the same
/// digest — that equality is the wire-level bit-identity check
/// `verify.sh` runs.
fn cmd_rpc_storm(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let addr = args.positional.first().unwrap_or_else(|| usage()).clone();
    let conns: usize = args.flag_parse("conns", 64);
    let per_conn: usize = args.flag_parse("requests", 32);
    let k: u32 = args.flag_parse("k", 8);
    let seed: u64 = args.flag_parse("seed", 1);

    let mut probe = Client::connect(&addr)?;
    let (db_len, _dim) = probe.ping()?;
    drop(probe);
    if db_len == 0 {
        return Err("rpc-storm needs a non-empty corpus".into());
    }

    let start = std::time::Instant::now();
    let mut workers = Vec::new();
    for c in 0..conns {
        let addr = addr.clone();
        workers.push(std::thread::spawn(
            move || -> Result<(u64, usize), String> {
                let mut stream = std::net::TcpStream::connect(&addr).map_err(|e| e.to_string())?;
                let _ = stream.set_nodelay(true);
                for i in 0..per_conn {
                    let id = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(((c as u64) << 32) | i as u64)
                        % db_len;
                    let req = Request::KnnById {
                        k,
                        deadline_us: 0,
                        recall_target: 1.0,
                        id,
                    };
                    write_frame(&mut stream, &encode_request(&req)).map_err(|e| e.to_string())?;
                }
                let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
                let mut hits = 0usize;
                let mut reader = std::io::BufReader::new(stream);
                for i in 0..per_conn {
                    let payload = read_frame(&mut reader)
                        .map_err(|e| e.to_string())?
                        .ok_or_else(|| format!("server closed after {i} of {per_conn} replies"))?;
                    for &b in &payload {
                        digest ^= b as u64;
                        digest = digest.wrapping_mul(0x0100_0000_01b3);
                    }
                    match decode_response(&payload).map_err(|e| e.to_string())? {
                        Response::Hits { hits: h, .. } => hits += h.len(),
                        other => return Err(format!("unexpected reply: {other:?}")),
                    }
                }
                Ok((digest, hits))
            },
        ));
    }
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut hits = 0usize;
    for (c, w) in workers.into_iter().enumerate() {
        let (d, h) = w
            .join()
            .map_err(|_| format!("storm connection {c} panicked"))?
            .map_err(|e| format!("storm connection {c}: {e}"))?;
        for &b in &d.to_le_bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x0100_0000_01b3);
        }
        hits += h;
    }
    let elapsed = start.elapsed();
    let total = conns * per_conn;
    println!("digest {digest:016x}");
    println!(
        "{total} replies ({hits} hits) over {conns} connections in {:.1}ms ({:.0} req/s)",
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    Ok(())
}

fn cmd_rpc_ctl(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let addr = args.positional.first().unwrap_or_else(|| usage());
    let op = args
        .positional
        .get(1)
        .map(|s| s.as_str())
        .unwrap_or_else(|| usage());
    if op == "abort" {
        return rpc_abort(addr);
    }
    let mut client = Client::connect(addr)?;
    match op {
        "ping" => {
            let (db_len, dim) = client.ping()?;
            println!("server at {addr}: {db_len} images, dim {dim}");
        }
        "stats" => {
            let snap = client.stats()?;
            print_server_stats(&snap);
        }
        "explain" => {
            print!("{}", client.explain()?);
        }
        "shutdown" => {
            client.shutdown()?;
            println!("server at {addr} acknowledged shutdown");
        }
        "delete" => {
            let id: u64 = args
                .flag("id")
                .unwrap_or_else(|| usage())
                .parse()
                .map_err(|_| "invalid --id")?;
            let epoch = client.delete(id)?;
            println!("deleted id {id} (epoch {epoch})");
        }
        _ => usage(),
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        usage();
    }
    let cmd = raw[0].as_str();
    let args = Args::parse(&raw[1..]);
    let result = match cmd {
        "generate" => cmd_generate(&args),
        "index" => cmd_index(&args),
        "query" => cmd_query(&args),
        "info" => cmd_info(&args),
        "evaluate" => cmd_evaluate(&args),
        "trace" => cmd_trace(&args),
        "stats" => cmd_stats(&args),
        "fsck" => cmd_fsck(&args),
        "ingest" => cmd_ingest(&args),
        "compact" => cmd_compact(&args),
        "serve" => cmd_serve(&args),
        "shard-plan" => cmd_shard_plan(&args),
        "route" => cmd_route(&args),
        "chaos-proxy" => cmd_chaos_proxy(&args),
        "rpc-query" => cmd_rpc_query(&args),
        "rpc-storm" => cmd_rpc_storm(&args),
        "rpc-insert" => cmd_rpc_insert(&args),
        "rpc-ctl" => cmd_rpc_ctl(&args),
        _ => usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
