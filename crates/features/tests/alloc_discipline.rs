//! Allocation discipline of the extraction planner: after one warm-up pass
//! has sized an [`ExtractScratch`]'s buffers, steady-state extraction
//! through `extract_into` / `extract_balanced_into` over the same images
//! performs **zero** heap allocations. Verified with a counting global
//! allocator.
//!
//! This file holds exactly one `#[test]` so no sibling test thread can
//! allocate inside the measured window.

use cbir_features::{ExtractScratch, FeatureSpec, Pipeline, Quantizer};
use cbir_image::RgbImage;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn run_pass(
    pipelines: &[Pipeline],
    images: &[RgbImage],
    scratch: &mut ExtractScratch,
    buf: &mut Vec<f32>,
) {
    for p in pipelines {
        for img in images {
            p.extract_into(img, scratch, buf).unwrap();
            std::hint::black_box(&buf);
            p.extract_balanced_into(img, scratch, buf).unwrap();
            std::hint::black_box(&buf);
        }
    }
}

#[test]
fn steady_state_extraction_does_not_allocate() {
    // Every feature family is exercised, including both branches of the
    // mask fallback and the gradient-free DT fallback (flat image).
    let all_families = Pipeline::new(
        64,
        vec![
            FeatureSpec::ColorHistogram(Quantizer::hsv_default()),
            FeatureSpec::ColorMoments,
            FeatureSpec::Correlogram {
                quantizer: Quantizer::rgb_compact(),
                distances: vec![1, 3],
            },
            FeatureSpec::Glcm { levels: 8 },
            FeatureSpec::Tamura,
            FeatureSpec::Wavelet { levels: 2 },
            FeatureSpec::EdgeOrientation { bins: 8 },
            FeatureSpec::EdgeDensityGrid {
                grid: 4,
                threshold: 10.0,
            },
            FeatureSpec::HuMoments,
            FeatureSpec::ShapeSummary,
            FeatureSpec::DtHistogram { bins: 16 },
            FeatureSpec::RegionShape,
        ],
    )
    .unwrap();
    let pipelines = vec![Pipeline::full_default(), all_families];

    let corpus = cbir_workload::Corpus::generate(cbir_workload::CorpusSpec {
        classes: 3,
        images_per_class: 2,
        image_size: 80,
        ..Default::default()
    });
    let mut images = corpus.images;
    // A flat image drives the degenerate branches (Otsu fallback mask, DT
    // last-bin spike); a canonical-size image drives the resize-skip path.
    images.push(RgbImage::filled(
        32,
        32,
        cbir_image::Rgb::new(128, 128, 128),
    ));
    images.push(RgbImage::from_fn(64, 64, |x, y| {
        cbir_image::Rgb::new((x * 4) as u8, (y * 4) as u8, ((x + y) * 2) as u8)
    }));

    let mut scratch = ExtractScratch::new();
    let mut buf = Vec::new();
    // Warm-up: one pass sizes every buffer to its high-water mark.
    run_pass(&pipelines, &images, &mut scratch, &mut buf);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    run_pass(&pipelines, &images, &mut scratch, &mut buf);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "{} heap allocations in steady-state extraction",
        after - before
    );
}
