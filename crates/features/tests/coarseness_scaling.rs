//! Cross-scale sanity test: Tamura coarseness must grow monotonically with
//! the grain size of a periodic texture.

use cbir_features::coarseness;
use cbir_image::GrayImage;

#[test]
fn coarseness_monotone_in_stripe_period() {
    let values: Vec<f64> = [2u32, 4, 8, 16]
        .iter()
        .map(|&period| {
            let img =
                GrayImage::from_fn(64, 64, |x, _| if (x / period) % 2 == 0 { 30 } else { 220 });
            coarseness(&img, 5).unwrap()
        })
        .collect();
    for w in values.windows(2) {
        assert!(w[1] > w[0], "not monotone: {values:?}");
    }
}
