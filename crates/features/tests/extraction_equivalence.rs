//! Bit-identity contract of the extraction planner: the shared-intermediate
//! path ([`Pipeline::extract_into`]), the allocating wrappers, and the
//! parallel batch path must all reproduce the naive per-family reference
//! ([`Pipeline::extract_naive`]) to the exact `f32` bit pattern, for every
//! pipeline and every image shape — including degenerate ones — and at
//! every thread count.

use cbir_features::{ExtractScratch, FeatureSpec, Pipeline, Quantizer};
use cbir_image::{Rgb, RgbImage};

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A pipeline exercising every one of the twelve feature families.
fn all_families_pipeline() -> Pipeline {
    Pipeline::new(
        64,
        vec![
            FeatureSpec::ColorHistogram(Quantizer::hsv_default()),
            FeatureSpec::ColorMoments,
            FeatureSpec::Correlogram {
                quantizer: Quantizer::rgb_compact(),
                distances: vec![1, 3],
            },
            FeatureSpec::Glcm { levels: 8 },
            FeatureSpec::Tamura,
            FeatureSpec::Wavelet { levels: 2 },
            FeatureSpec::EdgeOrientation { bins: 8 },
            FeatureSpec::EdgeDensityGrid {
                grid: 4,
                threshold: 10.0,
            },
            FeatureSpec::HuMoments,
            FeatureSpec::ShapeSummary,
            FeatureSpec::DtHistogram { bins: 16 },
            FeatureSpec::RegionShape,
        ],
    )
    .unwrap()
}

fn pipelines() -> Vec<(&'static str, Pipeline)> {
    vec![
        ("full_default", Pipeline::full_default()),
        (
            "color_histogram_default",
            Pipeline::color_histogram_default(),
        ),
        ("all_families", all_families_pipeline()),
    ]
}

/// Shapes chosen to hit the resize path, the resize-skip path (64×64 is
/// canonical for every pipeline above), non-square inputs, and degenerate
/// content (flat color → no gradients, Otsu fallback; 1×1 → minimal frame).
fn test_images() -> Vec<(&'static str, RgbImage)> {
    let checker = RgbImage::from_fn(48, 48, |x, y| {
        if (x / 8 + y / 8) % 2 == 0 {
            Rgb::new(200, 40, 40)
        } else {
            Rgb::new(40, 40, 200)
        }
    });
    let gradient = RgbImage::from_fn(100, 60, |x, y| {
        Rgb::new((x * 255 / 100) as u8, (y * 255 / 60) as u8, 128)
    });
    let canonical = RgbImage::from_fn(64, 64, |x, y| {
        Rgb::new(
            ((x * 37 + y * 11) % 256) as u8,
            ((x * 5 + y * 53) % 256) as u8,
            ((x + y * 7) % 256) as u8,
        )
    });
    let flat = RgbImage::filled(32, 32, Rgb::new(128, 128, 128));
    let tiny = RgbImage::filled(1, 1, Rgb::new(255, 0, 0));
    let edgy = RgbImage::from_fn(33, 47, |x, y| {
        if (x + y) % 2 == 0 {
            Rgb::new(255, 255, 255)
        } else {
            Rgb::new(0, 0, 0)
        }
    });
    vec![
        ("checker", checker),
        ("gradient", gradient),
        ("canonical64", canonical),
        ("flat", flat),
        ("tiny1x1", tiny),
        ("edgy", edgy),
    ]
}

#[test]
fn planner_matches_naive_reference_bitwise() {
    for (pname, p) in pipelines() {
        for (iname, img) in test_images() {
            let naive = p.extract_naive(&img).unwrap();
            let planned = p.extract(&img).unwrap();
            assert_eq!(
                bits(&naive),
                bits(&planned),
                "{pname} on {iname}: extract != extract_naive"
            );
        }
    }
}

#[test]
fn reused_scratch_matches_fresh_extraction_bitwise() {
    // One scratch across all pipelines and images, in sequence; every
    // result must match a fresh-scratch extraction of the same image.
    let mut scratch = ExtractScratch::new();
    let mut buf = Vec::new();
    for _round in 0..2 {
        for (pname, p) in pipelines() {
            for (iname, img) in test_images() {
                p.extract_into(&img, &mut scratch, &mut buf).unwrap();
                let fresh = p.extract(&img).unwrap();
                assert_eq!(
                    bits(&buf),
                    bits(&fresh),
                    "{pname} on {iname}: reused scratch diverged"
                );
            }
        }
    }
}

#[test]
fn batch_extraction_is_thread_count_invariant() {
    for (pname, p) in pipelines() {
        let images = test_images();
        let refs: Vec<&RgbImage> = images.iter().map(|(_, img)| img).collect();
        let sequential: Vec<Vec<f32>> = refs.iter().map(|img| p.extract(img).unwrap()).collect();
        for threads in [1usize, 3, 8] {
            let batched = p.extract_batch(&refs, threads).unwrap();
            assert_eq!(batched.len(), sequential.len());
            for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
                assert_eq!(
                    bits(b),
                    bits(s),
                    "{pname}, {threads} threads, image {} ({})",
                    i,
                    images[i].0
                );
            }
        }
    }
}

#[test]
fn balanced_paths_agree_bitwise() {
    let p = Pipeline::full_default();
    let images = test_images();
    let refs: Vec<&RgbImage> = images.iter().map(|(_, img)| img).collect();
    let mut scratch = ExtractScratch::new();
    let mut buf = Vec::new();
    let sequential: Vec<Vec<f32>> = refs
        .iter()
        .map(|img| p.extract_balanced(img).unwrap())
        .collect();
    for (img, want) in refs.iter().zip(&sequential) {
        p.extract_balanced_into(img, &mut scratch, &mut buf)
            .unwrap();
        assert_eq!(bits(&buf), bits(want));
    }
    for threads in [1usize, 3, 8] {
        let batched = p.extract_balanced_batch(&refs, threads).unwrap();
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(bits(b), bits(s), "{threads} threads");
        }
    }
}

#[test]
fn batch_error_handling() {
    let p = Pipeline::full_default();
    let good = RgbImage::filled(16, 16, Rgb::new(1, 2, 3));
    let empty = RgbImage::filled(0, 0, Rgb::default());
    assert!(p.extract_batch(&[&good, &empty], 2).is_err());
    assert!(p.extract_batch(&[], 4).unwrap().is_empty());
    assert!(p.extract_batch(&[&good], 0).is_err());
    // More threads than images is fine.
    let out = p.extract_batch(&[&good], 16).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(bits(&out[0]), bits(&p.extract(&good).unwrap()));
}
