//! Golden-signature regression tests.
//!
//! Every feature family is extracted over a small seeded [`Corpus`] and
//! the resulting vectors are hashed (FNV-1a over the exact `f32` bit
//! patterns, dimensions included). The hashes below are committed; any
//! change to extraction arithmetic — intended or not — flips a hash and
//! fails the matching family by name. On an intended change, rerun with
//! `--nocapture`: the test prints the replacement table ready to paste.

use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_workload::{Corpus, CorpusSpec};

/// FNV-1a, 64-bit. Stable, dependency-free, and sensitive to every bit
/// of every component — exactly what a golden signature needs.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
}

/// The corpus every family is hashed against. Small enough to extract
/// twelve families in well under a second, varied enough (two classes,
/// jitter, noise) that a regression anywhere in the pipeline shows up.
fn corpus() -> Corpus {
    Corpus::generate(CorpusSpec {
        classes: 2,
        images_per_class: 3,
        image_size: 48,
        jitter: 0.5,
        noise: 0.05,
        seed: 0x5eed,
    })
}

/// One single-family pipeline per feature family, named for the failure
/// message.
fn families() -> Vec<(&'static str, FeatureSpec)> {
    vec![
        (
            "color_histogram",
            FeatureSpec::ColorHistogram(Quantizer::hsv_default()),
        ),
        ("color_moments", FeatureSpec::ColorMoments),
        (
            "correlogram",
            FeatureSpec::Correlogram {
                quantizer: Quantizer::rgb_compact(),
                distances: vec![1, 3],
            },
        ),
        ("glcm", FeatureSpec::Glcm { levels: 8 }),
        ("tamura", FeatureSpec::Tamura),
        ("wavelet", FeatureSpec::Wavelet { levels: 2 }),
        ("edge_orientation", FeatureSpec::EdgeOrientation { bins: 8 }),
        (
            "edge_density_grid",
            FeatureSpec::EdgeDensityGrid {
                grid: 4,
                threshold: 10.0,
            },
        ),
        ("hu_moments", FeatureSpec::HuMoments),
        ("shape_summary", FeatureSpec::ShapeSummary),
        ("dt_histogram", FeatureSpec::DtHistogram { bins: 16 }),
        ("region_shape", FeatureSpec::RegionShape),
    ]
}

/// Committed golden hashes, one per family, over the corpus above.
const GOLDEN: &[(&str, u64)] = &[
    ("color_histogram", 0x360abf02dbb3bebe),
    ("color_moments", 0x2996d5a57ebab391),
    ("correlogram", 0x1cd3cb7737488bb4),
    ("glcm", 0xa589f5153d5aa566),
    ("tamura", 0x8ee6d6220c5b6263),
    ("wavelet", 0x112929553a6789c5),
    ("edge_orientation", 0xd09373c22822aaf3),
    ("edge_density_grid", 0x554df0cb0616fa7c),
    ("hu_moments", 0x9bba6c7ed203a4d8),
    ("shape_summary", 0x0d4bfee7b29363f7),
    ("dt_histogram", 0xec58a44e184cec60),
    ("region_shape", 0xced2af48b5656772),
];

fn family_hash(spec: FeatureSpec, corpus: &Corpus) -> u64 {
    let pipeline = Pipeline::new(64, vec![spec]).expect("single-family pipeline");
    let mut h = Fnv1a::new();
    for img in &corpus.images {
        let v = pipeline.extract(img).expect("extraction");
        h.write_u32(v.len() as u32);
        for x in &v {
            h.write_u32(x.to_bits());
        }
    }
    h.0
}

#[test]
fn per_family_signatures_match_committed_hashes() {
    let corpus = corpus();
    let mut mismatches = Vec::new();
    for (name, spec) in families() {
        let got = family_hash(spec, &corpus);
        let want = GOLDEN
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no golden hash committed for {name}"))
            .1;
        if got != want {
            mismatches.push((name, got, want));
        }
    }
    if !mismatches.is_empty() {
        eprintln!("golden signature mismatches — replacement table:");
        for (name, got, _) in &mismatches {
            eprintln!("    ({name:?}, {got:#018x}),");
        }
        let list: Vec<String> = mismatches
            .iter()
            .map(|(n, got, want)| format!("{n}: got {got:#018x}, committed {want:#018x}"))
            .collect();
        panic!("feature extraction changed for: {}", list.join("; "));
    }
}

#[test]
fn golden_table_covers_every_family() {
    let names: Vec<&str> = families().iter().map(|(n, _)| *n).collect();
    for (n, _) in GOLDEN {
        assert!(names.contains(n), "golden table has unknown family {n}");
    }
    for n in &names {
        assert!(
            GOLDEN.iter().any(|(g, _)| g == n),
            "family {n} missing from golden table"
        );
    }
    assert_eq!(names.len(), GOLDEN.len());
}

#[test]
fn corpus_generation_is_deterministic() {
    // The golden hashes are only meaningful if the corpus itself is
    // reproducible: same spec, same pixels.
    let a = corpus();
    let b = corpus();
    assert_eq!(a.labels, b.labels);
    for (x, y) in a.images.iter().zip(&b.images) {
        assert_eq!(x.width(), y.width());
        assert_eq!(x.height(), y.height());
        assert!(x.pixels().eq(y.pixels()));
    }
}
