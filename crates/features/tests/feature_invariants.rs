//! Property-style tests over feature extraction on deterministic
//! generated images (no external property-testing dependency, so the
//! suite builds offline and every run checks the same cases): invariants
//! that must hold for arbitrary images and pipeline configurations.

use cbir_features::{
    wavelet_signature, ColorHistogram, FeatureSpec, HaarDecomposition, Pipeline, Quantizer,
};
use cbir_image::{FloatImage, GrayImage, Rgb, RgbImage};
use cbir_workload::Pcg32;

const CASES: usize = 48;

fn rgb_image(rng: &mut Pcg32, max: u32) -> RgbImage {
    let w = 8 + rng.below((max - 8) as usize) as u32;
    let h = 8 + rng.below((max - 8) as usize) as u32;
    let px: Vec<Rgb> = (0..(w * h) as usize)
        .map(|_| {
            Rgb::new(
                rng.below(256) as u8,
                rng.below(256) as u8,
                rng.below(256) as u8,
            )
        })
        .collect();
    RgbImage::from_vec(w, h, px).unwrap()
}

fn quantizer(rng: &mut Pcg32) -> Quantizer {
    match rng.below(4) {
        0 => Quantizer::Gray {
            bins: 2 + rng.below(14) as u32,
        },
        1 => Quantizer::UniformRgb {
            per_channel: 2 + rng.below(3) as u32,
        },
        2 => Quantizer::Hsv {
            hue: 2 + rng.below(6) as u32,
            sat: 1 + rng.below(3) as u32,
            val: 1 + rng.below(3) as u32,
        },
        _ => Quantizer::Lab {
            l: 2 + rng.below(3) as u32,
            a: 2 + rng.below(3) as u32,
            b: 2 + rng.below(3) as u32,
        },
    }
}

#[test]
fn histogram_counts_sum_to_pixels() {
    let mut rng = Pcg32::new(0xC1);
    for _ in 0..CASES {
        let img = rgb_image(&mut rng, 24);
        let q = quantizer(&mut rng);
        let h = ColorHistogram::compute(&img, &q).unwrap();
        assert_eq!(h.counts().iter().sum::<u64>(), img.len() as u64);
        let normalized = h.normalized();
        let s: f32 = normalized.iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
        assert!(normalized.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let c = h.cumulative();
        assert!((c.last().unwrap() - 1.0).abs() < 1e-4);
    }
}

#[test]
fn quantizer_bins_always_in_range() {
    let mut rng = Pcg32::new(0xC2);
    for _ in 0..CASES {
        let q = quantizer(&mut rng);
        let n = q.n_bins();
        for _ in 0..(1 + rng.below(63)) {
            let bin = q.bin_of(Rgb::new(
                rng.below(256) as u8,
                rng.below(256) as u8,
                rng.below(256) as u8,
            ));
            assert!(bin < n);
            // Position and color lookups never panic for valid bins.
            let _ = q.bin_position(bin);
            let _ = q.bin_color(bin);
        }
    }
}

#[test]
fn haar_reconstruction_and_energy() {
    let mut rng = Pcg32::new(0xC3);
    for _ in 0..CASES {
        let seed = u64::from(rng.next_u32()) << 32 | u64::from(rng.next_u32());
        let levels = 1 + rng.below(3) as u32;
        // Deterministic pseudo-random 16x16 image from the seed.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 40) & 0xFF) as f32 / 255.0
        };
        let img = FloatImage::from_fn(16, 16, |_, _| next());
        let dec = HaarDecomposition::forward(&img, levels).unwrap();
        let rec = dec.inverse();
        for (a, b) in img.pixels().zip(rec.pixels()) {
            assert!((a - b).abs() < 1e-4);
        }
        let e_in: f32 = img.pixels().map(|p| p * p).sum();
        let e_out: f32 = dec.coefficients().pixels().map(|p| p * p).sum();
        assert!((e_in - e_out).abs() <= 1e-3 * e_in.max(1.0));
    }
}

#[test]
fn wavelet_signature_is_finite_nonnegative() {
    let mut rng = Pcg32::new(0xC4);
    for _ in 0..CASES {
        let img = rgb_image(&mut rng, 24);
        // Resize to a power-of-two-friendly frame via the pipeline.
        let p = Pipeline::new(16, vec![FeatureSpec::Wavelet { levels: 2 }]).unwrap();
        let v = p.extract(&img).unwrap();
        assert_eq!(v.len(), 7);
        assert!(v.iter().all(|x| x.is_finite() && *x >= 0.0));
        let gray = img.to_gray();
        if gray.width().is_multiple_of(4) && gray.height().is_multiple_of(4) {
            let direct = wavelet_signature(&gray, 2).unwrap();
            assert!(direct.iter().all(|x| x.is_finite() && *x >= 0.0));
        }
    }
}

#[test]
fn pipeline_extraction_never_fails_on_valid_images() {
    let mut rng = Pcg32::new(0xC5);
    // Small multi-family pipeline over arbitrary content, including
    // pathological noise: extraction must always produce a finite
    // vector of the declared dimensionality.
    let p = Pipeline::new(
        16,
        vec![
            FeatureSpec::ColorHistogram(Quantizer::UniformRgb { per_channel: 2 }),
            FeatureSpec::ColorMoments,
            FeatureSpec::Glcm { levels: 8 },
            FeatureSpec::EdgeOrientation { bins: 4 },
            FeatureSpec::HuMoments,
            FeatureSpec::RegionShape,
            FeatureSpec::DtHistogram { bins: 4 },
        ],
    )
    .unwrap();
    for _ in 0..CASES {
        let img = rgb_image(&mut rng, 20);
        let v = p.extract(&img).unwrap();
        assert_eq!(v.len(), p.dim());
        assert!(v.iter().all(|x| x.is_finite()), "non-finite output");
        // Balanced variant normalizes each family.
        let b = p.extract_balanced(&img).unwrap();
        for seg in p.layout() {
            let s: f32 = b[seg.start..seg.end].iter().map(|x| x.abs()).sum();
            assert!((s - 1.0).abs() < 1e-3 || s == 0.0);
        }
    }
}

#[test]
fn extraction_is_pure() {
    let mut rng = Pcg32::new(0xC6);
    let p = Pipeline::new(
        16,
        vec![
            FeatureSpec::ColorHistogram(Quantizer::UniformRgb { per_channel: 2 }),
            FeatureSpec::Tamura,
        ],
    )
    .unwrap();
    for _ in 0..CASES {
        let img = rgb_image(&mut rng, 16);
        assert_eq!(p.extract(&img).unwrap(), p.extract(&img).unwrap());
    }
}

#[test]
fn gray_quantizer_is_monotone_in_intensity() {
    for bins in 2u32..32 {
        let q = Quantizer::Gray { bins };
        let mut prev = 0usize;
        for v in 0u16..=255 {
            let bin = q.bin_of(Rgb::new(v as u8, v as u8, v as u8));
            assert!(bin >= prev, "bin decreased at {v}");
            prev = bin;
        }
        assert_eq!(prev, bins as usize - 1);
    }
}

#[test]
fn constant_images_extract_cleanly_at_every_intensity() {
    // Regression net for degenerate-input handling across all features.
    let p = Pipeline::full_default();
    for v in [0u8, 1, 127, 254, 255] {
        let img = RgbImage::filled(24, 24, Rgb::new(v, v, v));
        let out = p.extract(&img).unwrap();
        assert_eq!(out.len(), p.dim());
        assert!(out.iter().all(|x| x.is_finite()), "intensity {v}");
    }
    let _ = GrayImage::filled(1, 1, 0);
}
