//! Property tests over feature extraction: invariants that must hold for
//! arbitrary images and pipeline configurations.

use cbir_features::{
    wavelet_signature, ColorHistogram, FeatureSpec, HaarDecomposition, Pipeline, Quantizer,
};
use cbir_image::{FloatImage, GrayImage, Rgb, RgbImage};
use proptest::prelude::*;

fn rgb_image(max: u32) -> impl Strategy<Value = RgbImage> {
    (8u32..max, 8u32..max).prop_flat_map(|(w, h)| {
        prop::collection::vec(any::<(u8, u8, u8)>(), (w * h) as usize).prop_map(move |data| {
            let px: Vec<Rgb> = data.into_iter().map(|(r, g, b)| Rgb::new(r, g, b)).collect();
            RgbImage::from_vec(w, h, px).unwrap()
        })
    })
}

fn quantizer() -> impl Strategy<Value = Quantizer> {
    prop_oneof![
        (2u32..16).prop_map(|bins| Quantizer::Gray { bins }),
        (2u32..5).prop_map(|per_channel| Quantizer::UniformRgb { per_channel }),
        (2u32..8, 1u32..4, 1u32..4).prop_map(|(hue, sat, val)| Quantizer::Hsv { hue, sat, val }),
        (2u32..5, 2u32..5, 2u32..5).prop_map(|(l, a, b)| Quantizer::Lab { l, a, b }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn histogram_counts_sum_to_pixels(img in rgb_image(24), q in quantizer()) {
        let h = ColorHistogram::compute(&img, &q).unwrap();
        prop_assert_eq!(h.counts().iter().sum::<u64>(), img.len() as u64);
        let normalized = h.normalized();
        let s: f32 = normalized.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-4);
        prop_assert!(normalized.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let c = h.cumulative();
        prop_assert!((c.last().unwrap() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn quantizer_bins_always_in_range(q in quantizer(), colors in prop::collection::vec(any::<(u8, u8, u8)>(), 1..64)) {
        let n = q.n_bins();
        for (r, g, b) in colors {
            let bin = q.bin_of(Rgb::new(r, g, b));
            prop_assert!(bin < n);
            // Position and color lookups never panic for valid bins.
            let _ = q.bin_position(bin);
            let _ = q.bin_color(bin);
        }
    }

    #[test]
    fn haar_reconstruction_and_energy(seed in any::<u64>(), levels in 1u32..4) {
        // Deterministic pseudo-random 16x16 image from the seed.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 40) & 0xFF) as f32 / 255.0
        };
        let img = FloatImage::from_fn(16, 16, |_, _| next());
        let dec = HaarDecomposition::forward(&img, levels).unwrap();
        let rec = dec.inverse();
        for (a, b) in img.pixels().zip(rec.pixels()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        let e_in: f32 = img.pixels().map(|p| p * p).sum();
        let e_out: f32 = dec.coefficients().pixels().map(|p| p * p).sum();
        prop_assert!((e_in - e_out).abs() <= 1e-3 * e_in.max(1.0));
    }

    #[test]
    fn wavelet_signature_is_finite_nonnegative(img in rgb_image(24)) {
        // Resize to a power-of-two-friendly frame via the pipeline.
        let p = Pipeline::new(16, vec![FeatureSpec::Wavelet { levels: 2 }]).unwrap();
        let v = p.extract(&img).unwrap();
        prop_assert_eq!(v.len(), 7);
        prop_assert!(v.iter().all(|x| x.is_finite() && *x >= 0.0));
        let gray = img.to_gray();
        if gray.width() % 4 == 0 && gray.height() % 4 == 0 {
            let direct = wavelet_signature(&gray, 2).unwrap();
            prop_assert!(direct.iter().all(|x| x.is_finite() && *x >= 0.0));
        }
    }

    #[test]
    fn pipeline_extraction_never_fails_on_valid_images(img in rgb_image(20)) {
        // Small multi-family pipeline over arbitrary content, including
        // pathological noise: extraction must always produce a finite
        // vector of the declared dimensionality.
        let p = Pipeline::new(
            16,
            vec![
                FeatureSpec::ColorHistogram(Quantizer::UniformRgb { per_channel: 2 }),
                FeatureSpec::ColorMoments,
                FeatureSpec::Glcm { levels: 8 },
                FeatureSpec::EdgeOrientation { bins: 4 },
                FeatureSpec::HuMoments,
                FeatureSpec::RegionShape,
                FeatureSpec::DtHistogram { bins: 4 },
            ],
        )
        .unwrap();
        let v = p.extract(&img).unwrap();
        prop_assert_eq!(v.len(), p.dim());
        prop_assert!(v.iter().all(|x| x.is_finite()), "non-finite output");
        // Balanced variant normalizes each family.
        let b = p.extract_balanced(&img).unwrap();
        for seg in p.layout() {
            let s: f32 = b[seg.start..seg.end].iter().map(|x| x.abs()).sum();
            prop_assert!((s - 1.0).abs() < 1e-3 || s == 0.0);
        }
    }

    #[test]
    fn extraction_is_pure(img in rgb_image(16)) {
        let p = Pipeline::new(
            16,
            vec![
                FeatureSpec::ColorHistogram(Quantizer::UniformRgb { per_channel: 2 }),
                FeatureSpec::Tamura,
            ],
        )
        .unwrap();
        prop_assert_eq!(p.extract(&img).unwrap(), p.extract(&img).unwrap());
    }

    #[test]
    fn gray_quantizer_is_monotone_in_intensity(bins in 2u32..32) {
        let q = Quantizer::Gray { bins };
        let mut prev = 0usize;
        for v in 0u16..=255 {
            let bin = q.bin_of(Rgb::new(v as u8, v as u8, v as u8));
            prop_assert!(bin >= prev, "bin decreased at {v}");
            prev = bin;
        }
        prop_assert_eq!(prev, bins as usize - 1);
    }
}

#[test]
fn constant_images_extract_cleanly_at_every_intensity() {
    // Regression net for degenerate-input handling across all features.
    let p = Pipeline::full_default();
    for v in [0u8, 1, 127, 254, 255] {
        let img = RgbImage::filled(24, 24, Rgb::new(v, v, v));
        let out = p.extract(&img).unwrap();
        assert_eq!(out.len(), p.dim());
        assert!(out.iter().all(|x| x.is_finite()), "intensity {v}");
    }
    let _ = GrayImage::filled(1, 1, 0);
}
