//! Region shape descriptors from image moments: centroid, orientation,
//! eccentricity, Hu's seven invariants, and simple region statistics.
//!
//! All functions operate on a binary mask (nonzero = object) so they compose
//! with the thresholding and morphology operators.

use crate::error::{FeatureError, Result};
use cbir_image::ops::{Connectivity, Labeling};
use cbir_image::GrayImage;

/// Raw, central, and normalized moments of a binary region.
#[derive(Clone, Debug)]
pub struct Moments {
    /// Raw moments `m[p][q] = Σ xᵖ yᑫ` over object pixels, for p,q ≤ 3.
    pub m: [[f64; 4]; 4],
    /// Central moments `mu[p][q]` about the centroid.
    pub mu: [[f64; 4]; 4],
    /// Scale-normalized central moments `eta[p][q]`.
    pub eta: [[f64; 4]; 4],
}

impl Moments {
    /// Compute all moments up to order 3.
    ///
    /// Returns an error for an empty image or an empty region.
    pub fn compute(mask: &GrayImage) -> Result<Self> {
        if mask.is_empty() {
            return Err(FeatureError::EmptyImage("moments"));
        }
        let mut m = [[0.0f64; 4]; 4];
        for (x, y, v) in mask.enumerate_pixels() {
            if v == 0 {
                continue;
            }
            let xf = x as f64;
            let yf = y as f64;
            let xp = [1.0, xf, xf * xf, xf * xf * xf];
            let yp = [1.0, yf, yf * yf, yf * yf * yf];
            for (p, &xv) in xp.iter().enumerate() {
                for (q, &yv) in yp.iter().enumerate() {
                    m[p][q] += xv * yv;
                }
            }
        }
        if m[0][0] == 0.0 {
            return Err(FeatureError::InvalidParameter(
                "moments of an empty region".into(),
            ));
        }
        let xc = m[1][0] / m[0][0];
        let yc = m[0][1] / m[0][0];

        // Central moments via the standard expansion.
        let mut mu = [[0.0f64; 4]; 4];
        mu[0][0] = m[0][0];
        mu[1][1] = m[1][1] - xc * m[0][1];
        mu[2][0] = m[2][0] - xc * m[1][0];
        mu[0][2] = m[0][2] - yc * m[0][1];
        mu[2][1] = m[2][1] - 2.0 * xc * m[1][1] - yc * m[2][0] + 2.0 * xc * xc * m[0][1];
        mu[1][2] = m[1][2] - 2.0 * yc * m[1][1] - xc * m[0][2] + 2.0 * yc * yc * m[1][0];
        mu[3][0] = m[3][0] - 3.0 * xc * m[2][0] + 2.0 * xc * xc * m[1][0];
        mu[0][3] = m[0][3] - 3.0 * yc * m[0][2] + 2.0 * yc * yc * m[0][1];

        // Scale normalization: eta_pq = mu_pq / mu00^(1 + (p+q)/2).
        let mut eta = [[0.0f64; 4]; 4];
        for p in 0..4 {
            for q in 0..4 {
                if p + q >= 2 {
                    let gamma = 1.0 + (p + q) as f64 / 2.0;
                    eta[p][q] = mu[p][q] / mu[0][0].powf(gamma);
                }
            }
        }
        Ok(Moments { m, mu, eta })
    }

    /// Object area in pixels.
    pub fn area(&self) -> f64 {
        self.m[0][0]
    }

    /// Centroid `(x̄, ȳ)`.
    pub fn centroid(&self) -> (f64, f64) {
        (self.m[1][0] / self.m[0][0], self.m[0][1] / self.m[0][0])
    }

    /// Orientation of the major axis in radians, `(-π/2, π/2]`.
    pub fn orientation(&self) -> f64 {
        0.5 * (2.0 * self.mu[1][1]).atan2(self.mu[2][0] - self.mu[0][2])
    }

    /// Eccentricity in `[0, 1)`: 0 for a circle, approaching 1 for a line.
    /// Derived from the eigenvalues of the second-moment (covariance)
    /// matrix: `e = sqrt(1 - λ_min / λ_max)`.
    pub fn eccentricity(&self) -> f64 {
        let a = self.mu[2][0] / self.mu[0][0];
        let b = self.mu[1][1] / self.mu[0][0];
        let c = self.mu[0][2] / self.mu[0][0];
        let common = ((a - c) * (a - c) + 4.0 * b * b).sqrt();
        let l_max = (a + c + common) / 2.0;
        let l_min = (a + c - common) / 2.0;
        if l_max <= 0.0 {
            return 0.0;
        }
        (1.0 - (l_min / l_max).max(0.0)).max(0.0).sqrt()
    }

    /// Hu's seven moment invariants — invariant to translation, scale, and
    /// rotation (the 7th flips sign under reflection).
    pub fn hu_invariants(&self) -> [f64; 7] {
        let n20 = self.eta[2][0];
        let n02 = self.eta[0][2];
        let n11 = self.eta[1][1];
        let n30 = self.eta[3][0];
        let n03 = self.eta[0][3];
        let n21 = self.eta[2][1];
        let n12 = self.eta[1][2];

        let h1 = n20 + n02;
        let h2 = (n20 - n02).powi(2) + 4.0 * n11 * n11;
        let h3 = (n30 - 3.0 * n12).powi(2) + (3.0 * n21 - n03).powi(2);
        let h4 = (n30 + n12).powi(2) + (n21 + n03).powi(2);
        let h5 = (n30 - 3.0 * n12)
            * (n30 + n12)
            * ((n30 + n12).powi(2) - 3.0 * (n21 + n03).powi(2))
            + (3.0 * n21 - n03) * (n21 + n03) * (3.0 * (n30 + n12).powi(2) - (n21 + n03).powi(2));
        let h6 = (n20 - n02) * ((n30 + n12).powi(2) - (n21 + n03).powi(2))
            + 4.0 * n11 * (n30 + n12) * (n21 + n03);
        let h7 = (3.0 * n21 - n03)
            * (n30 + n12)
            * ((n30 + n12).powi(2) - 3.0 * (n21 + n03).powi(2))
            - (n30 - 3.0 * n12) * (n21 + n03) * (3.0 * (n30 + n12).powi(2) - (n21 + n03).powi(2));
        [h1, h2, h3, h4, h5, h6, h7]
    }
}

/// Log-compressed Hu invariants as an `f32` feature vector:
/// `sign(h) * ln(1 + |h| * 1e6)` keeps the wildly different magnitudes of
/// the seven invariants on a comparable scale.
pub fn hu_feature_vector(mask: &GrayImage) -> Result<Vec<f32>> {
    let mut out = vec![0.0f32; 7];
    hu_into(mask, &mut out)?;
    Ok(out)
}

/// [`hu_feature_vector`] into a caller-provided 7-element slice.
pub(crate) fn hu_into(mask: &GrayImage, out: &mut [f32]) -> Result<()> {
    debug_assert_eq!(out.len(), 7);
    let m = Moments::compute(mask)?;
    for (o, &h) in out.iter_mut().zip(m.hu_invariants().iter()) {
        *o = (h.signum() * (1.0 + h.abs() * 1e6).ln()) as f32;
    }
    Ok(())
}

/// Shape summary `[eccentricity, compactness, extent]`:
/// compactness = `4π·area / perimeter²` (1 for a disc), extent = fraction of
/// the bounding box covered.
pub fn shape_summary(mask: &GrayImage) -> Result<Vec<f32>> {
    let mut out = vec![0.0f32; 3];
    shape_summary_into(mask, &mut out)?;
    Ok(out)
}

/// [`shape_summary`] into a caller-provided 3-element slice.
pub(crate) fn shape_summary_into(mask: &GrayImage, out: &mut [f32]) -> Result<()> {
    debug_assert_eq!(out.len(), 3);
    let m = Moments::compute(mask)?;
    let (w, h) = mask.dimensions();

    // Perimeter: object pixels with at least one 4-neighbour background
    // (or border) pixel.
    let mut perimeter = 0u64;
    let (mut min_x, mut min_y, mut max_x, mut max_y) = (u32::MAX, u32::MAX, 0u32, 0u32);
    for (x, y, v) in mask.enumerate_pixels() {
        if v == 0 {
            continue;
        }
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
        let neighbours = [
            (x as i64 - 1, y as i64),
            (x as i64 + 1, y as i64),
            (x as i64, y as i64 - 1),
            (x as i64, y as i64 + 1),
        ];
        let boundary = neighbours.iter().any(|&(nx, ny)| {
            nx < 0
                || ny < 0
                || nx >= w as i64
                || ny >= h as i64
                || mask.pixel(nx as u32, ny as u32) == 0
        });
        if boundary {
            perimeter += 1;
        }
    }
    let area = m.area();
    let compactness = if perimeter > 0 {
        (4.0 * std::f64::consts::PI * area / (perimeter as f64 * perimeter as f64)).min(1.0)
    } else {
        1.0
    };
    let bbox = (max_x - min_x + 1) as f64 * (max_y - min_y + 1) as f64;
    let extent = area / bbox;
    out[0] = m.eccentricity() as f32;
    out[1] = compactness as f32;
    out[2] = extent as f32;
    Ok(())
}

/// Region-based shape signature built on connected-component analysis of
/// the Otsu foreground: `[log2(1 + n_regions) / 8, largest-region area
/// fraction, largest-region eccentricity, compactness, extent]`. Unlike the
/// whole-mask statistics this describes *the dominant object*, ignoring
/// disconnected clutter.
pub fn region_shape_features(mask: &GrayImage) -> Result<Vec<f32>> {
    let mut labeling = Labeling::empty();
    let mut largest = GrayImage::filled(0, 0, 0);
    let mut out = vec![0.0f32; 5];
    region_shape_into(mask, &mut labeling, &mut largest, &mut out)?;
    Ok(out)
}

/// [`region_shape_features`] into a caller-provided 5-element slice, with
/// the component labeling and largest-region mask buffers reused across
/// calls. `connected_components` is just `Labeling::recompute` on a fresh
/// labeling, so the results are identical.
pub(crate) fn region_shape_into(
    mask: &GrayImage,
    labeling: &mut Labeling,
    largest: &mut GrayImage,
    out: &mut [f32],
) -> Result<()> {
    debug_assert_eq!(out.len(), 5);
    if mask.is_empty() {
        return Err(FeatureError::EmptyImage("region shape"));
    }
    labeling
        .recompute(mask, Connectivity::Eight)
        .map_err(FeatureError::Image)?;
    if !labeling.largest_mask_into(largest) {
        // No foreground at all: a distinctive all-zero signature.
        out.fill(0.0);
        return Ok(());
    }
    let n_regions = labeling.len() as f32;
    let largest_area = labeling.regions[0].area as f32;
    let area_fraction = largest_area / mask.len() as f32;
    let mut summary = [0.0f32; 3];
    shape_summary_into(largest, &mut summary)?;
    out[0] = ((1.0 + n_regions).log2() / 8.0).min(1.0);
    out[1] = area_fraction;
    out[2] = summary[0];
    out[3] = summary[1];
    out[4] = summary[2];
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disc(n: u32, cx: f64, cy: f64, r: f64) -> GrayImage {
        GrayImage::from_fn(n, n, |x, y| {
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            if dx * dx + dy * dy <= r * r {
                255
            } else {
                0
            }
        })
    }

    fn bar(n: u32, horizontal: bool) -> GrayImage {
        GrayImage::from_fn(n, n, |x, y| {
            let (major, minor) = if horizontal { (x, y) } else { (y, x) };
            if (4..n - 4).contains(&major) && ((n / 2 - 1)..=(n / 2 + 1)).contains(&minor) {
                255
            } else {
                0
            }
        })
    }

    #[test]
    fn area_and_centroid() {
        let mask = GrayImage::from_fn(10, 10, |x, y| {
            if (2..6).contains(&x) && (3..8).contains(&y) {
                255
            } else {
                0
            }
        });
        let m = Moments::compute(&mask).unwrap();
        assert_eq!(m.area(), 20.0);
        let (cx, cy) = m.centroid();
        assert!((cx - 3.5).abs() < 1e-9);
        assert!((cy - 5.0).abs() < 1e-9);
    }

    #[test]
    fn disc_has_low_eccentricity_bar_has_high() {
        let d = Moments::compute(&disc(33, 16.0, 16.0, 10.0)).unwrap();
        assert!(d.eccentricity() < 0.2, "disc e = {}", d.eccentricity());
        let b = Moments::compute(&bar(33, true)).unwrap();
        assert!(b.eccentricity() > 0.95, "bar e = {}", b.eccentricity());
    }

    #[test]
    fn orientation_tracks_major_axis() {
        let hbar = Moments::compute(&bar(33, true)).unwrap();
        assert!(hbar.orientation().abs() < 0.05);
        let vbar = Moments::compute(&bar(33, false)).unwrap();
        assert!(
            (vbar.orientation().abs() - std::f64::consts::FRAC_PI_2).abs() < 0.05,
            "vertical bar angle {}",
            vbar.orientation()
        );
    }

    #[test]
    fn hu_invariant_under_translation() {
        let a = disc(64, 20.0, 20.0, 9.0);
        let b = disc(64, 40.0, 35.0, 9.0);
        let ha = Moments::compute(&a).unwrap().hu_invariants();
        let hb = Moments::compute(&b).unwrap().hu_invariants();
        for i in 0..7 {
            assert!(
                (ha[i] - hb[i]).abs() <= 1e-6 * (1.0 + ha[i].abs()),
                "h{}: {} vs {}",
                i + 1,
                ha[i],
                hb[i]
            );
        }
    }

    #[test]
    fn hu_invariant_under_scale() {
        let a = disc(64, 32.0, 32.0, 8.0);
        let b = disc(64, 32.0, 32.0, 20.0);
        let ha = Moments::compute(&a).unwrap().hu_invariants();
        let hb = Moments::compute(&b).unwrap().hu_invariants();
        // Discretization error shrinks with radius; tolerate a few percent.
        for i in 0..2 {
            assert!(
                (ha[i] - hb[i]).abs() <= 0.05 * (ha[i].abs() + hb[i].abs()).max(1e-9),
                "h{}: {} vs {}",
                i + 1,
                ha[i],
                hb[i]
            );
        }
    }

    #[test]
    fn hu_invariant_under_rotation_90deg() {
        // 90° rotation is exact on the pixel grid.
        let a = bar(33, true);
        let b = bar(33, false);
        let ha = Moments::compute(&a).unwrap().hu_invariants();
        let hb = Moments::compute(&b).unwrap().hu_invariants();
        for i in 0..7 {
            assert!(
                (ha[i] - hb[i]).abs() <= 1e-9 + 1e-6 * ha[i].abs(),
                "h{}: {} vs {}",
                i + 1,
                ha[i],
                hb[i]
            );
        }
    }

    #[test]
    fn hu_distinguishes_different_shapes() {
        let d = hu_feature_vector(&disc(33, 16.0, 16.0, 10.0)).unwrap();
        let b = hu_feature_vector(&bar(33, true)).unwrap();
        let l1: f32 = d.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(l1 > 0.5, "disc vs bar Hu distance {l1}");
    }

    #[test]
    fn shape_summary_of_disc_vs_bar() {
        let sd = shape_summary(&disc(33, 16.0, 16.0, 10.0)).unwrap();
        let sb = shape_summary(&bar(33, true)).unwrap();
        // Disc: round (low ecc, high compactness, extent ~ pi/4).
        assert!(sd[0] < 0.2);
        assert!(sd[1] > sb[1]);
        assert!((sd[2] - std::f64::consts::FRAC_PI_4 as f32).abs() < 0.1);
        // Bar: elongated, extent ~ 1 inside its bbox.
        assert!(sb[0] > 0.9);
        assert!(sb[2] > 0.9);
    }

    #[test]
    fn empty_region_and_image_errors() {
        assert!(Moments::compute(&GrayImage::filled(5, 5, 0)).is_err());
        assert!(Moments::compute(&GrayImage::filled(0, 0, 0)).is_err());
        assert!(hu_feature_vector(&GrayImage::filled(5, 5, 0)).is_err());
        assert!(shape_summary(&GrayImage::filled(5, 5, 0)).is_err());
    }

    #[test]
    fn region_shape_ignores_clutter() {
        // A large disc plus scattered specks: the signature describes the
        // disc, so adding specks barely moves the shape components.
        let clean = disc(33, 16.0, 16.0, 10.0);
        let mut cluttered = clean.clone();
        for i in 0..6 {
            cluttered.set(i * 5 + 1, 1, 255);
        }
        let a = region_shape_features(&clean).unwrap();
        let b = region_shape_features(&cluttered).unwrap();
        assert_eq!(a.len(), 5);
        // Region count differs...
        assert!(b[0] > a[0]);
        // ...but dominant-object shape stays put.
        for i in 2..5 {
            assert!(
                (a[i] - b[i]).abs() < 0.05,
                "component {i}: {} vs {}",
                a[i],
                b[i]
            );
        }
        // Whole-mask statistics are NOT robust to the same clutter.
        let wa = shape_summary(&clean).unwrap();
        let wb = shape_summary(&cluttered).unwrap();
        assert!(
            (wa[2] - wb[2]).abs() > 0.05,
            "extent should degrade: {} vs {}",
            wa[2],
            wb[2]
        );
    }

    #[test]
    fn region_shape_empty_mask_is_zero_vector() {
        let v = region_shape_features(&GrayImage::filled(8, 8, 0)).unwrap();
        assert_eq!(v, vec![0.0; 5]);
        assert!(region_shape_features(&GrayImage::filled(0, 0, 0)).is_err());
    }

    #[test]
    fn region_shape_separates_disc_from_bar() {
        let d = region_shape_features(&disc(33, 16.0, 16.0, 10.0)).unwrap();
        let b = region_shape_features(&bar(33, true)).unwrap();
        // Eccentricity component differs strongly.
        assert!((d[2] - b[2]).abs() > 0.5);
    }

    #[test]
    fn single_pixel_region() {
        let mut mask = GrayImage::filled(5, 5, 0);
        mask.set(2, 3, 255);
        let m = Moments::compute(&mask).unwrap();
        assert_eq!(m.area(), 1.0);
        assert_eq!(m.centroid(), (2.0, 3.0));
        assert_eq!(m.eccentricity(), 0.0);
        let s = shape_summary(&mask).unwrap();
        assert_eq!(s[2], 1.0); // extent: fills its 1x1 bbox
    }
}
