//! Otsu foreground masking shared by every shape feature.
//!
//! The pipeline and the extraction planner both segment the canonical
//! grayscale image the same way; this module is the single home of that
//! logic and of its non-empty guarantee.

use cbir_image::ops::otsu_level;
use cbir_image::GrayImage;

/// Compute the Otsu foreground mask of `gray` into `out`, reusing `out`'s
/// allocation.
///
/// Guarantee: the resulting mask always contains at least one foreground
/// (255) pixel, so downstream shape features (moments, region analysis)
/// cannot fail on it:
///
/// - normal case: pixels strictly above the Otsu level become foreground;
/// - Otsu undefined (empty input): a 1×1 all-foreground mask;
/// - threshold marks nothing (e.g. a constant image): the whole frame
///   becomes foreground.
pub fn foreground_mask_into(gray: &GrayImage, out: &mut GrayImage) {
    let t = match otsu_level(gray) {
        Ok(t) => t,
        Err(_) => {
            out.reset(1, 1, 255);
            return;
        }
    };
    let (w, h) = gray.dimensions();
    out.reset(w, h, 0);
    let mut any = false;
    for (o, &p) in out.as_mut_slice().iter_mut().zip(gray.as_slice()) {
        if p > t {
            *o = 255;
            any = true;
        }
    }
    if !any {
        out.as_mut_slice().fill(255);
    }
}

/// Allocating convenience wrapper around [`foreground_mask_into`].
pub fn foreground_mask(gray: &GrayImage) -> GrayImage {
    let mut out = GrayImage::filled(0, 0, 0);
    foreground_mask_into(gray, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbir_image::ops::threshold;

    #[test]
    fn matches_direct_thresholding() {
        let gray = GrayImage::from_fn(16, 16, |x, y| ((x * 13 + y * 31) % 256) as u8);
        let t = otsu_level(&gray).unwrap();
        assert_eq!(foreground_mask(&gray), threshold(&gray, t));
    }

    #[test]
    fn never_empty_on_degenerate_inputs() {
        // Constant image: Otsu marks nothing -> whole frame is foreground.
        let flat = GrayImage::filled(8, 8, 100);
        let m = foreground_mask(&flat);
        assert_eq!(m.dimensions(), (8, 8));
        assert!(m.pixels().all(|p| p == 255));
        // Empty image: Otsu errors -> 1x1 foreground.
        let empty = GrayImage::filled(0, 0, 0);
        let m = foreground_mask(&empty);
        assert_eq!(m.dimensions(), (1, 1));
        assert_eq!(m.pixel(0, 0), 255);
    }

    #[test]
    fn into_variant_reuses_allocation_and_matches() {
        let a = GrayImage::from_fn(12, 9, |x, y| ((x * 7 + y * 3) % 256) as u8);
        let b = GrayImage::filled(5, 5, 42);
        let mut out = GrayImage::filled(0, 0, 0);
        for img in [&a, &b, &a] {
            foreground_mask_into(img, &mut out);
            assert_eq!(out, foreground_mask(img));
        }
    }
}
