//! The extraction pipeline: a declarative list of feature specs turned into
//! one composite feature vector per image, with a stable segment layout so
//! query-time measures can address individual families.

use crate::context::{ExtractContext, ExtractScratch};
use crate::correlogram::AutoCorrelogram;
use crate::descriptor::{normalize_l1, FeatureKind, Segment};
use crate::distance_transform::{dt_histogram, salience_distance_transform};
use crate::edges::{edge_density_grid, edge_orientation_histogram};
use crate::error::{FeatureError, Result};
use crate::glcm::glcm_features;
use crate::histogram::{color_moments, ColorHistogram};
use crate::mask::foreground_mask;
use crate::moments::{hu_feature_vector, region_shape_features, shape_summary};
use crate::quantize::Quantizer;
use crate::tamura::tamura_features;
use crate::wavelet::wavelet_signature;
use cbir_image::ops::resize_bilinear_rgb;
use cbir_image::RgbImage;

/// One feature family plus its parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum FeatureSpec {
    /// Normalized color histogram under the given quantizer.
    ColorHistogram(Quantizer),
    /// Nine HSV channel moments.
    ColorMoments,
    /// Auto-correlogram under the given quantizer at the given L∞ distances.
    Correlogram {
        /// Color quantizer (keep it compact: dim = bins × distances).
        quantizer: Quantizer,
        /// Probe distances (positive, non-empty).
        distances: Vec<u32>,
    },
    /// Five GLCM statistics averaged over the standard four orientations.
    Glcm {
        /// Gray levels for co-occurrence quantization.
        levels: usize,
    },
    /// Tamura coarseness/contrast/directionality.
    Tamura,
    /// Haar subband-energy signature with this many levels.
    Wavelet {
        /// Decomposition depth (canonical size must be divisible by 2^levels).
        levels: u32,
    },
    /// Magnitude-weighted edge-orientation histogram.
    EdgeOrientation {
        /// Orientation bins over [0, π).
        bins: usize,
    },
    /// Edge-density grid.
    EdgeDensityGrid {
        /// Grid side (grid² cells).
        grid: u32,
        /// Normalized Sobel magnitude threshold.
        threshold: f32,
    },
    /// Hu invariants of the Otsu foreground mask.
    HuMoments,
    /// Eccentricity/compactness/extent of the Otsu foreground mask.
    ShapeSummary,
    /// Histogram of the salience distance transform.
    DtHistogram {
        /// Histogram bins.
        bins: usize,
    },
    /// Connected-component shape signature of the dominant Otsu region.
    RegionShape,
}

impl FeatureSpec {
    /// The family this spec belongs to.
    pub fn kind(&self) -> FeatureKind {
        match self {
            FeatureSpec::ColorHistogram(_) => FeatureKind::ColorHistogram,
            FeatureSpec::ColorMoments => FeatureKind::ColorMoments,
            FeatureSpec::Correlogram { .. } => FeatureKind::Correlogram,
            FeatureSpec::Glcm { .. } => FeatureKind::Glcm,
            FeatureSpec::Tamura => FeatureKind::Tamura,
            FeatureSpec::Wavelet { .. } => FeatureKind::Wavelet,
            FeatureSpec::EdgeOrientation { .. } => FeatureKind::EdgeOrientation,
            FeatureSpec::EdgeDensityGrid { .. } => FeatureKind::EdgeDensityGrid,
            FeatureSpec::HuMoments => FeatureKind::HuMoments,
            FeatureSpec::ShapeSummary => FeatureKind::ShapeSummary,
            FeatureSpec::DtHistogram { .. } => FeatureKind::DtHistogram,
            FeatureSpec::RegionShape => FeatureKind::RegionShape,
        }
    }

    /// Output dimensionality of this spec.
    pub fn dim(&self) -> usize {
        match self {
            FeatureSpec::ColorHistogram(q) => q.n_bins(),
            FeatureSpec::ColorMoments => 9,
            FeatureSpec::Correlogram {
                quantizer,
                distances,
            } => quantizer.n_bins() * distances.len(),
            FeatureSpec::Glcm { .. } => 5,
            FeatureSpec::Tamura => 3,
            FeatureSpec::Wavelet { levels } => 3 * *levels as usize + 1,
            FeatureSpec::EdgeOrientation { bins } => *bins,
            FeatureSpec::EdgeDensityGrid { grid, .. } => (*grid as usize).pow(2),
            FeatureSpec::HuMoments => 7,
            FeatureSpec::ShapeSummary => 3,
            FeatureSpec::DtHistogram { bins } => *bins,
            FeatureSpec::RegionShape => 5,
        }
    }

    /// Validate the spec against the pipeline's canonical image size.
    fn validate(&self, canonical: u32) -> Result<()> {
        match self {
            FeatureSpec::ColorHistogram(q) => q.validate(),
            FeatureSpec::Correlogram {
                quantizer,
                distances,
            } => {
                quantizer.validate()?;
                if distances.is_empty() || distances.contains(&0) {
                    return Err(FeatureError::InvalidParameter(
                        "correlogram distances must be non-empty and positive".into(),
                    ));
                }
                if quantizer.n_bins() > 256 {
                    return Err(FeatureError::InvalidParameter(
                        "correlogram quantizer must have <= 256 bins".into(),
                    ));
                }
                Ok(())
            }
            FeatureSpec::Wavelet { levels } => {
                if *levels == 0 {
                    return Err(FeatureError::InvalidParameter(
                        "wavelet levels must be >= 1".into(),
                    ));
                }
                if !canonical.is_multiple_of(1 << *levels) {
                    return Err(FeatureError::InvalidParameter(format!(
                        "canonical size {canonical} not divisible by 2^{levels}"
                    )));
                }
                Ok(())
            }
            FeatureSpec::Glcm { levels } => {
                if !(2..=256).contains(levels) {
                    return Err(FeatureError::InvalidParameter(
                        "glcm levels must be in 2..=256".into(),
                    ));
                }
                Ok(())
            }
            FeatureSpec::EdgeOrientation { bins } => {
                if !(2..=256).contains(bins) {
                    return Err(FeatureError::InvalidParameter(
                        "edge orientation bins must be in 2..=256".into(),
                    ));
                }
                Ok(())
            }
            FeatureSpec::EdgeDensityGrid { grid, .. } => {
                if *grid == 0 || *grid > canonical {
                    return Err(FeatureError::InvalidParameter(
                        "edge grid must be in 1..=canonical size".into(),
                    ));
                }
                Ok(())
            }
            FeatureSpec::DtHistogram { bins } => {
                if !(2..=1024).contains(bins) {
                    return Err(FeatureError::InvalidParameter(
                        "dt histogram bins must be in 2..=1024".into(),
                    ));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// A validated, ordered list of feature specs with a fixed canonical size.
#[derive(Clone, Debug)]
pub struct Pipeline {
    canonical: u32,
    specs: Vec<FeatureSpec>,
}

impl Pipeline {
    /// Build a pipeline. Every image is first resampled to
    /// `canonical × canonical` so signatures are size-invariant.
    pub fn new(canonical: u32, specs: Vec<FeatureSpec>) -> Result<Self> {
        if !(8..=1024).contains(&canonical) {
            return Err(FeatureError::InvalidParameter(format!(
                "canonical size must be in 8..=1024, got {canonical}"
            )));
        }
        if specs.is_empty() {
            return Err(FeatureError::InvalidParameter(
                "pipeline needs at least one feature spec".into(),
            ));
        }
        for s in &specs {
            s.validate(canonical)?;
        }
        Ok(Pipeline { canonical, specs })
    }

    /// Canonical (post-resize) image side length.
    pub fn canonical_size(&self) -> u32 {
        self.canonical
    }

    /// The configured specs, in extraction order.
    pub fn specs(&self) -> &[FeatureSpec] {
        &self.specs
    }

    /// Total composite dimensionality.
    pub fn dim(&self) -> usize {
        self.specs.iter().map(|s| s.dim()).sum()
    }

    /// Offsets of each feature family inside the composite vector.
    pub fn layout(&self) -> Vec<Segment> {
        let mut out = Vec::with_capacity(self.specs.len());
        let mut at = 0usize;
        for s in &self.specs {
            let d = s.dim();
            out.push(Segment {
                kind: s.kind(),
                start: at,
                end: at + d,
            });
            at += d;
        }
        out
    }

    /// Extract the composite feature vector for one image.
    pub fn extract(&self, img: &RgbImage) -> Result<Vec<f32>> {
        let mut scratch = ExtractScratch::new();
        let mut out = Vec::new();
        self.extract_into(img, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Extract into a caller-provided vector, reusing `scratch`'s buffers.
    ///
    /// This is the steady-state ingest path: after one warm-up image has
    /// sized the scratch, repeated calls over same-shaped work allocate
    /// nothing. `out` is cleared first; its contents are unspecified if an
    /// error is returned. Results are bit-identical to [`Self::extract`]
    /// and to the per-family reference path [`Self::extract_naive`].
    pub fn extract_into(
        &self,
        img: &RgbImage,
        scratch: &mut ExtractScratch,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        let mut ctx = ExtractContext::new(img, scratch, self.canonical)?;
        out.clear();
        out.reserve(self.dim());
        for spec in &self.specs {
            let start = out.len();
            out.resize(start + spec.dim(), 0.0);
            let dst = &mut out[start..];
            match spec {
                FeatureSpec::ColorHistogram(q) => ctx.color_histogram(q, dst)?,
                FeatureSpec::ColorMoments => ctx.color_moments(dst)?,
                FeatureSpec::Correlogram {
                    quantizer,
                    distances,
                } => ctx.correlogram(quantizer, distances, dst)?,
                FeatureSpec::Glcm { levels } => ctx.glcm(*levels, dst)?,
                FeatureSpec::Tamura => ctx.tamura(dst)?,
                FeatureSpec::Wavelet { levels } => ctx.wavelet(*levels, dst)?,
                FeatureSpec::EdgeOrientation { bins } => ctx.edge_orientation(*bins, dst)?,
                FeatureSpec::EdgeDensityGrid { grid, threshold } => {
                    ctx.edge_density_grid(*grid, *threshold, dst)?
                }
                FeatureSpec::HuMoments => ctx.hu_moments(dst)?,
                FeatureSpec::ShapeSummary => ctx.shape_summary(dst)?,
                FeatureSpec::RegionShape => ctx.region_shape(dst)?,
                FeatureSpec::DtHistogram { bins } => {
                    // Range: half the canonical diagonal in chamfer units
                    // keeps the histogram well-populated.
                    let max_value = 3.0 * self.canonical as f32 / 2.0;
                    ctx.dt_histogram(*bins, max_value, dst)?
                }
            }
        }
        Ok(())
    }

    /// Reference extraction path: every family recomputes its own
    /// intermediates from scratch (fresh resize, grayscale, gradients, and
    /// mask per family) with no sharing whatsoever.
    ///
    /// Exists to pin down the planner's contract: the equivalence tests and
    /// the throughput experiment assert [`Self::extract`] is bit-identical
    /// to this path before trusting any speedup numbers.
    pub fn extract_naive(&self, img: &RgbImage) -> Result<Vec<f32>> {
        if img.is_empty() {
            return Err(FeatureError::EmptyImage("pipeline"));
        }
        let mut out = Vec::with_capacity(self.dim());
        for spec in &self.specs {
            let canon = resize_bilinear_rgb(img, self.canonical, self.canonical)?;
            let gray = canon.to_gray();
            let part: Vec<f32> = match spec {
                FeatureSpec::ColorHistogram(q) => ColorHistogram::compute(&canon, q)?.normalized(),
                FeatureSpec::ColorMoments => color_moments(&canon)?,
                FeatureSpec::Correlogram {
                    quantizer,
                    distances,
                } => AutoCorrelogram::compute(&canon, quantizer, distances)?.to_vec(),
                FeatureSpec::Glcm { levels } => glcm_features(&gray, *levels)?,
                FeatureSpec::Tamura => tamura_features(&gray)?,
                FeatureSpec::Wavelet { levels } => wavelet_signature(&gray, *levels)?,
                FeatureSpec::EdgeOrientation { bins } => edge_orientation_histogram(&gray, *bins)?,
                FeatureSpec::EdgeDensityGrid { grid, threshold } => {
                    edge_density_grid(&gray, *grid, *threshold)?
                }
                FeatureSpec::HuMoments => hu_feature_vector(&foreground_mask(&gray))?,
                FeatureSpec::ShapeSummary => shape_summary(&foreground_mask(&gray))?,
                FeatureSpec::RegionShape => region_shape_features(&foreground_mask(&gray))?,
                FeatureSpec::DtHistogram { bins } => {
                    match salience_distance_transform(&gray, 3.0) {
                        Ok(dt) => {
                            let max_value = 3.0 * self.canonical as f32 / 2.0;
                            dt_histogram(&dt, *bins, max_value)?
                        }
                        // Flat image: all mass "infinitely far" from edges.
                        Err(_) => {
                            let mut h = vec![0.0; *bins];
                            h[*bins - 1] = 1.0;
                            h
                        }
                    }
                }
            };
            debug_assert_eq!(part.len(), spec.dim(), "{spec:?} dim mismatch");
            out.extend_from_slice(&part);
        }
        Ok(out)
    }

    /// Extract many images with `threads` worker threads, each owning one
    /// [`ExtractScratch`].
    ///
    /// Work is split into contiguous chunks in input order, so results are
    /// deterministic and bit-identical at every thread count (each image's
    /// extraction is independent; only the partitioning varies). On error
    /// the first failing image in input order wins.
    pub fn extract_batch(&self, images: &[&RgbImage], threads: usize) -> Result<Vec<Vec<f32>>> {
        self.extract_batch_with(images, threads, false)
    }

    /// [`Self::extract_batch`] with per-segment L1 normalization, matching
    /// [`Self::extract_balanced`].
    pub fn extract_balanced_batch(
        &self,
        images: &[&RgbImage],
        threads: usize,
    ) -> Result<Vec<Vec<f32>>> {
        self.extract_batch_with(images, threads, true)
    }

    fn extract_batch_with(
        &self,
        images: &[&RgbImage],
        threads: usize,
        balanced: bool,
    ) -> Result<Vec<Vec<f32>>> {
        if threads == 0 {
            return Err(FeatureError::InvalidParameter(
                "extract_batch needs >= 1 thread".into(),
            ));
        }
        if images.is_empty() {
            return Ok(Vec::new());
        }
        let chunk_size = images.len().div_ceil(threads);
        let chunks: Vec<&[&RgbImage]> = images.chunks(chunk_size).collect();
        let results: Vec<Vec<Result<Vec<f32>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut scratch = ExtractScratch::new();
                        let mut buf = Vec::new();
                        chunk
                            .iter()
                            .map(|img| {
                                let r = if balanced {
                                    self.extract_balanced_into(img, &mut scratch, &mut buf)
                                } else {
                                    self.extract_into(img, &mut scratch, &mut buf)
                                };
                                r.map(|()| buf.clone())
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("extraction worker panicked"))
                .collect()
        });
        results.into_iter().flatten().collect()
    }

    /// The classical color-indexing pipeline: one 256-bin HSV histogram.
    pub fn color_histogram_default() -> Self {
        Pipeline::new(
            64,
            vec![FeatureSpec::ColorHistogram(Quantizer::hsv_default())],
        )
        .expect("static pipeline")
    }

    /// A full multi-feature pipeline: color histogram + correlogram +
    /// texture (GLCM, Tamura, wavelet) + shape (edge histogram, grid, Hu).
    pub fn full_default() -> Self {
        Pipeline::new(
            64,
            vec![
                FeatureSpec::ColorHistogram(Quantizer::hsv_default()),
                FeatureSpec::Correlogram {
                    quantizer: Quantizer::rgb_compact(),
                    distances: vec![1, 3, 5, 7],
                },
                FeatureSpec::Glcm { levels: 16 },
                FeatureSpec::Tamura,
                FeatureSpec::Wavelet { levels: 3 },
                FeatureSpec::EdgeOrientation { bins: 16 },
                FeatureSpec::EdgeDensityGrid {
                    grid: 4,
                    threshold: 10.0,
                },
                FeatureSpec::HuMoments,
                FeatureSpec::ShapeSummary,
                FeatureSpec::RegionShape,
            ],
        )
        .expect("static pipeline")
    }

    /// Extract and L1-normalize each segment independently, so families
    /// with large natural scales (e.g. GLCM contrast) cannot drown the
    /// others when a single global measure is applied.
    pub fn extract_balanced(&self, img: &RgbImage) -> Result<Vec<f32>> {
        let mut scratch = ExtractScratch::new();
        let mut out = Vec::new();
        self.extract_balanced_into(img, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Self::extract_balanced`] into a caller-provided vector, reusing
    /// `scratch`'s buffers; allocation-free at steady state like
    /// [`Self::extract_into`].
    pub fn extract_balanced_into(
        &self,
        img: &RgbImage,
        scratch: &mut ExtractScratch,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        self.extract_into(img, scratch, out)?;
        let mut at = 0usize;
        for spec in &self.specs {
            let d = spec.dim();
            normalize_l1(&mut out[at..at + d]);
            at += d;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbir_image::Rgb;

    fn test_image() -> RgbImage {
        RgbImage::from_fn(48, 48, |x, y| {
            if (x / 8 + y / 8) % 2 == 0 {
                Rgb::new(200, 40, 40)
            } else {
                Rgb::new(40, 40, 200)
            }
        })
    }

    #[test]
    fn dim_matches_extracted_length() {
        for p in [
            Pipeline::color_histogram_default(),
            Pipeline::full_default(),
        ] {
            let v = p.extract(&test_image()).unwrap();
            assert_eq!(v.len(), p.dim());
        }
    }

    #[test]
    fn layout_partitions_the_vector() {
        let p = Pipeline::full_default();
        let segs = p.layout();
        assert_eq!(segs.len(), p.specs().len());
        assert_eq!(segs[0].start, 0);
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(segs.last().unwrap().end, p.dim());
        for s in &segs {
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let p = Pipeline::full_default();
        let img = test_image();
        assert_eq!(p.extract(&img).unwrap(), p.extract(&img).unwrap());
    }

    #[test]
    fn extraction_is_size_invariant_under_upscaling() {
        // The same content at 2x resolution maps to a nearby signature
        // (canonicalization handles scale).
        let p = Pipeline::color_histogram_default();
        let small = test_image();
        let big = cbir_image::ops::resize_nearest(&small, 96, 96).unwrap();
        let vs = p.extract(&small).unwrap();
        let vb = p.extract(&big).unwrap();
        // Resampling introduces some boundary blending; the normalized
        // histograms must stay close (max L1 distance is 2.0).
        let l1: f32 = vs.iter().zip(&vb).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 0.4, "signatures diverged: L1 = {l1}");
    }

    #[test]
    fn different_content_different_vectors() {
        let p = Pipeline::full_default();
        let a = p.extract(&test_image()).unwrap();
        let uniform = RgbImage::filled(48, 48, Rgb::new(10, 200, 10));
        let b = p.extract(&uniform).unwrap();
        let l1: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(l1 > 0.5);
    }

    #[test]
    fn degenerate_images_still_extract() {
        // Constant image exercises every fallback path (flat gradients,
        // empty masks, Otsu degeneracy).
        let p = Pipeline::full_default();
        let img = RgbImage::filled(32, 32, Rgb::new(128, 128, 128));
        let v = p.extract(&img).unwrap();
        assert_eq!(v.len(), p.dim());
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn dt_histogram_fallback_for_flat_images() {
        let p = Pipeline::new(32, vec![FeatureSpec::DtHistogram { bins: 8 }]).unwrap();
        let img = RgbImage::filled(16, 16, Rgb::new(77, 77, 77));
        let v = p.extract(&img).unwrap();
        assert_eq!(v.len(), 8);
        assert_eq!(v[7], 1.0);
        assert_eq!(v[..7].iter().sum::<f32>(), 0.0);
    }

    #[test]
    fn balanced_extraction_normalizes_each_segment() {
        let p = Pipeline::full_default();
        let v = p.extract_balanced(&test_image()).unwrap();
        for seg in p.layout() {
            let s: f32 = v[seg.start..seg.end].iter().map(|x| x.abs()).sum();
            // Either normalized to 1 or an all-zero segment.
            assert!(
                (s - 1.0).abs() < 1e-4 || s == 0.0,
                "{:?} sums to {s}",
                seg.kind
            );
        }
    }

    #[test]
    fn validation_errors() {
        assert!(Pipeline::new(4, vec![FeatureSpec::ColorMoments]).is_err());
        assert!(Pipeline::new(2000, vec![FeatureSpec::ColorMoments]).is_err());
        assert!(Pipeline::new(64, vec![]).is_err());
        // 48 is not divisible by 2^5.
        assert!(Pipeline::new(48, vec![FeatureSpec::Wavelet { levels: 5 }]).is_err());
        assert!(Pipeline::new(64, vec![FeatureSpec::Wavelet { levels: 0 }]).is_err());
        assert!(Pipeline::new(
            64,
            vec![FeatureSpec::Correlogram {
                quantizer: Quantizer::rgb_compact(),
                distances: vec![]
            }]
        )
        .is_err());
        assert!(Pipeline::new(
            64,
            vec![FeatureSpec::Correlogram {
                quantizer: Quantizer::hsv_default(),
                distances: vec![0, 1]
            }]
        )
        .is_err());
        assert!(Pipeline::new(64, vec![FeatureSpec::Glcm { levels: 1 }]).is_err());
        assert!(Pipeline::new(64, vec![FeatureSpec::EdgeOrientation { bins: 1 }]).is_err());
        assert!(Pipeline::new(
            64,
            vec![FeatureSpec::EdgeDensityGrid {
                grid: 0,
                threshold: 1.0
            }]
        )
        .is_err());
        assert!(Pipeline::new(64, vec![FeatureSpec::DtHistogram { bins: 1 }]).is_err());
        let p = Pipeline::color_histogram_default();
        assert!(p.extract(&RgbImage::filled(0, 0, Rgb::default())).is_err());
    }

    #[test]
    fn spec_dims() {
        assert_eq!(
            FeatureSpec::ColorHistogram(Quantizer::hsv_default()).dim(),
            256
        );
        assert_eq!(FeatureSpec::ColorMoments.dim(), 9);
        assert_eq!(
            FeatureSpec::Correlogram {
                quantizer: Quantizer::rgb_compact(),
                distances: vec![1, 3]
            }
            .dim(),
            128
        );
        assert_eq!(FeatureSpec::Glcm { levels: 16 }.dim(), 5);
        assert_eq!(FeatureSpec::Tamura.dim(), 3);
        assert_eq!(FeatureSpec::Wavelet { levels: 3 }.dim(), 10);
        assert_eq!(FeatureSpec::EdgeOrientation { bins: 12 }.dim(), 12);
        assert_eq!(
            FeatureSpec::EdgeDensityGrid {
                grid: 4,
                threshold: 1.0
            }
            .dim(),
            16
        );
        assert_eq!(FeatureSpec::HuMoments.dim(), 7);
        assert_eq!(FeatureSpec::ShapeSummary.dim(), 3);
        assert_eq!(FeatureSpec::DtHistogram { bins: 12 }.dim(), 12);
        assert_eq!(FeatureSpec::RegionShape.dim(), 5);
    }
}
