//! The extraction planner: shared intermediates computed lazily but at most
//! once per image, backed by reusable scratch buffers.
//!
//! [`ExtractContext`] wraps one input image together with an
//! [`ExtractScratch`] and exposes every feature family as a method writing
//! into a caller-provided slice. Each shared intermediate — the canonical
//! RGB frame, its grayscale conversion, the Sobel gradient field, the
//! magnitude/orientation and normalized-magnitude planes, per-quantizer bin
//! planes, the Otsu foreground mask, the grayscale integral image, and the
//! salience distance transform — is computed the first time a family needs
//! it and then reused, so a multi-family pipeline performs each image-wide
//! pass exactly once instead of once per family.
//!
//! Every method is bit-identical (to the `f32` bit pattern) to the
//! corresponding standalone family function in this crate: both routes call
//! the same `pub(crate)` core with operands in the same order.
//!
//! After one warm-up image has sized the scratch buffers, steady-state
//! extraction of same-shaped work performs no heap allocation (asserted by
//! the `alloc_discipline` integration test).

use crate::correlogram::{correlogram_into, CorrelogramScratch};
use crate::distance_transform::{dt_histogram_into, sdt_from_magnitude};
use crate::edges::{density_grid_core, orientation_histogram_core};
use crate::error::{FeatureError, Result};
use crate::glcm::glcm_features_into;
use crate::histogram::{color_moments_into, histogram_normalized_from_indexed};
use crate::mask::foreground_mask_into;
use crate::moments::{hu_into, region_shape_into, shape_summary_into};
use crate::quantize::Quantizer;
use crate::tamura::{coarseness_core_into, contrast, directionality_core, CoarsenessScratch};
use crate::wavelet::{wavelet_signature_into, WaveletScratch};
use cbir_image::ops::{
    magnitude_orientation_into, resize_bilinear_rgb_into, sobel_into, IntegralImage, Labeling,
    SOBEL_MAGNITUDE_MAX,
};
use cbir_image::{FloatImage, GrayImage, RgbImage};
use cbir_obs::{stage_hit, Stage, StageTimer};

/// Salience scale of the pipeline's distance transform (chamfer units).
const SDT_SCALE: f32 = 3.0;

/// A quantized bin plane cached per quantizer configuration.
struct QuantPlane {
    key: Quantizer,
    plane: Vec<u16>,
    ready: bool,
}

/// Reusable buffers for [`ExtractContext`].
///
/// One scratch serves any number of images sequentially; buffers grow to
/// the high-water mark of the shapes seen and are then reused without
/// further allocation. Create one per worker thread for parallel ingest.
pub struct ExtractScratch {
    canon: RgbImage,
    resize_taps: Vec<(u32, u32, f64)>,
    gray: GrayImage,
    gx: FloatImage,
    gy: FloatImage,
    mag: FloatImage,
    ori: FloatImage,
    mag_norm: FloatImage,
    mask: GrayImage,
    dt: FloatImage,
    integral: IntegralImage,
    quant: Vec<QuantPlane>,
    counts_u64: Vec<u64>,
    hist_f64: Vec<f64>,
    counts_u32: Vec<u32>,
    totals_u32: Vec<u32>,
    coarse: CoarsenessScratch,
    corr: CorrelogramScratch,
    cm_values: Vec<[f32; 3]>,
    wavelet: WaveletScratch,
    labeling: Labeling,
    largest: GrayImage,
}

impl ExtractScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        ExtractScratch {
            canon: RgbImage::filled(0, 0, cbir_image::Rgb::default()),
            resize_taps: Vec::new(),
            gray: GrayImage::filled(0, 0, 0),
            gx: FloatImage::filled(0, 0, 0.0),
            gy: FloatImage::filled(0, 0, 0.0),
            mag: FloatImage::filled(0, 0, 0.0),
            ori: FloatImage::filled(0, 0, 0.0),
            mag_norm: FloatImage::filled(0, 0, 0.0),
            mask: GrayImage::filled(0, 0, 0),
            dt: FloatImage::filled(0, 0, 0.0),
            integral: IntegralImage::empty(),
            quant: Vec::new(),
            counts_u64: Vec::new(),
            hist_f64: Vec::new(),
            counts_u32: Vec::new(),
            totals_u32: Vec::new(),
            coarse: CoarsenessScratch::default(),
            corr: CorrelogramScratch::default(),
            cm_values: Vec::new(),
            wavelet: WaveletScratch::default(),
            labeling: Labeling::empty(),
            largest: GrayImage::filled(0, 0, 0),
        }
    }
}

impl Default for ExtractScratch {
    fn default() -> Self {
        ExtractScratch::new()
    }
}

/// Lazy one-pass extraction plan over a single image.
///
/// Construct one per image with [`ExtractContext::new`], then call family
/// methods in any order; shared intermediates are computed on first demand
/// and cached for the lifetime of the context. Results are bit-identical
/// to the standalone family functions ([`crate::Pipeline::extract_naive`]
/// is the reference implementation used by the equivalence tests).
pub struct ExtractContext<'a> {
    img: &'a RgbImage,
    s: &'a mut ExtractScratch,
    canonical: u32,
    canon_is_input: bool,
    have_gradient: bool,
    have_mag_ori: bool,
    have_mag_norm: bool,
    have_mask: bool,
    have_integral: bool,
    /// `None` until the SDT is attempted; then whether it is defined.
    dt_state: Option<bool>,
}

impl<'a> ExtractContext<'a> {
    /// Canonicalize `img` to `canonical × canonical` (skipping the resize
    /// entirely when the input already has that exact shape) and derive the
    /// grayscale plane. Errors on an empty image, mirroring
    /// [`crate::Pipeline::extract`].
    pub fn new(img: &'a RgbImage, scratch: &'a mut ExtractScratch, canonical: u32) -> Result<Self> {
        if img.is_empty() {
            return Err(FeatureError::EmptyImage("pipeline"));
        }
        let canon_is_input = img.dimensions() == (canonical, canonical);
        {
            let s = &mut *scratch;
            if !canon_is_input {
                let t = StageTimer::start(Stage::Resize);
                resize_bilinear_rgb_into(
                    img,
                    canonical,
                    canonical,
                    &mut s.resize_taps,
                    &mut s.canon,
                )?;
                t.finish();
            } else {
                // Input already canonical: the resize pass is skipped.
                stage_hit(Stage::Resize);
            }
            let canon: &RgbImage = if canon_is_input { img } else { &s.canon };
            let t = StageTimer::start(Stage::Grayscale);
            s.gray.reset(canonical, canonical, 0);
            for (g, p) in s.gray.as_mut_slice().iter_mut().zip(canon.pixels()) {
                *g = p.luma();
            }
            t.finish();
            for qp in &mut s.quant {
                qp.ready = false;
            }
        }
        Ok(ExtractContext {
            img,
            s: scratch,
            canonical,
            canon_is_input,
            have_gradient: false,
            have_mag_ori: false,
            have_mag_norm: false,
            have_mask: false,
            have_integral: false,
            dt_state: None,
        })
    }

    fn ensure_gradient(&mut self) {
        if self.have_gradient {
            stage_hit(Stage::Sobel);
            return;
        }
        let t = StageTimer::start(Stage::Sobel);
        let s = &mut *self.s;
        sobel_into(&s.gray, &mut s.gx, &mut s.gy);
        t.finish();
        self.have_gradient = true;
    }

    fn ensure_mag_ori(&mut self) {
        if self.have_mag_ori {
            stage_hit(Stage::MagOri);
            return;
        }
        self.ensure_gradient();
        // The timer covers only this stage's own pass; the gradient
        // dependency accounts for itself above.
        let t = StageTimer::start(Stage::MagOri);
        let s = &mut *self.s;
        magnitude_orientation_into(&s.gx, &s.gy, &mut s.mag, &mut s.ori);
        t.finish();
        self.have_mag_ori = true;
    }

    fn ensure_mag_norm(&mut self) {
        if self.have_mag_norm {
            stage_hit(Stage::MagNorm);
            return;
        }
        self.ensure_mag_ori();
        let t = StageTimer::start(Stage::MagNorm);
        let s = &mut *self.s;
        let (w, h) = s.mag.dimensions();
        s.mag_norm.reset(w, h, 0.0);
        for (n, &m) in s.mag_norm.as_mut_slice().iter_mut().zip(s.mag.as_slice()) {
            *n = m / SOBEL_MAGNITUDE_MAX * 255.0;
        }
        t.finish();
        self.have_mag_norm = true;
    }

    fn ensure_mask(&mut self) {
        if self.have_mask {
            stage_hit(Stage::Mask);
            return;
        }
        let t = StageTimer::start(Stage::Mask);
        let s = &mut *self.s;
        foreground_mask_into(&s.gray, &mut s.mask);
        t.finish();
        self.have_mask = true;
    }

    fn ensure_integral(&mut self) {
        if self.have_integral {
            stage_hit(Stage::Integral);
            return;
        }
        let t = StageTimer::start(Stage::Integral);
        let s = &mut *self.s;
        s.integral.recompute(&s.gray);
        t.finish();
        self.have_integral = true;
    }

    /// `true` when the salience distance transform is defined (the image
    /// has gradients); computed at most once.
    fn ensure_dt(&mut self) -> bool {
        if let Some(ok) = self.dt_state {
            stage_hit(Stage::Sdt);
            return ok;
        }
        self.ensure_mag_norm();
        let t = StageTimer::start(Stage::Sdt);
        let s = &mut *self.s;
        let ok = sdt_from_magnitude(&s.mag_norm, SDT_SCALE, &mut s.dt);
        t.finish();
        self.dt_state = Some(ok);
        ok
    }

    /// Bin plane index for `quantizer`, quantizing the canonical frame on
    /// first demand. Planes are keyed by quantizer equality, so distinct
    /// specs sharing one quantizer quantize once.
    fn ensure_quant(&mut self, quantizer: &Quantizer) -> usize {
        let s = &mut *self.s;
        let canon: &RgbImage = if self.canon_is_input {
            self.img
        } else {
            &s.canon
        };
        let idx = match s.quant.iter().position(|qp| qp.key == *quantizer) {
            Some(i) => i,
            None => {
                // Warm-up-only allocation: one slot per distinct quantizer.
                s.quant.push(QuantPlane {
                    key: quantizer.clone(),
                    plane: Vec::new(),
                    ready: false,
                });
                s.quant.len() - 1
            }
        };
        let QuantPlane { key, plane, ready } = &mut s.quant[idx];
        if !*ready {
            let t = StageTimer::start(Stage::Quantize);
            plane.clear();
            plane.extend(canon.pixels().map(|p| key.bin_of(p) as u16));
            t.finish();
            *ready = true;
        } else {
            stage_hit(Stage::Quantize);
        }
        idx
    }

    /// Normalized color histogram; matches
    /// [`crate::ColorHistogram::compute`] + `normalized`. `out` must hold
    /// `quantizer.n_bins()` values.
    pub fn color_histogram(&mut self, quantizer: &Quantizer, out: &mut [f32]) -> Result<()> {
        quantizer.validate()?;
        let idx = self.ensure_quant(quantizer);
        let s = &mut *self.s;
        histogram_normalized_from_indexed(
            &s.quant[idx].plane,
            s.quant[idx].key.n_bins(),
            &mut s.counts_u64,
            out,
        );
        Ok(())
    }

    /// Nine HSV channel moments; matches [`crate::color_moments`]. `out`
    /// must hold 9 values.
    pub fn color_moments(&mut self, out: &mut [f32]) -> Result<()> {
        let s = &mut *self.s;
        let canon: &RgbImage = if self.canon_is_input {
            self.img
        } else {
            &s.canon
        };
        color_moments_into(canon, &mut s.cm_values, out);
        Ok(())
    }

    /// Auto-correlogram probabilities; matches
    /// [`crate::AutoCorrelogram::compute`] + `to_vec`. `out` must hold
    /// `quantizer.n_bins() * distances.len()` values.
    pub fn correlogram(
        &mut self,
        quantizer: &Quantizer,
        distances: &[u32],
        out: &mut [f32],
    ) -> Result<()> {
        quantizer.validate()?;
        if distances.is_empty() || distances.contains(&0) {
            return Err(FeatureError::InvalidParameter(
                "correlogram distances must be non-empty and positive".into(),
            ));
        }
        let idx = self.ensure_quant(quantizer);
        let s = &mut *self.s;
        correlogram_into(
            &s.quant[idx].plane,
            self.canonical,
            self.canonical,
            s.quant[idx].key.n_bins(),
            distances,
            &mut s.corr,
            out,
        );
        Ok(())
    }

    /// Five averaged GLCM statistics; matches [`crate::glcm_features`].
    /// `out` must hold 5 values.
    pub fn glcm(&mut self, levels: usize, out: &mut [f32]) -> Result<()> {
        let s = &mut *self.s;
        glcm_features_into(&s.gray, levels, &mut s.counts_u64, out)
    }

    /// Tamura `[coarseness (log₂), contrast / 128, directionality]`;
    /// matches [`crate::tamura_features`]. `out` must hold 3 values.
    pub fn tamura(&mut self, out: &mut [f32]) -> Result<()> {
        debug_assert_eq!(out.len(), 3);
        self.ensure_mag_ori();
        self.ensure_integral();
        let s = &mut *self.s;
        let c = coarseness_core_into(&s.integral, 5, &mut s.coarse);
        let con = contrast(&s.gray)?;
        let d = directionality_core(&s.mag, &s.ori, 16, &mut s.hist_f64);
        out[0] = c.log2() as f32;
        out[1] = (con / 128.0) as f32;
        out[2] = d as f32;
        Ok(())
    }

    /// Haar subband-energy signature; matches [`crate::wavelet_signature`].
    /// `out` must hold `3 * levels + 1` values.
    pub fn wavelet(&mut self, levels: u32, out: &mut [f32]) -> Result<()> {
        let s = &mut *self.s;
        wavelet_signature_into(&s.gray, levels, &mut s.wavelet, out)
    }

    /// Magnitude-weighted edge-orientation histogram; matches
    /// [`crate::edge_orientation_histogram`]. `out` must hold `bins` values.
    pub fn edge_orientation(&mut self, bins: usize, out: &mut [f32]) -> Result<()> {
        if !(2..=256).contains(&bins) {
            return Err(FeatureError::InvalidParameter(format!(
                "orientation bins must be in 2..=256, got {bins}"
            )));
        }
        self.ensure_mag_ori();
        let s = &mut *self.s;
        orientation_histogram_core(&s.mag, &s.ori, bins, &mut s.hist_f64, out);
        Ok(())
    }

    /// Edge-density grid; matches [`crate::edge_density_grid`]. `out` must
    /// hold `grid * grid` values.
    pub fn edge_density_grid(&mut self, grid: u32, threshold: f32, out: &mut [f32]) -> Result<()> {
        if grid == 0 || grid > 64 {
            return Err(FeatureError::InvalidParameter(format!(
                "grid must be in 1..=64, got {grid}"
            )));
        }
        let (w, h) = (self.canonical, self.canonical);
        if w < grid || h < grid {
            return Err(FeatureError::InvalidParameter(format!(
                "image {w}x{h} smaller than {grid}x{grid} grid"
            )));
        }
        self.ensure_mag_norm();
        let s = &mut *self.s;
        density_grid_core(
            &s.mag_norm,
            grid,
            threshold,
            &mut s.counts_u32,
            &mut s.totals_u32,
            out,
        );
        Ok(())
    }

    /// Log-compressed Hu invariants of the Otsu foreground; matches
    /// [`crate::hu_feature_vector`] over [`crate::foreground_mask`]. `out`
    /// must hold 7 values.
    pub fn hu_moments(&mut self, out: &mut [f32]) -> Result<()> {
        self.ensure_mask();
        hu_into(&self.s.mask, out)
    }

    /// `[eccentricity, compactness, extent]` of the Otsu foreground;
    /// matches [`crate::shape_summary`] over [`crate::foreground_mask`].
    /// `out` must hold 3 values.
    pub fn shape_summary(&mut self, out: &mut [f32]) -> Result<()> {
        self.ensure_mask();
        shape_summary_into(&self.s.mask, out)
    }

    /// Dominant-region shape signature of the Otsu foreground; matches
    /// [`crate::region_shape_features`] over [`crate::foreground_mask`].
    /// `out` must hold 5 values.
    pub fn region_shape(&mut self, out: &mut [f32]) -> Result<()> {
        self.ensure_mask();
        let s = &mut *self.s;
        region_shape_into(&s.mask, &mut s.labeling, &mut s.largest, out)
    }

    /// Histogram of the salience distance transform (scale 3.0, the
    /// pipeline's constant); matches [`crate::dt_histogram`] over
    /// [`crate::salience_distance_transform`], including the
    /// last-bin-spike fallback for gradient-free images. `out` must hold
    /// `bins` values.
    pub fn dt_histogram(&mut self, bins: usize, max_value: f32, out: &mut [f32]) -> Result<()> {
        if !(2..=1024).contains(&bins) {
            return Err(FeatureError::InvalidParameter(format!(
                "dt histogram bins must be in 2..=1024, got {bins}"
            )));
        }
        if max_value.is_nan() || max_value <= 0.0 {
            return Err(FeatureError::InvalidParameter(
                "dt histogram max_value must be positive".into(),
            ));
        }
        if self.ensure_dt() {
            dt_histogram_into(&self.s.dt, bins, max_value, out);
        } else {
            // Flat image: all mass "infinitely far" from edges.
            out.fill(0.0);
            out[bins - 1] = 1.0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(w: u32, h: u32) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            cbir_image::Rgb::new(
                ((x * 37 + y * 11) % 256) as u8,
                ((x * 5 + y * 53) % 256) as u8,
                ((x + y * 7) % 256) as u8,
            )
        })
    }

    #[test]
    fn context_matches_standalone_functions_bitwise() {
        let img = test_image(48, 32);
        let mut scratch = ExtractScratch::new();
        let canonical = 64u32;
        let canon = cbir_image::ops::resize_bilinear_rgb(&img, canonical, canonical).unwrap();
        let gray = canon.to_gray();
        let q = Quantizer::hsv_default();

        let mut ctx = ExtractContext::new(&img, &mut scratch, canonical).unwrap();

        let mut got = vec![0.0f32; q.n_bins()];
        ctx.color_histogram(&q, &mut got).unwrap();
        let want = crate::ColorHistogram::compute(&canon, &q)
            .unwrap()
            .normalized();
        assert_eq!(bits(&got), bits(&want));

        let mut got = vec![0.0f32; 16];
        ctx.edge_orientation(16, &mut got).unwrap();
        let want = crate::edge_orientation_histogram(&gray, 16).unwrap();
        assert_eq!(bits(&got), bits(&want));

        let mut got = vec![0.0f32; 3];
        ctx.tamura(&mut got).unwrap();
        let want = crate::tamura_features(&gray).unwrap();
        assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn canonical_input_skips_resize_without_changing_results() {
        let img = test_image(64, 64);
        let mut scratch = ExtractScratch::new();
        let mut ctx = ExtractContext::new(&img, &mut scratch, 64).unwrap();
        assert!(ctx.canon_is_input);
        let q = Quantizer::rgb_compact();
        let mut got = vec![0.0f32; q.n_bins()];
        ctx.color_histogram(&q, &mut got).unwrap();
        // The identity resize is bit-exact, so going through the resize
        // path anyway must give the same histogram.
        let canon = cbir_image::ops::resize_bilinear_rgb(&img, 64, 64).unwrap();
        let want = crate::ColorHistogram::compute(&canon, &q)
            .unwrap()
            .normalized();
        assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn scratch_reuse_across_images_is_clean() {
        // A second image through the same scratch must not see stale state
        // from the first (quant planes, flags, masks).
        let a = test_image(40, 40);
        let b = RgbImage::filled(32, 32, cbir_image::Rgb::new(9, 200, 40));
        let q = Quantizer::hsv_default();
        let mut scratch = ExtractScratch::new();

        let mut va = vec![0.0f32; q.n_bins()];
        ExtractContext::new(&a, &mut scratch, 64)
            .unwrap()
            .color_histogram(&q, &mut va)
            .unwrap();

        let mut vb = vec![0.0f32; q.n_bins()];
        ExtractContext::new(&b, &mut scratch, 64)
            .unwrap()
            .color_histogram(&q, &mut vb)
            .unwrap();

        let mut fresh = ExtractScratch::new();
        let mut vb_fresh = vec![0.0f32; q.n_bins()];
        ExtractContext::new(&b, &mut fresh, 64)
            .unwrap()
            .color_histogram(&q, &mut vb_fresh)
            .unwrap();
        assert_eq!(bits(&vb), bits(&vb_fresh));
        assert_ne!(bits(&va), bits(&vb));
    }

    #[test]
    fn empty_image_is_rejected() {
        let img = RgbImage::filled(0, 0, cbir_image::Rgb::default());
        let mut scratch = ExtractScratch::new();
        assert!(ExtractContext::new(&img, &mut scratch, 64).is_err());
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}
