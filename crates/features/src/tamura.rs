//! Tamura texture features: coarseness, contrast, and directionality — the
//! triple designed to match human texture perception.

use crate::error::{FeatureError, Result};
use cbir_image::ops::{sobel, IntegralImage};
use cbir_image::{FloatImage, GrayImage};

/// Mean over the `2^k × 2^k` window centred at `(x, y)`, or `None` if the
/// window does not fit entirely inside the image. Partial (clamped) windows
/// are rejected rather than approximated: a truncated window has a slightly
/// different mean, which would hand the arg-max spurious nonzero responses
/// at large scales on textures whose true response there is zero.
///
/// This is the reference formulation; [`coarseness_core`] computes the
/// same responses with the bounds tests hoisted and the division factored
/// out (a test asserts bitwise agreement).
#[cfg_attr(not(test), allow(dead_code))]
fn window_mean(ii: &IntegralImage, x: i64, y: i64, k: u32) -> Option<f64> {
    let half = (1i64 << k) / 2;
    let w = ii.width() as i64;
    let h = ii.height() as i64;
    let x0 = x - half;
    let y0 = y - half;
    let x1 = x + half - 1;
    let y1 = y + half - 1;
    if x0 < 0 || y0 < 0 || x1 >= w || y1 >= h {
        return None;
    }
    Some(ii.mean(x0 as u32, y0 as u32, x1 as u32, y1 as u32))
}

/// Tamura coarseness: for each pixel, find the window size `2^k` that
/// maximizes the intensity difference between opposite neighbourhoods, and
/// average the winning sizes. Large values mean coarse (large-grain)
/// texture.
pub fn coarseness(img: &GrayImage, max_k: u32) -> Result<f64> {
    if img.is_empty() {
        return Err(FeatureError::EmptyImage("tamura coarseness"));
    }
    if max_k == 0 || max_k > 8 {
        return Err(FeatureError::InvalidParameter(format!(
            "coarseness max_k must be in 1..=8, got {max_k}"
        )));
    }
    let ii = IntegralImage::new(img);
    Ok(coarseness_core(&ii, max_k))
}

/// Reusable buffers for [`coarseness_core_into`]: the per-scale response
/// plane, the running arg-max planes, and one row of column-prefix sums.
/// All are sized to the image on first use and reused across images.
#[derive(Default)]
pub(crate) struct CoarsenessScratch {
    /// Response `max(E_h, E_v)` at the current scale, zero where the
    /// opposed windows do not fit.
    e: Vec<f64>,
    best_e: Vec<f64>,
    best_k: Vec<u8>,
    /// Per-row combination of summed-area-table rows (`w + 1` entries).
    cs: Vec<i64>,
}

/// [`coarseness`] over a prebuilt integral image (whose dimensions are the
/// image's). Allocates its scratch; hot paths keep a
/// [`CoarsenessScratch`] alive and call [`coarseness_core_into`].
pub(crate) fn coarseness_core(ii: &IntegralImage, max_k: u32) -> f64 {
    coarseness_core_into(ii, max_k, &mut CoarsenessScratch::default())
}

/// Scale-major coarseness with the per-scale in-bounds tests of
/// [`window_mean`] hoisted into rectangle bounds and each row's window
/// sums derived from one precomputed prefix combination.
///
/// For the horizontal pair at row `y`, both opposed windows span rows
/// `[y-half, y+half-1]`, so with `cs[c] = colprefix(c)` (the sum of those
/// rows left of column `c`) the response numerator is
/// `|cs[x+2^k] - 2·cs[x] + cs[x-2^k]|` — an exact integer. The vertical
/// pair is the transpose with `cs[c] = prefix(y+2^k) - 2·prefix(y) +
/// prefix(y-2^k)` per column. Window sums are < 2^24 (so exact in f64) and
/// the `(2^k)^2` area divisor is a power of two (so the division is
/// exact); the responses therefore carry the exact same f64 bits as the
/// straightforward [`window_mean`] formulation, and scanning scales in
/// ascending order with the same tie rule makes the winning scale per
/// pixel identical (a test asserts bitwise agreement).
pub(crate) fn coarseness_core_into(
    ii: &IntegralImage,
    max_k: u32,
    s: &mut CoarsenessScratch,
) -> f64 {
    let (w, h) = (ii.width(), ii.height());
    let kmax = max_k.min({
        // Largest window that fits.
        let mut k = 1;
        while (1u32 << (k + 1)) <= w.min(h) {
            k += 1;
        }
        k
    });
    let (wi, hi) = (w as i64, h as i64);
    let (wu, n) = (w as usize, w as usize * h as usize);
    s.e.clear();
    s.e.resize(n, 0.0);
    s.best_e.clear();
    s.best_e.resize(n, 0.0);
    s.best_k.clear();
    s.best_k.resize(n, 1);
    s.cs.clear();
    s.cs.resize(wu + 1, 0);

    for k in 1..=kmax {
        let half = 1i64 << (k - 1);
        let win = 2 * half;
        // `(2^k)^2` divisor: a power of two, so dividing an integer
        // window-sum difference by it is exact.
        let area = ((1u64 << k) * (1u64 << k)) as f64;
        s.e.fill(0.0);

        // Horizontal pair: windows [x-2^k, x-1] and [x, x+2^k-1] by
        // column, both spanning rows [y-half, y+half-1].
        for y in half..=(hi - half) {
            let top = ii.row_prefix((y - half) as u32);
            let bot = ii.row_prefix((y + half) as u32);
            for (c, cs) in s.cs.iter_mut().enumerate() {
                *cs = (bot[c] - top[c]) as i64;
            }
            let cs = &s.cs[..];
            let row = &mut s.e[y as usize * wu..][..wu];
            for x in win..=(wi - win) {
                let x = x as usize;
                let num = (cs[x + win as usize] - 2 * cs[x] + cs[x - win as usize]).unsigned_abs();
                row[x] = num as f64 / area;
            }
        }
        // Vertical pair is the transpose: windows [y-2^k, y-1] and
        // [y, y+2^k-1] by row, both spanning columns [x-half, x+half-1].
        for y in win..=(hi - win) {
            let up = ii.row_prefix((y - win) as u32);
            let mid = ii.row_prefix(y as u32);
            let down = ii.row_prefix((y + win) as u32);
            for (c, cs) in s.cs.iter_mut().enumerate() {
                *cs = (down[c] - mid[c]) as i64 - (mid[c] - up[c]) as i64;
            }
            let cs = &s.cs[..];
            let row = &mut s.e[y as usize * wu..][..wu];
            for x in half..=(wi - half) {
                let x = x as usize;
                let num = (cs[x + half as usize] - cs[x - half as usize]).unsigned_abs();
                let ev = num as f64 / area;
                // Zero where the horizontal pair did not fit, so this is
                // max(E_h, E_v) exactly as the pixel-major loop computes.
                row[x] = row[x].max(ev);
            }
        }
        // Fold this scale into the running arg-max. Both rectangles above
        // sit inside rows/cols [half, dim-half], and pixels outside them
        // hold zero, which never updates. Ties between positive responses
        // go to the coarser scale: a block of width 2^k produces identical
        // responses at all window sizes up to 2^k, and the grain size is
        // the largest.
        for y in half..=(hi - half) {
            let base = y as usize * wu;
            for x in half..=(wi - half) {
                let i = base + x as usize;
                let e = s.e[i];
                if e > s.best_e[i] || (e > 0.0 && e == s.best_e[i]) {
                    s.best_e[i] = e;
                    s.best_k[i] = k as u8;
                }
            }
        }
    }

    // Each term is an exact power of two and the total stays below 2^53,
    // so this sum is exact and independent of accumulation order.
    let mut total = 0.0f64;
    for &bk in &s.best_k {
        total += (1u64 << bk) as f64;
    }
    total / (w as f64 * h as f64)
}

/// Tamura contrast: `σ / κ^{1/4}` where `σ` is the intensity standard
/// deviation and `κ` the kurtosis (`μ₄/σ⁴`). Zero for a constant image.
pub fn contrast(img: &GrayImage) -> Result<f64> {
    if img.is_empty() {
        return Err(FeatureError::EmptyImage("tamura contrast"));
    }
    let n = img.len() as f64;
    let mean = img.pixels().map(|p| p as f64).sum::<f64>() / n;
    let mut m2 = 0.0;
    let mut m4 = 0.0;
    for p in img.pixels() {
        let d = p as f64 - mean;
        let d2 = d * d;
        m2 += d2;
        m4 += d2 * d2;
    }
    m2 /= n;
    m4 /= n;
    if m2 <= 1e-12 {
        return Ok(0.0);
    }
    let kurtosis = m4 / (m2 * m2);
    Ok(m2.sqrt() / kurtosis.powf(0.25))
}

/// Tamura directionality in `[0, 1]`: 1 when all significant gradients
/// share one orientation, near 0 for isotropic texture.
///
/// Computed as `1 - H/H_max` where `H` is the entropy of the
/// magnitude-weighted orientation histogram (`bins` bins over `[0, π)`).
pub fn directionality(img: &GrayImage, bins: usize) -> Result<f64> {
    if !(2..=256).contains(&bins) {
        return Err(FeatureError::InvalidParameter(format!(
            "directionality bins must be in 2..=256, got {bins}"
        )));
    }
    if img.is_empty() {
        return Err(FeatureError::EmptyImage("tamura directionality"));
    }
    let g = sobel::sobel(img);
    let mag = g.magnitude();
    let ori = g.orientation();
    let mut hist = Vec::new();
    Ok(directionality_core(&mag, &ori, bins, &mut hist))
}

/// [`directionality`] over precomputed magnitude and orientation planes,
/// with `hist` reused as the accumulation buffer. Note the running `total`:
/// it is accumulated per pixel (not summed over bins afterwards), mirroring
/// the original formulation exactly.
pub(crate) fn directionality_core(
    mag: &FloatImage,
    ori: &FloatImage,
    bins: usize,
    hist: &mut Vec<f64>,
) -> f64 {
    hist.clear();
    hist.resize(bins, 0.0);
    let mut total = 0.0f64;
    for (&m, &o) in mag.as_slice().iter().zip(ori.as_slice()) {
        if m <= 0.0 {
            continue;
        }
        let b = ((o / std::f32::consts::PI) * bins as f32) as usize;
        hist[b.min(bins - 1)] += m as f64;
        total += m as f64;
    }
    if total <= 0.0 {
        // No gradients: perfectly isotropic by convention.
        return 0.0;
    }
    let entropy: f64 = hist
        .iter()
        .filter(|&&v| v > 0.0)
        .map(|&v| {
            let p = v / total;
            -p * p.ln()
        })
        .sum();
    let h_max = (bins as f64).ln();
    (1.0 - entropy / h_max).clamp(0.0, 1.0)
}

/// The three Tamura features as `[coarseness, contrast, directionality]`,
/// with coarseness log₂-scaled onto a small range for use in composite
/// vectors.
pub fn tamura_features(img: &GrayImage) -> Result<Vec<f32>> {
    let c = coarseness(img, 5)?;
    let con = contrast(img)?;
    let d = directionality(img, 16)?;
    Ok(vec![c.log2() as f32, (con / 128.0) as f32, d as f32])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes(n: u32, period: u32, horizontal: bool) -> GrayImage {
        GrayImage::from_fn(n, n, |x, y| {
            let t = if horizontal { y } else { x };
            if (t / period).is_multiple_of(2) {
                30
            } else {
                220
            }
        })
    }

    fn noise(n: u32) -> GrayImage {
        GrayImage::from_fn(n, n, |x, y| {
            ((x * 7919 + y * 104729 + x * y * 37) % 256) as u8
        })
    }

    #[test]
    fn coarseness_orders_texture_scales() {
        // Note: period-1 stripes are degenerate for the Tamura operator
        // (every even window has the same mean), so the finest meaningful
        // grain is block width 2.
        let fine = stripes(64, 2, false);
        let coarse = stripes(64, 8, false);
        let cf = coarseness(&fine, 5).unwrap();
        let cc = coarseness(&coarse, 5).unwrap();
        assert!(cc > cf, "coarse {cc} should exceed fine {cf}");
    }

    #[test]
    fn coarseness_bounds() {
        let img = noise(32);
        let c = coarseness(&img, 5).unwrap();
        assert!(c >= 2.0); // smallest window is 2^1
        assert!(c <= 32.0); // largest allowed is 2^5
    }

    #[test]
    fn contrast_orders_dynamic_ranges() {
        let low = GrayImage::from_fn(32, 32, |x, y| 120 + ((x + y) % 16) as u8);
        let high = stripes(32, 4, false);
        let cl = contrast(&low).unwrap();
        let ch = contrast(&high).unwrap();
        assert!(ch > cl * 2.0, "high {ch} vs low {cl}");
    }

    #[test]
    fn contrast_of_constant_is_zero() {
        assert_eq!(contrast(&GrayImage::filled(16, 16, 80)).unwrap(), 0.0);
    }

    #[test]
    fn directionality_separates_stripes_from_noise() {
        let d_stripes = directionality(&stripes(64, 4, false), 16).unwrap();
        let d_noise = directionality(&noise(64), 16).unwrap();
        assert!(
            d_stripes > 0.8,
            "stripes should be highly directional: {d_stripes}"
        );
        assert!(
            d_noise < 0.5,
            "noise should be weakly directional: {d_noise}"
        );
    }

    #[test]
    fn directionality_is_orientation_magnitude_not_direction() {
        // Horizontal and vertical stripes are both perfectly directional.
        let dh = directionality(&stripes(64, 4, true), 16).unwrap();
        let dv = directionality(&stripes(64, 4, false), 16).unwrap();
        assert!((dh - dv).abs() < 0.1, "{dh} vs {dv}");
    }

    #[test]
    fn flat_image_conventions() {
        let flat = GrayImage::filled(32, 32, 99);
        assert_eq!(directionality(&flat, 16).unwrap(), 0.0);
        assert_eq!(contrast(&flat).unwrap(), 0.0);
        // Coarseness on a flat image is defined (ties resolve to smallest
        // window), just not meaningful.
        assert!(coarseness(&flat, 5).is_ok());
    }

    #[test]
    fn combined_vector_shape() {
        let f = tamura_features(&noise(64)).unwrap();
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|v| v.is_finite()));
        assert!((0.0..=1.0).contains(&f[2]));
    }

    #[test]
    fn validation() {
        let img = GrayImage::filled(8, 8, 0);
        assert!(coarseness(&img, 0).is_err());
        assert!(coarseness(&img, 9).is_err());
        assert!(directionality(&img, 1).is_err());
        assert!(directionality(&img, 300).is_err());
        let empty = GrayImage::filled(0, 0, 0);
        assert!(coarseness(&empty, 3).is_err());
        assert!(contrast(&empty).is_err());
        assert!(directionality(&empty, 8).is_err());
    }

    #[test]
    fn coarseness_matches_window_mean_formulation_bitwise() {
        // Reference: the straightforward per-pixel window_mean arg-max.
        fn reference(img: &GrayImage, max_k: u32) -> f64 {
            let ii = IntegralImage::new(img);
            let (w, h) = (ii.width(), ii.height());
            let kmax = max_k.min({
                let mut k = 1;
                while (1u32 << (k + 1)) <= w.min(h) {
                    k += 1;
                }
                k
            });
            let mut total = 0.0f64;
            for y in 0..h as i64 {
                for x in 0..w as i64 {
                    let mut best_e = 0.0f64;
                    let mut best_k = 1u32;
                    for k in 1..=kmax {
                        let step = 1i64 << (k - 1);
                        let eh = match (
                            window_mean(&ii, x + step, y, k),
                            window_mean(&ii, x - step, y, k),
                        ) {
                            (Some(a), Some(b)) => (a - b).abs(),
                            _ => 0.0,
                        };
                        let ev = match (
                            window_mean(&ii, x, y + step, k),
                            window_mean(&ii, x, y - step, k),
                        ) {
                            (Some(a), Some(b)) => (a - b).abs(),
                            _ => 0.0,
                        };
                        let e = eh.max(ev);
                        if e > best_e || (e > 0.0 && e == best_e) {
                            best_e = e;
                            best_k = k;
                        }
                    }
                    total += (1u64 << best_k) as f64;
                }
            }
            total / (w as f64 * h as f64)
        }
        // Non-square shapes so one axis runs out of room before the other,
        // plus max_k values above and below what fits.
        for (img, max_k) in [
            (noise(48), 5),
            (noise(17), 8),
            (stripes(64, 4, false), 5),
            (
                GrayImage::from_fn(40, 9, |x, y| ((x * 31 + y * 7) % 256) as u8),
                4,
            ),
            (
                GrayImage::from_fn(9, 40, |x, y| ((x * 13 + y * 47) % 256) as u8),
                4,
            ),
            (GrayImage::filled(16, 16, 80), 3),
        ] {
            let got = coarseness(&img, max_k).unwrap();
            let want = reference(&img, max_k);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{}x{} max_k={max_k}: {got} vs {want}",
                img.width(),
                img.height()
            );
        }
    }

    #[test]
    fn determinism() {
        let img = noise(48);
        assert_eq!(
            tamura_features(&img).unwrap(),
            tamura_features(&img).unwrap()
        );
    }
}
