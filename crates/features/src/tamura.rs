//! Tamura texture features: coarseness, contrast, and directionality — the
//! triple designed to match human texture perception.

use crate::error::{FeatureError, Result};
use cbir_image::ops::{sobel, IntegralImage};
use cbir_image::GrayImage;

/// Mean over the `2^k × 2^k` window centred at `(x, y)`, or `None` if the
/// window does not fit entirely inside the image. Partial (clamped) windows
/// are rejected rather than approximated: a truncated window has a slightly
/// different mean, which would hand the arg-max spurious nonzero responses
/// at large scales on textures whose true response there is zero.
fn window_mean(ii: &IntegralImage, x: i64, y: i64, k: u32) -> Option<f64> {
    let half = (1i64 << k) / 2;
    let w = ii.width() as i64;
    let h = ii.height() as i64;
    let x0 = x - half;
    let y0 = y - half;
    let x1 = x + half - 1;
    let y1 = y + half - 1;
    if x0 < 0 || y0 < 0 || x1 >= w || y1 >= h {
        return None;
    }
    Some(ii.mean(x0 as u32, y0 as u32, x1 as u32, y1 as u32))
}

/// Tamura coarseness: for each pixel, find the window size `2^k` that
/// maximizes the intensity difference between opposite neighbourhoods, and
/// average the winning sizes. Large values mean coarse (large-grain)
/// texture.
pub fn coarseness(img: &GrayImage, max_k: u32) -> Result<f64> {
    if img.is_empty() {
        return Err(FeatureError::EmptyImage("tamura coarseness"));
    }
    if max_k == 0 || max_k > 8 {
        return Err(FeatureError::InvalidParameter(format!(
            "coarseness max_k must be in 1..=8, got {max_k}"
        )));
    }
    let (w, h) = img.dimensions();
    let kmax = max_k.min({
        // Largest window that fits.
        let mut k = 1;
        while (1u32 << (k + 1)) <= w.min(h) {
            k += 1;
        }
        k
    });
    let ii = IntegralImage::new(img);
    let mut total = 0.0f64;
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let mut best_e = 0.0f64;
            let mut best_k = 1u32;
            for k in 1..=kmax {
                let step = 1i64 << (k - 1);
                let eh = match (
                    window_mean(&ii, x + step, y, k),
                    window_mean(&ii, x - step, y, k),
                ) {
                    (Some(a), Some(b)) => (a - b).abs(),
                    _ => 0.0,
                };
                let ev = match (
                    window_mean(&ii, x, y + step, k),
                    window_mean(&ii, x, y - step, k),
                ) {
                    (Some(a), Some(b)) => (a - b).abs(),
                    _ => 0.0,
                };
                let e = eh.max(ev);
                // Ties between positive responses go to the coarser scale:
                // a block of width 2^k produces identical responses at all
                // window sizes up to 2^k, and the grain size is the largest.
                if e > best_e || (e > 0.0 && e == best_e) {
                    best_e = e;
                    best_k = k;
                }
            }
            total += (1u64 << best_k) as f64;
        }
    }
    Ok(total / (w as f64 * h as f64))
}

/// Tamura contrast: `σ / κ^{1/4}` where `σ` is the intensity standard
/// deviation and `κ` the kurtosis (`μ₄/σ⁴`). Zero for a constant image.
pub fn contrast(img: &GrayImage) -> Result<f64> {
    if img.is_empty() {
        return Err(FeatureError::EmptyImage("tamura contrast"));
    }
    let n = img.len() as f64;
    let mean = img.pixels().map(|p| p as f64).sum::<f64>() / n;
    let mut m2 = 0.0;
    let mut m4 = 0.0;
    for p in img.pixels() {
        let d = p as f64 - mean;
        let d2 = d * d;
        m2 += d2;
        m4 += d2 * d2;
    }
    m2 /= n;
    m4 /= n;
    if m2 <= 1e-12 {
        return Ok(0.0);
    }
    let kurtosis = m4 / (m2 * m2);
    Ok(m2.sqrt() / kurtosis.powf(0.25))
}

/// Tamura directionality in `[0, 1]`: 1 when all significant gradients
/// share one orientation, near 0 for isotropic texture.
///
/// Computed as `1 - H/H_max` where `H` is the entropy of the
/// magnitude-weighted orientation histogram (`bins` bins over `[0, π)`).
pub fn directionality(img: &GrayImage, bins: usize) -> Result<f64> {
    if !(2..=256).contains(&bins) {
        return Err(FeatureError::InvalidParameter(format!(
            "directionality bins must be in 2..=256, got {bins}"
        )));
    }
    if img.is_empty() {
        return Err(FeatureError::EmptyImage("tamura directionality"));
    }
    let g = sobel::sobel(img);
    let mag = g.magnitude();
    let ori = g.orientation();
    let mut hist = vec![0.0f64; bins];
    let mut total = 0.0f64;
    for (m, o) in mag.pixels().zip(ori.pixels()) {
        if m <= 0.0 {
            continue;
        }
        let b = ((o / std::f32::consts::PI) * bins as f32) as usize;
        hist[b.min(bins - 1)] += m as f64;
        total += m as f64;
    }
    if total <= 0.0 {
        // No gradients: perfectly isotropic by convention.
        return Ok(0.0);
    }
    let entropy: f64 = hist
        .iter()
        .filter(|&&v| v > 0.0)
        .map(|&v| {
            let p = v / total;
            -p * p.ln()
        })
        .sum();
    let h_max = (bins as f64).ln();
    Ok((1.0 - entropy / h_max).clamp(0.0, 1.0))
}

/// The three Tamura features as `[coarseness, contrast, directionality]`,
/// with coarseness log₂-scaled onto a small range for use in composite
/// vectors.
pub fn tamura_features(img: &GrayImage) -> Result<Vec<f32>> {
    let c = coarseness(img, 5)?;
    let con = contrast(img)?;
    let d = directionality(img, 16)?;
    Ok(vec![c.log2() as f32, (con / 128.0) as f32, d as f32])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes(n: u32, period: u32, horizontal: bool) -> GrayImage {
        GrayImage::from_fn(n, n, |x, y| {
            let t = if horizontal { y } else { x };
            if (t / period).is_multiple_of(2) {
                30
            } else {
                220
            }
        })
    }

    fn noise(n: u32) -> GrayImage {
        GrayImage::from_fn(n, n, |x, y| {
            ((x * 7919 + y * 104729 + x * y * 37) % 256) as u8
        })
    }

    #[test]
    fn coarseness_orders_texture_scales() {
        // Note: period-1 stripes are degenerate for the Tamura operator
        // (every even window has the same mean), so the finest meaningful
        // grain is block width 2.
        let fine = stripes(64, 2, false);
        let coarse = stripes(64, 8, false);
        let cf = coarseness(&fine, 5).unwrap();
        let cc = coarseness(&coarse, 5).unwrap();
        assert!(cc > cf, "coarse {cc} should exceed fine {cf}");
    }

    #[test]
    fn coarseness_bounds() {
        let img = noise(32);
        let c = coarseness(&img, 5).unwrap();
        assert!(c >= 2.0); // smallest window is 2^1
        assert!(c <= 32.0); // largest allowed is 2^5
    }

    #[test]
    fn contrast_orders_dynamic_ranges() {
        let low = GrayImage::from_fn(32, 32, |x, y| 120 + ((x + y) % 16) as u8);
        let high = stripes(32, 4, false);
        let cl = contrast(&low).unwrap();
        let ch = contrast(&high).unwrap();
        assert!(ch > cl * 2.0, "high {ch} vs low {cl}");
    }

    #[test]
    fn contrast_of_constant_is_zero() {
        assert_eq!(contrast(&GrayImage::filled(16, 16, 80)).unwrap(), 0.0);
    }

    #[test]
    fn directionality_separates_stripes_from_noise() {
        let d_stripes = directionality(&stripes(64, 4, false), 16).unwrap();
        let d_noise = directionality(&noise(64), 16).unwrap();
        assert!(
            d_stripes > 0.8,
            "stripes should be highly directional: {d_stripes}"
        );
        assert!(
            d_noise < 0.5,
            "noise should be weakly directional: {d_noise}"
        );
    }

    #[test]
    fn directionality_is_orientation_magnitude_not_direction() {
        // Horizontal and vertical stripes are both perfectly directional.
        let dh = directionality(&stripes(64, 4, true), 16).unwrap();
        let dv = directionality(&stripes(64, 4, false), 16).unwrap();
        assert!((dh - dv).abs() < 0.1, "{dh} vs {dv}");
    }

    #[test]
    fn flat_image_conventions() {
        let flat = GrayImage::filled(32, 32, 99);
        assert_eq!(directionality(&flat, 16).unwrap(), 0.0);
        assert_eq!(contrast(&flat).unwrap(), 0.0);
        // Coarseness on a flat image is defined (ties resolve to smallest
        // window), just not meaningful.
        assert!(coarseness(&flat, 5).is_ok());
    }

    #[test]
    fn combined_vector_shape() {
        let f = tamura_features(&noise(64)).unwrap();
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|v| v.is_finite()));
        assert!((0.0..=1.0).contains(&f[2]));
    }

    #[test]
    fn validation() {
        let img = GrayImage::filled(8, 8, 0);
        assert!(coarseness(&img, 0).is_err());
        assert!(coarseness(&img, 9).is_err());
        assert!(directionality(&img, 1).is_err());
        assert!(directionality(&img, 300).is_err());
        let empty = GrayImage::filled(0, 0, 0);
        assert!(coarseness(&empty, 3).is_err());
        assert!(contrast(&empty).is_err());
        assert!(directionality(&empty, 8).is_err());
    }

    #[test]
    fn determinism() {
        let img = noise(48);
        assert_eq!(
            tamura_features(&img).unwrap(),
            tamura_features(&img).unwrap()
        );
    }
}
