//! Chamfer distance transforms and the salience distance transform (SDT).
//!
//! The distance transform labels every pixel with its distance to the
//! nearest feature (edge) pixel using the two-pass 3-4 chamfer
//! approximation of Euclidean distance. The salience variant seeds edge
//! pixels with a cost inversely related to their edge strength instead of
//! zero, so spurious weak edges are soft-assigned rather than thresholded
//! away. Histograms of the (S)DT values profile scene complexity: cluttered
//! scenes populate small distances, sparse scenes large ones.

use crate::error::{FeatureError, Result};
use cbir_image::ops::sobel;
use cbir_image::{FloatImage, GrayImage};

/// Chamfer 3-4 weights (approximately 3·Euclidean).
const AXIAL: f32 = 3.0;
const DIAGONAL: f32 = 4.0;

/// A large finite "infinity" that survives additions without overflow.
const INF: f32 = 1e30;

/// Two-pass 3-4 chamfer propagation over an initialized cost plane.
fn chamfer_propagate(dt: &mut FloatImage) {
    let (w, h) = dt.dimensions();
    let (wi, hi) = (w as i64, h as i64);
    // Forward pass: N, NW, NE, W neighbours.
    for y in 0..hi {
        for x in 0..wi {
            let mut best = dt.pixel(x as u32, y as u32);
            let mut relax = |dx: i64, dy: i64, cost: f32| {
                let nx = x + dx;
                let ny = y + dy;
                if nx >= 0 && ny >= 0 && nx < wi && ny < hi {
                    let cand = dt.pixel(nx as u32, ny as u32) + cost;
                    if cand < best {
                        best = cand;
                    }
                }
            };
            relax(-1, 0, AXIAL);
            relax(0, -1, AXIAL);
            relax(-1, -1, DIAGONAL);
            relax(1, -1, DIAGONAL);
            dt.set(x as u32, y as u32, best);
        }
    }
    // Backward pass: S, SE, SW, E neighbours.
    for y in (0..hi).rev() {
        for x in (0..wi).rev() {
            let mut best = dt.pixel(x as u32, y as u32);
            let mut relax = |dx: i64, dy: i64, cost: f32| {
                let nx = x + dx;
                let ny = y + dy;
                if nx >= 0 && ny >= 0 && nx < wi && ny < hi {
                    let cand = dt.pixel(nx as u32, ny as u32) + cost;
                    if cand < best {
                        best = cand;
                    }
                }
            };
            relax(1, 0, AXIAL);
            relax(0, 1, AXIAL);
            relax(1, 1, DIAGONAL);
            relax(-1, 1, DIAGONAL);
            dt.set(x as u32, y as u32, best);
        }
    }
}

/// Chamfer 3-4 distance transform of a binary image (nonzero = feature).
/// Output values are in chamfer units (divide by 3 for ~pixel units).
///
/// Returns an error if the image is empty or contains no feature pixels.
pub fn distance_transform(binary: &GrayImage) -> Result<FloatImage> {
    if binary.is_empty() {
        return Err(FeatureError::EmptyImage("distance transform"));
    }
    let mut any = false;
    let mut dt = binary.map(|p| {
        if p != 0 {
            any = true;
            0.0
        } else {
            INF
        }
    });
    if !any {
        return Err(FeatureError::InvalidParameter(
            "distance transform needs at least one feature pixel".into(),
        ));
    }
    chamfer_propagate(&mut dt);
    Ok(dt)
}

/// Salience distance transform: edge pixels (normalized Sobel magnitude
/// above a small floor) are seeded with `scale * (1 - strength)` so salient
/// edges attract strongly and weak edges only mildly; the chamfer passes
/// then propagate the minimum total cost.
pub fn salience_distance_transform(img: &GrayImage, scale: f32) -> Result<FloatImage> {
    if img.is_empty() {
        return Err(FeatureError::EmptyImage("salience distance transform"));
    }
    if scale <= 0.0 || !scale.is_finite() || scale.is_nan() {
        return Err(FeatureError::InvalidParameter(format!(
            "salience scale must be positive, got {scale}"
        )));
    }
    let mag = sobel::sobel_magnitude(img);
    let mut dt = FloatImage::filled(0, 0, 0.0);
    if !sdt_from_magnitude(&mag, scale, &mut dt) {
        return Err(FeatureError::InvalidParameter(
            "image has no gradients; SDT undefined".into(),
        ));
    }
    Ok(dt)
}

/// [`salience_distance_transform`] over a precomputed normalized Sobel
/// magnitude plane, writing into a reusable `dt` plane. Returns `false`
/// (leaving `dt` untouched) when the image has no gradients — the caller
/// decides whether that is an error or a fallback.
pub(crate) fn sdt_from_magnitude(mag: &FloatImage, scale: f32, dt: &mut FloatImage) -> bool {
    let peak = mag.pixels().fold(0.0f32, f32::max);
    if peak <= 0.0 {
        return false;
    }
    let (w, h) = mag.dimensions();
    dt.reset(w, h, 0.0);
    for (d, &m) in dt.as_mut_slice().iter_mut().zip(mag.as_slice()) {
        let strength = m / peak;
        *d = if strength > 0.05 {
            scale * (1.0 - strength)
        } else {
            INF
        };
    }
    chamfer_propagate(dt);
    true
}

/// Normalized histogram of distance-transform values with `bins` uniform
/// bins over `[0, max_value]`; values beyond the range clamp into the last
/// bin. The histogram profile separates cluttered scenes (mass at small
/// distances) from sparse ones (mass at large distances).
pub fn dt_histogram(dt: &FloatImage, bins: usize, max_value: f32) -> Result<Vec<f32>> {
    if !(2..=1024).contains(&bins) {
        return Err(FeatureError::InvalidParameter(format!(
            "dt histogram bins must be in 2..=1024, got {bins}"
        )));
    }
    if max_value.is_nan() || max_value <= 0.0 {
        return Err(FeatureError::InvalidParameter(
            "dt histogram max_value must be positive".into(),
        ));
    }
    if dt.is_empty() {
        return Err(FeatureError::EmptyImage("dt histogram"));
    }
    let mut hist = vec![0.0f32; bins];
    dt_histogram_into(dt, bins, max_value, &mut hist);
    Ok(hist)
}

/// [`dt_histogram`] into a caller-provided slice; parameters are assumed
/// already validated (`bins` in range, positive `max_value`, non-empty `dt`).
pub(crate) fn dt_histogram_into(dt: &FloatImage, bins: usize, max_value: f32, out: &mut [f32]) {
    debug_assert_eq!(out.len(), bins);
    out.fill(0.0);
    for v in dt.pixels() {
        let b = ((v / max_value) * bins as f32) as usize;
        out[b.min(bins - 1)] += 1.0;
    }
    let n = dt.len() as f32;
    for h in out {
        *h /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_pixels_are_zero() {
        let mut img = GrayImage::filled(9, 9, 0);
        img.set(4, 4, 255);
        img.set(0, 0, 255);
        let dt = distance_transform(&img).unwrap();
        assert_eq!(dt.pixel(4, 4), 0.0);
        assert_eq!(dt.pixel(0, 0), 0.0);
    }

    #[test]
    fn chamfer_values_single_seed() {
        let mut img = GrayImage::filled(7, 7, 0);
        img.set(3, 3, 255);
        let dt = distance_transform(&img).unwrap();
        // Axial neighbours cost 3, diagonal 4, two axial steps 6, knight 7.
        assert_eq!(dt.pixel(4, 3), 3.0);
        assert_eq!(dt.pixel(3, 2), 3.0);
        assert_eq!(dt.pixel(4, 4), 4.0);
        assert_eq!(dt.pixel(2, 2), 4.0);
        assert_eq!(dt.pixel(5, 3), 6.0);
        assert_eq!(dt.pixel(5, 4), 7.0);
        assert_eq!(dt.pixel(0, 0), 12.0); // 3 diagonal steps
    }

    #[test]
    fn chamfer_approximates_euclidean_within_bounds() {
        // 3-4 chamfer distance over 3 stays within ~8% of Euclidean.
        let mut img = GrayImage::filled(31, 31, 0);
        img.set(15, 15, 255);
        let dt = distance_transform(&img).unwrap();
        for (x, y, v) in dt.enumerate_pixels() {
            let dx = x as f32 - 15.0;
            let dy = y as f32 - 15.0;
            let euclid = (dx * dx + dy * dy).sqrt();
            let chamfer = v / 3.0;
            assert!(
                chamfer <= euclid * 1.13 + 1e-3 && chamfer >= euclid * 0.92 - 1e-3,
                "at ({x},{y}): chamfer {chamfer} vs euclid {euclid}"
            );
        }
    }

    #[test]
    fn nearest_of_two_seeds_wins() {
        let mut img = GrayImage::filled(11, 1, 0);
        img.set(0, 0, 255);
        img.set(10, 0, 255);
        let dt = distance_transform(&img).unwrap();
        assert_eq!(dt.pixel(2, 0), 6.0); // 2 steps from left seed
        assert_eq!(dt.pixel(9, 0), 3.0); // 1 step from right seed
        assert_eq!(dt.pixel(5, 0), 15.0); // middle
    }

    #[test]
    fn no_features_is_an_error() {
        assert!(distance_transform(&GrayImage::filled(4, 4, 0)).is_err());
        assert!(distance_transform(&GrayImage::filled(0, 0, 0)).is_err());
    }

    #[test]
    fn sdt_prefers_strong_edges() {
        // One strong edge (0 -> 255) and one weak edge (100 -> 130).
        let img = GrayImage::from_fn(32, 8, |x, _| {
            if x < 8 {
                0
            } else if x < 16 {
                255
            } else if x < 24 {
                100
            } else {
                130
            }
        });
        let sdt = salience_distance_transform(&img, 10.0).unwrap();
        // On the strong boundary the cost is near zero; on the weak
        // boundary it is distinctly positive.
        let strong = sdt.pixel(8, 4);
        let weak = sdt.pixel(24, 4);
        assert!(strong < weak, "strong {strong} vs weak {weak}");
    }

    #[test]
    fn sdt_validation() {
        assert!(salience_distance_transform(&GrayImage::filled(0, 0, 0), 1.0).is_err());
        assert!(salience_distance_transform(&GrayImage::filled(8, 8, 7), 1.0).is_err()); // flat
        let img = GrayImage::from_fn(8, 8, |x, _| (x * 30) as u8);
        assert!(salience_distance_transform(&img, 0.0).is_err());
        assert!(salience_distance_transform(&img, f32::NAN).is_err());
        assert!(salience_distance_transform(&img, 5.0).is_ok());
    }

    #[test]
    fn histogram_separates_cluttered_from_sparse() {
        // Cluttered: dense grid of edges. Sparse: a single seed far away.
        let cluttered = GrayImage::from_fn(
            32,
            32,
            |x, y| {
                if x % 4 == 0 || y % 4 == 0 {
                    255
                } else {
                    0
                }
            },
        );
        let mut sparse = GrayImage::filled(32, 32, 0);
        sparse.set(0, 0, 255);
        let dtc = distance_transform(&cluttered).unwrap();
        let dts = distance_transform(&sparse).unwrap();
        let hc = dt_histogram(&dtc, 8, 48.0).unwrap();
        let hs = dt_histogram(&dts, 8, 48.0).unwrap();
        // Cluttered mass concentrates in the first bin; sparse spreads out.
        assert!(hc[0] > 0.9, "{hc:?}");
        assert!(hs[0] < 0.3, "{hs:?}");
        assert!(hs.iter().skip(3).sum::<f32>() > 0.3, "{hs:?}");
    }

    #[test]
    fn histogram_is_normalized_and_clamps_overflow() {
        let mut img = GrayImage::filled(16, 16, 0);
        img.set(0, 0, 255);
        let dt = distance_transform(&img).unwrap();
        let h = dt_histogram(&dt, 4, 6.0).unwrap(); // tiny range, most clamps
        let s: f32 = h.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(h[3] > 0.5); // clamped mass in the last bin
    }

    #[test]
    fn histogram_validation() {
        let dt = FloatImage::filled(4, 4, 1.0);
        assert!(dt_histogram(&dt, 1, 10.0).is_err());
        assert!(dt_histogram(&dt, 2000, 10.0).is_err());
        assert!(dt_histogram(&dt, 8, 0.0).is_err());
        assert!(dt_histogram(&FloatImage::filled(0, 0, 0.0), 8, 1.0).is_err());
    }
}
