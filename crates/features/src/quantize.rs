//! Color-space quantization: mapping 24-bit colors onto a small number of
//! histogram bins.
//!
//! The choice of space and bin counts is the central design decision for
//! color indexing: uniform RGB quantization is cheap but perceptually
//! non-uniform; HSV quantization with more hue than saturation/value bins
//! matches human sensitivity to hue.

use crate::error::{FeatureError, Result};
use cbir_image::color::{hsv_to_rgb, lab_to_rgb, rgb_to_hsv, rgb_to_lab, Hsv, Lab};
use cbir_image::Rgb;

/// A mapping from colors to bin indices, plus bin geometry for cross-bin
/// measures.
#[derive(Clone, Debug, PartialEq)]
pub enum Quantizer {
    /// Grayscale intensity quantized into `bins` uniform levels.
    Gray {
        /// Number of intensity bins (2..=256).
        bins: u32,
    },
    /// Uniform per-channel RGB quantization: `per_channel³` bins.
    UniformRgb {
        /// Levels per channel (2..=16).
        per_channel: u32,
    },
    /// HSV quantization with independent bin counts per component.
    Hsv {
        /// Hue bins over `[0, 360)`.
        hue: u32,
        /// Saturation bins over `[0, 1]`.
        sat: u32,
        /// Value bins over `[0, 1]`.
        val: u32,
    },
    /// CIE L*a*b* quantization — the space is approximately perceptually
    /// uniform, so uniform bins give perceptually even quantization.
    Lab {
        /// Lightness bins over `[0, 100]`.
        l: u32,
        /// a* bins over `[-110, 110]`.
        a: u32,
        /// b* bins over `[-110, 110]`.
        b: u32,
    },
}

/// a*/b* axis half-range used for quantization.
const LAB_AB_RANGE: f32 = 110.0;

impl Quantizer {
    /// Validate bin counts.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: String| Err(FeatureError::InvalidParameter(msg));
        match *self {
            Quantizer::Gray { bins } => {
                if !(2..=256).contains(&bins) {
                    return bad(format!("gray bins must be in 2..=256, got {bins}"));
                }
            }
            Quantizer::UniformRgb { per_channel } => {
                if !(2..=16).contains(&per_channel) {
                    return bad(format!(
                        "rgb per-channel levels must be in 2..=16, got {per_channel}"
                    ));
                }
            }
            Quantizer::Hsv { hue, sat, val } => {
                if hue < 2 || sat < 1 || val < 1 || hue * sat * val > 4096 {
                    return bad(format!(
                        "hsv bins ({hue}, {sat}, {val}) out of range (hue>=2, sat,val>=1, product<=4096)"
                    ));
                }
            }
            Quantizer::Lab { l, a, b } => {
                if l < 2 || a < 2 || b < 2 || l * a * b > 4096 {
                    return bad(format!(
                        "lab bins ({l}, {a}, {b}) out of range (each >=2, product<=4096)"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total number of bins.
    pub fn n_bins(&self) -> usize {
        match *self {
            Quantizer::Gray { bins } => bins as usize,
            Quantizer::UniformRgb { per_channel } => (per_channel as usize).pow(3),
            Quantizer::Hsv { hue, sat, val } => (hue * sat * val) as usize,
            Quantizer::Lab { l, a, b } => (l * a * b) as usize,
        }
    }

    /// Bin index for a color.
    pub fn bin_of(&self, p: Rgb) -> usize {
        match *self {
            Quantizer::Gray { bins } => {
                let v = p.luma() as u32;
                ((v * bins) / 256) as usize
            }
            Quantizer::UniformRgb { per_channel } => {
                let q = |c: u8| (c as u32 * per_channel / 256) as usize;
                (q(p.r()) * per_channel as usize + q(p.g())) * per_channel as usize + q(p.b())
            }
            Quantizer::Hsv { hue, sat, val } => {
                let c = rgb_to_hsv(p);
                let hb = ((c.h / 360.0 * hue as f32) as u32).min(hue - 1);
                let sb = ((c.s * sat as f32) as u32).min(sat - 1);
                let vb = ((c.v * val as f32) as u32).min(val - 1);
                ((hb * sat + sb) * val + vb) as usize
            }
            Quantizer::Lab { l, a, b } => {
                let c = rgb_to_lab(p);
                let lb = ((c.l / 100.0 * l as f32) as u32).min(l - 1);
                let norm = |v: f32, bins: u32| {
                    (((v + LAB_AB_RANGE) / (2.0 * LAB_AB_RANGE)).clamp(0.0, 1.0) * bins as f32)
                        as u32
                };
                let ab = norm(c.a, a).min(a - 1);
                let bb = norm(c.b, b).min(b - 1);
                ((lb * a + ab) * b + bb) as usize
            }
        }
    }

    /// Representative color-space position of a bin centre. Positions live
    /// in the quantizer's own space scaled to roughly `[0, 1]` per axis
    /// (hue is mapped onto a circle so angular wraparound is respected);
    /// used to build cross-bin similarity matrices.
    pub fn bin_position(&self, bin: usize) -> Vec<f32> {
        assert!(bin < self.n_bins(), "bin {bin} out of range");
        match *self {
            Quantizer::Gray { bins } => {
                vec![(bin as f32 + 0.5) / bins as f32]
            }
            Quantizer::UniformRgb { per_channel } => {
                let pc = per_channel as usize;
                let b = bin % pc;
                let g = (bin / pc) % pc;
                let r = bin / (pc * pc);
                let centre = |i: usize| (i as f32 + 0.5) / pc as f32;
                vec![centre(r), centre(g), centre(b)]
            }
            Quantizer::Hsv { hue, sat, val } => {
                let vb = bin as u32 % val;
                let sb = (bin as u32 / val) % sat;
                let hb = bin as u32 / (val * sat);
                let h = (hb as f32 + 0.5) / hue as f32 * std::f32::consts::TAU;
                let s = (sb as f32 + 0.5) / sat as f32;
                let v = (vb as f32 + 0.5) / val as f32;
                // Cone embedding: hue wraps around, saturation is the radius.
                vec![s * h.cos() * 0.5, s * h.sin() * 0.5, v]
            }
            Quantizer::Lab { l, a, b } => {
                let bb = bin as u32 % b;
                let ab = (bin as u32 / b) % a;
                let lb = bin as u32 / (b * a);
                vec![
                    (lb as f32 + 0.5) / l as f32,
                    (ab as f32 + 0.5) / a as f32,
                    (bb as f32 + 0.5) / b as f32,
                ]
            }
        }
    }

    /// A representative RGB color for a bin (for visualization/debugging).
    pub fn bin_color(&self, bin: usize) -> Rgb {
        assert!(bin < self.n_bins(), "bin {bin} out of range");
        match *self {
            Quantizer::Gray { bins } => {
                let v = ((bin as f32 + 0.5) / bins as f32 * 255.0) as u8;
                Rgb::new(v, v, v)
            }
            Quantizer::UniformRgb { per_channel } => {
                let pc = per_channel as usize;
                let b = bin % pc;
                let g = (bin / pc) % pc;
                let r = bin / (pc * pc);
                let centre = |i: usize| ((i as f32 + 0.5) / pc as f32 * 255.0) as u8;
                Rgb::new(centre(r), centre(g), centre(b))
            }
            Quantizer::Hsv { hue, sat, val } => {
                let vb = bin as u32 % val;
                let sb = (bin as u32 / val) % sat;
                let hb = bin as u32 / (val * sat);
                hsv_to_rgb(Hsv {
                    h: (hb as f32 + 0.5) / hue as f32 * 360.0,
                    s: (sb as f32 + 0.5) / sat as f32,
                    v: (vb as f32 + 0.5) / val as f32,
                })
            }
            Quantizer::Lab { l, a, b } => {
                let bb = bin as u32 % b;
                let ab = (bin as u32 / b) % a;
                let lb = bin as u32 / (b * a);
                lab_to_rgb(Lab {
                    l: (lb as f32 + 0.5) / l as f32 * 100.0,
                    a: (ab as f32 + 0.5) / a as f32 * 2.0 * LAB_AB_RANGE - LAB_AB_RANGE,
                    b: (bb as f32 + 0.5) / b as f32 * 2.0 * LAB_AB_RANGE - LAB_AB_RANGE,
                })
            }
        }
    }

    /// The classical default for color indexing: 16 hue × 4 saturation × 4
    /// value = 256 bins.
    pub fn hsv_default() -> Self {
        Quantizer::Hsv {
            hue: 16,
            sat: 4,
            val: 4,
        }
    }

    /// A compact 64-bin RGB quantizer (4 levels per channel), the usual
    /// correlogram configuration.
    pub fn rgb_compact() -> Self {
        Quantizer::UniformRgb { per_channel: 4 }
    }

    /// A perceptually-motivated default: 5 lightness x 7 a* x 7 b* = 245
    /// L*a*b* bins.
    pub fn lab_default() -> Self {
        Quantizer::Lab { l: 5, a: 7, b: 7 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_counts() {
        assert_eq!(Quantizer::Gray { bins: 16 }.n_bins(), 16);
        assert_eq!(Quantizer::UniformRgb { per_channel: 4 }.n_bins(), 64);
        assert_eq!(Quantizer::hsv_default().n_bins(), 256);
    }

    #[test]
    fn validation() {
        assert!(Quantizer::Gray { bins: 1 }.validate().is_err());
        assert!(Quantizer::Gray { bins: 257 }.validate().is_err());
        assert!(Quantizer::Gray { bins: 256 }.validate().is_ok());
        assert!(Quantizer::UniformRgb { per_channel: 1 }.validate().is_err());
        assert!(Quantizer::UniformRgb { per_channel: 17 }
            .validate()
            .is_err());
        assert!(Quantizer::Hsv {
            hue: 1,
            sat: 4,
            val: 4
        }
        .validate()
        .is_err());
        assert!(Quantizer::Hsv {
            hue: 64,
            sat: 16,
            val: 16
        }
        .validate()
        .is_err()); // 16384 > 4096
        assert!(Quantizer::hsv_default().validate().is_ok());
    }

    #[test]
    fn every_color_maps_to_a_valid_bin() {
        for q in [
            Quantizer::Gray { bins: 7 },
            Quantizer::UniformRgb { per_channel: 3 },
            Quantizer::Hsv {
                hue: 6,
                sat: 3,
                val: 3,
            },
        ] {
            let n = q.n_bins();
            for r in (0u16..=255).step_by(17) {
                for g in (0u16..=255).step_by(51) {
                    for b in (0u16..=255).step_by(51) {
                        let bin = q.bin_of(Rgb::new(r as u8, g as u8, b as u8));
                        assert!(bin < n, "{q:?} produced bin {bin} >= {n}");
                    }
                }
            }
        }
    }

    #[test]
    fn rgb_quantizer_extremes() {
        let q = Quantizer::UniformRgb { per_channel: 4 };
        assert_eq!(q.bin_of(Rgb::new(0, 0, 0)), 0);
        assert_eq!(q.bin_of(Rgb::new(255, 255, 255)), 63);
        // Pure red occupies the highest r-slot with g=b=0.
        assert_eq!(q.bin_of(Rgb::new(255, 0, 0)), 3 * 16);
    }

    #[test]
    fn gray_quantizer_uniform_split() {
        let q = Quantizer::Gray { bins: 4 };
        assert_eq!(q.bin_of(Rgb::new(0, 0, 0)), 0);
        assert_eq!(q.bin_of(Rgb::new(63, 63, 63)), 0);
        assert_eq!(q.bin_of(Rgb::new(64, 64, 64)), 1);
        assert_eq!(q.bin_of(Rgb::new(255, 255, 255)), 3);
    }

    #[test]
    fn similar_colors_share_a_bin_different_colors_do_not() {
        let q = Quantizer::hsv_default();
        // Two nearby reds.
        let a = q.bin_of(Rgb::new(250, 10, 10));
        let b = q.bin_of(Rgb::new(245, 15, 12));
        assert_eq!(a, b);
        // Red vs blue.
        let c = q.bin_of(Rgb::new(10, 10, 250));
        assert_ne!(a, c);
    }

    #[test]
    fn bin_positions_have_consistent_shape() {
        for q in [
            Quantizer::Gray { bins: 5 },
            Quantizer::UniformRgb { per_channel: 3 },
            Quantizer::Hsv {
                hue: 4,
                sat: 2,
                val: 2,
            },
        ] {
            let d = q.bin_position(0).len();
            for bin in 0..q.n_bins() {
                assert_eq!(q.bin_position(bin).len(), d);
            }
        }
    }

    #[test]
    fn hue_positions_wrap_circularly() {
        // With 8 hue bins, bin 0 and bin 7 are angular neighbours; their
        // cone positions must be closer than bin 0 and bin 4 (opposite).
        let q = Quantizer::Hsv {
            hue: 8,
            sat: 1,
            val: 1,
        };
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let p0 = q.bin_position(0);
        let p7 = q.bin_position(7);
        let p4 = q.bin_position(4);
        assert!(dist(&p0, &p7) < dist(&p0, &p4));
    }

    #[test]
    fn bin_color_roundtrips_through_bin_of() {
        // The representative color of a bin must quantize back to that bin
        // (for well-separated quantizers).
        let q = Quantizer::UniformRgb { per_channel: 4 };
        for bin in 0..q.n_bins() {
            assert_eq!(q.bin_of(q.bin_color(bin)), bin);
        }
        let q = Quantizer::Gray { bins: 8 };
        for bin in 0..q.n_bins() {
            assert_eq!(q.bin_of(q.bin_color(bin)), bin);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_position_bounds_checked() {
        Quantizer::Gray { bins: 4 }.bin_position(4);
    }

    #[test]
    fn lab_quantizer_basics() {
        let q = Quantizer::lab_default();
        assert_eq!(q.n_bins(), 245);
        assert!(q.validate().is_ok());
        assert!(Quantizer::Lab { l: 1, a: 4, b: 4 }.validate().is_err());
        assert!(Quantizer::Lab {
            l: 16,
            a: 16,
            b: 17
        }
        .validate()
        .is_err());
        // Every color maps into range.
        for r in (0u16..=255).step_by(51) {
            for g in (0u16..=255).step_by(51) {
                for b in (0u16..=255).step_by(51) {
                    let bin = q.bin_of(Rgb::new(r as u8, g as u8, b as u8));
                    assert!(bin < 245);
                }
            }
        }
    }

    #[test]
    fn lab_quantizer_separates_lightness_and_hue() {
        let q = Quantizer::lab_default();
        // Black vs white differ (lightness axis).
        assert_ne!(
            q.bin_of(Rgb::new(0, 0, 0)),
            q.bin_of(Rgb::new(255, 255, 255))
        );
        // Red vs green differ (a* axis).
        assert_ne!(
            q.bin_of(Rgb::new(200, 30, 30)),
            q.bin_of(Rgb::new(30, 200, 30))
        );
        // Two almost-identical reds share a bin.
        assert_eq!(
            q.bin_of(Rgb::new(200, 30, 30)),
            q.bin_of(Rgb::new(200, 31, 30))
        );
    }

    #[test]
    fn lab_positions_track_perceptual_axes() {
        let q = Quantizer::Lab { l: 4, a: 4, b: 4 };
        let dist = |x: &[f32], y: &[f32]| -> f32 {
            x.iter()
                .zip(y)
                .map(|(p, r)| (p - r) * (p - r))
                .sum::<f32>()
                .sqrt()
        };
        let dark_red = q.bin_of(Rgb::new(120, 10, 10));
        let bright_red = q.bin_of(Rgb::new(250, 60, 60));
        let green = q.bin_of(Rgb::new(10, 160, 10));
        let p_dr = q.bin_position(dark_red);
        let p_br = q.bin_position(bright_red);
        let p_g = q.bin_position(green);
        // Reds of different lightness are closer than red vs green.
        assert!(dist(&p_dr, &p_br) < dist(&p_dr, &p_g));
        // All positions share dimensionality 3.
        for bin in 0..q.n_bins() {
            assert_eq!(q.bin_position(bin).len(), 3);
        }
    }
}
