//! Gray-level co-occurrence matrices (Haralick) and the texture statistics
//! derived from them: energy, entropy, contrast, homogeneity, correlation.

use crate::error::{FeatureError, Result};
use cbir_image::GrayImage;

/// A normalized gray-level co-occurrence matrix at one displacement.
#[derive(Clone, Debug)]
pub struct Glcm {
    levels: usize,
    /// Row-major joint probabilities `P[i][j]`, summing to 1.
    p: Vec<f64>,
}

/// Standard displacement set: 0°, 45°, 90°, 135° at unit distance.
pub const STANDARD_OFFSETS: [(i32, i32); 4] = [(1, 0), (1, -1), (0, -1), (-1, -1)];

impl Glcm {
    /// Build a symmetric, normalized GLCM with `levels` quantized gray
    /// levels at displacement `(dx, dy)`.
    ///
    /// Symmetric means each pair is counted in both directions, the usual
    /// convention (Haralick's `P(i,j) + P(j,i)`).
    pub fn compute(img: &GrayImage, levels: usize, dx: i32, dy: i32) -> Result<Self> {
        if !(2..=256).contains(&levels) {
            return Err(FeatureError::InvalidParameter(format!(
                "GLCM levels must be in 2..=256, got {levels}"
            )));
        }
        if dx == 0 && dy == 0 {
            return Err(FeatureError::InvalidParameter(
                "GLCM displacement must be nonzero".into(),
            ));
        }
        if img.is_empty() {
            return Err(FeatureError::EmptyImage("glcm"));
        }
        let (w, h) = img.dimensions();
        let quant = |v: u8| (v as usize * levels) / 256;
        let mut counts = vec![0u64; levels * levels];
        let mut total = 0u64;
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let nx = x + dx as i64;
                let ny = y + dy as i64;
                if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                    continue;
                }
                let a = quant(img.pixel(x as u32, y as u32));
                let b = quant(img.pixel(nx as u32, ny as u32));
                counts[a * levels + b] += 1;
                counts[b * levels + a] += 1;
                total += 2;
            }
        }
        if total == 0 {
            return Err(FeatureError::InvalidParameter(
                "GLCM displacement exceeds image extent; no pixel pairs".into(),
            ));
        }
        let p = counts.iter().map(|&c| c as f64 / total as f64).collect();
        Ok(Glcm { levels, p })
    }

    /// Number of gray levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Joint probability `P(i, j)`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.p[i * self.levels + j]
    }

    /// Energy (angular second moment): `Σ P(i,j)²`. 1 for a constant image.
    pub fn energy(&self) -> f64 {
        self.p.iter().map(|&v| v * v).sum()
    }

    /// Entropy: `-Σ P ln P`. 0 for a constant image, maximal for uniform P.
    pub fn entropy(&self) -> f64 {
        -self
            .p
            .iter()
            .filter(|&&v| v > 0.0)
            .map(|&v| v * v.ln())
            .sum::<f64>()
    }

    /// Contrast: `Σ (i-j)² P(i,j)`. Zero when co-occurring levels are equal.
    pub fn contrast(&self) -> f64 {
        let mut total = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                let d = i as f64 - j as f64;
                total += d * d * self.prob(i, j);
            }
        }
        total
    }

    /// Homogeneity (inverse difference moment): `Σ P(i,j) / (1 + |i-j|)`.
    pub fn homogeneity(&self) -> f64 {
        let mut total = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                total += self.prob(i, j) / (1.0 + (i as f64 - j as f64).abs());
            }
        }
        total
    }

    /// Correlation: `Σ (i-μ)(j-μ) P(i,j) / σ²` for the symmetric GLCM
    /// (identical marginals). Returns 0 for a degenerate (σ = 0) matrix.
    pub fn correlation(&self) -> f64 {
        let mut mu = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                mu += i as f64 * self.prob(i, j);
            }
        }
        let mut var = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                var += (i as f64 - mu) * (i as f64 - mu) * self.prob(i, j);
            }
        }
        if var <= 1e-12 {
            return 0.0;
        }
        let mut num = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                num += (i as f64 - mu) * (j as f64 - mu) * self.prob(i, j);
            }
        }
        num / var
    }

    /// The five classic statistics as an `[energy, entropy, contrast,
    /// homogeneity, correlation]` vector.
    pub fn features(&self) -> [f64; 5] {
        [
            self.energy(),
            self.entropy(),
            self.contrast(),
            self.homogeneity(),
            self.correlation(),
        ]
    }
}

/// Rotation-tolerant texture signature: the five GLCM statistics averaged
/// over the four standard orientations, as `f32`s.
pub fn glcm_features(img: &GrayImage, levels: usize) -> Result<Vec<f32>> {
    let mut counts = Vec::new();
    let mut out = vec![0.0f32; 5];
    glcm_features_into(img, levels, &mut counts, &mut out)?;
    Ok(out)
}

/// [`glcm_features`] with `counts` reused as the co-occurrence counting
/// buffer and the statistics written into `out`.
///
/// The statistics are computed straight off the integer counts with the
/// same `count / total` division [`Glcm::compute`] performs when
/// normalizing, in the same summation orders, so the results are
/// bit-identical to building the probability matrix first.
pub(crate) fn glcm_features_into(
    img: &GrayImage,
    levels: usize,
    counts: &mut Vec<u64>,
    out: &mut [f32],
) -> Result<()> {
    debug_assert_eq!(out.len(), 5);
    let mut acc = [0.0f64; 5];
    for &(dx, dy) in &STANDARD_OFFSETS {
        let stats = glcm_stats(img, levels, dx, dy, counts)?;
        for (a, f) in acc.iter_mut().zip(stats) {
            *a += f;
        }
    }
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        *o = (a / 4.0) as f32;
    }
    Ok(())
}

/// The five statistics of one symmetric GLCM, mirroring [`Glcm::compute`]
/// and the individual statistic methods exactly.
fn glcm_stats(
    img: &GrayImage,
    levels: usize,
    dx: i32,
    dy: i32,
    counts: &mut Vec<u64>,
) -> Result<[f64; 5]> {
    if !(2..=256).contains(&levels) {
        return Err(FeatureError::InvalidParameter(format!(
            "GLCM levels must be in 2..=256, got {levels}"
        )));
    }
    if dx == 0 && dy == 0 {
        return Err(FeatureError::InvalidParameter(
            "GLCM displacement must be nonzero".into(),
        ));
    }
    if img.is_empty() {
        return Err(FeatureError::EmptyImage("glcm"));
    }
    let (w, h) = img.dimensions();
    let quant = |v: u8| (v as usize * levels) / 256;
    counts.clear();
    counts.resize(levels * levels, 0);
    let mut total = 0u64;
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let nx = x + dx as i64;
            let ny = y + dy as i64;
            if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                continue;
            }
            let a = quant(img.pixel(x as u32, y as u32));
            let b = quant(img.pixel(nx as u32, ny as u32));
            counts[a * levels + b] += 1;
            counts[b * levels + a] += 1;
            total += 2;
        }
    }
    if total == 0 {
        return Err(FeatureError::InvalidParameter(
            "GLCM displacement exceeds image extent; no pixel pairs".into(),
        ));
    }
    let t = total as f64;
    let prob = |i: usize, j: usize| counts[i * levels + j] as f64 / t;

    let mut energy = 0.0;
    for &c in counts.iter() {
        let v = c as f64 / t;
        energy += v * v;
    }
    let mut neg_entropy = 0.0;
    for &c in counts.iter() {
        if c > 0 {
            let v = c as f64 / t;
            neg_entropy += v * v.ln();
        }
    }
    let entropy = -neg_entropy;
    let mut contrast = 0.0;
    for i in 0..levels {
        for j in 0..levels {
            let d = i as f64 - j as f64;
            contrast += d * d * prob(i, j);
        }
    }
    let mut homogeneity = 0.0;
    for i in 0..levels {
        for j in 0..levels {
            homogeneity += prob(i, j) / (1.0 + (i as f64 - j as f64).abs());
        }
    }
    let mut mu = 0.0;
    for i in 0..levels {
        for j in 0..levels {
            mu += i as f64 * prob(i, j);
        }
    }
    let mut var = 0.0;
    for i in 0..levels {
        for j in 0..levels {
            var += (i as f64 - mu) * (i as f64 - mu) * prob(i, j);
        }
    }
    let correlation = if var <= 1e-12 {
        0.0
    } else {
        let mut num = 0.0;
        for i in 0..levels {
            for j in 0..levels {
                num += (i as f64 - mu) * (j as f64 - mu) * prob(i, j);
            }
        }
        num / var
    };
    Ok([energy, entropy, contrast, homogeneity, correlation])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * 37 + y * 111) % 256) as u8);
        let g = Glcm::compute(&img, 8, 1, 0).unwrap();
        let s: f64 = (0..8)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| g.prob(i, j))
            .sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matrix_is_symmetric() {
        let img = GrayImage::from_fn(12, 12, |x, y| ((x * 53 + y * 19) % 256) as u8);
        let g = Glcm::compute(&img, 16, 1, -1).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                assert!((g.prob(i, j) - g.prob(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn constant_image_statistics() {
        let img = GrayImage::filled(10, 10, 200);
        let g = Glcm::compute(&img, 8, 1, 0).unwrap();
        assert!((g.energy() - 1.0).abs() < 1e-9);
        assert!(g.entropy().abs() < 1e-9);
        assert!(g.contrast().abs() < 1e-9);
        assert!((g.homogeneity() - 1.0).abs() < 1e-9);
        // Degenerate variance -> correlation defined as 0.
        assert_eq!(g.correlation(), 0.0);
    }

    #[test]
    fn checkerboard_has_maximal_contrast_horizontally() {
        // Alternating 0/255 columns: at (1,0) every pair is (0, L-1).
        let img = GrayImage::from_fn(12, 12, |x, _| if x % 2 == 0 { 0 } else { 255 });
        let g = Glcm::compute(&img, 8, 1, 0).unwrap();
        // All co-occurrences are between levels 0 and 7.
        assert!((g.prob(0, 7) + g.prob(7, 0) - 1.0).abs() < 1e-9);
        assert!((g.contrast() - 49.0).abs() < 1e-9);
        assert!(g.homogeneity() < 0.2);
        // Perfectly anti-correlated.
        assert!(g.correlation() < -0.99);
    }

    #[test]
    fn vertical_stripes_are_smooth_vertically() {
        let img = GrayImage::from_fn(12, 12, |x, _| if x % 2 == 0 { 0 } else { 255 });
        // Along the stripe direction, neighbours are identical.
        let g = Glcm::compute(&img, 8, 0, -1).unwrap();
        assert!(g.contrast().abs() < 1e-9);
        assert!((g.homogeneity() - 1.0).abs() < 1e-9);
        assert!(g.correlation() > 0.99);
    }

    #[test]
    fn smooth_texture_vs_noise() {
        let smooth = GrayImage::from_fn(24, 24, |x, y| ((x + y) * 5) as u8);
        let noisy = GrayImage::from_fn(24, 24, |x, y| ((x * 7919 + y * 104729) % 256) as u8);
        let gs = Glcm::compute(&smooth, 16, 1, 0).unwrap();
        let gn = Glcm::compute(&noisy, 16, 1, 0).unwrap();
        assert!(gs.contrast() < gn.contrast());
        assert!(gs.homogeneity() > gn.homogeneity());
        assert!(gs.entropy() < gn.entropy());
    }

    #[test]
    fn averaged_features_shape_and_validity() {
        let img = GrayImage::from_fn(20, 20, |x, y| ((x * 11 + y * 3) % 256) as u8);
        let f = glcm_features(&img, 16).unwrap();
        assert_eq!(f.len(), 5);
        assert!(f[0] > 0.0 && f[0] <= 1.0); // energy
        assert!(f[1] >= 0.0); // entropy
        assert!(f[2] >= 0.0); // contrast
        assert!(f[3] > 0.0 && f[3] <= 1.0); // homogeneity
        assert!((-1.0..=1.0).contains(&f[4])); // correlation
    }

    #[test]
    fn count_based_stats_match_probability_matrix_bitwise() {
        let img = GrayImage::from_fn(20, 14, |x, y| ((x * 11 + y * 3) % 256) as u8);
        for levels in [2, 8, 16] {
            let mut acc = [0.0f64; 5];
            for &(dx, dy) in &STANDARD_OFFSETS {
                let g = Glcm::compute(&img, levels, dx, dy).unwrap();
                for (a, f) in acc.iter_mut().zip(g.features()) {
                    *a += f;
                }
            }
            let reference: Vec<u32> = acc.iter().map(|&a| ((a / 4.0) as f32).to_bits()).collect();
            let fast: Vec<u32> = glcm_features(&img, levels)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(fast, reference, "levels {levels}");
        }
    }

    #[test]
    fn validation() {
        let img = GrayImage::filled(4, 4, 0);
        assert!(Glcm::compute(&img, 1, 1, 0).is_err());
        assert!(Glcm::compute(&img, 300, 1, 0).is_err());
        assert!(Glcm::compute(&img, 8, 0, 0).is_err());
        assert!(Glcm::compute(&GrayImage::filled(0, 0, 0), 8, 1, 0).is_err());
        // Displacement beyond extent: no pairs.
        assert!(Glcm::compute(&img, 8, 10, 0).is_err());
    }

    #[test]
    fn energy_entropy_are_inversely_related() {
        // Across a family of images, higher energy should come with lower
        // entropy (both measure concentration of P).
        let imgs = [
            GrayImage::filled(16, 16, 100),
            GrayImage::from_fn(16, 16, |x, _| (x * 16) as u8),
            GrayImage::from_fn(16, 16, |x, y| ((x * 7919 + y * 104729) % 256) as u8),
        ];
        let stats: Vec<(f64, f64)> = imgs
            .iter()
            .map(|im| {
                let g = Glcm::compute(im, 8, 1, 0).unwrap();
                (g.energy(), g.entropy())
            })
            .collect();
        // Sorted by energy descending -> entropy ascending.
        assert!(stats[0].0 > stats[1].0 && stats[1].0 > stats[2].0);
        assert!(stats[0].1 < stats[1].1 && stats[1].1 < stats[2].1);
    }
}
