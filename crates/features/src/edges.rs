//! Edge-based shape features: magnitude-weighted edge-orientation
//! histograms (with circular-shift matching for rotation tolerance) and
//! edge-density grids (coarse spatial layout of edges).

use crate::error::{FeatureError, Result};
use cbir_image::ops::sobel;
use cbir_image::{FloatImage, GrayImage};

/// Magnitude-weighted edge-orientation histogram over `[0, π)`.
///
/// Every pixel contributes its gradient magnitude to the bin of its
/// orientation, so strong edges dominate and no brittle threshold is needed
/// (the "weight by magnitude instead of thresholding" approach). The
/// histogram is L1-normalized; an all-flat image yields the uniform
/// histogram.
pub fn edge_orientation_histogram(img: &GrayImage, bins: usize) -> Result<Vec<f32>> {
    if !(2..=256).contains(&bins) {
        return Err(FeatureError::InvalidParameter(format!(
            "orientation bins must be in 2..=256, got {bins}"
        )));
    }
    if img.is_empty() {
        return Err(FeatureError::EmptyImage("edge orientation histogram"));
    }
    let g = sobel(img);
    let mag = g.magnitude();
    let ori = g.orientation();
    let mut hist = Vec::new();
    let mut out = vec![0.0f32; bins];
    orientation_histogram_core(&mag, &ori, bins, &mut hist, &mut out);
    Ok(out)
}

/// [`edge_orientation_histogram`] over precomputed magnitude and
/// orientation planes, with `hist` reused as the accumulation buffer and
/// the normalized histogram written into `out`.
pub(crate) fn orientation_histogram_core(
    mag: &FloatImage,
    ori: &FloatImage,
    bins: usize,
    hist: &mut Vec<f64>,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), bins);
    hist.clear();
    hist.resize(bins, 0.0);
    for (&m, &o) in mag.as_slice().iter().zip(ori.as_slice()) {
        if m <= 0.0 {
            continue;
        }
        let b = ((o / std::f32::consts::PI) * bins as f32) as usize;
        hist[b.min(bins - 1)] += m as f64;
    }
    let total: f64 = hist.iter().sum();
    if total <= 0.0 {
        out.fill(1.0 / bins as f32);
        return;
    }
    for (o, &v) in out.iter_mut().zip(hist.iter()) {
        *o = (v / total) as f32;
    }
}

/// Minimum L1 distance between two orientation histograms over all circular
/// shifts — orientation histograms are not rotation invariant, so matching
/// scans every rotation and keeps the best alignment.
pub fn circular_min_l1(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "histogram lengths differ");
    if a.is_empty() {
        return 0.0;
    }
    let n = a.len();
    let mut best = f32::INFINITY;
    for shift in 0..n {
        let mut d = 0.0f32;
        for i in 0..n {
            d += (a[i] - b[(i + shift) % n]).abs();
            if d >= best {
                break;
            }
        }
        best = best.min(d);
    }
    best
}

/// Edge-density grid: split the image into `grid × grid` cells and report
/// the fraction of edge pixels (normalized Sobel magnitude above
/// `threshold`) per cell, row-major. A coarse but robust layout descriptor.
pub fn edge_density_grid(img: &GrayImage, grid: u32, threshold: f32) -> Result<Vec<f32>> {
    if grid == 0 || grid > 64 {
        return Err(FeatureError::InvalidParameter(format!(
            "grid must be in 1..=64, got {grid}"
        )));
    }
    let (w, h) = img.dimensions();
    if w < grid || h < grid {
        return Err(FeatureError::InvalidParameter(format!(
            "image {w}x{h} smaller than {grid}x{grid} grid"
        )));
    }
    let mag_norm = sobel::sobel_magnitude(img);
    let mut counts = Vec::new();
    let mut totals = Vec::new();
    let mut out = vec![0.0f32; (grid * grid) as usize];
    density_grid_core(
        &mag_norm,
        grid,
        threshold,
        &mut counts,
        &mut totals,
        &mut out,
    );
    Ok(out)
}

/// [`edge_density_grid`] over a precomputed normalized Sobel magnitude
/// plane. `m > threshold` is exactly the predicate `edge_map` uses to mark
/// an edge pixel, so the densities match the binary-edge-map formulation.
pub(crate) fn density_grid_core(
    mag_norm: &FloatImage,
    grid: u32,
    threshold: f32,
    counts: &mut Vec<u32>,
    totals: &mut Vec<u32>,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), (grid * grid) as usize);
    let (w, h) = mag_norm.dimensions();
    counts.clear();
    counts.resize((grid * grid) as usize, 0);
    totals.clear();
    totals.resize((grid * grid) as usize, 0);
    for (x, y, m) in mag_norm.enumerate_pixels() {
        let cx = (x * grid / w).min(grid - 1);
        let cy = (y * grid / h).min(grid - 1);
        let c = (cy * grid + cx) as usize;
        totals[c] += 1;
        if m > threshold {
            counts[c] += 1;
        }
    }
    for ((o, &c), &t) in out.iter_mut().zip(counts.iter()).zip(totals.iter()) {
        *o = if t > 0 { c as f32 / t as f32 } else { 0.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertical_stripes(n: u32, period: u32) -> GrayImage {
        GrayImage::from_fn(n, n, |x, _| {
            if (x / period).is_multiple_of(2) {
                0
            } else {
                220
            }
        })
    }

    fn horizontal_stripes(n: u32, period: u32) -> GrayImage {
        GrayImage::from_fn(n, n, |_, y| {
            if (y / period).is_multiple_of(2) {
                0
            } else {
                220
            }
        })
    }

    #[test]
    fn histogram_is_normalized() {
        let img = GrayImage::from_fn(32, 32, |x, y| ((x * 13 + y * 29) % 256) as u8);
        let h = edge_orientation_histogram(&img, 8).unwrap();
        assert_eq!(h.len(), 8);
        let s: f32 = h.iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
        assert!(h.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn flat_image_gives_uniform_histogram() {
        let h = edge_orientation_histogram(&GrayImage::filled(16, 16, 100), 10).unwrap();
        for v in h {
            assert!((v - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn stripes_concentrate_in_one_bin() {
        // Vertical stripes: gradients along x, orientation ~ 0.
        let h = edge_orientation_histogram(&vertical_stripes(32, 4), 8).unwrap();
        // Orientation 0 falls in bin 0 (or wraps into the last bin).
        assert!(h[0] + h[7] > 0.9, "{h:?}");

        // Horizontal stripes: orientation ~ pi/2 -> middle bin.
        let h = edge_orientation_histogram(&horizontal_stripes(32, 4), 8).unwrap();
        assert!(h[4] + h[3] > 0.9, "{h:?}");
    }

    #[test]
    fn circular_matching_aligns_rotated_histograms() {
        let a = edge_orientation_histogram(&vertical_stripes(32, 4), 8).unwrap();
        let b = edge_orientation_histogram(&horizontal_stripes(32, 4), 8).unwrap();
        // Plain L1 sees them as very different...
        let plain: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(plain > 1.0);
        // ...but a circular shift aligns a 90°-rotated pattern.
        let circ = circular_min_l1(&a, &b);
        assert!(circ < 0.35, "circular distance {circ}");
        // And circular distance never exceeds the plain one.
        assert!(circ <= plain + 1e-6);
    }

    #[test]
    fn circular_min_is_symmetric_and_zero_on_self() {
        let a = [0.5f32, 0.3, 0.1, 0.1];
        let b = [0.1f32, 0.5, 0.3, 0.1];
        assert_eq!(circular_min_l1(&a, &a), 0.0);
        // a shifted by 1 equals b -> circular distance 0.
        assert!(circular_min_l1(&a, &b) < 1e-6);
        let c = [0.7f32, 0.1, 0.1, 0.1];
        assert!((circular_min_l1(&a, &c) - circular_min_l1(&c, &a)).abs() < 1e-6);
    }

    #[test]
    fn density_grid_localizes_edges() {
        // All structure in the left half.
        let img = GrayImage::from_fn(32, 32, |x, y| if x < 16 && (y % 4 == 0) { 255 } else { 0 });
        let g = edge_density_grid(&img, 2, 10.0).unwrap();
        assert_eq!(g.len(), 4);
        // Left cells dense, right cells nearly empty (border effects only).
        assert!(g[0] > 0.3, "{g:?}");
        assert!(g[2] > 0.3, "{g:?}");
        assert!(g[1] < g[0] / 2.0, "{g:?}");
        assert!(g[3] < g[2] / 2.0, "{g:?}");
    }

    #[test]
    fn density_grid_values_are_fractions() {
        let img = GrayImage::from_fn(30, 30, |x, y| ((x * 17 + y * 23) % 256) as u8);
        let g = edge_density_grid(&img, 3, 20.0).unwrap();
        assert_eq!(g.len(), 9);
        assert!(g.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn validation() {
        let img = GrayImage::filled(8, 8, 0);
        assert!(edge_orientation_histogram(&img, 1).is_err());
        assert!(edge_orientation_histogram(&img, 500).is_err());
        assert!(edge_orientation_histogram(&GrayImage::filled(0, 0, 0), 8).is_err());
        assert!(edge_density_grid(&img, 0, 1.0).is_err());
        assert!(edge_density_grid(&img, 65, 1.0).is_err());
        assert!(edge_density_grid(&img, 16, 1.0).is_err()); // grid > image
    }

    #[test]
    fn uneven_grid_division_covers_all_pixels() {
        // 10x10 image, 3x3 grid: cells of ragged size must still partition.
        let img = GrayImage::from_fn(10, 10, |x, y| ((x + y) * 12) as u8);
        let g = edge_density_grid(&img, 3, 5.0).unwrap();
        assert_eq!(g.len(), 9);
        // Diagonal ramp has edges everywhere: all cells nonzero.
        assert!(g.iter().all(|&v| v > 0.0), "{g:?}");
    }
}
