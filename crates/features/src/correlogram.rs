//! Color auto-correlogram (Huang et al.): the probability that a pixel at
//! L∞ (chessboard) distance `d` from a pixel of color `c` also has color
//! `c`. Encodes color *and* spatial layout, fixing the color histogram's
//! blindness to pixel arrangement.

use crate::error::{FeatureError, Result};
use crate::quantize::Quantizer;
use cbir_image::RgbImage;

/// Auto-correlogram feature: for each color bin `c` and each distance `d`
/// in `distances`, the estimated `Pr[I(p2) = c | I(p1) = c, ||p1-p2||∞ = d]`.
#[derive(Clone, Debug, PartialEq)]
pub struct AutoCorrelogram {
    /// Distances the correlogram was sampled at.
    pub distances: Vec<u32>,
    /// Row-major `[color][distance]` probabilities.
    values: Vec<f32>,
    n_colors: usize,
}

/// All offsets on the L∞ ring of radius `d` (the square ring with
/// chessboard distance exactly `d`), appended to `out`.
fn ring_offsets_into(d: i64, out: &mut Vec<(i64, i64)>) {
    out.reserve((8 * d) as usize);
    for x in -d..=d {
        out.push((x, -d));
        out.push((x, d));
    }
    for y in (-d + 1)..d {
        out.push((-d, y));
        out.push((d, y));
    }
}

#[cfg(test)]
fn ring_offsets(d: i64) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    ring_offsets_into(d, &mut out);
    out
}

/// Reusable work buffers for [`correlogram_into`].
#[derive(Default)]
pub(crate) struct CorrelogramScratch {
    ring: Vec<(i64, i64)>,
    ring_lin: Vec<isize>,
    same: Vec<u64>,
    total: Vec<u64>,
    hits: Vec<u16>,
}

/// Core auto-correlogram accumulation over a pre-quantized bin plane,
/// writing the `[color-major][distance-minor]` probabilities into `out`.
///
/// Pixels are split per distance into a border band (ring probes
/// bounds-checked, exactly as the straightforward formulation) and the
/// interior (every ring offset is guaranteed in bounds, probed offset-major
/// over contiguous row slices so the equality scan vectorizes, with a
/// single bulk `total` update). The per-color counters are plain `u64`
/// sums, so the partition changes only the order of commutative integer
/// increments: counts — and therefore the final `same / total` divisions —
/// are bit-identical to the naive loop.
pub(crate) fn correlogram_into(
    plane: &[u16],
    width: u32,
    height: u32,
    n_colors: usize,
    distances: &[u32],
    scratch: &mut CorrelogramScratch,
    out: &mut [f32],
) {
    debug_assert_eq!(plane.len(), width as usize * height as usize);
    debug_assert_eq!(out.len(), n_colors * distances.len());
    let CorrelogramScratch {
        ring,
        ring_lin,
        same,
        total,
        hits,
    } = scratch;
    let (wi, hi) = (width as i64, height as i64);
    for (di, &d) in distances.iter().enumerate() {
        let dd = d as i64;
        ring.clear();
        ring_offsets_into(dd, ring);
        same.clear();
        same.resize(n_colors, 0);
        total.clear();
        total.resize(n_colors, 0);

        // Rows/columns within `dd` of an edge need bounds checks; everything
        // else is interior.
        let y_lo = dd.min(hi);
        let y_hi = (hi - dd).max(y_lo);
        let x_lo = dd.min(wi);
        let x_hi = (wi - dd).max(x_lo);
        {
            // The in-bounds part of a pixel's ring is four contiguous
            // segments (two row spans, two column spans), so clip each
            // segment analytically instead of bounds-checking every probe;
            // the row spans then scan as contiguous slices.
            let mut probe_clipped = |x: i64, y: i64| {
                let c16 = plane[(y * wi + x) as usize];
                let mut count = 0u64;
                let mut matches = 0u64;
                let dx0 = (-dd).max(-x);
                let dx1 = dd.min(wi - 1 - x);
                if dx0 <= dx1 {
                    for ny in [y - dd, y + dd] {
                        if ny >= 0 && ny < hi {
                            let start = (ny * wi + x + dx0) as usize;
                            let seg = &plane[start..start + (dx1 - dx0 + 1) as usize];
                            count += seg.len() as u64;
                            matches += seg.iter().filter(|&&v| v == c16).count() as u64;
                        }
                    }
                }
                let dy0 = (1 - dd).max(-y);
                let dy1 = (dd - 1).min(hi - 1 - y);
                if dy0 <= dy1 {
                    for nx in [x - dd, x + dd] {
                        if nx >= 0 && nx < wi {
                            let mut idx = ((y + dy0) * wi + nx) as usize;
                            for _ in dy0..=dy1 {
                                count += 1;
                                matches += u64::from(plane[idx] == c16);
                                idx += wi as usize;
                            }
                        }
                    }
                }
                total[c16 as usize] += count;
                same[c16 as usize] += matches;
            };
            for y in 0..y_lo {
                for x in 0..wi {
                    probe_clipped(x, y);
                }
            }
            for y in y_lo..y_hi {
                for x in 0..x_lo {
                    probe_clipped(x, y);
                }
                for x in x_hi..wi {
                    probe_clipped(x, y);
                }
            }
            for y in y_hi..hi {
                for x in 0..wi {
                    probe_clipped(x, y);
                }
            }
        }

        // Interior: the whole ring is in bounds for every pixel. Probed
        // offset-major per row — for a fixed offset the probe is a second
        // contiguous `u16` slice compared elementwise against the row, which
        // vectorizes at full u16 lane width into same-width hit counters —
        // with per-pixel hit counts scattered into the per-color counters in
        // a second pass.
        ring_lin.clear();
        ring_lin.extend(ring.iter().map(|&(dx, dy)| (dy * wi + dx) as isize));
        let ring_len = ring_lin.len() as u64;
        let row_w = (x_hi - x_lo).max(0) as usize;
        if ring_lin.len() <= usize::from(u16::MAX) {
            hits.clear();
            hits.resize(row_w, 0);
            let hrow = &mut hits[..row_w];
            for y in y_lo..y_hi {
                let base = (y * wi + x_lo) as usize;
                let cur = &plane[base..base + row_w];
                hrow.fill(0);
                for &off in ring_lin.iter() {
                    let shifted = &plane[(base as isize + off) as usize..][..row_w];
                    for i in 0..row_w {
                        hrow[i] += u16::from(cur[i] == shifted[i]);
                    }
                }
                for (&c16, &h) in cur.iter().zip(hrow.iter()) {
                    total[c16 as usize] += ring_len;
                    same[c16 as usize] += u64::from(h);
                }
            }
        } else {
            // Ring wider than a u16 counter (needs an image > 16k pixels on
            // a side): straightforward per-pixel probe, same exact counts.
            for y in y_lo..y_hi {
                for x in x_lo..x_hi {
                    let i = (y * wi + x) as usize;
                    let c16 = plane[i];
                    let mut h = 0u64;
                    for &off in ring_lin.iter() {
                        h += u64::from(plane[(i as isize + off) as usize] == c16);
                    }
                    total[c16 as usize] += ring_len;
                    same[c16 as usize] += h;
                }
            }
        }

        for c in 0..n_colors {
            out[c * distances.len() + di] = if total[c] > 0 {
                same[c] as f32 / total[c] as f32
            } else {
                0.0
            };
        }
    }
}

impl AutoCorrelogram {
    /// Compute the auto-correlogram.
    ///
    /// Ring pixels falling outside the image are excluded from the
    /// denominator (no synthetic border colors are introduced).
    pub fn compute(img: &RgbImage, quantizer: &Quantizer, distances: &[u32]) -> Result<Self> {
        quantizer.validate()?;
        if img.is_empty() {
            return Err(FeatureError::EmptyImage("auto-correlogram"));
        }
        if distances.is_empty() || distances.contains(&0) {
            return Err(FeatureError::InvalidParameter(
                "correlogram distances must be non-empty and positive".into(),
            ));
        }
        let n_colors = quantizer.n_bins();
        let (w, h) = img.dimensions();

        // Pre-quantize the image once.
        let quantized: Vec<u16> = img.pixels().map(|p| quantizer.bin_of(p) as u16).collect();
        let mut values = vec![0.0f32; n_colors * distances.len()];
        correlogram_into(
            &quantized,
            w,
            h,
            n_colors,
            distances,
            &mut CorrelogramScratch::default(),
            &mut values,
        );
        Ok(AutoCorrelogram {
            distances: distances.to_vec(),
            values,
            n_colors,
        })
    }

    /// Number of color bins.
    pub fn n_colors(&self) -> usize {
        self.n_colors
    }

    /// Probability for `(color, distance index)`.
    pub fn value(&self, color: usize, distance_idx: usize) -> f32 {
        self.values[color * self.distances.len() + distance_idx]
    }

    /// Flatten to a feature vector, `[color-major][distance-minor]`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.values.clone()
    }

    /// Feature dimensionality: `n_colors * n_distances`.
    pub fn dim(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbir_image::Rgb;

    const RED: Rgb = Rgb([255, 0, 0]);
    const BLUE: Rgb = Rgb([0, 0, 255]);

    #[test]
    fn ring_offset_counts() {
        assert_eq!(ring_offsets(1).len(), 8);
        assert_eq!(ring_offsets(2).len(), 16);
        assert_eq!(ring_offsets(3).len(), 24);
        // All offsets are at exact chessboard distance d.
        for d in 1..=4i64 {
            for (dx, dy) in ring_offsets(d) {
                assert_eq!(dx.abs().max(dy.abs()), d);
            }
        }
        // No duplicates.
        let mut r = ring_offsets(3);
        r.sort_unstable();
        let before = r.len();
        r.dedup();
        assert_eq!(r.len(), before);
    }

    #[test]
    fn uniform_image_has_probability_one() {
        let img = RgbImage::filled(10, 10, RED);
        let ac = AutoCorrelogram::compute(&img, &Quantizer::rgb_compact(), &[1, 3]).unwrap();
        let q = Quantizer::rgb_compact();
        let red_bin = q.bin_of(RED);
        assert!((ac.value(red_bin, 0) - 1.0).abs() < 1e-6);
        assert!((ac.value(red_bin, 1) - 1.0).abs() < 1e-6);
        // Colors absent from the image have probability 0.
        let blue_bin = q.bin_of(BLUE);
        assert_eq!(ac.value(blue_bin, 0), 0.0);
    }

    #[test]
    fn checkerboard_distance_one_is_low() {
        // On a checkerboard, the d=1 ring around any pixel holds 4 same and
        // 4 different colors (diagonals match, axials differ) -> p = 0.5 in
        // the interior; borders push it slightly off.
        let img = RgbImage::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { RED } else { BLUE });
        let q = Quantizer::rgb_compact();
        let ac = AutoCorrelogram::compute(&img, &q, &[1]).unwrap();
        let p = ac.value(q.bin_of(RED), 0);
        assert!((p - 0.5).abs() < 0.05, "checkerboard p = {p}");
    }

    #[test]
    fn correlogram_separates_layouts_with_identical_histograms() {
        // Half-split vs checkerboard: same global histogram, very different
        // spatial coherence.
        let split = RgbImage::from_fn(16, 16, |x, _| if x < 8 { RED } else { BLUE });
        let check = RgbImage::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { RED } else { BLUE });
        let q = Quantizer::rgb_compact();
        let a = AutoCorrelogram::compute(&split, &q, &[1]).unwrap();
        let b = AutoCorrelogram::compute(&check, &q, &[1]).unwrap();
        let red = q.bin_of(RED);
        assert!(
            a.value(red, 0) > b.value(red, 0) + 0.3,
            "split {} vs checker {}",
            a.value(red, 0),
            b.value(red, 0)
        );
    }

    #[test]
    fn probability_decays_with_distance_for_blobs() {
        // A coherent blob: staying inside the blob is easier at d=1 than d=5.
        let img = RgbImage::from_fn(20, 20, |x, y| {
            if (4..10).contains(&x) && (4..10).contains(&y) {
                RED
            } else {
                BLUE
            }
        });
        let q = Quantizer::rgb_compact();
        let ac = AutoCorrelogram::compute(&img, &q, &[1, 5]).unwrap();
        let red = q.bin_of(RED);
        assert!(ac.value(red, 0) > ac.value(red, 1));
    }

    #[test]
    fn values_are_probabilities() {
        let img = RgbImage::from_fn(12, 12, |x, y| {
            Rgb::new((x * 20) as u8, (y * 20) as u8, ((x + y) * 10) as u8)
        });
        let ac = AutoCorrelogram::compute(&img, &Quantizer::rgb_compact(), &[1, 2, 4]).unwrap();
        for v in ac.to_vec() {
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(ac.dim(), 64 * 3);
        assert_eq!(ac.n_colors(), 64);
    }

    #[test]
    fn parameter_validation() {
        let img = RgbImage::filled(4, 4, RED);
        let q = Quantizer::rgb_compact();
        assert!(AutoCorrelogram::compute(&img, &q, &[]).is_err());
        assert!(AutoCorrelogram::compute(&img, &q, &[0, 1]).is_err());
        let empty = RgbImage::filled(0, 0, RED);
        assert!(AutoCorrelogram::compute(&empty, &q, &[1]).is_err());
    }

    #[test]
    fn interior_fast_path_matches_bruteforce_bitwise() {
        // Reference: the straightforward all-bounds-checked formulation.
        let img = RgbImage::from_fn(21, 13, |x, y| {
            Rgb::new((x * 17) as u8, (y * 29) as u8, ((x * y) % 251) as u8)
        });
        let q = Quantizer::rgb_compact();
        let (w, h) = img.dimensions();
        let quantized: Vec<u16> = img.pixels().map(|p| q.bin_of(p) as u16).collect();
        let n = q.n_bins();
        // Distances straddling every regime: deep interior, thin interior,
        // distance >= one axis, distance >= both axes.
        for dists in [vec![1u32], vec![1, 3, 5, 7], vec![6, 12], vec![20, 50]] {
            let mut values = vec![0.0f32; n * dists.len()];
            for (di, &d) in dists.iter().enumerate() {
                let ring = ring_offsets(d as i64);
                let mut same = vec![0u64; n];
                let mut total = vec![0u64; n];
                for y in 0..h as i64 {
                    for x in 0..w as i64 {
                        let c = quantized[y as usize * w as usize + x as usize] as usize;
                        for &(dx, dy) in &ring {
                            let nx = x + dx;
                            let ny = y + dy;
                            if nx >= 0 && ny >= 0 && nx < w as i64 && ny < h as i64 {
                                total[c] += 1;
                                if quantized[ny as usize * w as usize + nx as usize] as usize == c {
                                    same[c] += 1;
                                }
                            }
                        }
                    }
                }
                for c in 0..n {
                    if total[c] > 0 {
                        values[c * dists.len() + di] = same[c] as f32 / total[c] as f32;
                    }
                }
            }
            let fast = AutoCorrelogram::compute(&img, &q, &dists).unwrap();
            let fast_bits: Vec<u32> = fast.to_vec().iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u32> = values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fast_bits, ref_bits, "distances {dists:?}");
        }
    }

    #[test]
    fn distance_larger_than_image_yields_zero_probabilities() {
        let img = RgbImage::filled(3, 3, RED);
        let q = Quantizer::rgb_compact();
        let ac = AutoCorrelogram::compute(&img, &q, &[10]).unwrap();
        // The entire ring is out of bounds for all pixels -> total = 0.
        assert!(ac.to_vec().iter().all(|&v| v == 0.0));
    }
}
