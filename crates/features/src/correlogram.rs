//! Color auto-correlogram (Huang et al.): the probability that a pixel at
//! L∞ (chessboard) distance `d` from a pixel of color `c` also has color
//! `c`. Encodes color *and* spatial layout, fixing the color histogram's
//! blindness to pixel arrangement.

use crate::error::{FeatureError, Result};
use crate::quantize::Quantizer;
use cbir_image::RgbImage;

/// Auto-correlogram feature: for each color bin `c` and each distance `d`
/// in `distances`, the estimated `Pr[I(p2) = c | I(p1) = c, ||p1-p2||∞ = d]`.
#[derive(Clone, Debug, PartialEq)]
pub struct AutoCorrelogram {
    /// Distances the correlogram was sampled at.
    pub distances: Vec<u32>,
    /// Row-major `[color][distance]` probabilities.
    values: Vec<f32>,
    n_colors: usize,
}

/// All offsets on the L∞ ring of radius `d` (the square ring with
/// chessboard distance exactly `d`).
fn ring_offsets(d: i64) -> Vec<(i64, i64)> {
    let mut out = Vec::with_capacity((8 * d) as usize);
    for x in -d..=d {
        out.push((x, -d));
        out.push((x, d));
    }
    for y in (-d + 1)..d {
        out.push((-d, y));
        out.push((d, y));
    }
    out
}

impl AutoCorrelogram {
    /// Compute the auto-correlogram.
    ///
    /// Ring pixels falling outside the image are excluded from the
    /// denominator (no synthetic border colors are introduced).
    pub fn compute(img: &RgbImage, quantizer: &Quantizer, distances: &[u32]) -> Result<Self> {
        quantizer.validate()?;
        if img.is_empty() {
            return Err(FeatureError::EmptyImage("auto-correlogram"));
        }
        if distances.is_empty() || distances.contains(&0) {
            return Err(FeatureError::InvalidParameter(
                "correlogram distances must be non-empty and positive".into(),
            ));
        }
        let n_colors = quantizer.n_bins();
        let (w, h) = img.dimensions();

        // Pre-quantize the image once.
        let quantized: Vec<u16> = img.pixels().map(|p| quantizer.bin_of(p) as u16).collect();
        let bin_at = |x: i64, y: i64| -> Option<u16> {
            if x < 0 || y < 0 || x >= w as i64 || y >= h as i64 {
                None
            } else {
                Some(quantized[y as usize * w as usize + x as usize])
            }
        };

        let mut values = vec![0.0f32; n_colors * distances.len()];
        for (di, &d) in distances.iter().enumerate() {
            let ring = ring_offsets(d as i64);
            let mut same = vec![0u64; n_colors];
            let mut total = vec![0u64; n_colors];
            for y in 0..h as i64 {
                for x in 0..w as i64 {
                    let c = quantized[y as usize * w as usize + x as usize] as usize;
                    for &(dx, dy) in &ring {
                        if let Some(nb) = bin_at(x + dx, y + dy) {
                            total[c] += 1;
                            if nb as usize == c {
                                same[c] += 1;
                            }
                        }
                    }
                }
            }
            for c in 0..n_colors {
                if total[c] > 0 {
                    values[c * distances.len() + di] = same[c] as f32 / total[c] as f32;
                }
            }
        }
        Ok(AutoCorrelogram {
            distances: distances.to_vec(),
            values,
            n_colors,
        })
    }

    /// Number of color bins.
    pub fn n_colors(&self) -> usize {
        self.n_colors
    }

    /// Probability for `(color, distance index)`.
    pub fn value(&self, color: usize, distance_idx: usize) -> f32 {
        self.values[color * self.distances.len() + distance_idx]
    }

    /// Flatten to a feature vector, `[color-major][distance-minor]`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.values.clone()
    }

    /// Feature dimensionality: `n_colors * n_distances`.
    pub fn dim(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbir_image::Rgb;

    const RED: Rgb = Rgb([255, 0, 0]);
    const BLUE: Rgb = Rgb([0, 0, 255]);

    #[test]
    fn ring_offset_counts() {
        assert_eq!(ring_offsets(1).len(), 8);
        assert_eq!(ring_offsets(2).len(), 16);
        assert_eq!(ring_offsets(3).len(), 24);
        // All offsets are at exact chessboard distance d.
        for d in 1..=4i64 {
            for (dx, dy) in ring_offsets(d) {
                assert_eq!(dx.abs().max(dy.abs()), d);
            }
        }
        // No duplicates.
        let mut r = ring_offsets(3);
        r.sort_unstable();
        let before = r.len();
        r.dedup();
        assert_eq!(r.len(), before);
    }

    #[test]
    fn uniform_image_has_probability_one() {
        let img = RgbImage::filled(10, 10, RED);
        let ac = AutoCorrelogram::compute(&img, &Quantizer::rgb_compact(), &[1, 3]).unwrap();
        let q = Quantizer::rgb_compact();
        let red_bin = q.bin_of(RED);
        assert!((ac.value(red_bin, 0) - 1.0).abs() < 1e-6);
        assert!((ac.value(red_bin, 1) - 1.0).abs() < 1e-6);
        // Colors absent from the image have probability 0.
        let blue_bin = q.bin_of(BLUE);
        assert_eq!(ac.value(blue_bin, 0), 0.0);
    }

    #[test]
    fn checkerboard_distance_one_is_low() {
        // On a checkerboard, the d=1 ring around any pixel holds 4 same and
        // 4 different colors (diagonals match, axials differ) -> p = 0.5 in
        // the interior; borders push it slightly off.
        let img = RgbImage::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { RED } else { BLUE });
        let q = Quantizer::rgb_compact();
        let ac = AutoCorrelogram::compute(&img, &q, &[1]).unwrap();
        let p = ac.value(q.bin_of(RED), 0);
        assert!((p - 0.5).abs() < 0.05, "checkerboard p = {p}");
    }

    #[test]
    fn correlogram_separates_layouts_with_identical_histograms() {
        // Half-split vs checkerboard: same global histogram, very different
        // spatial coherence.
        let split = RgbImage::from_fn(16, 16, |x, _| if x < 8 { RED } else { BLUE });
        let check = RgbImage::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { RED } else { BLUE });
        let q = Quantizer::rgb_compact();
        let a = AutoCorrelogram::compute(&split, &q, &[1]).unwrap();
        let b = AutoCorrelogram::compute(&check, &q, &[1]).unwrap();
        let red = q.bin_of(RED);
        assert!(
            a.value(red, 0) > b.value(red, 0) + 0.3,
            "split {} vs checker {}",
            a.value(red, 0),
            b.value(red, 0)
        );
    }

    #[test]
    fn probability_decays_with_distance_for_blobs() {
        // A coherent blob: staying inside the blob is easier at d=1 than d=5.
        let img = RgbImage::from_fn(20, 20, |x, y| {
            if (4..10).contains(&x) && (4..10).contains(&y) {
                RED
            } else {
                BLUE
            }
        });
        let q = Quantizer::rgb_compact();
        let ac = AutoCorrelogram::compute(&img, &q, &[1, 5]).unwrap();
        let red = q.bin_of(RED);
        assert!(ac.value(red, 0) > ac.value(red, 1));
    }

    #[test]
    fn values_are_probabilities() {
        let img = RgbImage::from_fn(12, 12, |x, y| {
            Rgb::new((x * 20) as u8, (y * 20) as u8, ((x + y) * 10) as u8)
        });
        let ac = AutoCorrelogram::compute(&img, &Quantizer::rgb_compact(), &[1, 2, 4]).unwrap();
        for v in ac.to_vec() {
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(ac.dim(), 64 * 3);
        assert_eq!(ac.n_colors(), 64);
    }

    #[test]
    fn parameter_validation() {
        let img = RgbImage::filled(4, 4, RED);
        let q = Quantizer::rgb_compact();
        assert!(AutoCorrelogram::compute(&img, &q, &[]).is_err());
        assert!(AutoCorrelogram::compute(&img, &q, &[0, 1]).is_err());
        let empty = RgbImage::filled(0, 0, RED);
        assert!(AutoCorrelogram::compute(&empty, &q, &[1]).is_err());
    }

    #[test]
    fn distance_larger_than_image_yields_zero_probabilities() {
        let img = RgbImage::filled(3, 3, RED);
        let q = Quantizer::rgb_compact();
        let ac = AutoCorrelogram::compute(&img, &q, &[10]).unwrap();
        // The entire ring is out of bounds for all pixels -> total = 0.
        assert!(ac.to_vec().iter().all(|&v| v == 0.0));
    }
}
