//! 2-D Haar wavelet transform and the multi-level subband-energy signature.
//!
//! The orthonormal Haar pair `(a, b) -> ((a+b)/√2, (a-b)/√2)` is used so the
//! transform preserves energy (Parseval), which makes subband energies
//! directly comparable across levels. The classical 3-level decomposition
//! yields 10 subbands (3 detail bands per level plus the final
//! approximation), whose root-mean-square energies form a compact signature
//! capturing texture and coarse shape.

use crate::error::{FeatureError, Result};
use cbir_image::{FloatImage, GrayImage};

const SQRT2_INV: f32 = std::f32::consts::FRAC_1_SQRT_2;

/// One level of the 1-D orthonormal Haar transform over `data[..n]`,
/// writing approximations to the first half and details to the second.
fn haar_1d(data: &mut [f32], n: usize, scratch: &mut Vec<f32>) {
    let half = n / 2;
    scratch.clear();
    scratch.extend_from_slice(&data[..n]);
    for i in 0..half {
        let a = scratch[2 * i];
        let b = scratch[2 * i + 1];
        data[i] = (a + b) * SQRT2_INV;
        data[half + i] = (a - b) * SQRT2_INV;
    }
}

/// Inverse of [`haar_1d`].
fn haar_1d_inv(data: &mut [f32], n: usize, scratch: &mut Vec<f32>) {
    let half = n / 2;
    scratch.clear();
    scratch.extend_from_slice(&data[..n]);
    for i in 0..half {
        let s = scratch[i];
        let d = scratch[half + i];
        data[2 * i] = (s + d) * SQRT2_INV;
        data[2 * i + 1] = (s - d) * SQRT2_INV;
    }
}

/// A multi-level 2-D Haar decomposition (Mallat layout: each level
/// transforms the top-left approximation quadrant of the previous one).
#[derive(Clone, Debug)]
pub struct HaarDecomposition {
    coeffs: FloatImage,
    levels: u32,
}

/// The three detail orientations at each pyramid level.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Subband {
    /// Horizontal detail (vertical edges): high-pass in x, low-pass in y.
    Lh,
    /// Vertical detail (horizontal edges): low-pass in x, high-pass in y.
    Hl,
    /// Diagonal detail: high-pass in both.
    Hh,
}

impl HaarDecomposition {
    /// Forward transform. Image dimensions must be divisible by `2^levels`
    /// and `levels >= 1`.
    pub fn forward(img: &FloatImage, levels: u32) -> Result<Self> {
        let (w, h) = img.dimensions();
        if levels == 0 {
            return Err(FeatureError::InvalidParameter(
                "wavelet levels must be >= 1".into(),
            ));
        }
        let div = 1u32 << levels;
        if w == 0 || h == 0 || w % div != 0 || h % div != 0 {
            return Err(FeatureError::InvalidParameter(format!(
                "image {w}x{h} not divisible by 2^{levels}"
            )));
        }
        let mut coeffs = img.clone();
        let mut scratch = Vec::new();
        let (mut cw, mut ch) = (w as usize, h as usize);
        for _ in 0..levels {
            // Rows.
            let mut row = vec![0.0f32; cw];
            for y in 0..ch {
                for (x, r) in row.iter_mut().enumerate() {
                    *r = coeffs.pixel(x as u32, y as u32);
                }
                haar_1d(&mut row, cw, &mut scratch);
                for (x, &r) in row.iter().enumerate() {
                    coeffs.set(x as u32, y as u32, r);
                }
            }
            // Columns.
            let mut col = vec![0.0f32; ch];
            for x in 0..cw {
                for (y, c) in col.iter_mut().enumerate() {
                    *c = coeffs.pixel(x as u32, y as u32);
                }
                haar_1d(&mut col, ch, &mut scratch);
                for (y, &c) in col.iter().enumerate() {
                    coeffs.set(x as u32, y as u32, c);
                }
            }
            cw /= 2;
            ch /= 2;
        }
        Ok(HaarDecomposition { coeffs, levels })
    }

    /// Invert back to the spatial domain.
    pub fn inverse(&self) -> FloatImage {
        let mut img = self.coeffs.clone();
        let (w, h) = img.dimensions();
        let mut scratch = Vec::new();
        for level in (0..self.levels).rev() {
            let cw = (w >> (level + 1)) as usize * 2;
            let ch = (h >> (level + 1)) as usize * 2;
            // Columns first (reverse of forward order).
            let mut col = vec![0.0f32; ch];
            for x in 0..cw {
                for (y, c) in col.iter_mut().enumerate() {
                    *c = img.pixel(x as u32, y as u32);
                }
                haar_1d_inv(&mut col, ch, &mut scratch);
                for (y, &c) in col.iter().enumerate() {
                    img.set(x as u32, y as u32, c);
                }
            }
            let mut row = vec![0.0f32; cw];
            for y in 0..ch {
                for (x, r) in row.iter_mut().enumerate() {
                    *r = img.pixel(x as u32, y as u32);
                }
                haar_1d_inv(&mut row, cw, &mut scratch);
                for (x, &r) in row.iter().enumerate() {
                    img.set(x as u32, y as u32, r);
                }
            }
        }
        img
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Raw coefficient plane (Mallat layout).
    pub fn coefficients(&self) -> &FloatImage {
        &self.coeffs
    }

    /// Extract a detail subband at `level` (1-based, 1 = finest).
    pub fn subband(&self, level: u32, band: Subband) -> Result<FloatImage> {
        if level == 0 || level > self.levels {
            return Err(FeatureError::InvalidParameter(format!(
                "level {level} out of 1..={}",
                self.levels
            )));
        }
        let (w, h) = self.coeffs.dimensions();
        let bw = w >> level;
        let bh = h >> level;
        let (x0, y0) = match band {
            Subband::Lh => (bw, 0),
            Subband::Hl => (0, bh),
            Subband::Hh => (bw, bh),
        };
        Ok(self.coeffs.crop(x0, y0, bw, bh)?)
    }

    /// Extract the final approximation (LL) band.
    pub fn approximation(&self) -> FloatImage {
        let (w, h) = self.coeffs.dimensions();
        let bw = w >> self.levels;
        let bh = h >> self.levels;
        self.coeffs
            .crop(0, 0, bw, bh)
            .expect("approximation band is always in bounds")
    }
}

/// Root-mean-square of a coefficient plane.
#[cfg_attr(not(test), allow(dead_code))]
fn rms(img: &FloatImage) -> f32 {
    if img.is_empty() {
        return 0.0;
    }
    (img.pixels().map(|p| p * p).sum::<f32>() / img.len() as f32).sqrt()
}

/// The wavelet signature: RMS energy of every detail subband at every level
/// plus the final approximation, `3 * levels + 1` values ordered
/// `[L1-LH, L1-HL, L1-HH, L2-LH, ..., LL]`. Three levels give the classical
/// 10-component signature.
pub fn wavelet_signature(img: &GrayImage, levels: u32) -> Result<Vec<f32>> {
    let mut ws = WaveletScratch::default();
    let mut out = vec![0.0f32; 3 * levels as usize + 1];
    wavelet_signature_into(img, levels, &mut ws, &mut out)?;
    Ok(out)
}

/// Reusable buffers for [`wavelet_signature_into`]: the coefficient plane
/// plus the row/column/scratch vectors of the in-place transform.
pub(crate) struct WaveletScratch {
    coeffs: FloatImage,
    row: Vec<f32>,
    col: Vec<f32>,
    scratch: Vec<f32>,
}

impl Default for WaveletScratch {
    fn default() -> Self {
        WaveletScratch {
            coeffs: FloatImage::filled(0, 0, 0.0),
            row: Vec::new(),
            col: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

/// [`wavelet_signature`] into a caller-provided output slice, reusing
/// `ws`'s buffers. The transform mirrors [`HaarDecomposition::forward`]
/// over `to_float_normalized` pixel values, and each subband RMS sums the
/// same row-major coefficient order [`rms`] sees after `crop` — results
/// are bit-identical to the decomposition-object path.
pub(crate) fn wavelet_signature_into(
    img: &GrayImage,
    levels: u32,
    ws: &mut WaveletScratch,
    out: &mut [f32],
) -> Result<()> {
    debug_assert_eq!(out.len(), 3 * levels as usize + 1);
    let (w, h) = img.dimensions();
    if levels == 0 {
        return Err(FeatureError::InvalidParameter(
            "wavelet levels must be >= 1".into(),
        ));
    }
    let div = 1u32 << levels;
    if w == 0 || h == 0 || w % div != 0 || h % div != 0 {
        return Err(FeatureError::InvalidParameter(format!(
            "image {w}x{h} not divisible by 2^{levels}"
        )));
    }
    ws.coeffs.reset(w, h, 0.0);
    for (c, &p) in ws.coeffs.as_mut_slice().iter_mut().zip(img.as_slice()) {
        *c = p as f32 / 255.0;
    }
    let coeffs = &mut ws.coeffs;
    let (mut cw, mut ch) = (w as usize, h as usize);
    for _ in 0..levels {
        // Rows.
        ws.row.clear();
        ws.row.resize(cw, 0.0);
        for y in 0..ch {
            for (x, r) in ws.row.iter_mut().enumerate() {
                *r = coeffs.pixel(x as u32, y as u32);
            }
            haar_1d(&mut ws.row, cw, &mut ws.scratch);
            for (x, &r) in ws.row.iter().enumerate() {
                coeffs.set(x as u32, y as u32, r);
            }
        }
        // Columns.
        ws.col.clear();
        ws.col.resize(ch, 0.0);
        for x in 0..cw {
            for (y, c) in ws.col.iter_mut().enumerate() {
                *c = coeffs.pixel(x as u32, y as u32);
            }
            haar_1d(&mut ws.col, ch, &mut ws.scratch);
            for (y, &c) in ws.col.iter().enumerate() {
                coeffs.set(x as u32, y as u32, c);
            }
        }
        cw /= 2;
        ch /= 2;
    }
    let mut oi = 0;
    for level in 1..=levels {
        let bw = (w >> level) as usize;
        let bh = (h >> level) as usize;
        // Subband origins in Mallat layout: LH, HL, HH.
        for (x0, y0) in [(bw, 0), (0, bh), (bw, bh)] {
            out[oi] = rms_region(coeffs, x0, y0, bw, bh);
            oi += 1;
        }
    }
    let bw = (w >> levels) as usize;
    let bh = (h >> levels) as usize;
    out[oi] = rms_region(coeffs, 0, 0, bw, bh);
    Ok(())
}

/// RMS over a rectangular region, summing in the same row-major order as
/// [`rms`] over the cropped plane.
fn rms_region(img: &FloatImage, x0: usize, y0: usize, bw: usize, bh: usize) -> f32 {
    if bw == 0 || bh == 0 {
        return 0.0;
    }
    let w = img.width() as usize;
    let mut s = 0.0f32;
    for y in y0..y0 + bh {
        for &p in &img.as_slice()[y * w + x0..y * w + x0 + bw] {
            s += p * p;
        }
    }
    (s / (bw * bh) as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(n: u32) -> FloatImage {
        FloatImage::from_fn(n, n, |x, y| ((x * 31 + y * 17) % 97) as f32 / 97.0)
    }

    #[test]
    fn signature_matches_decomposition_assembly_bitwise() {
        // wavelet_signature now runs the in-place scratch transform; it must
        // reproduce the decomposition-object + crop + rms path to the bit.
        let gray = GrayImage::from_fn(48, 48, |x, y| ((x * 13 + y * 29) % 256) as u8);
        for levels in 1..=3u32 {
            let got = wavelet_signature(&gray, levels).unwrap();
            let dec = HaarDecomposition::forward(&gray.to_float_normalized(), levels).unwrap();
            let mut want = Vec::new();
            for level in 1..=levels {
                for band in [Subband::Lh, Subband::Hl, Subband::Hh] {
                    want.push(rms(&dec.subband(level, band).unwrap()));
                }
            }
            want.push(rms(&dec.approximation()));
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got), bits(&want), "levels {levels}");
        }
    }

    #[test]
    fn perfect_reconstruction() {
        for levels in 1..=3 {
            let img = test_image(16);
            let dec = HaarDecomposition::forward(&img, levels).unwrap();
            let rec = dec.inverse();
            for (a, b) in img.pixels().zip(rec.pixels()) {
                assert!((a - b).abs() < 1e-5, "level {levels}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn parseval_energy_preservation() {
        let img = test_image(32);
        let energy = |im: &FloatImage| im.pixels().map(|p| p * p).sum::<f32>();
        for levels in 1..=4 {
            let dec = HaarDecomposition::forward(&img, levels).unwrap();
            let e0 = energy(&img);
            let e1 = energy(dec.coefficients());
            assert!((e0 - e1).abs() < 1e-2 * e0.max(1.0), "{e0} vs {e1}");
        }
    }

    #[test]
    fn constant_image_concentrates_in_ll() {
        let img = FloatImage::filled(8, 8, 5.0);
        let dec = HaarDecomposition::forward(&img, 3).unwrap();
        for level in 1..=3 {
            for band in [Subband::Lh, Subband::Hl, Subband::Hh] {
                let sb = dec.subband(level, band).unwrap();
                assert!(sb.pixels().all(|p| p.abs() < 1e-5));
            }
        }
        // 1x1 approximation carries all energy: value = 5 * 8 = 40
        // (each of 3 levels of 2-D transform scales LL by 2).
        let ll = dec.approximation();
        assert_eq!(ll.dimensions(), (1, 1));
        assert!((ll.pixel(0, 0) - 40.0).abs() < 1e-3);
    }

    #[test]
    fn vertical_edges_land_in_lh() {
        // Vertical stripes (variation along x) -> LH (high-pass x) band.
        let img = FloatImage::from_fn(16, 16, |x, _| if x % 2 == 0 { 0.0 } else { 1.0 });
        let dec = HaarDecomposition::forward(&img, 1).unwrap();
        let lh = rms(&dec.subband(1, Subband::Lh).unwrap());
        let hl = rms(&dec.subband(1, Subband::Hl).unwrap());
        let hh = rms(&dec.subband(1, Subband::Hh).unwrap());
        assert!(lh > 0.3);
        assert!(hl < 1e-6);
        assert!(hh < 1e-6);
    }

    #[test]
    fn horizontal_edges_land_in_hl() {
        let img = FloatImage::from_fn(16, 16, |_, y| if y % 2 == 0 { 0.0 } else { 1.0 });
        let dec = HaarDecomposition::forward(&img, 1).unwrap();
        assert!(rms(&dec.subband(1, Subband::Hl).unwrap()) > 0.3);
        assert!(rms(&dec.subband(1, Subband::Lh).unwrap()) < 1e-6);
    }

    #[test]
    fn coarse_stripes_appear_at_coarser_levels() {
        // Stripes in blocks of 4 (period 8): pairs are equal at levels 1
        // and 2, so all detail lands exactly at level 3.
        let img = FloatImage::from_fn(32, 32, |x, _| if (x / 4) % 2 == 0 { 0.0 } else { 1.0 });
        let dec = HaarDecomposition::forward(&img, 3).unwrap();
        let l1 = rms(&dec.subband(1, Subband::Lh).unwrap());
        let l2 = rms(&dec.subband(2, Subband::Lh).unwrap());
        let l3 = rms(&dec.subband(3, Subband::Lh).unwrap());
        assert!(l1 < 1e-6, "fine band saw coarse stripes: {l1}");
        assert!(l2 < 1e-6, "mid band saw coarse stripes: {l2}");
        assert!(l3 > 0.5, "coarse band missed stripes: {l3}");
    }

    #[test]
    fn signature_shape_and_determinism() {
        let img = GrayImage::from_fn(64, 64, |x, y| ((x * 3 + y * 5) % 256) as u8);
        let sig = wavelet_signature(&img, 3).unwrap();
        assert_eq!(sig.len(), 10);
        assert!(sig.iter().all(|&v| v >= 0.0 && v.is_finite()));
        assert_eq!(sig, wavelet_signature(&img, 3).unwrap());
    }

    #[test]
    fn signature_separates_smooth_from_textured() {
        let smooth = GrayImage::from_fn(64, 64, |x, y| ((x + y) / 2) as u8);
        let textured = GrayImage::from_fn(64, 64, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
        let ss = wavelet_signature(&smooth, 3).unwrap();
        let st = wavelet_signature(&textured, 3).unwrap();
        // Fine-detail energy dominates for the checkerboard.
        assert!(st[0] + st[1] + st[2] > 10.0 * (ss[0] + ss[1] + ss[2]));
    }

    #[test]
    fn validation() {
        let img = FloatImage::filled(12, 12, 0.0);
        assert!(HaarDecomposition::forward(&img, 0).is_err());
        assert!(HaarDecomposition::forward(&img, 3).is_err()); // 12 % 8 != 0
        assert!(HaarDecomposition::forward(&img, 2).is_ok()); // 12 % 4 == 0
        let empty = FloatImage::filled(0, 0, 0.0);
        assert!(HaarDecomposition::forward(&empty, 1).is_err());
        let dec = HaarDecomposition::forward(&FloatImage::filled(8, 8, 0.0), 2).unwrap();
        assert!(dec.subband(0, Subband::Lh).is_err());
        assert!(dec.subband(3, Subband::Lh).is_err());
    }

    #[test]
    fn subband_dimensions() {
        let dec = HaarDecomposition::forward(&FloatImage::filled(32, 16, 1.0), 2).unwrap();
        assert_eq!(dec.subband(1, Subband::Hh).unwrap().dimensions(), (16, 8));
        assert_eq!(dec.subband(2, Subband::Hh).unwrap().dimensions(), (8, 4));
        assert_eq!(dec.approximation().dimensions(), (8, 4));
        assert_eq!(dec.levels(), 2);
    }
}
