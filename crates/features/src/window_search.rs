//! Region queries: find where a small template image occurs inside a larger
//! target image, by sliding-window histogram matching.
//!
//! A per-bin integral (summed-area) table over the quantized target makes
//! each window's histogram O(bins) regardless of window size, so a full
//! scan at stride 1 costs `O(pixels × 1 + windows × bins)` — the classical
//! trick that made region queries feasible on whole collections.

use crate::error::{FeatureError, Result};
use crate::histogram::ColorHistogram;
use crate::quantize::Quantizer;
use cbir_distance::l1;
use cbir_image::RgbImage;

/// A located window and its histogram distance from the template.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowMatch {
    /// Window left edge in target pixels.
    pub x: u32,
    /// Window top edge.
    pub y: u32,
    /// Window width (= template width).
    pub width: u32,
    /// Window height (= template height).
    pub height: u32,
    /// L1 distance between normalized histograms, in `[0, 2]`.
    pub distance: f32,
}

/// Per-bin integral tables over a quantized image.
struct IntegralHistogram {
    width: usize,
    bins: usize,
    /// `(w+1) × (h+1) × bins`, laid out row-major then bin-minor.
    table: Vec<u32>,
}

impl IntegralHistogram {
    fn new(img: &RgbImage, quantizer: &Quantizer) -> Self {
        let (w, h) = (img.width() as usize, img.height() as usize);
        let bins = quantizer.n_bins();
        let tw = w + 1;
        let mut table = vec![0u32; tw * (h + 1) * bins];
        for y in 0..h {
            // Running row sums per bin.
            let mut row = vec![0u32; bins];
            for x in 0..w {
                let b = quantizer.bin_of(img.pixel(x as u32, y as u32));
                row[b] += 1;
                let above = (y * tw + (x + 1)) * bins;
                let here = ((y + 1) * tw + (x + 1)) * bins;
                for bin in 0..bins {
                    table[here + bin] = table[above + bin] + row[bin];
                }
            }
        }
        IntegralHistogram {
            width: w,
            bins,
            table,
        }
    }

    /// Histogram counts of the window `[x0, x0+w) × [y0, y0+h)`.
    fn window(&self, x0: usize, y0: usize, w: usize, h: usize, out: &mut [f32]) {
        let tw = self.width + 1;
        let a = (y0 * tw + x0) * self.bins;
        let b = (y0 * tw + (x0 + w)) * self.bins;
        let c = ((y0 + h) * tw + x0) * self.bins;
        let d = ((y0 + h) * tw + (x0 + w)) * self.bins;
        let n = (w * h) as f32;
        for (bin, slot) in out.iter_mut().enumerate().take(self.bins) {
            let count = self.table[d + bin] + self.table[a + bin]
                - self.table[b + bin]
                - self.table[c + bin];
            *slot = count as f32 / n;
        }
    }
}

fn validate(
    target: &RgbImage,
    template: &RgbImage,
    quantizer: &Quantizer,
    stride: u32,
) -> Result<()> {
    quantizer.validate()?;
    if stride == 0 {
        return Err(FeatureError::InvalidParameter(
            "stride must be positive".into(),
        ));
    }
    if template.is_empty() || target.is_empty() {
        return Err(FeatureError::EmptyImage("window search"));
    }
    if template.width() > target.width() || template.height() > target.height() {
        return Err(FeatureError::InvalidParameter(format!(
            "template {}x{} larger than target {}x{}",
            template.width(),
            template.height(),
            target.width(),
            target.height()
        )));
    }
    if quantizer.n_bins() > 512 {
        return Err(FeatureError::InvalidParameter(
            "window search quantizer must have <= 512 bins (integral memory)".into(),
        ));
    }
    let cells = (target.width() as usize + 1) * (target.height() as usize + 1);
    if cells.saturating_mul(quantizer.n_bins()) > 512 << 20 {
        return Err(FeatureError::InvalidParameter(
            "target too large for integral histogram (> 2 GiB table)".into(),
        ));
    }
    Ok(())
}

/// Scan every window of the template's size (at the given stride) and
/// return them all sorted by ascending histogram distance; ties resolve
/// top-to-bottom, left-to-right. Use [`find_best_window`] when only the
/// winner matters.
pub fn scan_windows(
    target: &RgbImage,
    template: &RgbImage,
    quantizer: &Quantizer,
    stride: u32,
) -> Result<Vec<WindowMatch>> {
    validate(target, template, quantizer, stride)?;
    let integral = IntegralHistogram::new(target, quantizer);
    let tmpl_hist: Vec<f32> = ColorHistogram::compute(template, quantizer)?.normalized();
    let (tw, th) = (template.width(), template.height());
    let mut window_hist = vec![0.0f32; quantizer.n_bins()];
    let mut out = Vec::new();
    let mut y = 0u32;
    while y + th <= target.height() {
        let mut x = 0u32;
        while x + tw <= target.width() {
            integral.window(
                x as usize,
                y as usize,
                tw as usize,
                th as usize,
                &mut window_hist,
            );
            out.push(WindowMatch {
                x,
                y,
                width: tw,
                height: th,
                distance: l1(&tmpl_hist, &window_hist),
            });
            x += stride;
        }
        y += stride;
    }
    out.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.y.cmp(&b.y))
            .then(a.x.cmp(&b.x))
    });
    Ok(out)
}

/// The single best-matching window (see [`scan_windows`]).
pub fn find_best_window(
    target: &RgbImage,
    template: &RgbImage,
    quantizer: &Quantizer,
    stride: u32,
) -> Result<WindowMatch> {
    // scan_windows always yields >= 1 window after validation (template
    // fits inside the target).
    Ok(scan_windows(target, template, quantizer, stride)?
        .into_iter()
        .next()
        .expect("at least one window"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbir_image::Rgb;

    const RED: Rgb = Rgb([220, 30, 30]);
    const BLUE: Rgb = Rgb([30, 30, 220]);
    const GREEN: Rgb = Rgb([30, 220, 30]);

    /// Blue background with a red 12x10 patch at (20, 8).
    fn scene() -> RgbImage {
        RgbImage::from_fn(48, 32, |x, y| {
            if (20..32).contains(&x) && (8..18).contains(&y) {
                RED
            } else {
                BLUE
            }
        })
    }

    #[test]
    fn finds_the_planted_patch_exactly() {
        let target = scene();
        let template = RgbImage::filled(12, 10, RED);
        let m = find_best_window(&target, &template, &Quantizer::rgb_compact(), 1).unwrap();
        assert_eq!((m.x, m.y), (20, 8));
        assert_eq!((m.width, m.height), (12, 10));
        assert!(m.distance < 1e-6, "distance {}", m.distance);
    }

    #[test]
    fn coarse_stride_lands_near_the_patch() {
        let target = scene();
        let template = RgbImage::filled(12, 10, RED);
        let m = find_best_window(&target, &template, &Quantizer::rgb_compact(), 4).unwrap();
        assert!(
            m.x.abs_diff(20) <= 4 && m.y.abs_diff(8) <= 4,
            "({}, {})",
            m.x,
            m.y
        );
    }

    #[test]
    fn ranking_is_by_overlap_with_patch() {
        let target = scene();
        let template = RgbImage::filled(12, 10, RED);
        let all = scan_windows(&target, &template, &Quantizer::rgb_compact(), 2).unwrap();
        // Distances ascend; far-away windows are maximally distant (pure
        // blue vs pure red = L1 distance 2).
        for w in all.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        assert!((all.last().unwrap().distance - 2.0).abs() < 1e-6);
    }

    #[test]
    fn integral_matches_direct_histogram() {
        // Any window's integral-derived histogram equals the directly
        // computed one.
        let target = RgbImage::from_fn(17, 13, |x, y| match (x * 7 + y * 5) % 3 {
            0 => RED,
            1 => BLUE,
            _ => GREEN,
        });
        let q = Quantizer::rgb_compact();
        let template = target.crop(4, 3, 6, 5).unwrap();
        let m = find_best_window(&target, &template, &q, 1).unwrap();
        // The original location must be a perfect match.
        assert!(m.distance < 1e-6);
        let direct: Vec<f32> = ColorHistogram::compute(&template, &q).unwrap().normalized();
        let integral = IntegralHistogram::new(&target, &q);
        let mut via_integral = vec![0.0f32; q.n_bins()];
        integral.window(4, 3, 6, 5, &mut via_integral);
        for (a, b) in direct.iter().zip(&via_integral) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn template_equal_to_target_gives_single_window() {
        let target = scene();
        let all = scan_windows(&target, &target, &Quantizer::rgb_compact(), 1).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!((all[0].x, all[0].y), (0, 0));
        assert!(all[0].distance < 1e-6);
    }

    #[test]
    fn validation_errors() {
        let small = RgbImage::filled(4, 4, RED);
        let big = RgbImage::filled(16, 16, BLUE);
        let q = Quantizer::rgb_compact();
        assert!(find_best_window(&small, &big, &q, 1).is_err()); // template > target
        assert!(find_best_window(&big, &small, &q, 0).is_err()); // stride 0
        let empty = RgbImage::filled(0, 0, RED);
        assert!(find_best_window(&big, &empty, &q, 1).is_err());
        // Oversized quantizer rejected.
        assert!(find_best_window(
            &big,
            &small,
            &Quantizer::Hsv {
                hue: 64,
                sat: 4,
                val: 4
            },
            1
        )
        .is_err());
    }

    #[test]
    fn tie_break_is_topmost_leftmost() {
        // Uniform target: every window ties at distance 0.
        let target = RgbImage::filled(10, 10, GREEN);
        let template = RgbImage::filled(3, 3, GREEN);
        let m = find_best_window(&target, &template, &Quantizer::rgb_compact(), 1).unwrap();
        assert_eq!((m.x, m.y), (0, 0));
    }
}
