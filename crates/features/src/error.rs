//! Error type for feature extraction.

use std::fmt;

/// Errors produced while extracting features.
#[derive(Debug)]
pub enum FeatureError {
    /// A parameter is outside its valid domain.
    InvalidParameter(String),
    /// The input image has no pixels.
    EmptyImage(&'static str),
    /// An underlying imaging operation failed.
    Image(cbir_image::ImageError),
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            FeatureError::EmptyImage(ctx) => write!(f, "{ctx}: input image is empty"),
            FeatureError::Image(e) => write!(f, "imaging error: {e}"),
        }
    }
}

impl std::error::Error for FeatureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeatureError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cbir_image::ImageError> for FeatureError {
    fn from(e: cbir_image::ImageError) -> Self {
        FeatureError::Image(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, FeatureError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FeatureError::InvalidParameter("bins".into());
        assert!(e.to_string().contains("bins"));
        let e = FeatureError::EmptyImage("glcm");
        assert!(e.to_string().contains("glcm"));
        let img_err = cbir_image::ImageError::Decode("x".into());
        let e = FeatureError::from(img_err);
        assert!(std::error::Error::source(&e).is_some());
    }
}
