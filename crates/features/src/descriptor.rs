//! Feature-vector plumbing: kinds, normalization, and the composite layout
//! used to assemble multi-feature signatures.

/// Every feature family the extraction pipeline can produce.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Quantized color histogram.
    ColorHistogram,
    /// First three moments of each HSV channel.
    ColorMoments,
    /// Color auto-correlogram.
    Correlogram,
    /// Averaged GLCM texture statistics.
    Glcm,
    /// Tamura coarseness/contrast/directionality.
    Tamura,
    /// Haar wavelet subband-energy signature.
    Wavelet,
    /// Edge-orientation histogram.
    EdgeOrientation,
    /// Edge-density grid.
    EdgeDensityGrid,
    /// Hu moment invariants of the Otsu foreground mask.
    HuMoments,
    /// Eccentricity/compactness/extent summary.
    ShapeSummary,
    /// Histogram of the salience distance transform.
    DtHistogram,
    /// Connected-component shape signature of the dominant region.
    RegionShape,
}

impl FeatureKind {
    /// Short identifier used in tables and persistence.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureKind::ColorHistogram => "color-hist",
            FeatureKind::ColorMoments => "color-moments",
            FeatureKind::Correlogram => "correlogram",
            FeatureKind::Glcm => "glcm",
            FeatureKind::Tamura => "tamura",
            FeatureKind::Wavelet => "wavelet",
            FeatureKind::EdgeOrientation => "edge-orient",
            FeatureKind::EdgeDensityGrid => "edge-grid",
            FeatureKind::HuMoments => "hu-moments",
            FeatureKind::ShapeSummary => "shape",
            FeatureKind::DtHistogram => "dt-hist",
            FeatureKind::RegionShape => "region-shape",
        }
    }
}

/// L1-normalize in place (sum of absolute values becomes 1); a zero vector
/// is left unchanged.
pub fn normalize_l1(v: &mut [f32]) {
    let s: f32 = v.iter().map(|x| x.abs()).sum();
    if s > 0.0 {
        for x in v {
            *x /= s;
        }
    }
}

/// L2-normalize in place (unit Euclidean norm); a zero vector is left
/// unchanged.
pub fn normalize_l2(v: &mut [f32]) {
    let s: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if s > 0.0 {
        for x in v {
            *x /= s;
        }
    }
}

/// Rescale each component into `[0, 1]` given per-component `(min, max)`
/// statistics (e.g. collected over a database); components with degenerate
/// ranges map to 0.
pub fn normalize_minmax(v: &mut [f32], stats: &[(f32, f32)]) {
    assert_eq!(v.len(), stats.len(), "stats length mismatch");
    for (x, &(lo, hi)) in v.iter_mut().zip(stats) {
        *x = if hi > lo {
            ((*x - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            0.0
        };
    }
}

/// A named slice of a composite feature vector.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Which feature family produced this segment.
    pub kind: FeatureKind,
    /// Start offset in the composite vector (inclusive).
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
}

impl Segment {
    /// Segment length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment is empty (never true for valid layouts).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let kinds = [
            FeatureKind::ColorHistogram,
            FeatureKind::ColorMoments,
            FeatureKind::Correlogram,
            FeatureKind::Glcm,
            FeatureKind::Tamura,
            FeatureKind::Wavelet,
            FeatureKind::EdgeOrientation,
            FeatureKind::EdgeDensityGrid,
            FeatureKind::HuMoments,
            FeatureKind::ShapeSummary,
            FeatureKind::DtHistogram,
            FeatureKind::RegionShape,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn l1_normalization() {
        let mut v = vec![1.0f32, -3.0, 4.0];
        normalize_l1(&mut v);
        let s: f32 = v.iter().map(|x| x.abs()).sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!((v[0] - 0.125).abs() < 1e-6);
        let mut z = vec![0.0f32; 3];
        normalize_l1(&mut z);
        assert_eq!(z, vec![0.0; 3]);
    }

    #[test]
    fn l2_normalization() {
        let mut v = vec![3.0f32, 4.0];
        normalize_l2(&mut v);
        assert!((v[0] - 0.6).abs() < 1e-6);
        assert!((v[1] - 0.8).abs() < 1e-6);
        let mut z = vec![0.0f32; 2];
        normalize_l2(&mut z);
        assert_eq!(z, vec![0.0; 2]);
    }

    #[test]
    fn minmax_normalization() {
        let mut v = vec![5.0f32, 0.0, -1.0];
        normalize_minmax(&mut v, &[(0.0, 10.0), (0.0, 0.0), (-2.0, 0.0)]);
        assert_eq!(v, vec![0.5, 0.0, 0.5]);
        // Clamping out-of-range values.
        let mut w = vec![20.0f32];
        normalize_minmax(&mut w, &[(0.0, 10.0)]);
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "stats length mismatch")]
    fn minmax_length_checked() {
        normalize_minmax(&mut [1.0], &[(0.0, 1.0), (0.0, 1.0)]);
    }

    #[test]
    fn segment_len() {
        let s = Segment {
            kind: FeatureKind::Glcm,
            start: 10,
            end: 15,
        };
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }
}
