//! Color histograms — the workhorse signature of color indexing — plus
//! color moments.

use crate::error::{FeatureError, Result};
use crate::quantize::Quantizer;
use cbir_image::color::rgb_to_hsv;
use cbir_image::RgbImage;

/// Histogram of quantized colors.
#[derive(Clone, Debug, PartialEq)]
pub struct ColorHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl ColorHistogram {
    /// Count quantized colors over the whole image.
    pub fn compute(img: &RgbImage, quantizer: &Quantizer) -> Result<Self> {
        quantizer.validate()?;
        if img.is_empty() {
            return Err(FeatureError::EmptyImage("color histogram"));
        }
        let mut counts = vec![0u64; quantizer.n_bins()];
        for p in img.pixels() {
            counts[quantizer.bin_of(p)] += 1;
        }
        Ok(ColorHistogram {
            total: img.len() as u64,
            counts,
        })
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of pixels counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Probability-normalized histogram (sums to 1).
    pub fn normalized(&self) -> Vec<f32> {
        let t = self.total as f32;
        self.counts.iter().map(|&c| c as f32 / t).collect()
    }

    /// Cumulative normalized histogram; L1 distances on this are the match
    /// distance.
    pub fn cumulative(&self) -> Vec<f32> {
        let mut acc = 0.0f32;
        let t = self.total as f32;
        self.counts
            .iter()
            .map(|&c| {
                acc += c as f32 / t;
                acc
            })
            .collect()
    }

    /// Number of non-empty bins.
    pub fn occupied_bins(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Index of the most populated bin.
    pub fn dominant_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Normalized histogram over a pre-quantized bin plane, written into `out`
/// with `counts` reused as the counting buffer. The probabilities are the
/// same `count / total` divisions [`ColorHistogram::normalized`] performs,
/// so results are bit-identical to the two-step path.
pub(crate) fn histogram_normalized_from_indexed(
    plane: &[u16],
    n_bins: usize,
    counts: &mut Vec<u64>,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), n_bins);
    counts.clear();
    counts.resize(n_bins, 0);
    for &b in plane {
        counts[b as usize] += 1;
    }
    let t = plane.len() as u64 as f32;
    for (o, &c) in out.iter_mut().zip(counts.iter()) {
        *o = c as f32 / t;
    }
}

/// The first three statistical moments (mean, standard deviation, skewness
/// cube root) of each HSV channel: a 9-component signature that is far more
/// compact than a histogram yet competitive for coarse color matching.
pub fn color_moments(img: &RgbImage) -> Result<Vec<f32>> {
    if img.is_empty() {
        return Err(FeatureError::EmptyImage("color moments"));
    }
    let mut values = Vec::new();
    let mut out = vec![0.0f32; 9];
    color_moments_into(img, &mut values, &mut out);
    Ok(out)
}

/// [`color_moments`] over a non-empty image, writing the nine moments into
/// `out` and reusing `values` as the per-pixel HSV buffer.
pub(crate) fn color_moments_into(img: &RgbImage, values: &mut Vec<[f32; 3]>, out: &mut [f32]) {
    debug_assert_eq!(out.len(), 9);
    let n = img.len() as f64;
    // Channel extractors into comparable [0,1]-ish ranges.
    let mut sums = [0.0f64; 3];
    values.clear();
    for p in img.pixels() {
        let hsv = rgb_to_hsv(p);
        let v = [hsv.h / 360.0, hsv.s, hsv.v];
        for (s, x) in sums.iter_mut().zip(v) {
            *s += x as f64;
        }
        values.push(v);
    }
    let means = sums.map(|s| s / n);

    let mut m2 = [0.0f64; 3];
    let mut m3 = [0.0f64; 3];
    for v in values.iter() {
        for c in 0..3 {
            let d = v[c] as f64 - means[c];
            m2[c] += d * d;
            m3[c] += d * d * d;
        }
    }
    for c in 0..3 {
        out[3 * c] = means[c] as f32;
        out[3 * c + 1] = (m2[c] / n).sqrt() as f32;
        // Signed cube root of the third moment keeps units linear.
        let third = m3[c] / n;
        out[3 * c + 2] = third.signum() as f32 * (third.abs().powf(1.0 / 3.0)) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbir_image::Rgb;

    fn checkerboard(a: Rgb, b: Rgb, n: u32) -> RgbImage {
        RgbImage::from_fn(n, n, |x, y| if (x + y) % 2 == 0 { a } else { b })
    }

    #[test]
    fn counts_sum_to_pixel_count() {
        let img = checkerboard(Rgb::new(255, 0, 0), Rgb::new(0, 0, 255), 8);
        let h = ColorHistogram::compute(&img, &Quantizer::rgb_compact()).unwrap();
        assert_eq!(h.counts().iter().sum::<u64>(), 64);
        assert_eq!(h.total(), 64);
        assert_eq!(h.occupied_bins(), 2);
    }

    #[test]
    fn normalized_sums_to_one() {
        let img = checkerboard(Rgb::new(10, 200, 30), Rgb::new(0, 0, 0), 9);
        let h = ColorHistogram::compute(&img, &Quantizer::hsv_default()).unwrap();
        let s: f32 = h.normalized().iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cumulative_is_monotone_ending_at_one() {
        let img = checkerboard(Rgb::new(255, 255, 0), Rgb::new(0, 255, 255), 6);
        let h = ColorHistogram::compute(&img, &Quantizer::rgb_compact()).unwrap();
        let c = h.cumulative();
        for w in c.windows(2) {
            assert!(w[1] >= w[0] - 1e-7);
        }
        assert!((c.last().unwrap() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn dominant_bin_finds_the_majority_color() {
        let img = RgbImage::from_fn(10, 10, |x, _| {
            if x == 0 {
                Rgb::new(0, 0, 255)
            } else {
                Rgb::new(255, 0, 0)
            }
        });
        let q = Quantizer::rgb_compact();
        let h = ColorHistogram::compute(&img, &q).unwrap();
        assert_eq!(h.dominant_bin(), q.bin_of(Rgb::new(255, 0, 0)));
    }

    #[test]
    fn layout_invariance_the_known_weakness() {
        // Same colors, different spatial arrangement: histograms identical.
        // This is exactly the limitation correlograms address.
        let a = RgbImage::from_fn(8, 8, |x, _| {
            if x < 4 {
                Rgb::new(255, 0, 0)
            } else {
                Rgb::new(0, 0, 255)
            }
        });
        let b = checkerboard(Rgb::new(255, 0, 0), Rgb::new(0, 0, 255), 8);
        let q = Quantizer::rgb_compact();
        let ha = ColorHistogram::compute(&a, &q).unwrap();
        let hb = ColorHistogram::compute(&b, &q).unwrap();
        assert_eq!(ha, hb);
    }

    #[test]
    fn empty_image_rejected() {
        let img = RgbImage::filled(0, 0, Rgb::default());
        assert!(ColorHistogram::compute(&img, &Quantizer::rgb_compact()).is_err());
        assert!(color_moments(&img).is_err());
    }

    #[test]
    fn invalid_quantizer_rejected() {
        let img = RgbImage::filled(2, 2, Rgb::default());
        assert!(ColorHistogram::compute(&img, &Quantizer::Gray { bins: 1 }).is_err());
    }

    #[test]
    fn moments_of_uniform_image() {
        let img = RgbImage::filled(8, 8, Rgb::new(255, 0, 0));
        let m = color_moments(&img).unwrap();
        assert_eq!(m.len(), 9);
        // Constant image: all std-devs and skews are 0.
        assert!(m[1].abs() < 1e-5 && m[2].abs() < 1e-5); // hue
        assert!(m[4].abs() < 1e-5 && m[5].abs() < 1e-5); // sat
        assert!(m[7].abs() < 1e-5 && m[8].abs() < 1e-5); // val
                                                         // Saturation and value of pure red are 1.
        assert!((m[3] - 1.0).abs() < 1e-5);
        assert!((m[6] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn moments_detect_brightness_difference() {
        let dark = RgbImage::filled(8, 8, Rgb::new(30, 30, 30));
        let bright = RgbImage::filled(8, 8, Rgb::new(220, 220, 220));
        let md = color_moments(&dark).unwrap();
        let mb = color_moments(&bright).unwrap();
        assert!(mb[6] > md[6] + 0.5); // value mean separates them
    }

    #[test]
    fn moments_skewness_sign() {
        // Mostly dark pixels with a few bright ones: value distribution is
        // right-skewed (positive skew).
        let img = RgbImage::from_fn(10, 10, |x, y| {
            if x == 0 && y < 3 {
                Rgb::new(250, 250, 250)
            } else {
                Rgb::new(20, 20, 20)
            }
        });
        let m = color_moments(&img).unwrap();
        assert!(m[8] > 0.0, "value skew should be positive, got {}", m[8]);
    }
}
