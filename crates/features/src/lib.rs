//! # `cbir-features` — image feature signatures
//!
//! Every signature the indexing system extracts from images:
//!
//! - **Color**: quantized histograms (RGB / HSV / gray quantizers), HSV
//!   channel moments, and the spatial-layout-aware color auto-correlogram;
//! - **Texture**: GLCM statistics (energy, entropy, contrast, homogeneity,
//!   correlation), Tamura features, Haar-wavelet subband-energy signatures;
//! - **Shape / edges**: magnitude-weighted edge-orientation histograms,
//!   edge-density grids, chamfer and salience distance-transform
//!   histograms, geometric moments, eccentricity, and Hu invariants.
//!
//! The [`Pipeline`] assembles any subset into one composite vector with a
//! stable [`Segment`] layout so per-family measures and weights can be
//! applied at query time.
//!
//! ```
//! use cbir_features::{Pipeline, FeatureSpec, Quantizer};
//! use cbir_image::{RgbImage, Rgb};
//!
//! let pipeline = Pipeline::new(32, vec![
//!     FeatureSpec::ColorHistogram(Quantizer::rgb_compact()),
//!     FeatureSpec::Glcm { levels: 16 },
//! ]).unwrap();
//! let img = RgbImage::filled(100, 80, Rgb::new(200, 30, 30));
//! let signature = pipeline.extract(&img).unwrap();
//! assert_eq!(signature.len(), 64 + 5);
//! ```

#![warn(missing_docs)]

mod context;
mod correlogram;
mod descriptor;
mod distance_transform;
mod edges;
mod error;
mod glcm;
mod histogram;
mod mask;
mod moments;
mod pipeline;
mod quantize;
mod tamura;
mod wavelet;
mod window_search;

pub use context::{ExtractContext, ExtractScratch};
pub use correlogram::AutoCorrelogram;
pub use descriptor::{normalize_l1, normalize_l2, normalize_minmax, FeatureKind, Segment};
pub use distance_transform::{distance_transform, dt_histogram, salience_distance_transform};
pub use edges::{circular_min_l1, edge_density_grid, edge_orientation_histogram};
pub use error::{FeatureError, Result};
pub use glcm::{glcm_features, Glcm, STANDARD_OFFSETS};
pub use histogram::{color_moments, ColorHistogram};
pub use mask::{foreground_mask, foreground_mask_into};
pub use moments::{hu_feature_vector, region_shape_features, shape_summary, Moments};
pub use pipeline::{FeatureSpec, Pipeline};
pub use quantize::Quantizer;
pub use tamura::{coarseness, contrast, directionality, tamura_features};
pub use wavelet::{wavelet_signature, HaarDecomposition, Subband};
pub use window_search::{find_best_window, scan_windows, WindowMatch};
