//! Malformed-frame fuzz sweep over the `CBIRRPC1` wire surface.
//!
//! A seeded generator throws truncated headers, wrong magic, oversized
//! length prefixes, garbage op codes, mid-frame disconnects, and raw
//! byte noise at a live server. The contract under attack input is
//! narrow but absolute: the server never panics, never wedges a
//! connection slot (a poisoned connection is answered-or-closed and
//! fully reclaimed), and keeps serving well-formed traffic on other
//! connections throughout.

use cbir_core::{ImageDatabase, ImageMeta, IndexKind, QueryEngine};
use cbir_distance::Measure;
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_server::{Client, SchedulerConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const MAGIC: &[u8; 8] = b"CBIRRPC1";

fn build_engine(n: usize) -> QueryEngine {
    let pipeline = Pipeline::new(
        16,
        vec![FeatureSpec::ColorHistogram(Quantizer::Gray { bins: 16 })],
    )
    .unwrap();
    let mut db = ImageDatabase::new(pipeline);
    for (i, v) in cbir_workload::histograms(n, 16, 1.0, 7)
        .into_iter()
        .enumerate()
    {
        db.insert_descriptor(
            ImageMeta {
                name: format!("img-{i}"),
                label: None,
            },
            v,
        )
        .unwrap();
    }
    QueryEngine::build(db, IndexKind::Linear, Measure::L1).unwrap()
}

fn spawn_server(n: usize) -> ServerHandle {
    Server::spawn(build_engine(n), "127.0.0.1:0", SchedulerConfig::default()).unwrap()
}

/// xorshift64* — tiny, seeded, good enough to sweep attack shapes
/// reproducibly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next() as u8).collect()
    }
}

/// One adversarial payload: the bytes to send and whether to slam the
/// write half shut afterwards (a mid-frame disconnect).
struct Attack {
    bytes: Vec<u8>,
    disconnect: bool,
    what: &'static str,
}

fn attack(rng: &mut Rng) -> Attack {
    let frame = |payload: &[u8], declared: u32| {
        let mut b = Vec::with_capacity(12 + payload.len());
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&declared.to_le_bytes());
        b.extend_from_slice(payload);
        b
    };
    match rng.next() % 6 {
        // Truncated header: anything shorter than magic + length.
        0 => {
            let n = (rng.next() % 12) as usize;
            Attack {
                bytes: rng.bytes(n),
                disconnect: true,
                what: "truncated header",
            }
        }
        // Wrong magic with a plausible tail.
        1 => {
            let mut b = rng.bytes(8);
            b.extend_from_slice(&8u32.to_le_bytes());
            b.extend_from_slice(&rng.bytes(8));
            Attack {
                bytes: b,
                disconnect: false,
                what: "bad magic",
            }
        }
        // Oversized length prefix (past MAX_FRAME_LEN).
        2 => {
            let declared = (16u32 << 20) + 1 + (rng.next() as u32 % 1000);
            Attack {
                bytes: frame(&rng.bytes(16), declared),
                disconnect: false,
                what: "oversized length prefix",
            }
        }
        // Garbage op code / garbage payload in a well-formed frame.
        3 => {
            let n = 1 + (rng.next() % 64) as usize;
            let mut payload = rng.bytes(n);
            payload[0] = 100 + (rng.next() % 156) as u8; // far past every valid op
            let declared = payload.len() as u32;
            Attack {
                bytes: frame(&payload, declared),
                disconnect: false,
                what: "garbage op code",
            }
        }
        // Mid-frame disconnect: declare more than is sent, then close.
        4 => {
            let declared = 64 + (rng.next() % 512) as u32;
            let sent = (rng.next() % 32) as usize;
            Attack {
                bytes: frame(&rng.bytes(sent), declared),
                disconnect: true,
                what: "mid-frame disconnect",
            }
        }
        // Unstructured byte noise.
        _ => {
            let n = 1 + (rng.next() % 200) as usize;
            Attack {
                bytes: rng.bytes(n),
                disconnect: true,
                what: "byte noise",
            }
        }
    }
}

/// Deliver one attack and wait for the server's verdict: it may answer
/// (an error frame) or just close, but the read must terminate — a
/// server that hangs the connection has leaked the slot.
fn deliver(addr: SocketAddr, a: &Attack) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The server may already have closed on us mid-write; that's a pass.
    if stream.write_all(&a.bytes).is_err() {
        return;
    }
    if a.disconnect {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    let mut sink = [0u8; 4096];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return,   // server closed: slot reclaimed
            Ok(_) => continue, // error reply bytes; drain until close
            Err(e) => panic!("{}: server wedged the connection: {e}", a.what),
        }
    }
}

/// The full adversarial sweep against a running server, whichever
/// connection engine it is using.
fn sweep_against(handle: ServerHandle) {
    let addr = handle.local_addr();
    // A long-lived well-formed connection, open across the whole sweep:
    // poisoned siblings must not disturb it.
    let mut bystander = Client::connect(addr).unwrap();
    let (_, dim) = bystander.ping().unwrap();
    let query = vec![1.0 / dim as f32; dim as usize];

    let mut rng = Rng(0xF12A_3EED);
    for i in 0..72 {
        deliver(addr, &attack(&mut rng));
        if i % 8 == 0 {
            // The bystander connection keeps working mid-sweep.
            let hits = bystander.knn(&query, 3, 0, 1.0).unwrap();
            assert_eq!(hits.len(), 3);
        }
    }

    // A half-open attacker that never finishes its frame while healthy
    // clients come and go.
    let mut lingerer = TcpStream::connect(addr).unwrap();
    lingerer.write_all(&MAGIC[..6]).unwrap();
    for _ in 0..4 {
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(c.knn(&query, 5, 0, 1.0).unwrap().len(), 5);
    }
    drop(lingerer);

    // No admitted-but-lost work left behind by the sweep, and the
    // server still answers a burst of fresh connections (no slot leak).
    let stats = bystander.stats().unwrap();
    assert_eq!(stats.queue_depth, 0, "sweep must not strand queued work");
    let fresh: Vec<_> = (0..8)
        .map(|_| {
            let mut c = Client::connect(addr).unwrap();
            c.knn(&query, 2, 0, 1.0).unwrap()
        })
        .collect();
    assert!(fresh.iter().all(|h| h.len() == 2));
    handle.shutdown();
}

#[test]
fn malformed_frame_sweep_never_kills_the_server() {
    sweep_against(spawn_server(32));
}

/// The identical sweep against the epoll engine: one loop thread owns
/// every poisoned socket, so a single wedged or leaked connection state
/// would show up as the bystander stalling or fresh connections failing.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[test]
fn malformed_frame_sweep_never_kills_the_event_loop_server() {
    use cbir_server::EventLoopConfig;
    let handle = Server::spawn_event(
        build_engine(32),
        "127.0.0.1:0",
        SchedulerConfig::default(),
        EventLoopConfig::default(),
    )
    .unwrap();
    sweep_against(handle);
}

/// Seeded valid frames, replayed through the incremental decoder at
/// every split boundary (and fully coalesced): the reassembled frames
/// must be byte-identical to what the blocking `read_frame` reader
/// produces from the same stream.
#[test]
fn frame_decoder_split_sweep_matches_blocking_reader() {
    use cbir_server::protocol::{read_frame, write_frame};
    use cbir_server::FrameDecoder;

    let mut rng = Rng(0xDEC0_DE01);
    for trial in 0..12 {
        // A coalesced pair of random frames (empty payloads included).
        let n1 = (rng.next() % 96) as usize;
        let p1 = rng.bytes(n1);
        let n2 = (rng.next() % 96) as usize;
        let p2 = rng.bytes(n2);
        let mut stream = Vec::new();
        write_frame(&mut stream, &p1).unwrap();
        write_frame(&mut stream, &p2).unwrap();

        let mut oracle = std::io::Cursor::new(stream.clone());
        let o1 = read_frame(&mut oracle).unwrap().unwrap();
        let o2 = read_frame(&mut oracle).unwrap().unwrap();

        for split in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            let mut frames = Vec::new();
            for chunk in [&stream[..split], &stream[split..]] {
                let mut at = 0;
                while at < chunk.len() {
                    let (used, frame) = dec.feed(&chunk[at..]).unwrap();
                    at += used;
                    if let Some(f) = frame {
                        frames.push(f);
                    }
                }
            }
            assert!(dec.at_boundary(), "trial {trial} split {split}: mid-frame");
            assert_eq!(frames.len(), 2, "trial {trial} split {split}");
            assert_eq!(frames[0], o1, "trial {trial} split {split}: frame 0");
            assert_eq!(frames[1], o2, "trial {trial} split {split}: frame 1");
        }
    }
}
