//! Connection-churn soak against the event-loop engine.
//!
//! Hundreds of short-lived connections — most complete a query cleanly,
//! a seeded fraction abort mid-request (half a frame written, then the
//! socket slammed shut) — while one long-lived client watches. The
//! contract: the server's fd count returns to its baseline (every
//! accepted socket and epoll registration is reclaimed), the admission
//! queue drains to zero, and the bystander never sees a wrong answer.
//!
//! The server runs in-process, so `/proc/self/fd` counts the server's
//! descriptors: a leaked connection fd, epoll registration, or waker
//! pipe shows up as a rising count that never comes back down.

#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

use cbir_core::{ImageDatabase, ImageMeta, IndexKind, QueryEngine};
use cbir_distance::Measure;
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_server::protocol::{encode_request, write_frame, Request};
use cbir_server::{Client, EventLoopConfig, SchedulerConfig, Server};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").unwrap().count()
}

/// xorshift64* for seeded abort decisions.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn connection_churn_leaks_no_fds_and_strands_no_work() {
    let pipeline = Pipeline::new(
        16,
        vec![FeatureSpec::ColorHistogram(Quantizer::Gray { bins: 16 })],
    )
    .unwrap();
    let mut db = ImageDatabase::new(pipeline);
    for (i, v) in cbir_workload::histograms(32, 16, 1.0, 7)
        .into_iter()
        .enumerate()
    {
        db.insert_descriptor(
            ImageMeta {
                name: format!("img-{i}"),
                label: None,
            },
            v,
        )
        .unwrap();
    }
    let engine = QueryEngine::build(db, IndexKind::VpTree, Measure::L1).unwrap();
    let handle = Server::spawn_event(
        engine,
        "127.0.0.1:0",
        SchedulerConfig {
            // Tight idle reap so aborted half-frames are collected
            // within the test's lifetime, not after 60s.
            idle_timeout: Some(Duration::from_millis(200)),
            ..SchedulerConfig::default()
        },
        EventLoopConfig::default(),
    )
    .unwrap();
    let addr = handle.local_addr();

    let mut bystander = Client::connect(addr).unwrap();
    let (_, dim) = bystander.ping().unwrap();
    let query = vec![1.0 / dim as f32; dim as usize];
    let want = bystander.knn(&query, 3, 0, 1.0).unwrap();

    // Baseline after the server and bystander are fully set up.
    let baseline = fd_count();

    let mut rng = Rng(0xC0FF_EE42);
    let mut aborted = 0usize;
    for cycle in 0..500 {
        match rng.next() % 4 {
            // Mid-request abort: half a knn frame, then vanish.
            0 => {
                let mut raw = TcpStream::connect(addr).unwrap();
                let mut frame = Vec::new();
                let req = Request::Knn {
                    k: 3,
                    deadline_us: 0,
                    recall_target: 1.0,
                    descriptor: query.clone(),
                };
                write_frame(&mut frame, &encode_request(&req)).unwrap();
                let cut = 1 + (rng.next() as usize % (frame.len() - 1));
                raw.write_all(&frame[..cut]).unwrap();
                drop(raw); // RST or FIN mid-frame, peer's choice
                aborted += 1;
            }
            // Connect and immediately disconnect without a byte.
            1 => {
                drop(TcpStream::connect(addr).unwrap());
                aborted += 1;
            }
            // Clean connect → query → disconnect cycle.
            _ => {
                let mut c = Client::connect(addr).unwrap();
                let hits = c.knn(&query, 3, 0, 1.0).unwrap();
                assert_eq!(hits.len(), 3, "cycle {cycle}: wrong hit count");
            }
        }
        if cycle % 50 == 0 {
            let hits = bystander.knn(&query, 3, 0, 1.0).unwrap();
            assert_eq!(hits.len(), want.len(), "cycle {cycle}: bystander broken");
        }
    }
    assert!(
        aborted > 50,
        "seed produced too few aborts to mean anything"
    );

    // Give the reaper time to collect aborted half-open connections,
    // then the fd count must settle back to baseline (small slack for
    // connections the kernel is still tearing down).
    let deadline = Instant::now() + Duration::from_secs(10);
    let settled = loop {
        let n = fd_count();
        if n <= baseline + 2 {
            break n;
        }
        if Instant::now() > deadline {
            break n;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        settled <= baseline + 2,
        "fd leak: baseline {baseline}, settled at {settled} after churn"
    );

    // No stranded work: the queue is empty and the bystander still gets
    // bit-for-bit the answer it got before the churn.
    let stats = bystander.stats().unwrap();
    assert_eq!(stats.queue_depth, 0, "churn stranded queued work");
    let after = bystander.knn(&query, 3, 0, 1.0).unwrap();
    for (a, b) in want.iter().zip(&after) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
    }

    let snap = handle.shutdown();
    assert!(snap.executed > 0);
}
