//! End-to-end tests over real TCP sockets: response equivalence with
//! direct engine calls, concurrent pipelined clients, overload shedding,
//! deadline expiry, per-connection error isolation, live-store mutation
//! ops, and graceful drain-on-shutdown.

use cbir_core::{
    CorpusStore, ImageDatabase, ImageMeta, IndexKind, QueryEngine, Ranked, ServedCorpus,
    StoreOptions,
};
use cbir_distance::Measure;
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_index::BatchStats;
use cbir_server::{Client, ClientError, Hit, Rejection, SchedulerConfig, Server, ServerHandle};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic engine over `n` synthetic histogram descriptors.
fn engine(n: usize, kind: IndexKind) -> Arc<QueryEngine> {
    let pipeline = Pipeline::new(
        16,
        vec![FeatureSpec::ColorHistogram(Quantizer::Gray { bins: 16 })],
    )
    .unwrap();
    let mut db = ImageDatabase::new(pipeline);
    for (i, v) in cbir_workload::histograms(n, 16, 1.0, 42)
        .into_iter()
        .enumerate()
    {
        db.insert_descriptor(
            ImageMeta {
                name: format!("img-{i:05}"),
                label: Some((i % 7) as u32),
            },
            v,
        )
        .unwrap();
    }
    Arc::new(QueryEngine::build(db, kind, Measure::L1).unwrap())
}

fn spawn(engine: &Arc<QueryEngine>, config: SchedulerConfig) -> ServerHandle {
    Server::spawn_shared(Arc::clone(engine), "127.0.0.1:0", config).expect("spawn server")
}

fn assert_hits_match(got: &[Hit], want: &[Ranked], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: hit count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id as u64, "{what}: id");
        assert_eq!(g.name, w.name, "{what}: name");
        assert_eq!(g.label, w.label, "{what}: label");
        assert_eq!(
            g.distance.to_bits(),
            w.distance.to_bits(),
            "{what}: distance bits"
        );
    }
}

#[test]
fn responses_bit_identical_to_direct_engine_calls() {
    let engine = engine(64, IndexKind::VpTree);
    let handle = spawn(&engine, SchedulerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let (db_len, dim) = client.ping().unwrap();
    assert_eq!(db_len, 64);
    assert_eq!(dim as usize, engine.database().dim());

    let queries: Vec<Vec<f32>> = (0..16)
        .map(|i| engine.database().descriptor(i).unwrap().to_vec())
        .collect();

    let mut stats = BatchStats::new();
    let direct_knn = engine.knn_batch(&queries, 5, 1, &mut stats).unwrap();
    for (q, want) in queries.iter().zip(&direct_knn) {
        let got = client.knn(q, 5, 0, 1.0).unwrap();
        assert_hits_match(&got, want, "knn");
    }

    let mut stats = BatchStats::new();
    let direct_range = engine.range_batch(&queries, 0.4, 1, &mut stats).unwrap();
    for (q, want) in queries.iter().zip(&direct_range) {
        let got = client.range(q, 0.4, 0).unwrap();
        assert_hits_match(&got, want, "range");
    }

    let ids: Vec<usize> = (0..8).collect();
    let mut stats = BatchStats::new();
    let direct_by_id = engine.knn_batch_by_ids(&ids, 3, 1, &mut stats).unwrap();
    for (&id, want) in ids.iter().zip(&direct_by_id) {
        let got = client.knn_by_id(id, 3, 0, 1.0).unwrap();
        assert_hits_match(&got, want, "knn_by_id");
    }

    let snap = handle.shutdown();
    assert_eq!(snap.requests, 16 + 16 + 8);
    assert_eq!(snap.executed, 16 + 16 + 8);
    assert_eq!(snap.shed, 0);
    assert!(snap.batches >= 1);
    assert!(snap.distance_computations > 0);
}

#[test]
fn concurrent_pipelined_clients_get_correct_ordered_replies() {
    let engine = engine(48, IndexKind::VpTree);
    let handle = spawn(
        &engine,
        SchedulerConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(300),
            ..SchedulerConfig::default()
        },
    );
    let addr = handle.local_addr();

    let n_clients = 4;
    let per_client = 40;
    let window = 8;
    std::thread::scope(|scope| {
        for c in 0..n_clients {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let queries: Vec<Vec<f32>> = (0..per_client)
                    .map(|i| {
                        engine
                            .database()
                            .descriptor((c * 11 + i * 7) % engine.database().len())
                            .unwrap()
                            .to_vec()
                    })
                    .collect();
                let mut stats = BatchStats::new();
                let want = engine.knn_batch(&queries, 4, 1, &mut stats).unwrap();
                let mut client = Client::connect(addr).unwrap();
                for chunk in queries.chunks(window) {
                    for q in chunk {
                        client.send_knn(q, 4, 0, 1.0).unwrap();
                    }
                    client.flush().unwrap();
                    let base = queries
                        .chunks(window)
                        .take_while(|c2| !std::ptr::eq(*c2, chunk))
                        .map(|c2| c2.len())
                        .sum::<usize>();
                    for (j, _) in chunk.iter().enumerate() {
                        let got = client.recv_hits().unwrap();
                        assert_hits_match(&got, &want[base + j], "pipelined knn");
                    }
                }
            });
        }
    });

    let snap = handle.shutdown();
    assert_eq!(snap.requests, (n_clients * per_client) as u64);
    assert_eq!(snap.executed, (n_clients * per_client) as u64);
    // Pipelined concurrent clients must actually coalesce: strictly
    // fewer dispatches than requests.
    assert!(
        snap.batches < snap.executed,
        "no batching happened: {} batches for {} requests",
        snap.batches,
        snap.executed
    );
    let hist_total: u64 = snap.batch_hist.iter().map(|&(_, c)| c).sum();
    assert_eq!(hist_total, snap.batches);
}

#[test]
fn bounded_queue_sheds_with_explicit_overload_reply() {
    // A deliberately expensive engine (linear scan, larger db) with a
    // tiny queue and single-request dispatch: a pipelined flood must
    // overflow admission and be shed explicitly, not stall.
    let engine = engine(4096, IndexKind::Linear);
    let handle = spawn(
        &engine,
        SchedulerConfig {
            max_batch: 1,
            max_delay: Duration::ZERO,
            queue_cap: 2,
            exec_threads: 1,
            ..SchedulerConfig::default()
        },
    );
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let q = engine.database().descriptor(0).unwrap().to_vec();
    let flood = 200;
    for _ in 0..flood {
        client.send_knn(&q, 10, 0, 1.0).unwrap();
    }
    client.flush().unwrap();

    let mut ok = 0u64;
    let mut shed = 0u64;
    for _ in 0..flood {
        match client.recv_hits() {
            Ok(hits) => {
                assert!(!hits.is_empty());
                ok += 1;
            }
            Err(ClientError::Rejected(Rejection::Overloaded(msg))) => {
                assert!(msg.contains("queue full"), "{msg}");
                shed += 1;
            }
            Err(other) => panic!("unexpected reply: {other}"),
        }
    }
    assert_eq!(ok + shed, flood);
    assert!(shed > 0, "flood never overflowed the bounded queue");
    assert!(ok > 0, "admission control let nothing through");

    let snap = handle.shutdown();
    assert_eq!(snap.shed, shed);
    assert_eq!(snap.executed, ok);
}

#[test]
fn queued_requests_past_their_deadline_get_explicit_expiry() {
    let engine = engine(4096, IndexKind::Linear);
    let handle = spawn(
        &engine,
        SchedulerConfig {
            max_batch: 1,
            max_delay: Duration::ZERO,
            queue_cap: 1024,
            exec_threads: 1,
            ..SchedulerConfig::default()
        },
    );
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Pipeline enough ~ms-scale queries that late ones sit in the queue
    // well past a 1ms budget.
    let q = engine.database().descriptor(1).unwrap().to_vec();
    let flood = 100;
    for _ in 0..flood {
        client.send_knn(&q, 10, 1_000, 1.0).unwrap();
    }
    client.flush().unwrap();

    let mut executed = 0u64;
    let mut expired = 0u64;
    for _ in 0..flood {
        match client.recv_hits() {
            Ok(_) => executed += 1,
            Err(ClientError::Rejected(Rejection::DeadlineExpired(_))) => expired += 1,
            Err(other) => panic!("unexpected reply: {other}"),
        }
    }
    assert_eq!(executed + expired, flood);
    assert!(expired > 0, "no deadline ever expired under sustained load");

    let snap = handle.shutdown();
    assert_eq!(snap.expired, expired);
}

#[test]
fn per_connection_errors_are_isolated() {
    let engine = engine(32, IndexKind::VpTree);
    let handle = spawn(&engine, SchedulerConfig::default());
    let addr = handle.local_addr();

    // A bad request (wrong dim) is answered and the connection survives.
    let mut client = Client::connect(addr).unwrap();
    match client.knn(&[0.5; 3], 2, 0, 1.0) {
        Err(ClientError::Rejected(Rejection::Error(msg))) => {
            assert!(msg.contains("dim"), "{msg}")
        }
        other => panic!("expected dim error, got {other:?}"),
    }
    let good = engine.database().descriptor(0).unwrap().to_vec();
    assert!(!client.knn(&good, 2, 0, 1.0).unwrap().is_empty());

    match client.knn_by_id(10_000, 2, 0, 1.0) {
        Err(ClientError::Rejected(Rejection::Error(msg))) => {
            assert!(msg.contains("not in database"), "{msg}")
        }
        other => panic!("expected id error, got {other:?}"),
    }

    // A garbage byte stream kills only its own connection...
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(b"this is not a CBIRRPC1 frame at all....")
            .unwrap();
        raw.flush().unwrap();
        // The server answers with an error frame, then closes.
        let mut buf = Vec::new();
        let _ = raw.read_to_end(&mut buf);
        assert!(!buf.is_empty(), "no error reply before close");
    }

    // ...while existing and new connections keep working.
    assert!(!client.knn(&good, 2, 0, 1.0).unwrap().is_empty());
    let mut fresh = Client::connect(addr).unwrap();
    assert!(fresh.ping().is_ok());

    handle.shutdown();
}

#[test]
fn client_shutdown_drains_pipelined_work_then_acks_in_order() {
    let engine = engine(64, IndexKind::VpTree);
    let handle = spawn(
        &engine,
        SchedulerConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(500),
            ..SchedulerConfig::default()
        },
    );
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let q = engine.database().descriptor(3).unwrap().to_vec();
    let in_flight = 30;
    for _ in 0..in_flight {
        client.send_knn(&q, 5, 0, 1.0).unwrap();
    }
    // Shutdown rides the same pipeline, queued behind the 30 requests:
    // every admitted request must be answered with hits, in order,
    // before the ack arrives.
    client.send_shutdown().unwrap();
    client.flush().unwrap();
    for i in 0..in_flight {
        let hits = client
            .recv_hits()
            .unwrap_or_else(|e| panic!("pipelined request {i} not answered before ack: {e}"));
        assert!(!hits.is_empty());
    }
    client
        .recv_shutdown_ack()
        .expect("shutdown ack after drained work");
    // Wait for full teardown before inspecting counters.
    let snap = handle.join();
    assert_eq!(snap.executed, in_flight, "admitted work was not drained");
    assert_eq!(snap.queue_depth, 0);
}

#[test]
fn requests_after_shutdown_are_refused_explicitly() {
    let engine = engine(32, IndexKind::VpTree);
    let handle = spawn(&engine, SchedulerConfig::default());
    let addr = handle.local_addr();

    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    let q = engine.database().descriptor(0).unwrap().to_vec();
    assert!(!a.knn(&q, 2, 0, 1.0).unwrap().is_empty());

    // b asks for shutdown; a's read half is closed by the server, so a
    // subsequent request on a fails at the transport (its write may
    // succeed into the socket buffer, but no reply will come) — while
    // the server never silently drops anything it admitted.
    b.shutdown().unwrap();
    let snap = handle.join();
    assert_eq!(snap.executed, 1);

    // Connection torn down — explicit at the transport level.
    assert!(
        a.knn(&q, 2, 0, 1.0).is_err(),
        "server answered after shutdown completed"
    );
}

#[test]
fn live_store_mutations_over_rpc() {
    let dir = std::env::temp_dir().join(format!("cbir-e2e-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pipeline = Pipeline::new(
        16,
        vec![FeatureSpec::ColorHistogram(Quantizer::Gray { bins: 16 })],
    )
    .unwrap();
    let store = CorpusStore::create(
        &dir,
        pipeline,
        false,
        StoreOptions::new(IndexKind::VpTree, Measure::L1),
    )
    .unwrap();
    let descs = cbir_workload::histograms(20, 16, 1.0, 7);
    let handle = Server::spawn_corpus(
        ServedCorpus::Live(Arc::clone(&store)),
        "127.0.0.1:0",
        SchedulerConfig::default(),
    )
    .expect("spawn server");
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Empty store pings as empty, then grows with each acked insert.
    assert_eq!(client.ping().unwrap().0, 0);
    for (i, d) in descs.iter().enumerate() {
        let (id, epoch) = client
            .insert(&format!("live-{i:03}"), Some((i % 3) as u32), d)
            .unwrap();
        assert_eq!(id, i as u64);
        assert!(epoch >= 1);
    }
    assert_eq!(client.ping().unwrap().0, 20);

    // Queries see the inserted rows, and hits match the store's own
    // snapshot bit-for-bit.
    let got = client.knn(&descs[0], 5, 0, 1.0).unwrap();
    let mut stats = BatchStats::new();
    let want = store
        .snapshot()
        .knn_batch(&[descs[0].clone()], 5, 1, &mut stats)
        .unwrap()
        .remove(0);
    assert_hits_match(&got, &want, "live knn");

    // Delete tombstones the row: it vanishes from results and ping.
    let victim = got[0].id;
    client.delete(victim).unwrap();
    assert_eq!(client.ping().unwrap().0, 19);
    let after = client.knn(&descs[0], 5, 0, 1.0).unwrap();
    assert!(
        after.iter().all(|h| h.id != victim),
        "tombstoned row served"
    );
    // Deleting it again is a per-request error; the connection survives.
    assert!(matches!(
        client.delete(victim),
        Err(ClientError::Rejected(Rejection::Error(_)))
    ));

    // Compaction folds memtable + tombstone into segments and renumbers.
    let (epoch, segments, rows) = client.compact().unwrap();
    assert!(epoch >= 2);
    assert!(segments >= 1);
    assert_eq!(rows, 19);
    assert_eq!(client.ping().unwrap().0, 19);
    let compacted = client.knn(&descs[0], 5, 0, 1.0).unwrap();
    let names: Vec<&str> = compacted.iter().map(|h| h.name.as_str()).collect();
    let want_names: Vec<&str> = after.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(names, want_names, "compaction changed result contents");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn static_server_refuses_mutations() {
    let engine = engine(16, IndexKind::VpTree);
    let handle = spawn(&engine, SchedulerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let d = engine.database().descriptor(0).unwrap().to_vec();
    for result in [
        client.insert("nope", None, &d).map(|_| ()),
        client.delete(0).map(|_| ()),
        client.compact().map(|_| ()),
    ] {
        match result {
            Err(ClientError::Rejected(Rejection::Error(msg))) => {
                assert!(msg.contains("static"), "{msg}")
            }
            other => panic!("expected static-corpus refusal, got {other:?}"),
        }
    }
    // The connection is still usable for queries afterwards.
    assert!(!client.knn(&d, 3, 0, 1.0).unwrap().is_empty());
    handle.shutdown();
}

#[test]
fn stats_op_reports_live_counters() {
    let engine = engine(32, IndexKind::VpTree);
    let handle = spawn(&engine, SchedulerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let q = engine.database().descriptor(5).unwrap().to_vec();
    for _ in 0..7 {
        client.knn(&q, 3, 0, 1.0).unwrap();
    }
    let snap = client.stats().unwrap();
    assert_eq!(snap.requests, 7);
    assert_eq!(snap.executed, 7);
    assert_eq!(snap.admitted, 7);
    assert!(snap.batches >= 1 && snap.batches <= 7);
    assert!(snap.distance_computations > 0);
    assert_eq!(
        snap.batch_hist.iter().map(|&(_, c)| c).sum::<u64>(),
        snap.batches
    );

    handle.shutdown();
}

#[test]
fn recall_target_one_reply_is_byte_identical_to_exact_over_the_wire() {
    use cbir_server::protocol::{
        encode_request, encode_response, read_frame, write_frame, Request, Response,
    };
    use std::net::TcpStream;

    let engine = engine(64, IndexKind::VpTree);
    let handle = spawn(&engine, SchedulerConfig::default());
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();

    let queries: Vec<Vec<f32>> = (0..6)
        .map(|i| engine.database().descriptor(i * 7).unwrap().to_vec())
        .collect();
    let mut stats = BatchStats::new();
    let direct = engine.knn_batch(&queries, 5, 1, &mut stats).unwrap();

    for (q, want) in queries.iter().zip(&direct) {
        // Raw frame exchange: no client-side decode/re-encode in the
        // loop, so this compares the server's actual reply bytes.
        let req = Request::Knn {
            k: 5,
            deadline_us: 0,
            recall_target: 1.0,
            descriptor: q.clone(),
        };
        write_frame(&mut stream, &encode_request(&req)).unwrap();
        let reply = read_frame(&mut stream).unwrap().expect("reply frame");

        // The exact serving path encodes the engine's ranked hits with
        // both approximate-search counters at zero. A recall target of
        // 1.0 must produce those bytes exactly.
        let hits: Vec<Hit> = want
            .iter()
            .map(|r| Hit {
                id: r.id as u64,
                name: r.name.clone(),
                label: r.label,
                distance: r.distance,
            })
            .collect();
        let exact_payload = encode_response(&Response::Hits {
            hits,
            coarse_candidates: 0,
            rerank_evaluations: 0,
        });
        assert_eq!(
            reply, exact_payload,
            "recall_target=1.0 reply bytes differ from the exact path"
        );
    }

    // Sanity check the contrast: an approximate request runs the
    // two-stage path (nonzero counters, coarse stage truncates the
    // candidate set below the 64-row corpus), so its bytes differ.
    let req = Request::Knn {
        k: 5,
        deadline_us: 0,
        recall_target: 0.9,
        descriptor: queries[0].clone(),
    };
    write_frame(&mut stream, &encode_request(&req)).unwrap();
    let reply = read_frame(&mut stream).unwrap().expect("reply frame");
    match cbir_server::protocol::decode_response(&reply).unwrap() {
        Response::Hits {
            hits,
            coarse_candidates,
            rerank_evaluations,
        } => {
            assert!(coarse_candidates > 0);
            assert!(rerank_evaluations > 0);
            assert!(rerank_evaluations < 64, "coarse stage pruned the corpus");
            assert_eq!(hits.len(), 5);
            // The query is database row 0 itself: an L1-self-match at
            // distance zero sorts first in any candidate set containing
            // it, and the coarse stage always surfaces the exact query.
            assert_eq!(hits[0].id, 0);
            assert_eq!(hits[0].distance, 0.0);
        }
        other => panic!("expected hits, got {other:?}"),
    }

    drop(stream);
    handle.shutdown();
}
