//! Serving-path hardening, end to end over real TCP sockets: panic
//! isolation, idle-connection reaping, torn-client cleanup, transparent
//! client reconnect with backoff, and deadline-bounded retries.

use cbir_core::{ImageDatabase, ImageMeta, IndexKind, QueryEngine, Ranked};
use cbir_distance::Measure;
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_index::BatchStats;
use cbir_server::{
    Client, ClientError, Hit, Rejection, RetryPolicy, RetryingClient, SchedulerConfig, Server,
    ServerHandle,
};
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic engine over `n` synthetic histogram descriptors.
fn engine(n: usize, kind: IndexKind) -> Arc<QueryEngine> {
    let pipeline = Pipeline::new(
        16,
        vec![FeatureSpec::ColorHistogram(Quantizer::Gray { bins: 16 })],
    )
    .unwrap();
    let mut db = ImageDatabase::new(pipeline);
    for (i, v) in cbir_workload::histograms(n, 16, 1.0, 42)
        .into_iter()
        .enumerate()
    {
        db.insert_descriptor(
            ImageMeta {
                name: format!("img-{i:05}"),
                label: Some((i % 7) as u32),
            },
            v,
        )
        .unwrap();
    }
    Arc::new(QueryEngine::build(db, kind, Measure::L1).unwrap())
}

fn spawn(engine: &Arc<QueryEngine>, config: SchedulerConfig) -> ServerHandle {
    Server::spawn_shared(Arc::clone(engine), "127.0.0.1:0", config).expect("spawn server")
}

fn assert_hits_match(got: &[Hit], want: &[Ranked], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: hit count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id as u64, "{what}: id");
        assert_eq!(
            g.distance.to_bits(),
            w.distance.to_bits(),
            "{what}: distance bits"
        );
    }
}

#[test]
fn panic_during_execution_poisons_one_request_not_the_server() {
    let engine = engine(48, IndexKind::VpTree);
    let handle = spawn(&engine, SchedulerConfig::default());
    let addr = handle.local_addr();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    let q = engine.database().descriptor(5).unwrap().to_vec();

    // Arm the trap: the next executed request group panics inside the
    // engine call. The server must isolate it to an Error reply.
    handle.trip_panic_trap();
    let err = a.knn(&q, 4, 0, 1.0).expect_err("trapped request must fail");
    match err {
        ClientError::Rejected(Rejection::Error(m)) => {
            assert!(
                m.contains("isolated"),
                "error should say the panic was isolated: {m}"
            );
        }
        other => panic!("expected a per-request Error reply, got {other}"),
    }

    // The poisoned connection is still usable: the panic was confined to
    // that one request, not the connection or the dispatcher.
    let mut stats = BatchStats::new();
    let want = engine
        .knn_batch(std::slice::from_ref(&q), 4, 1, &mut stats)
        .unwrap();
    let got = a
        .knn(&q, 4, 0, 1.0)
        .expect("same connection works after panic");
    assert_hits_match(&got, &want[0], "post-panic same connection");

    // And an unrelated connection is untouched and bit-identical.
    let got = b.knn(&q, 4, 0, 1.0).expect("other connection unaffected");
    assert_hits_match(&got, &want[0], "post-panic other connection");

    // The isolation is visible on the wire counters.
    let snap = b.stats().unwrap();
    assert_eq!(snap.panics_isolated, 1, "one panic must be counted");
    assert_eq!(snap.errors, 1, "the trapped request counts as an error");

    handle.shutdown();
}

#[test]
fn idle_connections_are_reaped_and_counted() {
    let engine = engine(24, IndexKind::Linear);
    let handle = spawn(
        &engine,
        SchedulerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..SchedulerConfig::default()
        },
    );
    let addr = handle.local_addr();

    let mut idle = Client::connect(addr).unwrap();
    idle.ping().expect("fresh connection answers");

    // Go quiet for longer than the idle timeout; the server reaps the
    // connection silently (a courtesy frame would desync framing).
    std::thread::sleep(Duration::from_millis(600));

    let err = idle.ping().expect_err("reaped connection must fail");
    assert!(
        matches!(err, ClientError::ConnectionLost(_)),
        "reap surfaces as the typed ConnectionLost, got: {err}"
    );
    assert!(err.is_transient(), "a reaped connection is retryable");

    // A fresh connection still works, and the reap shows up in the
    // io-timeout counter.
    let mut fresh = Client::connect(addr).unwrap();
    fresh.ping().expect("server is still serving");
    let snap = fresh.stats().unwrap();
    assert!(
        snap.io_timeouts >= 1,
        "idle reap must increment io_timeouts, got {}",
        snap.io_timeouts
    );

    handle.shutdown();
}

#[test]
fn torn_client_does_not_disturb_other_connections() {
    let engine = engine(24, IndexKind::VpTree);
    let handle = spawn(&engine, SchedulerConfig::default());
    let addr = handle.local_addr();
    let mut healthy = Client::connect(addr).unwrap();
    let q = engine.database().descriptor(1).unwrap().to_vec();

    // A client that promises a 4096-byte payload, delivers 3 bytes, and
    // vanishes mid-frame (what `cbir rpc-ctl <addr> abort` does).
    let mut torn = std::net::TcpStream::connect(addr).unwrap();
    torn.write_all(b"CBIRRPC1").unwrap();
    torn.write_all(&4096u32.to_le_bytes()).unwrap();
    torn.write_all(&[0xde, 0xad, 0x01]).unwrap();
    torn.flush().unwrap();
    drop(torn);

    // The healthy connection keeps getting correct answers.
    let mut stats = BatchStats::new();
    let want = engine
        .knn_batch(std::slice::from_ref(&q), 3, 1, &mut stats)
        .unwrap();
    for _ in 0..3 {
        let got = healthy
            .knn(&q, 3, 0, 1.0)
            .expect("healthy client still served");
        assert_hits_match(&got, &want[0], "after torn client");
    }

    handle.shutdown();
}

#[test]
fn retrying_client_reconnects_transparently_after_reap() {
    let engine = engine(24, IndexKind::Linear);
    let handle = spawn(
        &engine,
        SchedulerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..SchedulerConfig::default()
        },
    );
    let addr = handle.local_addr().to_string();

    let mut client = RetryingClient::connect(
        addr,
        RetryPolicy {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            ..RetryPolicy::default()
        },
    )
    .expect("initial connect");

    let q = engine.database().descriptor(2).unwrap().to_vec();
    let mut stats = BatchStats::new();
    let want = engine
        .knn_batch(std::slice::from_ref(&q), 5, 1, &mut stats)
        .unwrap();

    // Let the server reap us, then query anyway: the retry layer must
    // notice the lost connection, reconnect, resend, and return hits
    // bit-identical to a direct engine call.
    std::thread::sleep(Duration::from_millis(600));
    let got = client.knn(&q, 5, 0, 1.0).expect("transparent reconnect");
    assert_hits_match(&got, &want[0], "after transparent reconnect");

    let rstats = client.retry_stats();
    assert!(
        rstats.retries >= 1,
        "the resend must be counted: {rstats:?}"
    );
    assert!(
        rstats.reconnects >= 1,
        "the fresh connection must be counted: {rstats:?}"
    );

    handle.shutdown();
}

#[test]
fn retry_honors_the_caller_deadline() {
    // A port with nothing listening: every connect is refused, which is
    // transient, so only the deadline can stop the retry loop early.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let mut client = RetryingClient::new_disconnected(
        addr,
        RetryPolicy {
            max_retries: 50,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            ..RetryPolicy::default()
        },
    );
    let started = Instant::now();
    // 50 retries at 50..400ms backoff would take > 10 s; a 60 ms
    // deadline must cut the loop off at the first backoff that would
    // overrun it.
    let err = client
        .knn(&[0.0; 16], 3, 60_000, 1.0)
        .expect_err("dead server must fail");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline must bound the retry loop, took {elapsed:?}"
    );
    assert!(
        err.is_transient() || matches!(err, ClientError::Rejected(_)),
        "surfaced error reflects the transient failure or the expired deadline: {err}"
    );
}

// ---------------------------------------------------------------------
// Failover-path classification, end to end: the three failure shapes a
// scatter-gather router leans on when it moves a request to a sibling
// replica — backend down at connect, a connection killed mid-stream,
// and a backend shedding with Overloaded — must surface as *transient*
// errors that the retry layer rides out.

/// A hand-rolled CBIRRPC1 backend for failure injection: answers pings,
/// sheds the first `shed` search requests with `Overloaded`, then
/// serves a canned hit list. Runs until the listener is dropped.
fn spawn_shedding_backend(
    shed: usize,
    canned: Vec<Hit>,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    use cbir_server::protocol::{
        decode_request, encode_response, read_frame, write_frame, Request, Response,
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut remaining = shed;
        for stream in listener.incoming().take(4) {
            let Ok(stream) = stream else { break };
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            while let Ok(Some(payload)) = read_frame(&mut reader) {
                let resp = match decode_request(&payload) {
                    Ok(Request::Ping) => Response::Pong { db_len: 1, dim: 16 },
                    Ok(Request::Knn { .. }) => {
                        if remaining > 0 {
                            remaining -= 1;
                            Response::Overloaded("synthetic shed".into())
                        } else {
                            Response::Hits {
                                hits: canned.clone(),
                                coarse_candidates: 0,
                                rerank_evaluations: 0,
                            }
                        }
                    }
                    _ => Response::Error("unsupported in fake".into()),
                };
                if write_frame(&mut writer, &encode_response(&resp)).is_err() {
                    break;
                }
                let _ = std::io::Write::flush(&mut writer);
            }
        }
    });
    (addr, handle)
}

#[test]
fn backend_down_at_connect_is_ridden_out_by_the_retry_layer() {
    // Reserve an address, leave it dead, and bring the real backend up
    // on it only after the client has started retrying — the "replica
    // not up yet / just restarted" arm of router failover.
    let engine = engine(16, IndexKind::Linear);
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let late = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(250));
            Server::spawn_shared(engine, addr, SchedulerConfig::default()).expect("late spawn")
        })
    };

    let mut client = RetryingClient::new_disconnected(
        addr.to_string(),
        RetryPolicy {
            max_retries: 60,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        },
    );
    let q = engine.database().descriptor(2).unwrap().to_vec();
    let mut stats = BatchStats::new();
    let want = engine
        .knn_batch(std::slice::from_ref(&q), 3, 1, &mut stats)
        .unwrap();
    let got = client
        .knn(&q, 3, 0, 1.0)
        .expect("retry loop must outlast the dead-connect window");
    assert_hits_match(&got, &want[0], "after late backend start");
    assert!(
        client.retry_stats().retries >= 1,
        "the refused connects must have been retried: {:?}",
        client.retry_stats()
    );
    late.join().unwrap().shutdown();
}

#[test]
fn overload_shedding_is_transient_and_retried_until_admitted() {
    let canned = vec![
        Hit {
            id: 3,
            name: "img-3".into(),
            label: Some(1),
            distance: 0.25,
        },
        Hit {
            id: 9,
            name: "img-9".into(),
            label: None,
            distance: 0.25,
        },
    ];
    let (addr, fake) = spawn_shedding_backend(2, canned.clone());
    let mut client = RetryingClient::connect(
        addr.to_string(),
        RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..RetryPolicy::default()
        },
    )
    .expect("fake backend answers the connect ping");

    // Two sheds, then admission: the Overloaded replies are classified
    // transient and resent on the SAME connection (an explicit reply
    // leaves the stream in sync — no reconnect needed).
    let got = client
        .knn(&[0.0; 16], 2, 0, 1.0)
        .expect("retried past shed");
    assert_eq!(got.len(), canned.len());
    for (g, w) in got.iter().zip(&canned) {
        assert_eq!(g.id, w.id);
        assert_eq!(g.distance.to_bits(), w.distance.to_bits());
    }
    let rstats = client.retry_stats();
    assert!(rstats.retries >= 2, "both sheds retried: {rstats:?}");
    assert_eq!(rstats.reconnects, 0, "shed must not burn the connection");
    drop(client);
    drop(fake); // listener thread ends with its accept budget
}

#[test]
fn connection_killed_mid_stream_reconnects_and_resends() {
    use cbir_server::protocol::{encode_response, read_frame, write_frame, Response};
    // First connection: answer the connect ping, then hang up without
    // replying to the search — the client has a request on the wire
    // when the stream dies (a crashing replica, mid-conversation).
    // Second connection: serve the canned reply.
    let canned = Response::Hits {
        hits: vec![Hit {
            id: 1,
            name: "img-1".into(),
            label: None,
            distance: 0.5,
        }],
        coarse_candidates: 0,
        rerank_evaluations: 0,
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = {
        let canned = canned.clone();
        std::thread::spawn(move || {
            // Connection 1: ping answered, then abrupt close on the
            // first search frame.
            let (s, _) = listener.accept().unwrap();
            let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
            let mut writer = s;
            let _ = read_frame(&mut reader); // ping
            let _ = write_frame(
                &mut writer,
                &encode_response(&Response::Pong { db_len: 1, dim: 16 }),
            );
            let _ = std::io::Write::flush(&mut writer);
            let _ = read_frame(&mut reader); // the search request...
            drop(reader); // ...dies unanswered: close BOTH halves so the
            drop(writer); // client sees EOF, not a stalled stream

            // Connection 2: the resend gets a real reply.
            let (s, _) = listener.accept().unwrap();
            let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
            let mut writer = s;
            let _ = read_frame(&mut reader);
            let _ = write_frame(&mut writer, &encode_response(&canned));
            let _ = std::io::Write::flush(&mut writer);
        })
    };

    let mut client = RetryingClient::connect(
        addr.to_string(),
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..RetryPolicy::default()
        },
    )
    .expect("connect ping");
    let got = client
        .knn(&[0.0; 16], 1, 0, 1.0)
        .expect("mid-stream loss must be survived by reconnect + resend");
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].id, 1);
    let rstats = client.retry_stats();
    assert!(rstats.retries >= 1, "{rstats:?}");
    assert!(
        rstats.reconnects >= 1,
        "a lost stream must be replaced, not resynchronized: {rstats:?}"
    );
    fake.join().unwrap();
}

/// Wire-fault classification parity between the connection engines: a
/// client living behind a chaos proxy must classify each failure shape
/// (late replies, torn replies, black holes) the same way whether the
/// upstream serves with blocking threads or the epoll loop — the retry
/// and failover layers key off that classification, so an engine that
/// shifted a torn reply from `ConnectionLost` to `Protocol` would break
/// failover only under the event path.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[test]
fn chaos_faults_classify_identically_across_connection_engines() {
    use cbir_server::{ChaosProxy, EventLoopConfig, WireMode};

    fn classify(r: &Result<Vec<Hit>, ClientError>) -> &'static str {
        match r {
            Ok(_) => "answered",
            Err(ClientError::ConnectionLost(_)) => "connection-lost",
            Err(ClientError::Io(_)) => "io",
            Err(ClientError::Protocol(_)) => "protocol",
            Err(ClientError::Rejected(_)) => "rejected",
        }
    }

    let engine = engine(32, IndexKind::VpTree);
    let blocking = spawn(&engine, SchedulerConfig::default());
    let event = Server::spawn_event_shared(
        Arc::clone(&engine),
        "127.0.0.1:0",
        SchedulerConfig::default(),
        EventLoopConfig::default(),
    )
    .expect("spawn event server");
    let query = engine.database().descriptor(0).unwrap().to_vec();

    let modes: [(WireMode, &str); 3] = [
        // Late but intact: answered, and answered identically.
        (WireMode::Delay(Duration::from_millis(30)), "answered"),
        // Reply torn mid-frame: the peer vanished, a transient loss.
        (
            WireMode::TornReply {
                seed: 11,
                max_prefix: 6,
            },
            "connection-lost",
        ),
        // Accepted, read, never answered: the client's read times out.
        (WireMode::BlackHole, "io"),
    ];

    for (mode, want) in modes {
        let mut replies = Vec::new();
        for backend in [blocking.local_addr(), event.local_addr()] {
            let proxy = ChaosProxy::spawn(backend.to_string(), mode.clone(), "127.0.0.1:0")
                .expect("spawn chaos proxy");
            let mut client =
                Client::connect_timeout(proxy.local_addr(), Duration::from_millis(750))
                    .expect("connect through proxy");
            let got = client.knn(&query, 3, 0, 1.0);
            assert_eq!(
                classify(&got),
                want,
                "{mode:?} against {backend} misclassified: {got:?}"
            );
            if let Err(e) = &got {
                assert!(e.is_transient(), "{mode:?}: {e} must stay retryable");
            }
            replies.push(got);
            drop(client);
            proxy.shutdown();
        }
        // Same classification — and for the healthy case, the same hits
        // bit-for-bit — from both engines.
        match (&replies[0], &replies[1]) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                }
            }
            (Err(_), Err(_)) => {}
            other => panic!("{mode:?}: engines disagreed: {other:?}"),
        }
    }

    blocking.shutdown();
    event.shutdown();
}
