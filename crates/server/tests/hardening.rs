//! Serving-path hardening, end to end over real TCP sockets: panic
//! isolation, idle-connection reaping, torn-client cleanup, transparent
//! client reconnect with backoff, and deadline-bounded retries.

use cbir_core::{ImageDatabase, ImageMeta, IndexKind, QueryEngine, Ranked};
use cbir_distance::Measure;
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_index::BatchStats;
use cbir_server::{
    Client, ClientError, Hit, Rejection, RetryPolicy, RetryingClient, SchedulerConfig, Server,
    ServerHandle,
};
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic engine over `n` synthetic histogram descriptors.
fn engine(n: usize, kind: IndexKind) -> Arc<QueryEngine> {
    let pipeline = Pipeline::new(
        16,
        vec![FeatureSpec::ColorHistogram(Quantizer::Gray { bins: 16 })],
    )
    .unwrap();
    let mut db = ImageDatabase::new(pipeline);
    for (i, v) in cbir_workload::histograms(n, 16, 1.0, 42)
        .into_iter()
        .enumerate()
    {
        db.insert_descriptor(
            ImageMeta {
                name: format!("img-{i:05}"),
                label: Some((i % 7) as u32),
            },
            v,
        )
        .unwrap();
    }
    Arc::new(QueryEngine::build(db, kind, Measure::L1).unwrap())
}

fn spawn(engine: &Arc<QueryEngine>, config: SchedulerConfig) -> ServerHandle {
    Server::spawn_shared(Arc::clone(engine), "127.0.0.1:0", config).expect("spawn server")
}

fn assert_hits_match(got: &[Hit], want: &[Ranked], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: hit count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id as u64, "{what}: id");
        assert_eq!(
            g.distance.to_bits(),
            w.distance.to_bits(),
            "{what}: distance bits"
        );
    }
}

#[test]
fn panic_during_execution_poisons_one_request_not_the_server() {
    let engine = engine(48, IndexKind::VpTree);
    let handle = spawn(&engine, SchedulerConfig::default());
    let addr = handle.local_addr();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    let q = engine.database().descriptor(5).unwrap().to_vec();

    // Arm the trap: the next executed request group panics inside the
    // engine call. The server must isolate it to an Error reply.
    handle.trip_panic_trap();
    let err = a.knn(&q, 4, 0, 1.0).expect_err("trapped request must fail");
    match err {
        ClientError::Rejected(Rejection::Error(m)) => {
            assert!(
                m.contains("isolated"),
                "error should say the panic was isolated: {m}"
            );
        }
        other => panic!("expected a per-request Error reply, got {other}"),
    }

    // The poisoned connection is still usable: the panic was confined to
    // that one request, not the connection or the dispatcher.
    let mut stats = BatchStats::new();
    let want = engine
        .knn_batch(std::slice::from_ref(&q), 4, 1, &mut stats)
        .unwrap();
    let got = a
        .knn(&q, 4, 0, 1.0)
        .expect("same connection works after panic");
    assert_hits_match(&got, &want[0], "post-panic same connection");

    // And an unrelated connection is untouched and bit-identical.
    let got = b.knn(&q, 4, 0, 1.0).expect("other connection unaffected");
    assert_hits_match(&got, &want[0], "post-panic other connection");

    // The isolation is visible on the wire counters.
    let snap = b.stats().unwrap();
    assert_eq!(snap.panics_isolated, 1, "one panic must be counted");
    assert_eq!(snap.errors, 1, "the trapped request counts as an error");

    handle.shutdown();
}

#[test]
fn idle_connections_are_reaped_and_counted() {
    let engine = engine(24, IndexKind::Linear);
    let handle = spawn(
        &engine,
        SchedulerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..SchedulerConfig::default()
        },
    );
    let addr = handle.local_addr();

    let mut idle = Client::connect(addr).unwrap();
    idle.ping().expect("fresh connection answers");

    // Go quiet for longer than the idle timeout; the server reaps the
    // connection silently (a courtesy frame would desync framing).
    std::thread::sleep(Duration::from_millis(600));

    let err = idle.ping().expect_err("reaped connection must fail");
    assert!(
        matches!(err, ClientError::ConnectionLost(_)),
        "reap surfaces as the typed ConnectionLost, got: {err}"
    );
    assert!(err.is_transient(), "a reaped connection is retryable");

    // A fresh connection still works, and the reap shows up in the
    // io-timeout counter.
    let mut fresh = Client::connect(addr).unwrap();
    fresh.ping().expect("server is still serving");
    let snap = fresh.stats().unwrap();
    assert!(
        snap.io_timeouts >= 1,
        "idle reap must increment io_timeouts, got {}",
        snap.io_timeouts
    );

    handle.shutdown();
}

#[test]
fn torn_client_does_not_disturb_other_connections() {
    let engine = engine(24, IndexKind::VpTree);
    let handle = spawn(&engine, SchedulerConfig::default());
    let addr = handle.local_addr();
    let mut healthy = Client::connect(addr).unwrap();
    let q = engine.database().descriptor(1).unwrap().to_vec();

    // A client that promises a 4096-byte payload, delivers 3 bytes, and
    // vanishes mid-frame (what `cbir rpc-ctl <addr> abort` does).
    let mut torn = std::net::TcpStream::connect(addr).unwrap();
    torn.write_all(b"CBIRRPC1").unwrap();
    torn.write_all(&4096u32.to_le_bytes()).unwrap();
    torn.write_all(&[0xde, 0xad, 0x01]).unwrap();
    torn.flush().unwrap();
    drop(torn);

    // The healthy connection keeps getting correct answers.
    let mut stats = BatchStats::new();
    let want = engine
        .knn_batch(std::slice::from_ref(&q), 3, 1, &mut stats)
        .unwrap();
    for _ in 0..3 {
        let got = healthy
            .knn(&q, 3, 0, 1.0)
            .expect("healthy client still served");
        assert_hits_match(&got, &want[0], "after torn client");
    }

    handle.shutdown();
}

#[test]
fn retrying_client_reconnects_transparently_after_reap() {
    let engine = engine(24, IndexKind::Linear);
    let handle = spawn(
        &engine,
        SchedulerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..SchedulerConfig::default()
        },
    );
    let addr = handle.local_addr().to_string();

    let mut client = RetryingClient::connect(
        addr,
        RetryPolicy {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            ..RetryPolicy::default()
        },
    )
    .expect("initial connect");

    let q = engine.database().descriptor(2).unwrap().to_vec();
    let mut stats = BatchStats::new();
    let want = engine
        .knn_batch(std::slice::from_ref(&q), 5, 1, &mut stats)
        .unwrap();

    // Let the server reap us, then query anyway: the retry layer must
    // notice the lost connection, reconnect, resend, and return hits
    // bit-identical to a direct engine call.
    std::thread::sleep(Duration::from_millis(600));
    let got = client.knn(&q, 5, 0, 1.0).expect("transparent reconnect");
    assert_hits_match(&got, &want[0], "after transparent reconnect");

    let rstats = client.retry_stats();
    assert!(
        rstats.retries >= 1,
        "the resend must be counted: {rstats:?}"
    );
    assert!(
        rstats.reconnects >= 1,
        "the fresh connection must be counted: {rstats:?}"
    );

    handle.shutdown();
}

#[test]
fn retry_honors_the_caller_deadline() {
    // A port with nothing listening: every connect is refused, which is
    // transient, so only the deadline can stop the retry loop early.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let mut client = RetryingClient::new_disconnected(
        addr,
        RetryPolicy {
            max_retries: 50,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            ..RetryPolicy::default()
        },
    );
    let started = Instant::now();
    // 50 retries at 50..400ms backoff would take > 10 s; a 60 ms
    // deadline must cut the loop off at the first backoff that would
    // overrun it.
    let err = client
        .knn(&[0.0; 16], 3, 60_000, 1.0)
        .expect_err("dead server must fail");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline must bound the retry loop, took {elapsed:?}"
    );
    assert!(
        err.is_transient() || matches!(err, ClientError::Rejected(_)),
        "surfaced error reflects the transient failure or the expired deadline: {err}"
    );
}
