//! Deterministic connection-level harness for the event-driven engine.
//!
//! No sockets, no threads, no epoll: a scripted transport hands the
//! [`Connection`] state machine exact byte chunks (with `WouldBlock`s and
//! EOFs wherever the script says), and a scheduler driven by its
//! `drain_queued` test hook executes admitted work synchronously. That
//! makes every interesting interleaving — a frame split at any byte
//! boundary, a partial write wedged mid-length-prefix, replies completing
//! out of request order — exactly reproducible, which is what the
//! blocking engine's thread-per-connection tests can never be.

use cbir_core::{ImageDatabase, ImageMeta, IndexKind, QueryEngine, ServedCorpus};
use cbir_distance::Measure;
use cbir_features::{FeatureSpec, Pipeline, Quantizer};
use cbir_server::protocol::{
    encode_request, encode_response, read_frame, write_frame, Request, Response,
};
use cbir_server::{
    conn::{dispatch_ready, Dispatched, ReadStatus, WriteStatus},
    Completions, Connection, Metrics, ReplyCell, Scheduler, SchedulerConfig,
};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::sync::Arc;
use std::time::Instant;

/// One scripted readiness episode on the read side.
enum ReadStep {
    /// `read()` returns these bytes (possibly fewer than asked).
    Chunk(Vec<u8>),
    /// `read()` returns `WouldBlock` — the socket drained.
    Drained,
    /// `read()` returns 0 — the peer closed.
    Eof,
}

/// A transport whose readiness is a script, not a kernel.
struct Scripted {
    reads: VecDeque<ReadStep>,
    /// Byte budgets for successive `write()` calls; `0` means the call
    /// would block. Exhausted budgets accept everything.
    write_budgets: VecDeque<usize>,
    written: Vec<u8>,
}

impl Scripted {
    fn new() -> Scripted {
        Scripted {
            reads: VecDeque::new(),
            write_budgets: VecDeque::new(),
            written: Vec::new(),
        }
    }

    fn script_read(mut self, step: ReadStep) -> Scripted {
        self.reads.push_back(step);
        self
    }
}

impl Read for Scripted {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.reads.front_mut() {
                None => return Err(ErrorKind::WouldBlock.into()),
                Some(ReadStep::Eof) => return Ok(0),
                Some(ReadStep::Drained) => {
                    self.reads.pop_front();
                    return Err(ErrorKind::WouldBlock.into());
                }
                // An exhausted (or scripted-empty) chunk moves on to the
                // next step — a 0-byte read here would read as EOF.
                Some(ReadStep::Chunk(bytes)) if bytes.is_empty() => {
                    self.reads.pop_front();
                }
                Some(ReadStep::Chunk(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    bytes.drain(..n);
                    if bytes.is_empty() {
                        self.reads.pop_front();
                    }
                    return Ok(n);
                }
            }
        }
    }
}

impl Write for Scripted {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let budget = self.write_budgets.pop_front().unwrap_or(usize::MAX);
        if budget == 0 {
            return Err(ErrorKind::WouldBlock.into());
        }
        let n = budget.min(buf.len());
        self.written.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Deterministic engine over `n` synthetic histogram descriptors.
fn engine(n: usize) -> Arc<QueryEngine> {
    let pipeline = Pipeline::new(
        16,
        vec![FeatureSpec::ColorHistogram(Quantizer::Gray { bins: 16 })],
    )
    .unwrap();
    let mut db = ImageDatabase::new(pipeline);
    for (i, v) in cbir_workload::histograms(n, 16, 1.0, 42)
        .into_iter()
        .enumerate()
    {
        db.insert_descriptor(
            ImageMeta {
                name: format!("img-{i:05}"),
                label: Some((i % 7) as u32),
            },
            v,
        )
        .unwrap();
    }
    Arc::new(QueryEngine::build(db, IndexKind::VpTree, Measure::L1).unwrap())
}

fn scheduler(engine: &Arc<QueryEngine>) -> Arc<Scheduler> {
    Arc::new(Scheduler::new(
        ServedCorpus::Static(Arc::clone(engine)),
        SchedulerConfig::default(),
        Arc::new(Metrics::new()),
    ))
}

/// Wire bytes of a request stream, as a client would send it.
fn stream_of(requests: &[Request]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for r in requests {
        write_frame(&mut bytes, &encode_request(r)).unwrap();
    }
    bytes
}

/// Drive one connection over a scripted transport to quiescence: read,
/// dispatch, execute everything the scheduler admitted, pump, write.
/// Returns the reply bytes the "peer" observed.
fn run_to_quiescence(io: &mut Scripted, scheduler: &Scheduler) -> (Connection, Vec<u8>) {
    let now = Instant::now();
    let completions = Arc::new(Completions::new());
    let mut conn = Connection::new(0, now);
    let mut scratch = [0u8; 11]; // deliberately tiny and prime-sized
    loop {
        match conn.read_from(io, &mut scratch, now) {
            ReadStatus::Open => {}
            ReadStatus::Eof => conn.close_read(),
            ReadStatus::Corrupt(e) => conn.set_corrupt(e),
            ReadStatus::Gone => panic!("scripted transport never dies"),
        }
        // Dispatch until quiescent, standing in for the mutation worker
        // pool synchronously: a completed mutation clears its barrier,
        // so dispatch must re-run to release the frames queued behind it.
        loop {
            let mut mutations: Vec<(Box<Request>, Arc<ReplyCell>)> = Vec::new();
            match dispatch_ready(&mut conn, scheduler, &completions, &mut |req, cell| {
                mutations.push((req, cell))
            }) {
                Dispatched::Done | Dispatched::Shutdown | Dispatched::Malformed => {}
                Dispatched::Mutation(..) => unreachable!("handled via the callback"),
            }
            if mutations.is_empty() {
                break;
            }
            for (req, cell) in mutations {
                cell.fill(cbir_server::conn::control_response(scheduler, *req));
            }
        }
        // Stand in for the dispatcher thread, synchronously.
        scheduler.drain_queued();
        let _ = completions.drain();
        conn.pump();
        assert_eq!(conn.write_to(io, now), WriteStatus::Open);
        if conn.read_closed() || io.reads.is_empty() {
            // Settle any replies completed by the final drain.
            conn.pump();
            assert_eq!(conn.write_to(io, now), WriteStatus::Open);
            break;
        }
    }
    let written = std::mem::take(&mut io.written);
    (conn, written)
}

/// Reference reply bytes: the same requests answered one at a time, in
/// order, with no pipelining and no split boundaries.
fn sequential_reference(requests: &[Request], scheduler: &Scheduler) -> Vec<u8> {
    let mut all = Vec::new();
    for r in requests {
        let mut io = Scripted::new()
            .script_read(ReadStep::Chunk(stream_of(std::slice::from_ref(r))))
            .script_read(ReadStep::Eof);
        let (_, written) = run_to_quiescence(&mut io, scheduler);
        all.extend(written);
    }
    all
}

/// A representative pipelined request mix: control ops, queries of both
/// shapes, and a mutation (refused on a static corpus, but still a
/// barriered op exercising the offload path).
fn request_mix(engine: &QueryEngine) -> Vec<Request> {
    let d0 = engine.database().descriptor(0).unwrap().to_vec();
    let d3 = engine.database().descriptor(3).unwrap().to_vec();
    vec![
        Request::Ping,
        Request::KnnById {
            k: 5,
            deadline_us: 0,
            recall_target: 1.0,
            id: 7,
        },
        Request::Knn {
            k: 3,
            deadline_us: 0,
            recall_target: 1.0,
            descriptor: d0,
        },
        Request::Delete { id: 2 },
        Request::Range {
            radius: 0.4,
            deadline_us: 0,
            descriptor: d3,
        },
        Request::KnnById {
            k: 2,
            deadline_us: 0,
            recall_target: 1.0,
            id: 11,
        },
        Request::GetDescriptor { id: 5 },
    ]
}

#[test]
fn every_byte_boundary_split_replays_bit_identically() {
    let engine = engine(32);
    let scheduler = scheduler(&engine);
    let requests = request_mix(&engine);
    let bytes = stream_of(&requests);
    let want = sequential_reference(&requests, &scheduler);

    for split in 0..=bytes.len() {
        let mut io = Scripted::new()
            .script_read(ReadStep::Chunk(bytes[..split].to_vec()))
            .script_read(ReadStep::Drained)
            .script_read(ReadStep::Chunk(bytes[split..].to_vec()))
            .script_read(ReadStep::Eof);
        let (conn, written) = run_to_quiescence(&mut io, &scheduler);
        assert!(conn.finished(), "split {split}: connection not drained");
        assert_eq!(
            written,
            want,
            "split at byte {split}/{} changed the reply bytes",
            bytes.len()
        );
    }
}

#[test]
fn one_byte_drip_and_full_coalesce_replay_bit_identically() {
    let engine = engine(32);
    let scheduler = scheduler(&engine);
    let requests = request_mix(&engine);
    let bytes = stream_of(&requests);
    let want = sequential_reference(&requests, &scheduler);

    // Worst case: every read returns one byte, with a drained socket
    // between every pair.
    let mut drip = Scripted::new();
    for &b in &bytes {
        drip = drip
            .script_read(ReadStep::Chunk(vec![b]))
            .script_read(ReadStep::Drained);
    }
    let mut drip = drip.script_read(ReadStep::Eof);
    let (_, written) = run_to_quiescence(&mut drip, &scheduler);
    assert_eq!(written, want, "1-byte drip changed the reply bytes");

    // Best case: the whole pipelined burst lands in one readiness event.
    let mut coalesced = Scripted::new()
        .script_read(ReadStep::Chunk(bytes))
        .script_read(ReadStep::Eof);
    let (_, written) = run_to_quiescence(&mut coalesced, &scheduler);
    assert_eq!(written, want, "coalesced burst changed the reply bytes");
}

#[test]
fn partial_writes_at_every_byte_boundary_flush_identical_bytes() {
    // Three replies of distinct sizes queued at once, then flushed
    // through every possible first-write cutoff with a WouldBlock after
    // each: the cursor must resume exactly where the transport stopped.
    let replies = [
        Response::Pong { db_len: 9, dim: 16 },
        Response::Error("an error reply of some length".into()),
        Response::ShutdownAck,
    ];
    let mut want = Vec::new();
    for r in &replies {
        write_frame(&mut want, &encode_response(r)).unwrap();
    }

    for cut in 0..=want.len() {
        let now = Instant::now();
        let mut conn = Connection::new(0, now);
        for r in &replies {
            conn.push_ready(r.clone());
        }
        assert_eq!(conn.pump(), replies.len());

        let mut io = Scripted::new();
        // A zero-byte cutoff is already a blocked first write; a larger
        // one writes `cut` bytes and then blocks.
        io.write_budgets = if cut == 0 {
            VecDeque::from(vec![0])
        } else {
            VecDeque::from(vec![cut, 0])
        };
        assert_eq!(conn.write_to(&mut io, now), WriteStatus::Open);
        assert_eq!(io.written.len(), cut, "cutoff {cut} wrote past budget");
        assert_eq!(conn.wants_write(), cut < want.len());

        // Readiness returns: the rest must flush and match bit-for-bit.
        assert_eq!(conn.write_to(&mut io, now), WriteStatus::Open);
        assert!(!conn.wants_write());
        assert_eq!(io.written, want, "cutoff {cut} corrupted the stream");
    }
}

#[test]
fn shuffled_completion_order_still_replies_in_request_order() {
    // Claim N pipelined cells, complete them in a deterministically
    // shuffled order, and pump after every completion: nothing may be
    // encoded until the head finishes, and the final bytes must equal
    // the in-order reference for every rotation of the shuffle.
    let n = 9usize;
    let replies: Vec<Response> = (0..n)
        .map(|i| Response::Error(format!("reply-{i}")))
        .collect();
    let mut want = Vec::new();
    for r in &replies {
        write_frame(&mut want, &encode_response(r)).unwrap();
    }

    for rotation in 0..n {
        let now = Instant::now();
        let mut conn = Connection::new(0, now);
        let cells: Vec<Arc<ReplyCell>> = (0..n).map(|_| conn.push_cell(None)).collect();
        assert_eq!(conn.max_inflight(), n);

        // A fixed permutation (multiplicative stride over Z/nZ), rotated.
        let order: Vec<usize> = (0..n).map(|i| ((i + rotation) * 4) % n).collect();
        let mut done = vec![false; n];
        let mut io = Scripted::new();
        for &idx in &order {
            cells[idx].fill(replies[idx].clone());
            done[idx] = true;
            conn.pump();
            assert_eq!(conn.write_to(&mut io, now), WriteStatus::Open);
            // Exactly the contiguous done-prefix may be on the wire.
            let prefix = done.iter().take_while(|&&d| d).count();
            let mut expect = Vec::new();
            for r in &replies[..prefix] {
                write_frame(&mut expect, &encode_response(r)).unwrap();
            }
            assert_eq!(
                io.written, expect,
                "rotation {rotation}: replies left out of request order"
            );
        }
        assert_eq!(io.written, want, "rotation {rotation}: final bytes differ");
        assert_eq!(conn.inflight_len(), 0);
    }
}

#[test]
fn pipelined_burst_through_the_scheduler_matches_sequential_execution() {
    // The full event-path flow — burst in, batch execution completing
    // cells in whatever order the scheduler groups them, head-of-line
    // pump out — must be bit-identical to the same requests answered one
    // at a time.
    let engine = engine(48);
    let scheduler = scheduler(&engine);
    let requests: Vec<Request> = (0..24)
        .map(|i| Request::KnnById {
            k: 4,
            deadline_us: 0,
            recall_target: 1.0,
            id: (i * 5 % 48) as u64,
        })
        .collect();
    let want = sequential_reference(&requests, &scheduler);

    let mut io = Scripted::new()
        .script_read(ReadStep::Chunk(stream_of(&requests)))
        .script_read(ReadStep::Eof);
    let (conn, written) = run_to_quiescence(&mut io, &scheduler);
    assert_eq!(
        conn.max_inflight(),
        requests.len(),
        "burst did not pipeline"
    );
    assert_eq!(written, want, "pipelined replies differ from sequential");
}

#[test]
fn torn_streams_report_the_blocking_readers_exact_errors() {
    // Truncate a two-frame stream at every byte: EOF at a frame boundary
    // is a clean close; EOF anywhere else must produce exactly the error
    // reply the blocking `read_frame` path would have produced.
    let engine = engine(16);
    let scheduler = scheduler(&engine);
    let requests = vec![
        Request::Ping,
        Request::KnnById {
            k: 2,
            deadline_us: 0,
            recall_target: 1.0,
            id: 3,
        },
    ];
    let bytes = stream_of(&requests);
    let boundaries = [0usize, {
        let mut one = Vec::new();
        write_frame(&mut one, &encode_request(&requests[0])).unwrap();
        one.len()
    }];

    for cut in 0..bytes.len() {
        let mut io = Scripted::new()
            .script_read(ReadStep::Chunk(bytes[..cut].to_vec()))
            .script_read(ReadStep::Eof);
        let (conn, written) = run_to_quiescence(&mut io, &scheduler);
        assert!(conn.finished(), "cut {cut}: not drained");

        // Oracle: the blocking reader over the same truncated bytes.
        let mut oracle = std::io::Cursor::new(bytes[..cut].to_vec());
        let mut oracle_err = None;
        loop {
            match read_frame(&mut oracle) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    oracle_err = Some(format!("malformed frame: {e}"));
                    break;
                }
            }
        }

        if boundaries.contains(&cut) {
            assert!(oracle_err.is_none());
            continue; // clean EOF; replies (if any) already compared above
        }
        let err = oracle_err.expect("mid-frame cut must error in the oracle");
        let mut reader = std::io::Cursor::new(written);
        let mut last = None;
        while let Ok(Some(frame)) = read_frame(&mut reader) {
            last = Some(cbir_server::protocol::decode_response(&frame).unwrap());
        }
        match last {
            Some(Response::Error(msg)) => {
                assert_eq!(msg, err, "cut {cut}: error text differs from blocking path")
            }
            other => panic!("cut {cut}: expected trailing error reply, got {other:?}"),
        }
    }
}

#[test]
fn mutation_barrier_holds_later_frames_until_the_worker_finishes() {
    let engine = engine(16);
    let scheduler = scheduler(&engine);
    let completions = Arc::new(Completions::new());
    let now = Instant::now();
    let mut conn = Connection::new(0, now);

    let requests = vec![
        Request::Delete { id: 1 }, // refused on a static corpus, but barriered
        Request::Ping,
        Request::Ping,
    ];
    let mut io = Scripted::new()
        .script_read(ReadStep::Chunk(stream_of(&requests)))
        .script_read(ReadStep::Drained);
    let mut scratch = [0u8; 64];
    assert!(matches!(
        conn.read_from(&mut io, &mut scratch, now),
        ReadStatus::Open
    ));

    let mut pending = Vec::new();
    let _ = dispatch_ready(&mut conn, &scheduler, &completions, &mut |req, cell| {
        pending.push((req, cell))
    });
    assert_eq!(pending.len(), 1, "mutation not offloaded");
    // The two pings must NOT have dispatched past the barrier: exactly
    // one cell (the mutation's) is in flight and nothing is writable.
    assert_eq!(conn.inflight_len(), 1);
    assert_eq!(conn.pump(), 0);

    // Worker finishes; the barrier clears and the pings dispatch.
    let (req, cell) = pending.pop().unwrap();
    cell.fill(cbir_server::conn::control_response(&scheduler, *req));
    let _ = dispatch_ready(&mut conn, &scheduler, &completions, &mut |_, _| {
        panic!("no further mutations")
    });
    assert_eq!(conn.inflight_len(), 3);
    assert_eq!(conn.pump(), 3, "barrier did not release queued frames");

    assert_eq!(conn.write_to(&mut io, now), WriteStatus::Open);
    let mut reader = std::io::Cursor::new(std::mem::take(&mut io.written));
    let mut kinds = Vec::new();
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        kinds.push(cbir_server::protocol::decode_response(&frame).unwrap());
    }
    assert!(matches!(kinds[0], Response::Error(ref m) if m.contains("static")));
    assert!(matches!(kinds[1], Response::Pong { .. }));
    assert!(matches!(kinds[2], Response::Pong { .. }));
}

#[test]
fn shutdown_frame_stops_dispatch_and_acks_after_prior_replies() {
    let engine = engine(16);
    let scheduler = scheduler(&engine);
    let requests = vec![
        Request::KnnById {
            k: 3,
            deadline_us: 0,
            recall_target: 1.0,
            id: 1,
        },
        Request::Shutdown,
        Request::Ping, // must never be answered
    ];
    let mut io = Scripted::new()
        .script_read(ReadStep::Chunk(stream_of(&requests)))
        .script_read(ReadStep::Drained);
    let (conn, written) = run_to_quiescence(&mut io, &scheduler);
    assert!(conn.read_closed(), "shutdown did not stop dispatch");

    let mut reader = std::io::Cursor::new(written);
    let mut replies = Vec::new();
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        replies.push(cbir_server::protocol::decode_response(&frame).unwrap());
    }
    assert_eq!(replies.len(), 2, "frame after shutdown was answered");
    assert!(matches!(replies[0], Response::Hits { .. }));
    assert!(matches!(replies[1], Response::ShutdownAck));
}
