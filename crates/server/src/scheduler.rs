//! The dynamic micro-batch scheduler: a bounded admission queue feeding a
//! single dispatcher that coalesces concurrent requests into batches for
//! the engine's amortized execution path.
//!
//! ## State machine
//!
//! The dispatcher cycles through three states:
//!
//! 1. **Idle** — the queue is empty; block on the `not_empty` condvar.
//! 2. **Collect** — at least one request is queued. Drain up to
//!    `max_batch` requests immediately; if the batch is still short and
//!    `max_delay` is nonzero, keep draining arrivals until either the
//!    batch fills or the delay budget elapses (first request's wait is
//!    never extended past `max_delay`).
//! 3. **Execute** — pin one corpus view for the whole batch, group the
//!    collected requests by compatible engine call (same op and
//!    parameter), run each group through the pinned view's
//!    `{knn_batch, range_batch, knn_batch_by_ids}` with one shared
//!    scratch per worker, and answer every member. Pinning per batch
//!    means a batch can never straddle a store epoch boundary: every
//!    reply in it is computed against one consistent snapshot, even
//!    while inserts, deletes, or a compaction land concurrently.
//!
//! During shutdown the queue stops admitting (new requests get an
//! explicit [`Response::ShuttingDown`]) but the dispatcher keeps cycling
//! until everything already admitted has been executed and answered —
//! shedding is explicit and draining is complete; requests are never
//! silently dropped.
//!
//! ## Overload policy
//!
//! Admission is a hard bound: when `queue_cap` requests are pending, new
//! arrivals are answered immediately with [`Response::Overloaded`]
//! (shed), keeping queueing delay — and therefore tail latency — bounded
//! instead of letting the backlog grow without limit.

use crate::metrics::Metrics;
use crate::protocol::{Hit, Response};
use cbir_core::{Ranked, ServedCorpus};
use cbir_index::BatchStats;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for the micro-batch scheduler.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Largest batch handed to the engine in one dispatch. `1` degenerates
    /// to single-request-per-dispatch scheduling (the benchmark baseline).
    pub max_batch: usize,
    /// How long a dispatch may wait for the batch to fill once the first
    /// request has been claimed. Zero dispatches whatever is queued.
    pub max_delay: Duration,
    /// Bound on queued (admitted, not yet dispatched) requests; arrivals
    /// beyond it are shed with an explicit overload response.
    pub queue_cap: usize,
    /// Worker threads for the engine's batched execution (1 executes on
    /// the dispatcher thread).
    pub exec_threads: usize,
    /// Per-connection read timeout: a connection with no complete frame
    /// for this long is reaped (closed without a reply, counted in
    /// `io_timeouts`). `None` disables idle reaping.
    pub idle_timeout: Option<Duration>,
    /// Per-connection write timeout: a peer that stops draining its
    /// responses for this long has its connection closed. `None`
    /// disables the bound.
    pub write_timeout: Option<Duration>,
    /// When set, every admitted k-NN request runs at this recall target
    /// regardless of what the client asked for — an operator-side knob
    /// for forcing a whole deployment onto the approximate (or exact)
    /// path. `None` honors per-request targets.
    pub recall_target_override: Option<f32>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            queue_cap: 1024,
            exec_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            idle_timeout: Some(Duration::from_secs(60)),
            write_timeout: Some(Duration::from_secs(30)),
            recall_target_override: None,
        }
    }
}

/// One admissible query (control ops never enter the queue).
#[derive(Clone, Debug)]
pub enum QueryWork {
    /// k-NN over a raw descriptor.
    Knn {
        /// Query descriptor (must match the engine's dimensionality).
        descriptor: Vec<f32>,
        /// Neighbour count.
        k: usize,
        /// Recall target in `(0, 1]`; `1.0` executes the exact path,
        /// below `1.0` the two-stage coarse-to-fine approximate path.
        recall_target: f32,
    },
    /// Range search over a raw descriptor.
    Range {
        /// Query descriptor (must match the engine's dimensionality).
        descriptor: Vec<f32>,
        /// Inclusive distance threshold.
        radius: f32,
    },
    /// k-NN by database image id (self-excluding).
    KnnById {
        /// Database image id.
        id: usize,
        /// Neighbour count.
        k: usize,
        /// Recall target in `(0, 1]`; `1.0` executes the exact path.
        recall_target: f32,
    },
}

/// Where a scheduled request's single reply goes.
///
/// The blocking connection path parks a writer thread on a rendezvous
/// channel per request; the event loop cannot park, so it hands the
/// scheduler a completion cell that stores the response and wakes the
/// loop. Both are single-use and infallible from the scheduler's side:
/// a vanished receiver just means the connection died first.
pub enum ReplySink {
    /// Rendezvous channel a blocking connection's writer is parked on.
    Channel(SyncSender<Response>),
    /// Completion cell owned by an event-loop connection.
    Cell(Arc<crate::conn::ReplyCell>),
}

impl ReplySink {
    /// Deliver the reply. Delivery to a dead connection is silently
    /// dropped, matching the blocking path's fire-and-forget `try_send`.
    pub fn send(&self, resp: Response) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.try_send(resp);
            }
            ReplySink::Cell(cell) => cell.fill(resp),
        }
    }
}

/// A queued request: the work, its deadline, and the reply slot the
/// connection is blocked on. Every `Pending` receives exactly one
/// [`Response`].
pub struct Pending {
    /// What to execute.
    pub work: QueryWork,
    /// Absolute expiry; a request still queued past it is answered with
    /// [`Response::DeadlineExpired`] instead of being executed.
    pub deadline: Option<Instant>,
    /// When the request was handed to the scheduler (latency origin).
    pub enqueued: Instant,
    /// Single-use reply slot.
    pub reply: ReplySink,
}

struct QueueState {
    items: VecDeque<Pending>,
    shutting_down: bool,
}

/// The shared scheduler: admission queue + dispatcher logic. The server
/// runs [`Scheduler::run`] on a dedicated thread; connection handlers call
/// [`Scheduler::submit`].
pub struct Scheduler {
    corpus: ServedCorpus,
    config: SchedulerConfig,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    metrics: Arc<Metrics>,
    panic_trap: AtomicBool,
}

impl Scheduler {
    /// New scheduler over a served corpus (static engine or live store).
    pub fn new(corpus: ServedCorpus, config: SchedulerConfig, metrics: Arc<Metrics>) -> Self {
        Scheduler {
            corpus,
            config: SchedulerConfig {
                max_batch: config.max_batch.max(1),
                exec_threads: config.exec_threads.max(1),
                ..config
            },
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                shutting_down: false,
            }),
            not_empty: Condvar::new(),
            metrics,
            panic_trap: AtomicBool::new(false),
        }
    }

    /// Make the next executed group panic mid-execution. Test hook for
    /// verifying panic isolation end-to-end; never set in production.
    #[doc(hidden)]
    pub fn trip_panic_trap(&self) {
        self.panic_trap.store(true, Ordering::SeqCst);
    }

    /// The corpus this scheduler executes against.
    pub fn corpus(&self) -> &ServedCorpus {
        &self.corpus
    }

    /// The effective configuration (after floor clamping).
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The counter block this scheduler reports into.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A shareable handle to the counter block (connection threads
    /// outlive borrows of the scheduler).
    pub fn shared_metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Requests currently admitted but not yet dispatched.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").items.len()
    }

    /// Validate, then admit or reject. Every path answers the request:
    /// invalid work gets [`Response::Error`], a full queue gets
    /// [`Response::Overloaded`], a draining server gets
    /// [`Response::ShuttingDown`]; otherwise the request is queued and the
    /// dispatcher will answer it.
    pub fn submit(&self, mut pending: Pending) {
        self.metrics.on_request();
        if let Some(rt) = self.config.recall_target_override {
            match &mut pending.work {
                QueryWork::Knn { recall_target, .. } | QueryWork::KnnById { recall_target, .. } => {
                    *recall_target = rt
                }
                QueryWork::Range { .. } => {}
            }
        }
        if let Some(msg) = self.validate(&pending.work) {
            self.metrics.on_error();
            pending.reply.send(Response::Error(msg));
            return;
        }
        let mut q = self.queue.lock().expect("queue lock");
        if q.shutting_down {
            drop(q);
            self.metrics.on_rejected_shutdown();
            pending
                .reply
                .send(Response::ShuttingDown("server is draining".into()));
            return;
        }
        if q.items.len() >= self.config.queue_cap {
            drop(q);
            self.metrics.on_shed();
            pending.reply.send(Response::Overloaded(format!(
                "request queue full ({} pending)",
                self.config.queue_cap
            )));
            return;
        }
        q.items.push_back(pending);
        let depth = q.items.len();
        drop(q);
        cbir_obs::set_queue_depth(depth as u64);
        self.metrics.on_admitted();
        self.not_empty.notify_one();
    }

    fn validate(&self, work: &QueryWork) -> Option<String> {
        let view = self.corpus.pin();
        let dim = view.dim();
        let check_desc = |d: &[f32]| -> Option<String> {
            if d.len() != dim {
                return Some(format!(
                    "descriptor dim {} does not match database dim {dim}",
                    d.len()
                ));
            }
            if d.iter().any(|x| !x.is_finite()) {
                return Some("descriptor contains a non-finite component".into());
            }
            None
        };
        match work {
            QueryWork::Knn {
                descriptor,
                k,
                recall_target,
            } => {
                if *k == 0 {
                    return Some("k must be >= 1".into());
                }
                if let Err(e) = cbir_core::validate_recall_target(*recall_target) {
                    return Some(e.to_string());
                }
                check_desc(descriptor)
            }
            QueryWork::Range { descriptor, radius } => {
                if !radius.is_finite() || *radius < 0.0 {
                    return Some(format!("radius must be finite and >= 0, got {radius}"));
                }
                check_desc(descriptor)
            }
            QueryWork::KnnById {
                id,
                k,
                recall_target,
            } => {
                if *k == 0 {
                    return Some("k must be >= 1".into());
                }
                if let Err(e) = cbir_core::validate_recall_target(*recall_target) {
                    return Some(e.to_string());
                }
                if !view.contains(*id as u64) {
                    return Some(format!(
                        "image id {id} not in database (len {})",
                        view.len()
                    ));
                }
                None
            }
        }
    }

    /// Stop admitting; wake the dispatcher so it drains what remains and
    /// exits. Idempotent.
    pub fn begin_shutdown(&self) {
        let mut q = self.queue.lock().expect("queue lock");
        q.shutting_down = true;
        drop(q);
        self.not_empty.notify_all();
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.queue.lock().expect("queue lock").shutting_down
    }

    /// Dispatcher loop: collect → execute until shutdown has begun *and*
    /// the queue is fully drained. Run this on a dedicated thread.
    pub fn run(&self) {
        while let Some(batch) = self.collect_batch() {
            self.execute_batch(batch);
        }
    }

    /// Synchronously execute everything currently queued, without
    /// waiting for arrivals. Deterministic-test hook: the event-loop
    /// harness submits through the real admission path, then drains on
    /// the test thread instead of racing a dispatcher thread.
    #[doc(hidden)]
    pub fn drain_queued(&self) {
        loop {
            let batch: Vec<Pending> = {
                let mut guard = self.queue.lock().expect("queue lock");
                let take = guard.items.len().min(self.config.max_batch);
                guard.items.drain(..take).collect()
            };
            if batch.is_empty() {
                return;
            }
            self.execute_batch(batch);
        }
    }

    /// Block until work or shutdown; returns `None` only when shutting
    /// down with an empty queue (nothing left to drain).
    fn collect_batch(&self) -> Option<Vec<Pending>> {
        let max_batch = self.config.max_batch;
        let mut guard = self.queue.lock().expect("queue lock");
        while guard.items.is_empty() {
            if guard.shutting_down {
                return None;
            }
            guard = self.not_empty.wait(guard).expect("queue lock");
        }
        let mut batch = Vec::with_capacity(guard.items.len().min(max_batch));
        while batch.len() < max_batch {
            match guard.items.pop_front() {
                Some(p) => batch.push(p),
                None => break,
            }
        }
        // Dynamic part: hold the dispatch briefly to let concurrent
        // arrivals coalesce, but never once shutdown has begun.
        if batch.len() < max_batch && !self.config.max_delay.is_zero() && !guard.shutting_down {
            let deadline = Instant::now() + self.config.max_delay;
            loop {
                if batch.len() >= max_batch || guard.shutting_down {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, timeout) = self
                    .not_empty
                    .wait_timeout(guard, deadline - now)
                    .expect("queue lock");
                guard = g;
                while batch.len() < max_batch {
                    match guard.items.pop_front() {
                        Some(p) => batch.push(p),
                        None => break,
                    }
                }
                if timeout.timed_out() {
                    break;
                }
            }
        }
        cbir_obs::set_queue_depth(guard.items.len() as u64);
        Some(batch)
    }

    /// Pin one corpus view, group the batch by compatible engine call,
    /// execute each group on the batched path, and answer every member.
    fn execute_batch(&self, batch: Vec<Pending>) {
        let size = batch.len();
        let dispatch_time = Instant::now();
        // One pinned view for the whole batch: every group executes
        // against the same snapshot, so concurrent mutation or
        // compaction can never produce a torn batch.
        let view = self.corpus.pin();

        // Expired requests are answered without execution; by-id
        // requests whose row vanished between admission and dispatch
        // (deleted, or renumbered by compaction) get an individual
        // error instead of poisoning their group; the rest are grouped
        // by (op, parameter) so each group is one engine call.
        // BTreeMap keeps group execution order deterministic.
        let mut expired = 0usize;
        let mut groups: BTreeMap<(u8, u64, u64), Vec<usize>> = BTreeMap::new();
        let mut slots: Vec<Option<Pending>> = Vec::with_capacity(size);
        for (i, p) in batch.into_iter().enumerate() {
            if p.deadline.is_some_and(|d| dispatch_time > d) {
                expired += 1;
                p.reply.send(Response::DeadlineExpired(
                    "deadline expired while queued".into(),
                ));
                slots.push(None);
                continue;
            }
            if let QueryWork::KnnById { id, .. } = &p.work {
                if !view.contains(*id as u64) {
                    self.metrics.on_error();
                    p.reply.send(Response::Error(format!(
                        "image id {id} no longer in database (epoch {})",
                        view.epoch()
                    )));
                    slots.push(None);
                    continue;
                }
            }
            // The third key slot carries the recall target's bits, so
            // requests at different targets never share an engine call
            // (their candidate budgets differ) while compatible approx
            // requests still batch together.
            let key = match &p.work {
                QueryWork::Knn {
                    k, recall_target, ..
                } => (0u8, *k as u64, recall_target.to_bits() as u64),
                QueryWork::Range { radius, .. } => (1, radius.to_bits() as u64, 0),
                QueryWork::KnnById {
                    k, recall_target, ..
                } => (2, *k as u64, recall_target.to_bits() as u64),
            };
            groups.entry(key).or_default().push(i);
            slots.push(Some(p));
        }

        let mut latencies = Vec::with_capacity(size - expired);
        let mut search = BatchStats::new();
        for ((tag, param, extra), members) in groups {
            let mut stats = BatchStats::new();
            // The engine is stateless across calls (scratch is
            // per-invocation), so unwinding out of one group cannot
            // poison the next: catch the panic, answer this group's
            // members with an error, and keep dispatching.
            let caught: std::thread::Result<cbir_core::Result<Vec<Vec<Ranked>>>> =
                catch_unwind(AssertUnwindSafe(|| {
                    if self.panic_trap.swap(false, Ordering::SeqCst) {
                        panic!("induced test panic");
                    }
                    match tag {
                        0 => {
                            let queries: Vec<Vec<f32>> = members
                                .iter()
                                .map(|&i| match &slots[i].as_ref().expect("live slot").work {
                                    QueryWork::Knn { descriptor, .. } => descriptor.clone(),
                                    _ => unreachable!("knn group"),
                                })
                                .collect();
                            // recall_target = 1.0 degenerates to the
                            // exact batched path inside, bit-identically.
                            view.knn_batch_approx(
                                &queries,
                                param as usize,
                                f32::from_bits(extra as u32),
                                self.config.exec_threads,
                                &mut stats,
                            )
                        }
                        1 => {
                            let queries: Vec<Vec<f32>> = members
                                .iter()
                                .map(|&i| match &slots[i].as_ref().expect("live slot").work {
                                    QueryWork::Range { descriptor, .. } => descriptor.clone(),
                                    _ => unreachable!("range group"),
                                })
                                .collect();
                            view.range_batch(
                                &queries,
                                f32::from_bits(param as u32),
                                self.config.exec_threads,
                                &mut stats,
                            )
                        }
                        _ => {
                            let ids: Vec<u64> = members
                                .iter()
                                .map(|&i| match &slots[i].as_ref().expect("live slot").work {
                                    QueryWork::KnnById { id, .. } => *id as u64,
                                    _ => unreachable!("knn-by-id group"),
                                })
                                .collect();
                            view.knn_batch_by_ids_approx(
                                &ids,
                                param as usize,
                                f32::from_bits(extra as u32),
                                self.config.exec_threads,
                                &mut stats,
                            )
                        }
                    }
                }));
            search.merge(&stats);
            let outcome = match caught {
                Ok(o) => o,
                Err(payload) => {
                    // A poisoned request: convert the panic into error
                    // replies for this group and keep the dispatcher
                    // alive for everyone else.
                    self.metrics.on_panic_isolated();
                    let msg = panic_message(payload.as_ref());
                    for &i in &members {
                        let p = slots[i].take().expect("live slot");
                        self.metrics.on_error();
                        p.reply.send(Response::Error(format!(
                            "internal: execution panicked (isolated): {msg}"
                        )));
                    }
                    continue;
                }
            };
            match outcome {
                Ok(result_lists) => {
                    debug_assert_eq!(result_lists.len(), members.len());
                    // Per-query approx counts: every member of a group
                    // shares the same k, recall target, and pinned view,
                    // so the coarse/rerank work is uniform across the
                    // group and the group total divides exactly. Both are
                    // zero for exact (and range) groups.
                    let n = members.len().max(1) as u64;
                    let coarse_candidates = stats.total().coarse_candidates / n;
                    let rerank_evaluations = stats.total().rerank_evaluations / n;
                    for (ranked, &i) in result_lists.into_iter().zip(&members) {
                        let p = slots[i].take().expect("live slot");
                        latencies.push(p.enqueued.elapsed().as_micros() as u64);
                        p.reply.send(Response::Hits {
                            hits: ranked_to_hits(ranked),
                            coarse_candidates,
                            rerank_evaluations,
                        });
                    }
                }
                Err(e) => {
                    // Admission validation makes this unreachable in
                    // practice; if the engine does fail, isolate the
                    // failure to this group's members.
                    let msg = e.to_string();
                    for &i in &members {
                        let p = slots[i].take().expect("live slot");
                        self.metrics.on_error();
                        p.reply.send(Response::Error(msg.clone()));
                    }
                }
            }
        }
        self.metrics.on_batch(size, expired, &latencies, &search);
    }
}

/// Extract a human-readable message from a panic payload (panics carry
/// `&str` or `String` in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Convert the engine's ranked hits to their wire form.
pub fn ranked_to_hits(ranked: Vec<Ranked>) -> Vec<Hit> {
    ranked
        .into_iter()
        .map(|r| Hit {
            id: r.id as u64,
            name: r.name,
            label: r.label,
            distance: r.distance,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbir_core::{ImageDatabase, IndexKind, QueryEngine};
    use cbir_distance::Measure;
    use cbir_features::{FeatureSpec, Pipeline, Quantizer};
    use cbir_index::SearchStats;
    use std::sync::mpsc::{sync_channel, Receiver};

    fn tiny_engine() -> Arc<QueryEngine> {
        let pipeline = Pipeline::new(
            16,
            vec![FeatureSpec::ColorHistogram(Quantizer::Gray { bins: 8 })],
        )
        .unwrap();
        let mut db = ImageDatabase::new(pipeline);
        for (i, v) in cbir_workload::histograms(12, 8, 1.0, 5)
            .into_iter()
            .enumerate()
        {
            db.insert_descriptor(
                cbir_core::ImageMeta {
                    name: format!("img-{i}"),
                    label: Some((i % 3) as u32),
                },
                v,
            )
            .unwrap();
        }
        Arc::new(QueryEngine::build(db, IndexKind::VpTree, Measure::L1).unwrap())
    }

    fn pending(work: QueryWork) -> (Pending, Receiver<Response>) {
        let (tx, rx) = sync_channel(1);
        (
            Pending {
                work,
                deadline: None,
                enqueued: Instant::now(),
                reply: ReplySink::Channel(tx),
            },
            rx,
        )
    }

    fn sched(config: SchedulerConfig) -> Scheduler {
        Scheduler::new(
            ServedCorpus::Static(tiny_engine()),
            config,
            Arc::new(Metrics::new()),
        )
    }

    #[test]
    fn admission_sheds_beyond_queue_cap() {
        // No dispatcher running: the queue fills deterministically.
        let s = sched(SchedulerConfig {
            queue_cap: 2,
            ..SchedulerConfig::default()
        });
        let q = || {
            pending(QueryWork::Knn {
                descriptor: vec![0.125; 8],
                k: 3,
                recall_target: 1.0,
            })
        };
        let (p1, _rx1) = q();
        let (p2, _rx2) = q();
        let (p3, rx3) = q();
        s.submit(p1);
        s.submit(p2);
        assert_eq!(s.queue_depth(), 2);
        s.submit(p3);
        assert!(matches!(rx3.recv().unwrap(), Response::Overloaded(_)));
        assert_eq!(s.queue_depth(), 2, "shed request never entered the queue");
        let snap = s.metrics.snapshot(s.queue_depth());
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.admitted, 2);
    }

    #[test]
    fn invalid_work_is_answered_with_error_not_queued() {
        let s = sched(SchedulerConfig::default());
        let (p, rx) = pending(QueryWork::Knn {
            descriptor: vec![0.5; 3], // wrong dim
            k: 1,
            recall_target: 1.0,
        });
        s.submit(p);
        assert!(matches!(rx.recv().unwrap(), Response::Error(_)));
        let (p, rx) = pending(QueryWork::KnnById {
            id: 999,
            k: 1,
            recall_target: 1.0,
        });
        s.submit(p);
        assert!(matches!(rx.recv().unwrap(), Response::Error(_)));
        let (p, rx) = pending(QueryWork::Range {
            descriptor: vec![0.5; 8],
            radius: -1.0,
        });
        s.submit(p);
        assert!(matches!(rx.recv().unwrap(), Response::Error(_)));
        assert_eq!(s.queue_depth(), 0);
        assert_eq!(s.metrics.snapshot(0).errors, 3);
    }

    #[test]
    fn expired_requests_get_explicit_deadline_reply() {
        let s = sched(SchedulerConfig::default());
        let (mut p, rx) = pending(QueryWork::Knn {
            descriptor: vec![0.125; 8],
            k: 2,
            recall_target: 1.0,
        });
        p.deadline = Some(Instant::now() - Duration::from_millis(1));
        let (live, live_rx) = pending(QueryWork::Knn {
            descriptor: vec![0.125; 8],
            k: 2,
            recall_target: 1.0,
        });
        s.execute_batch(vec![p, live]);
        assert!(matches!(rx.recv().unwrap(), Response::DeadlineExpired(_)));
        assert!(matches!(live_rx.recv().unwrap(), Response::Hits { .. }));
        let snap = s.metrics.snapshot(0);
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.executed, 1);
        assert_eq!(snap.batches, 1);
    }

    #[test]
    fn panic_during_execution_is_isolated_to_its_group() {
        let s = sched(SchedulerConfig::default());
        s.trip_panic_trap();
        // Two groups in one batch: k=2 executes first (BTreeMap order)
        // and trips the trap; the k=3 group must still be answered.
        let (p1, rx1) = pending(QueryWork::Knn {
            descriptor: vec![0.125; 8],
            k: 2,
            recall_target: 1.0,
        });
        let (p2, rx2) = pending(QueryWork::Knn {
            descriptor: vec![0.125; 8],
            k: 3,
            recall_target: 1.0,
        });
        s.execute_batch(vec![p1, p2]);
        match rx1.recv().unwrap() {
            Response::Error(m) => assert!(m.contains("panic"), "{m}"),
            other => panic!("expected error reply for poisoned group, got {other:?}"),
        }
        assert!(matches!(rx2.recv().unwrap(), Response::Hits { .. }));
        let snap = s.metrics.snapshot(0);
        assert_eq!(snap.panics_isolated, 1);
        assert_eq!(snap.errors, 1);

        // The dispatcher survives: the next batch executes normally.
        let (p3, rx3) = pending(QueryWork::Knn {
            descriptor: vec![0.125; 8],
            k: 2,
            recall_target: 1.0,
        });
        s.execute_batch(vec![p3]);
        assert!(matches!(rx3.recv().unwrap(), Response::Hits { .. }));
    }

    #[test]
    fn approx_requests_group_by_recall_target_and_report_counters() {
        let s = sched(SchedulerConfig::default());
        let engine = match s.corpus() {
            ServedCorpus::Static(e) => Arc::clone(e),
            ServedCorpus::Live(_) => unreachable!("test serves a static engine"),
        };
        let q = engine.database().descriptor(0).unwrap().to_vec();

        // Same k, different recall targets: must land in different
        // groups, so each reply reports its own group's counters.
        let (exact, exact_rx) = pending(QueryWork::Knn {
            descriptor: q.clone(),
            k: 3,
            recall_target: 1.0,
        });
        let (approx, approx_rx) = pending(QueryWork::Knn {
            descriptor: q.clone(),
            k: 3,
            recall_target: 0.9,
        });
        s.execute_batch(vec![exact, approx]);

        let (exact_hits, cc, re) = match exact_rx.recv().unwrap() {
            Response::Hits {
                hits,
                coarse_candidates,
                rerank_evaluations,
            } => (hits, coarse_candidates, rerank_evaluations),
            other => panic!("expected hits, got {other:?}"),
        };
        assert_eq!(cc, 0, "exact path reports zero coarse candidates");
        assert_eq!(re, 0, "exact path reports zero rerank evaluations");

        let (approx_hits, cc, re) = match approx_rx.recv().unwrap() {
            Response::Hits {
                hits,
                coarse_candidates,
                rerank_evaluations,
            } => (hits, coarse_candidates, rerank_evaluations),
            other => panic!("expected hits, got {other:?}"),
        };
        assert!(cc > 0, "approx path surfaces coarse candidates");
        assert!(re > 0, "approx path reports rerank evaluations");
        // The corpus is tiny, so the candidate budget covers it in full
        // and the approx reply matches the exact one bit for bit.
        assert_eq!(exact_hits.len(), approx_hits.len());
        for (e, a) in exact_hits.iter().zip(&approx_hits) {
            assert_eq!(e.id, a.id);
            assert_eq!(e.distance.to_bits(), a.distance.to_bits());
        }
        assert_eq!(s.metrics.snapshot(0).batches, 1);
    }

    #[test]
    fn batched_execution_is_bit_identical_to_direct_engine_calls() {
        let s = sched(SchedulerConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(500),
            ..SchedulerConfig::default()
        });
        let engine = match s.corpus() {
            ServedCorpus::Static(e) => Arc::clone(e),
            ServedCorpus::Live(_) => unreachable!("test serves a static engine"),
        };
        let db_len = engine.database().len();

        // A mixed batch: knn at two different k, a range query, a by-id
        // query — grouped into four engine calls, all answered.
        let descs: Vec<Vec<f32>> = (0..db_len)
            .map(|i| engine.database().descriptor(i).unwrap().to_vec())
            .collect();
        let mut pendings = Vec::new();
        let mut receivers = Vec::new();
        for (i, d) in descs.iter().enumerate() {
            let work = match i % 4 {
                0 => QueryWork::Knn {
                    descriptor: d.clone(),
                    k: 3,
                    recall_target: 1.0,
                },
                1 => QueryWork::Knn {
                    descriptor: d.clone(),
                    k: 5,
                    recall_target: 1.0,
                },
                2 => QueryWork::Range {
                    descriptor: d.clone(),
                    radius: 0.5,
                },
                _ => QueryWork::KnnById {
                    id: i,
                    k: 3,
                    recall_target: 1.0,
                },
            };
            let (p, rx) = pending(work.clone());
            pendings.push(p);
            receivers.push((work, rx));
        }
        s.execute_batch(pendings);

        for (work, rx) in receivers {
            let got = match rx.recv().unwrap() {
                Response::Hits { hits, .. } => hits,
                other => panic!("expected hits, got {other:?}"),
            };
            let want = match work {
                QueryWork::Knn { descriptor, k, .. } => {
                    let mut st = SearchStats::new();
                    engine.query_by_descriptor(&descriptor, k, &mut st).unwrap()
                }
                QueryWork::Range { descriptor, radius } => {
                    let mut st = BatchStats::new();
                    engine
                        .range_batch(&[descriptor], radius, 1, &mut st)
                        .unwrap()
                        .remove(0)
                }
                QueryWork::KnnById { id, k, .. } => {
                    let mut st = SearchStats::new();
                    engine.query_by_id(id, k, &mut st).unwrap()
                }
            };
            let want = ranked_to_hits(want);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id);
                assert_eq!(g.name, w.name);
                assert_eq!(g.label, w.label);
                assert_eq!(g.distance.to_bits(), w.distance.to_bits());
            }
        }
    }

    #[test]
    fn run_drains_admitted_work_before_exiting_on_shutdown() {
        let s = Arc::new(sched(SchedulerConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(100),
            ..SchedulerConfig::default()
        }));
        let mut receivers = Vec::new();
        for _ in 0..10 {
            let (p, rx) = pending(QueryWork::Knn {
                descriptor: vec![0.125; 8],
                k: 2,
                recall_target: 1.0,
            });
            s.submit(p);
            receivers.push(rx);
        }
        s.begin_shutdown();
        // Admission after shutdown is refused explicitly.
        let (late, late_rx) = pending(QueryWork::Knn {
            descriptor: vec![0.125; 8],
            k: 2,
            recall_target: 1.0,
        });
        s.submit(late);
        assert!(matches!(late_rx.recv().unwrap(), Response::ShuttingDown(_)));

        // The dispatcher still answers everything admitted before exiting.
        let runner = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.run())
        };
        for rx in receivers {
            assert!(matches!(rx.recv().unwrap(), Response::Hits { .. }));
        }
        runner.join().unwrap();
        assert_eq!(s.queue_depth(), 0);
        let snap = s.metrics.snapshot(0);
        assert_eq!(snap.executed, 10);
        assert_eq!(snap.rejected_shutdown, 1);
    }
}
