//! The `CBIRRPC1` wire protocol: length-prefixed little-endian binary
//! frames over a byte stream.
//!
//! Every frame, in both directions, is:
//!
//! ```text
//! [8 bytes magic "CBIRRPC1"] [u32 LE payload length] [payload bytes]
//! ```
//!
//! A request payload is an op tag followed by an op-specific body; a
//! response payload is a status tag followed by a status-specific body.
//! All multi-byte integers and floats are little-endian. Strings are a
//! `u32` byte length followed by UTF-8 bytes. See [`Request`] and
//! [`Response`] for the exact bodies.
//!
//! The format is self-describing enough for per-connection error
//! isolation: a malformed frame produces a [`WireError`] which the server
//! answers with [`Response::Error`] before closing that connection,
//! leaving every other connection untouched.

use std::io::{Read, Write};

/// Frame magic; doubles as a protocol version stamp.
pub const MAGIC: &[u8; 8] = b"CBIRRPC1";

/// Upper bound on a frame payload (16 MiB); anything larger is treated as
/// a corrupt stream rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Upper bound on a query descriptor's dimensionality on the wire.
pub const MAX_WIRE_DIM: usize = 1 << 20;

/// A malformed frame or payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn wire_err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// A client-to-server operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered inline with [`Response::Pong`].
    Ping,
    /// k-nearest-neighbour search over a raw descriptor.
    ///
    /// Body: `u32 k`, `u64 deadline_us` (0 = no deadline; a relative
    /// budget measured from server receipt), `f32 recall_target`
    /// (`1.0` = exact search; below `1.0` opts into the two-stage
    /// approximate path), `u32 dim`, `dim × f32`.
    Knn {
        /// Number of neighbours requested.
        k: u32,
        /// Relative deadline in microseconds (0 = none).
        deadline_us: u64,
        /// Recall target in `(0, 1]`; `1.0` requests the exact path.
        recall_target: f32,
        /// Query descriptor.
        descriptor: Vec<f32>,
    },
    /// Range search over a raw descriptor.
    ///
    /// Body: `f32 radius`, `u64 deadline_us`, `u32 dim`, `dim × f32`.
    Range {
        /// Inclusive distance threshold.
        radius: f32,
        /// Relative deadline in microseconds (0 = none).
        deadline_us: u64,
        /// Query descriptor.
        descriptor: Vec<f32>,
    },
    /// k-NN by database image id, excluding the query image itself.
    ///
    /// Body: `u32 k`, `u64 deadline_us`, `f32 recall_target`, `u64 id`.
    KnnById {
        /// Number of neighbours requested.
        k: u32,
        /// Relative deadline in microseconds (0 = none).
        deadline_us: u64,
        /// Recall target in `(0, 1]`; `1.0` requests the exact path.
        recall_target: f32,
        /// Database image id.
        id: u64,
    },
    /// Server counter snapshot; answered inline with [`Response::Stats`].
    Stats,
    /// Graceful shutdown: drain admitted requests, answer them, then stop.
    Shutdown,
    /// Observability registry snapshot, rendered server-side; answered
    /// inline with [`Response::ObsText`].
    ///
    /// Body: `u8 format` (`0` = JSON, `1` = Prometheus text exposition).
    ObsStats {
        /// `true` renders Prometheus text exposition instead of JSON.
        prometheus: bool,
    },
    /// Sampled query traces (JSON), for `cbir rpc-ctl explain`; answered
    /// inline with [`Response::ObsText`].
    Explain,
    /// Insert one precomputed descriptor into a live store; answered
    /// inline with [`Response::InsertAck`] (or [`Response::Error`] when
    /// the server is serving a static database).
    ///
    /// Body: string name, `u8 has_label` (`1` followed by `u32 label`,
    /// or `0`), `u32 dim`, `dim × f32`.
    Insert {
        /// External name of the image.
        name: String,
        /// Optional class label.
        label: Option<u32>,
        /// The precomputed descriptor.
        descriptor: Vec<f32>,
    },
    /// Tombstone one row of a live store by global id; answered inline
    /// with [`Response::DeleteAck`].
    ///
    /// Body: `u64 id`.
    Delete {
        /// Global id at the server's current epoch.
        id: u64,
    },
    /// Merge the live store's memtable and segments into fresh segments
    /// (the durability point); answered inline with
    /// [`Response::CompactAck`].
    Compact,
    /// Fetch the stored descriptor of one row by id; answered inline with
    /// [`Response::Descriptor`]. A scatter-gather router uses this to
    /// resolve a knn-by-id against the shard that owns the query row
    /// before fanning the search out to every shard.
    ///
    /// Body: `u64 id`.
    GetDescriptor {
        /// Row id at the server's current epoch.
        id: u64,
    },
}

const OP_PING: u8 = 0;
const OP_KNN: u8 = 1;
const OP_RANGE: u8 = 2;
const OP_KNN_BY_ID: u8 = 3;
const OP_STATS: u8 = 4;
const OP_SHUTDOWN: u8 = 5;
const OP_OBS_STATS: u8 = 6;
const OP_EXPLAIN: u8 = 7;
const OP_INSERT: u8 = 8;
const OP_DELETE: u8 = 9;
const OP_COMPACT: u8 = 10;
const OP_GET_DESCRIPTOR: u8 = 11;

/// One retrieval hit on the wire; mirrors `cbir_core::Ranked`.
///
/// Body: `u64 id`, string name, `u8 has_label` (`1` followed by
/// `u32 label`, or `0`), `f32 distance`.
#[derive(Clone, Debug, PartialEq)]
pub struct Hit {
    /// Image id in the server's database.
    pub id: u64,
    /// External name of the image.
    pub name: String,
    /// Class label if the image has one.
    pub label: Option<u32>,
    /// Distance from the query under the server's measure.
    pub distance: f32,
}

/// Snapshot of the server-side counters (see `metrics` module for the
/// semantics of each field).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Query requests decoded (knn/range/knn-by-id; control ops excluded).
    pub requests: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests shed with [`Response::Overloaded`] (queue full).
    pub shed: u64,
    /// Requests refused because the server was shutting down.
    pub rejected_shutdown: u64,
    /// Admitted requests whose deadline expired before execution.
    pub expired: u64,
    /// Requests executed through the engine.
    pub executed: u64,
    /// Requests answered with [`Response::Error`] (validation or engine).
    pub errors: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// p50 of enqueue-to-reply latency, microseconds (executed requests).
    pub latency_p50_us: u64,
    /// p95 of enqueue-to-reply latency, microseconds (executed requests).
    pub latency_p95_us: u64,
    /// Total distance computations performed by the engine.
    pub distance_computations: u64,
    /// Connections reaped after a read/write timeout (idle or stuck).
    pub io_timeouts: u64,
    /// Batch-execution panics caught and converted to error replies.
    pub panics_isolated: u64,
    /// `epoll_wait` returns in the event loop (zero on the blocking path).
    pub epoll_wakeups: u64,
    /// High-water mark of requests concurrently in flight on one
    /// connection (pipeline depth; zero on the blocking path, which does
    /// not track it).
    pub max_pipeline_depth: u64,
    /// Batch-size histogram as `(inclusive upper bound, count)` pairs.
    pub batch_hist: Vec<(u64, u64)>,
}

/// A server-to-client reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Ranked hits for a knn/range/knn-by-id request.
    ///
    /// Body: `u32 n`, `n` hit bodies, `u64 coarse_candidates`,
    /// `u64 rerank_evaluations`. Both counters are zero when the request
    /// executed on the exact path — so a `recall_target = 1.0` reply is
    /// byte-identical to an exact reply, not merely equivalent.
    Hits {
        /// The ranked hits.
        hits: Vec<Hit>,
        /// Coarse-stage candidates this query surfaced (zero on the
        /// exact path).
        coarse_candidates: u64,
        /// Exact rerank evaluations this query performed (zero on the
        /// exact path).
        rerank_evaluations: u64,
    },
    /// Answer to [`Request::Ping`]: database size and descriptor dim.
    Pong {
        /// Number of images in the served database.
        db_len: u64,
        /// Descriptor dimensionality the server expects.
        dim: u32,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Acknowledges [`Request::Shutdown`]; sent before the server drains.
    ShutdownAck,
    /// Per-request failure (bad dimension, unknown id, engine error). The
    /// connection stays usable.
    Error(String),
    /// Admission control shed this request: the bounded queue was full.
    Overloaded(String),
    /// The server is shutting down and no longer admits requests.
    ShuttingDown(String),
    /// The request's deadline expired while it waited in the queue.
    DeadlineExpired(String),
    /// Rendered observability text (JSON or Prometheus exposition),
    /// answering [`Request::ObsStats`] and [`Request::Explain`].
    ObsText(String),
    /// Answer to [`Request::Insert`].
    InsertAck {
        /// Global id assigned to the inserted row.
        id: u64,
        /// Store epoch after the insert.
        epoch: u64,
    },
    /// Answer to [`Request::Delete`].
    DeleteAck {
        /// Store epoch after the delete.
        epoch: u64,
    },
    /// Answer to [`Request::Compact`].
    CompactAck {
        /// Store epoch after the compaction.
        epoch: u64,
        /// Live segments after the compaction.
        segments: u32,
        /// Live rows after the compaction.
        rows: u64,
    },
    /// Answer to [`Request::GetDescriptor`].
    ///
    /// Body: `u32 dim`, `dim × f32`.
    Descriptor {
        /// The stored descriptor, bit-for-bit as the server holds it.
        descriptor: Vec<f32>,
    },
    /// Ranked hits from a **degraded** scatter-gather reply: one or more
    /// shards were unreachable (every replica down or circuit-open) and
    /// the router, running with partial results enabled, merged what the
    /// live shards returned instead of failing the query.
    ///
    /// Body: the full [`Response::Hits`] body, then `u32 shards_answered`,
    /// `u32 shards_total`. A router only ever emits this status when
    /// `shards_answered < shards_total`; full-coverage replies keep the
    /// plain `Hits` status so the healthy exact path stays frame-level
    /// byte-identical to a single union node.
    HitsPartial {
        /// The ranked hits merged over the shards that answered.
        hits: Vec<Hit>,
        /// Coarse-stage candidates summed over answering shards.
        coarse_candidates: u64,
        /// Exact rerank evaluations summed over answering shards.
        rerank_evaluations: u64,
        /// Shards that contributed hits to this reply.
        shards_answered: u32,
        /// Shards the plan declares; `shards_answered < shards_total`.
        shards_total: u32,
    },
}

const ST_HITS: u8 = 0;
const ST_PONG: u8 = 1;
const ST_STATS: u8 = 2;
const ST_SHUTDOWN_ACK: u8 = 3;
const ST_ERROR: u8 = 4;
const ST_OVERLOADED: u8 = 5;
const ST_SHUTTING_DOWN: u8 = 6;
const ST_DEADLINE_EXPIRED: u8 = 7;
const ST_OBS_TEXT: u8 = 8;
const ST_INSERT_ACK: u8 = 9;
const ST_DELETE_ACK: u8 = 10;
const ST_COMPACT_ACK: u8 = 11;
const ST_DESCRIPTOR: u8 = 12;
const ST_HITS_PARTIAL: u8 = 13;

// ---------------------------------------------------------------------------
// Payload writer/reader (little-endian, length-prefixed strings).
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct PayloadReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let slice = self
            .bytes
            .get(self.at..self.at.saturating_add(n))
            .ok_or_else(|| wire_err("unexpected end of payload"))?;
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME_LEN {
            return Err(wire_err(format!("string length {n} implausible")));
        }
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| wire_err("invalid UTF-8 in string field"))
    }

    fn descriptor(&mut self) -> Result<Vec<f32>, WireError> {
        let dim = self.u32()? as usize;
        if dim == 0 || dim > MAX_WIRE_DIM {
            return Err(wire_err(format!("descriptor dim {dim} out of range")));
        }
        let mut v = Vec::with_capacity(dim);
        for _ in 0..dim {
            v.push(self.f32()?);
        }
        Ok(v)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(wire_err(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.at
            )))
        }
    }
}

fn write_descriptor(w: &mut PayloadWriter, d: &[f32]) {
    w.u32(d.len() as u32);
    for &v in d {
        w.f32(v);
    }
}

/// The shared body of [`Response::Hits`] and [`Response::HitsPartial`]:
/// `u32 n`, `n` hit bodies, `u64 coarse_candidates`,
/// `u64 rerank_evaluations`. Factored so the two statuses can never
/// drift apart byte-wise.
fn write_hits_body(w: &mut PayloadWriter, hits: &[Hit], coarse: u64, rerank: u64) {
    w.u32(hits.len() as u32);
    for h in hits {
        w.u64(h.id);
        w.str(&h.name);
        match h.label {
            Some(l) => {
                w.u8(1);
                w.u32(l);
            }
            None => w.u8(0),
        }
        w.f32(h.distance);
    }
    w.u64(coarse);
    w.u64(rerank);
}

/// Inverse of [`write_hits_body`].
fn read_hits_body(r: &mut PayloadReader<'_>) -> Result<(Vec<Hit>, u64, u64), WireError> {
    let n = r.u32()? as usize;
    if n > MAX_FRAME_LEN / 17 {
        return Err(wire_err(format!("hit count {n} implausible")));
    }
    let mut hits = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u64()?;
        let name = r.str()?;
        let label = if r.u8()? != 0 { Some(r.u32()?) } else { None };
        let distance = r.f32()?;
        hits.push(Hit {
            id,
            name,
            label,
            distance,
        });
    }
    let coarse = r.u64()?;
    let rerank = r.u64()?;
    Ok((hits, coarse, rerank))
}

// ---------------------------------------------------------------------------
// Request encode/decode.
// ---------------------------------------------------------------------------

/// Serialize a request into a frame payload (no magic / length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = PayloadWriter::default();
    match req {
        Request::Ping => w.u8(OP_PING),
        Request::Knn {
            k,
            deadline_us,
            recall_target,
            descriptor,
        } => {
            w.u8(OP_KNN);
            w.u32(*k);
            w.u64(*deadline_us);
            w.f32(*recall_target);
            write_descriptor(&mut w, descriptor);
        }
        Request::Range {
            radius,
            deadline_us,
            descriptor,
        } => {
            w.u8(OP_RANGE);
            w.f32(*radius);
            w.u64(*deadline_us);
            write_descriptor(&mut w, descriptor);
        }
        Request::KnnById {
            k,
            deadline_us,
            recall_target,
            id,
        } => {
            w.u8(OP_KNN_BY_ID);
            w.u32(*k);
            w.u64(*deadline_us);
            w.f32(*recall_target);
            w.u64(*id);
        }
        Request::Stats => w.u8(OP_STATS),
        Request::Shutdown => w.u8(OP_SHUTDOWN),
        Request::ObsStats { prometheus } => {
            w.u8(OP_OBS_STATS);
            w.u8(u8::from(*prometheus));
        }
        Request::Explain => w.u8(OP_EXPLAIN),
        Request::Insert {
            name,
            label,
            descriptor,
        } => {
            w.u8(OP_INSERT);
            w.str(name);
            match label {
                Some(l) => {
                    w.u8(1);
                    w.u32(*l);
                }
                None => w.u8(0),
            }
            write_descriptor(&mut w, descriptor);
        }
        Request::Delete { id } => {
            w.u8(OP_DELETE);
            w.u64(*id);
        }
        Request::Compact => w.u8(OP_COMPACT),
        Request::GetDescriptor { id } => {
            w.u8(OP_GET_DESCRIPTOR);
            w.u64(*id);
        }
    }
    w.buf
}

/// Parse a frame payload as a request.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = PayloadReader::new(payload);
    let req = match r.u8()? {
        OP_PING => Request::Ping,
        OP_KNN => Request::Knn {
            k: r.u32()?,
            deadline_us: r.u64()?,
            recall_target: r.f32()?,
            descriptor: r.descriptor()?,
        },
        OP_RANGE => Request::Range {
            radius: r.f32()?,
            deadline_us: r.u64()?,
            descriptor: r.descriptor()?,
        },
        OP_KNN_BY_ID => Request::KnnById {
            k: r.u32()?,
            deadline_us: r.u64()?,
            recall_target: r.f32()?,
            id: r.u64()?,
        },
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        OP_OBS_STATS => match r.u8()? {
            0 => Request::ObsStats { prometheus: false },
            1 => Request::ObsStats { prometheus: true },
            f => return Err(wire_err(format!("unknown obs-stats format {f}"))),
        },
        OP_EXPLAIN => Request::Explain,
        OP_INSERT => {
            let name = r.str()?;
            let label = if r.u8()? != 0 { Some(r.u32()?) } else { None };
            Request::Insert {
                name,
                label,
                descriptor: r.descriptor()?,
            }
        }
        OP_DELETE => Request::Delete { id: r.u64()? },
        OP_COMPACT => Request::Compact,
        OP_GET_DESCRIPTOR => Request::GetDescriptor { id: r.u64()? },
        t => return Err(wire_err(format!("unknown request op {t}"))),
    };
    r.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Response encode/decode.
// ---------------------------------------------------------------------------

/// Serialize a response into a frame payload (no magic / length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = PayloadWriter::default();
    match resp {
        Response::Hits {
            hits,
            coarse_candidates,
            rerank_evaluations,
        } => {
            w.u8(ST_HITS);
            write_hits_body(&mut w, hits, *coarse_candidates, *rerank_evaluations);
        }
        Response::HitsPartial {
            hits,
            coarse_candidates,
            rerank_evaluations,
            shards_answered,
            shards_total,
        } => {
            w.u8(ST_HITS_PARTIAL);
            write_hits_body(&mut w, hits, *coarse_candidates, *rerank_evaluations);
            w.u32(*shards_answered);
            w.u32(*shards_total);
        }
        Response::Pong { db_len, dim } => {
            w.u8(ST_PONG);
            w.u64(*db_len);
            w.u32(*dim);
        }
        Response::Stats(s) => {
            w.u8(ST_STATS);
            w.u64(s.requests);
            w.u64(s.admitted);
            w.u64(s.shed);
            w.u64(s.rejected_shutdown);
            w.u64(s.expired);
            w.u64(s.executed);
            w.u64(s.errors);
            w.u64(s.batches);
            w.u64(s.queue_depth);
            w.u64(s.latency_p50_us);
            w.u64(s.latency_p95_us);
            w.u64(s.distance_computations);
            w.u64(s.io_timeouts);
            w.u64(s.panics_isolated);
            w.u64(s.epoll_wakeups);
            w.u64(s.max_pipeline_depth);
            w.u32(s.batch_hist.len() as u32);
            for &(bound, count) in &s.batch_hist {
                w.u64(bound);
                w.u64(count);
            }
        }
        Response::ShutdownAck => w.u8(ST_SHUTDOWN_ACK),
        Response::Error(msg) => {
            w.u8(ST_ERROR);
            w.str(msg);
        }
        Response::Overloaded(msg) => {
            w.u8(ST_OVERLOADED);
            w.str(msg);
        }
        Response::ShuttingDown(msg) => {
            w.u8(ST_SHUTTING_DOWN);
            w.str(msg);
        }
        Response::DeadlineExpired(msg) => {
            w.u8(ST_DEADLINE_EXPIRED);
            w.str(msg);
        }
        Response::ObsText(text) => {
            w.u8(ST_OBS_TEXT);
            w.str(text);
        }
        Response::InsertAck { id, epoch } => {
            w.u8(ST_INSERT_ACK);
            w.u64(*id);
            w.u64(*epoch);
        }
        Response::DeleteAck { epoch } => {
            w.u8(ST_DELETE_ACK);
            w.u64(*epoch);
        }
        Response::CompactAck {
            epoch,
            segments,
            rows,
        } => {
            w.u8(ST_COMPACT_ACK);
            w.u64(*epoch);
            w.u32(*segments);
            w.u64(*rows);
        }
        Response::Descriptor { descriptor } => {
            w.u8(ST_DESCRIPTOR);
            write_descriptor(&mut w, descriptor);
        }
    }
    w.buf
}

/// Parse a frame payload as a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = PayloadReader::new(payload);
    let resp = match r.u8()? {
        ST_HITS => {
            let (hits, coarse_candidates, rerank_evaluations) = read_hits_body(&mut r)?;
            Response::Hits {
                hits,
                coarse_candidates,
                rerank_evaluations,
            }
        }
        ST_HITS_PARTIAL => {
            let (hits, coarse_candidates, rerank_evaluations) = read_hits_body(&mut r)?;
            Response::HitsPartial {
                hits,
                coarse_candidates,
                rerank_evaluations,
                shards_answered: r.u32()?,
                shards_total: r.u32()?,
            }
        }
        ST_PONG => Response::Pong {
            db_len: r.u64()?,
            dim: r.u32()?,
        },
        ST_STATS => {
            let mut s = StatsSnapshot {
                requests: r.u64()?,
                admitted: r.u64()?,
                shed: r.u64()?,
                rejected_shutdown: r.u64()?,
                expired: r.u64()?,
                executed: r.u64()?,
                errors: r.u64()?,
                batches: r.u64()?,
                queue_depth: r.u64()?,
                latency_p50_us: r.u64()?,
                latency_p95_us: r.u64()?,
                distance_computations: r.u64()?,
                io_timeouts: r.u64()?,
                panics_isolated: r.u64()?,
                epoll_wakeups: r.u64()?,
                max_pipeline_depth: r.u64()?,
                batch_hist: Vec::new(),
            };
            let n = r.u32()? as usize;
            if n > 1024 {
                return Err(wire_err(format!("histogram bucket count {n} implausible")));
            }
            for _ in 0..n {
                let bound = r.u64()?;
                let count = r.u64()?;
                s.batch_hist.push((bound, count));
            }
            Response::Stats(s)
        }
        ST_SHUTDOWN_ACK => Response::ShutdownAck,
        ST_ERROR => Response::Error(r.str()?),
        ST_OVERLOADED => Response::Overloaded(r.str()?),
        ST_SHUTTING_DOWN => Response::ShuttingDown(r.str()?),
        ST_DEADLINE_EXPIRED => Response::DeadlineExpired(r.str()?),
        ST_OBS_TEXT => Response::ObsText(r.str()?),
        ST_INSERT_ACK => Response::InsertAck {
            id: r.u64()?,
            epoch: r.u64()?,
        },
        ST_DELETE_ACK => Response::DeleteAck { epoch: r.u64()? },
        ST_COMPACT_ACK => Response::CompactAck {
            epoch: r.u64()?,
            segments: r.u32()?,
            rows: r.u64()?,
        },
        ST_DESCRIPTOR => Response::Descriptor {
            descriptor: r.descriptor()?,
        },
        t => return Err(wire_err(format!("unknown response status {t}"))),
    };
    r.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------------

/// Write one frame (magic, length, payload) to a stream. One `write_all`
/// per field; callers wrap the stream in a `BufWriter` and flush per
/// frame or per batch.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame from a stream. Returns `Ok(None)` on clean EOF at a
/// frame boundary; a bad magic, an implausible length, or EOF inside a
/// frame is an `InvalidData` error carrying a [`WireError`] message.
///
/// Transport errors other than EOF — notably `TimedOut`/`WouldBlock`
/// from a socket read timeout — are propagated with their original
/// [`std::io::ErrorKind`] so callers can tell an idle peer apart from a
/// corrupt stream.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut magic = [0u8; 8];
    // Hand-rolled first read so EOF before any byte is a clean end of
    // stream rather than an error.
    let mut filled = 0;
    while filled < magic.len() {
        let n = r.read(&mut magic[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(invalid_data("EOF inside frame magic"));
        }
        filled += n;
    }
    if &magic != MAGIC {
        return Err(invalid_data("bad frame magic (not a CBIRRPC1 stream)"));
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)
        .map_err(|e| eof_as_invalid_data(e, "EOF inside frame length"))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(invalid_data(format!("frame length {len} exceeds limit")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| eof_as_invalid_data(e, "EOF inside frame payload"))?;
    Ok(Some(payload))
}

/// Rewrap only mid-frame EOF as a [`WireError`]; any other transport
/// failure keeps its kind (a timeout must stay classifiable).
fn eof_as_invalid_data(e: std::io::Error, msg: &str) -> std::io::Error {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        invalid_data(msg)
    } else {
        e
    }
}

pub(crate) fn invalid_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, WireError(msg.into()))
}

// ---------------------------------------------------------------------------
// Incremental (nonblocking) frame reassembly.
// ---------------------------------------------------------------------------

/// Incremental frame-reassembly state machine: the nonblocking
/// counterpart of [`read_frame`].
///
/// A readiness-driven reader cannot block until a frame is complete;
/// bytes arrive in arbitrary chunks at arbitrary boundaries. The decoder
/// accepts whatever the socket produced, remembers how far into the
/// current frame it is, and emits each payload exactly once — with the
/// *same* validation outcomes as the blocking reader (bad magic and
/// oversized length prefixes are corrupt streams; EOF is clean only at a
/// frame boundary), so the two paths can be asserted byte-equivalent.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Magic + length prefix under assembly (`header_filled < 12`).
    header: [u8; 12],
    header_filled: usize,
    /// Payload under assembly once the header validated; `None` while
    /// still inside the header.
    payload: Option<Vec<u8>>,
    payload_filled: usize,
}

impl FrameDecoder {
    /// A decoder at a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Whether the decoder sits exactly at a frame boundary (EOF here is
    /// a clean close; anywhere else the frame was torn).
    pub fn at_boundary(&self) -> bool {
        self.header_filled == 0 && self.payload.is_none()
    }

    /// The error an EOF at the current position amounts to, phrased
    /// exactly as the blocking [`read_frame`] would phrase it.
    pub fn eof_error(&self) -> std::io::Error {
        if self.payload.is_some() {
            invalid_data("EOF inside frame payload")
        } else if self.header_filled >= 8 {
            invalid_data("EOF inside frame length")
        } else {
            invalid_data("EOF inside frame magic")
        }
    }

    /// Consume bytes from `chunk`, returning how many were consumed and
    /// the completed frame payload, if this call finished one. Call in a
    /// loop until it consumes the whole chunk; a return of
    /// `(consumed, Some(payload))` with `consumed < chunk.len()` means
    /// more frames (or a partial one) follow in the same chunk.
    ///
    /// Errors carry the same messages as [`read_frame`] (bad magic,
    /// implausible length); after an error the stream is corrupt and the
    /// decoder must not be fed again.
    pub fn feed(&mut self, chunk: &[u8]) -> std::io::Result<(usize, Option<Vec<u8>>)> {
        let mut at = 0;
        // Header phase: assemble 8 bytes of magic + 4 of length.
        if self.payload.is_none() {
            let want = self.header.len() - self.header_filled;
            let take = want.min(chunk.len());
            self.header[self.header_filled..self.header_filled + take]
                .copy_from_slice(&chunk[..take]);
            self.header_filled += take;
            at += take;
            if self.header_filled < self.header.len() {
                return Ok((at, None));
            }
            if &self.header[..8] != MAGIC {
                return Err(invalid_data("bad frame magic (not a CBIRRPC1 stream)"));
            }
            let len = u32::from_le_bytes(self.header[8..12].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_LEN {
                return Err(invalid_data(format!("frame length {len} exceeds limit")));
            }
            self.header_filled = 0;
            self.payload = Some(Vec::with_capacity(len.min(64 << 10)));
            self.payload_filled = len;
        }
        // Payload phase: `payload_filled` holds the bytes still owed.
        let buf = self.payload.as_mut().expect("payload phase");
        let take = self.payload_filled.min(chunk.len() - at);
        buf.extend_from_slice(&chunk[at..at + take]);
        self.payload_filled -= take;
        at += take;
        if self.payload_filled == 0 {
            let frame = self.payload.take().expect("complete payload");
            return Ok((at, Some(frame)));
        }
        Ok((at, None))
    }
}

/// Whether a transport error is a frame torn by mid-frame EOF: the peer
/// (or something on the wire) severed the stream partway through a
/// frame. Both ends of the protocol care about the distinction. A torn
/// frame means the conversation died and can be retried on a fresh
/// connection — the in-flight exchange never completed — whereas the
/// other [`WireError`] shapes (bad magic, oversized length) are
/// evidence the peer does not speak `CBIRRPC1` at all, which no
/// reconnect will fix.
pub fn is_torn_frame(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::InvalidData
        && e.get_ref()
            .and_then(|inner| inner.downcast_ref::<WireError>())
            .is_some_and(|w| w.0.starts_with("EOF inside frame"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let payload = encode_request(&req);
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let payload = encode_response(&resp);
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Knn {
            k: 10,
            deadline_us: 5_000,
            recall_target: 1.0,
            descriptor: vec![0.25, -1.5, 3.0],
        });
        roundtrip_request(Request::Knn {
            k: 10,
            deadline_us: 0,
            recall_target: 0.9,
            descriptor: vec![0.25; 4],
        });
        roundtrip_request(Request::Range {
            radius: 0.75,
            deadline_us: 0,
            descriptor: vec![1.0; 16],
        });
        roundtrip_request(Request::KnnById {
            k: 3,
            deadline_us: 42,
            recall_target: 0.95,
            id: 7,
        });
        roundtrip_request(Request::ObsStats { prometheus: false });
        roundtrip_request(Request::ObsStats { prometheus: true });
        roundtrip_request(Request::Explain);
        roundtrip_request(Request::Insert {
            name: "new-img.ppm".into(),
            label: Some(3),
            descriptor: vec![0.5, 0.25],
        });
        roundtrip_request(Request::Insert {
            name: "unlabeled".into(),
            label: None,
            descriptor: vec![1.0; 8],
        });
        roundtrip_request(Request::Delete { id: 12 });
        roundtrip_request(Request::Compact);
        roundtrip_request(Request::GetDescriptor { id: 31 });
    }

    #[test]
    fn obs_stats_rejects_unknown_format() {
        let mut w = PayloadWriter::default();
        w.u8(OP_OBS_STATS);
        w.u8(7);
        assert!(decode_request(&w.buf).is_err());
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Hits {
            hits: vec![
                Hit {
                    id: 3,
                    name: "class-1-0003.ppm".into(),
                    label: Some(1),
                    distance: 0.125,
                },
                Hit {
                    id: 9,
                    name: "unlabeled".into(),
                    label: None,
                    distance: 2.5,
                },
            ],
            coarse_candidates: 0,
            rerank_evaluations: 0,
        });
        roundtrip_response(Response::Hits {
            hits: Vec::new(),
            coarse_candidates: 128,
            rerank_evaluations: 120,
        });
        roundtrip_response(Response::Pong { db_len: 12, dim: 4 });
        roundtrip_response(Response::ShutdownAck);
        roundtrip_response(Response::Error("bad dim".into()));
        roundtrip_response(Response::Overloaded("queue full".into()));
        roundtrip_response(Response::ShuttingDown("draining".into()));
        roundtrip_response(Response::DeadlineExpired("5ms budget".into()));
        roundtrip_response(Response::ObsText("{\"traces\": []}\n".into()));
        roundtrip_response(Response::InsertAck { id: 41, epoch: 7 });
        roundtrip_response(Response::DeleteAck { epoch: 8 });
        roundtrip_response(Response::CompactAck {
            epoch: 9,
            segments: 2,
            rows: 40,
        });
        roundtrip_response(Response::Descriptor {
            descriptor: vec![0.0, -1.5, 3.25, f32::MIN_POSITIVE],
        });
        roundtrip_response(Response::Stats(StatsSnapshot {
            requests: 100,
            admitted: 90,
            shed: 10,
            rejected_shutdown: 0,
            expired: 2,
            executed: 88,
            errors: 1,
            batches: 12,
            queue_depth: 3,
            latency_p50_us: 150,
            latency_p95_us: 900,
            distance_computations: 123_456,
            io_timeouts: 2,
            panics_isolated: 1,
            epoll_wakeups: 7_000,
            max_pipeline_depth: 32,
            batch_hist: vec![(1, 4), (2, 3), (u64::MAX, 5)],
        }));
    }

    #[test]
    fn hits_partial_roundtrips_and_extends_hits_bytes() {
        let hits = vec![
            Hit {
                id: 5,
                name: "class-2-0005.ppm".into(),
                label: Some(2),
                distance: 0.5,
            },
            Hit {
                id: 11,
                name: "unlabeled".into(),
                label: None,
                distance: 1.25,
            },
        ];
        let partial = Response::HitsPartial {
            hits: hits.clone(),
            coarse_candidates: 7,
            rerank_evaluations: 6,
            shards_answered: 1,
            shards_total: 3,
        };
        roundtrip_response(partial.clone());
        roundtrip_response(Response::HitsPartial {
            hits: Vec::new(),
            coarse_candidates: 0,
            rerank_evaluations: 0,
            shards_answered: 0,
            shards_total: 2,
        });

        // The degraded status is the Hits body plus a coverage suffix:
        // byte 0 differs (status tag) and the last 8 bytes are the two
        // u32 counters; everything between is the exact Hits encoding.
        // This pins the healthy path's bytes against drift.
        let full = encode_response(&Response::Hits {
            hits,
            coarse_candidates: 7,
            rerank_evaluations: 6,
        });
        let degraded = encode_response(&partial);
        assert_eq!(degraded[0], 13, "degraded status tag");
        assert_eq!(full[0], 0, "hits status tag");
        assert_eq!(&degraded[1..degraded.len() - 8], &full[1..]);
        assert_eq!(
            &degraded[degraded.len() - 8..],
            &[1u8, 0, 0, 0, 3, 0, 0, 0][..]
        );

        // Truncating the coverage suffix must fail decode.
        let mut torn = encode_response(&partial);
        torn.truncate(torn.len() - 4);
        assert!(decode_response(&torn).is_err());
    }

    #[test]
    fn read_frame_survives_maximally_fragmented_streams() {
        // Deliver a frame one byte at a time through the fault harness:
        // the reader must reassemble it exactly.
        let payload = encode_request(&Request::Knn {
            k: 4,
            deadline_us: 7,
            recall_target: 1.0,
            descriptor: vec![0.25; 16],
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut fragmented = cbir_core::faults::FaultFile::throttled(std::io::Cursor::new(buf), 1);
        assert_eq!(read_frame(&mut fragmented).unwrap().unwrap(), payload);
        assert!(read_frame(&mut fragmented).unwrap().is_none());
    }

    #[test]
    fn read_frame_preserves_timeout_error_kinds() {
        use cbir_core::faults::{FaultFile, StreamFault};
        let payload = encode_request(&Request::Ping);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();

        // Timeout before any byte: must surface as TimedOut, not be
        // swallowed into InvalidData (idle-reaping depends on it).
        let mut stream = FaultFile::new(
            std::io::Cursor::new(buf.clone()),
            vec![StreamFault::Error {
                op: 0,
                kind: std::io::ErrorKind::TimedOut,
            }],
        );
        assert_eq!(
            read_frame(&mut stream).unwrap_err().kind(),
            std::io::ErrorKind::TimedOut
        );

        // Timeout later, inside the payload read: kind still preserved.
        let mut stream = FaultFile::new(
            std::io::Cursor::new(buf),
            vec![
                StreamFault::Short { op: 0, max: 8 },
                StreamFault::Short { op: 1, max: 4 },
                StreamFault::Error {
                    op: 2,
                    kind: std::io::ErrorKind::WouldBlock,
                },
            ],
        );
        assert_eq!(
            read_frame(&mut stream).unwrap_err().kind(),
            std::io::ErrorKind::WouldBlock
        );

        // Genuine truncation still reads as a corrupt stream.
        let mut partial = Vec::new();
        write_frame(&mut partial, &encode_request(&Request::Ping)).unwrap();
        partial.truncate(partial.len() - 1);
        let mut cursor = std::io::Cursor::new(partial);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err());
        assert!(decode_response(&[99]).is_err());
        // Truncated knn body.
        let mut payload = encode_request(&Request::Knn {
            k: 5,
            deadline_us: 0,
            recall_target: 1.0,
            descriptor: vec![1.0, 2.0],
        });
        payload.truncate(payload.len() - 3);
        assert!(decode_request(&payload).is_err());
        // Trailing bytes.
        let mut payload = encode_request(&Request::Ping);
        payload.push(0);
        assert!(decode_request(&payload).is_err());
        // Zero-dim descriptor.
        let mut w = PayloadWriter::default();
        w.u8(OP_KNN);
        w.u32(1);
        w.u64(0);
        w.f32(1.0); // recall target
        w.u32(0); // dim = 0
        assert!(decode_request(&w.buf).is_err());
        // Zero-dim get-descriptor reply.
        let mut w = PayloadWriter::default();
        w.u8(ST_DESCRIPTOR);
        w.u32(0);
        assert!(decode_response(&w.buf).is_err());
    }

    #[test]
    fn frame_io_roundtrips_and_rejects_garbage() {
        let payload = encode_request(&Request::Knn {
            k: 2,
            deadline_us: 0,
            recall_target: 0.9,
            descriptor: vec![0.5; 8],
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &encode_request(&Request::Ping)).unwrap();

        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap(),
            encode_request(&Request::Ping)
        );
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());

        // Bad magic.
        let mut cursor = std::io::Cursor::new(b"NOTMAGIC\x00\x00\x00\x00".to_vec());
        assert!(read_frame(&mut cursor).is_err());

        // EOF mid-frame.
        let mut partial = Vec::new();
        write_frame(&mut partial, &payload).unwrap();
        partial.truncate(partial.len() - 2);
        let mut cursor = std::io::Cursor::new(partial);
        assert!(read_frame(&mut cursor).is_err());

        // Implausible length.
        let mut huge = MAGIC.to_vec();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(huge);
        assert!(read_frame(&mut cursor).is_err());
    }

    /// Feed `stream` to a fresh decoder in chunks of `sizes` (cycled),
    /// returning the decoded payloads.
    fn decode_chunked(stream: &[u8], sizes: &[usize]) -> Vec<Vec<u8>> {
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        let mut at = 0;
        let mut step = 0;
        while at < stream.len() {
            let take = sizes[step % sizes.len()].max(1).min(stream.len() - at);
            step += 1;
            let chunk = &stream[at..at + take];
            let mut used_total = 0;
            while used_total < chunk.len() {
                let (used, frame) = dec.feed(&chunk[used_total..]).unwrap();
                used_total += used;
                if let Some(f) = frame {
                    out.push(f);
                }
            }
            at += take;
        }
        assert!(dec.at_boundary(), "stream ends at a frame boundary");
        out
    }

    #[test]
    fn frame_decoder_matches_blocking_reader_at_every_split() {
        // Two back-to-back frames; the blocking reader is the oracle.
        let payloads = [
            encode_request(&Request::Knn {
                k: 3,
                deadline_us: 9,
                recall_target: 0.9,
                descriptor: vec![0.125; 8],
            }),
            encode_request(&Request::Ping),
        ];
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream.clone());
        let oracle = [
            read_frame(&mut cursor).unwrap().unwrap(),
            read_frame(&mut cursor).unwrap().unwrap(),
        ];
        assert_eq!(oracle[0], payloads[0]);
        assert_eq!(oracle[1], payloads[1]);

        // Every split point of the whole two-frame stream, plus a
        // one-byte drip and whole-stream coalescing.
        for split in 0..=stream.len() {
            let got = decode_chunked(&stream, &[split.max(1), stream.len()]);
            assert_eq!(got.len(), 2, "split at {split}");
            assert_eq!(got[0], oracle[0], "split at {split}");
            assert_eq!(got[1], oracle[1], "split at {split}");
        }
        assert_eq!(decode_chunked(&stream, &[1]), oracle.to_vec());
        assert_eq!(decode_chunked(&stream, &[stream.len()]), oracle.to_vec());
    }

    #[test]
    fn frame_decoder_reports_eof_position_like_the_blocking_reader() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &encode_request(&Request::Ping)).unwrap();
        // Truncate at every point inside the frame; the decoder must
        // name the same region the blocking reader names.
        for cut in 0..stream.len() {
            let mut dec = FrameDecoder::new();
            let mut fed = 0;
            while fed < cut {
                let (used, _) = dec.feed(&stream[fed..cut]).unwrap();
                fed += used;
            }
            let mut cursor = std::io::Cursor::new(stream[..cut].to_vec());
            let oracle = read_frame(&mut cursor);
            if cut == 0 {
                assert!(dec.at_boundary());
                assert!(oracle.unwrap().is_none(), "EOF at boundary is clean");
                continue;
            }
            assert!(!dec.at_boundary(), "cut at {cut}");
            let want = oracle.unwrap_err().to_string();
            assert_eq!(dec.eof_error().to_string(), want, "cut at {cut}");
        }
    }

    #[test]
    fn frame_decoder_rejects_garbage_like_the_blocking_reader() {
        // Bad magic, delivered one byte at a time.
        let mut dec = FrameDecoder::new();
        let bad = b"NOTMAGIC\x00\x00\x00\x00";
        let mut err = None;
        for b in bad.iter() {
            match dec.feed(&[*b]) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert_eq!(
            err.expect("bad magic detected").to_string(),
            read_frame(&mut cursor).unwrap_err().to_string()
        );

        // Implausible length.
        let mut huge = MAGIC.to_vec();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new();
        let got = dec.feed(&huge).unwrap_err();
        let mut cursor = std::io::Cursor::new(huge);
        assert_eq!(
            got.to_string(),
            read_frame(&mut cursor).unwrap_err().to_string()
        );
    }
}
