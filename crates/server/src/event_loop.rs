//! The nonblocking epoll serving engine.
//!
//! One loop thread owns every socket: it accepts, reassembles frames
//! incrementally ([`crate::protocol::FrameDecoder`]), dispatches decoded
//! requests (inline control ops on the loop thread, queries into the
//! existing micro-batch [`Scheduler`], mutations onto a small worker
//! pool), and flushes each connection's in-order reply queue as sockets
//! become writable. Compute threads never touch a socket: they fill
//! [`crate::conn::ReplyCell`]s, which post the connection token to a
//! [`Completions`] mailbox and wake the loop through a pipe.
//!
//! Every contract of the blocking engine is preserved — admission
//! control, deadlines, overload shedding, idle reaping, write-stall
//! bounds, panic isolation, graceful drain — and the wire bytes of
//! query replies are asserted identical between the two engines (the
//! `exp_epoll_serving` gate). What changes is capacity: a connection
//! costs one registered fd and a [`crate::conn::Connection`] struct
//! instead of two parked threads, so thousands of concurrent,
//! pipelined connections fit in one process.

use crate::conn::{control_response, ReplyCell};
use crate::conn::{dispatch_ready, Completions, Connection, Dispatched, ReadStatus, WriteStatus};
use crate::metrics::Metrics;
use crate::protocol::Request;
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::server::EventLoopConfig;
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use cbir_core::ServedCorpus;
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Loop token of the listener socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Loop token of the waker pipe's read end.
const WAKER_TOKEN: u64 = u64::MAX - 1;
/// Completion token used by [`EventControl::trigger`] (not a connection).
const CONTROL_TOKEN: u64 = u64::MAX - 2;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 0;

/// External shutdown switch for a running event loop.
pub(crate) struct EventControl {
    stop: AtomicBool,
    completions: Arc<Completions>,
}

impl EventControl {
    /// Ask the loop to drain and exit. Idempotent; safe from any thread.
    pub(crate) fn trigger(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.completions.notify(CONTROL_TOKEN);
    }
}

/// Everything `Server::spawn_event_corpus` hands back to the
/// [`crate::ServerHandle`].
pub(crate) struct EventParts {
    pub(crate) local_addr: SocketAddr,
    pub(crate) scheduler: Arc<Scheduler>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) control: Arc<EventControl>,
    pub(crate) threads: Vec<JoinHandle<()>>,
}

/// Bind, build the shared scheduler, and start the loop thread, the
/// dispatcher, and the mutation worker pool.
pub(crate) fn spawn(
    corpus: ServedCorpus,
    addr: impl ToSocketAddrs,
    config: SchedulerConfig,
    event_config: EventLoopConfig,
) -> std::io::Result<EventParts> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let metrics = Arc::new(Metrics::new());
    let scheduler = Arc::new(Scheduler::new(corpus, config, Arc::clone(&metrics)));

    let completions = Arc::new(Completions::new());
    let (waker_rx, waker_tx) = std::os::unix::net::UnixStream::pair()?;
    waker_rx.set_nonblocking(true)?;
    waker_tx.set_nonblocking(true)?;
    completions.set_waker(waker_tx);

    let control = Arc::new(EventControl {
        stop: AtomicBool::new(false),
        completions: Arc::clone(&completions),
    });

    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
    epoll.add(waker_rx.as_raw_fd(), EPOLLIN, WAKER_TOKEN)?;

    let mut threads = Vec::new();
    threads.push({
        let scheduler = Arc::clone(&scheduler);
        std::thread::Builder::new()
            .name("cbir-dispatch".into())
            .spawn(move || scheduler.run())?
    });

    // Mutation workers share one receiver behind a mutex: mutations are
    // rare relative to queries, and the per-connection dispatch barrier
    // already serializes them per connection.
    let (mutate_tx, mutate_rx) = channel::<(Box<Request>, Arc<ReplyCell>)>();
    let mutate_rx = Arc::new(Mutex::new(mutate_rx));
    for i in 0..event_config.mutation_workers.max(1) {
        let rx = Arc::clone(&mutate_rx);
        let scheduler = Arc::clone(&scheduler);
        threads.push(
            std::thread::Builder::new()
                .name(format!("cbir-mutate-{i}"))
                .spawn(move || loop {
                    let job = rx.lock().expect("mutation queue lock").recv();
                    let Ok((req, cell)) = job else { return };
                    cell.fill(control_response(&scheduler, *req));
                })?,
        );
    }

    threads.push({
        let scheduler = Arc::clone(&scheduler);
        let metrics = Arc::clone(&metrics);
        let completions = Arc::clone(&completions);
        let control = Arc::clone(&control);
        std::thread::Builder::new()
            .name("cbir-eloop".into())
            .spawn(move || {
                let mut lp = Loop {
                    epoll,
                    listener,
                    waker_rx,
                    conns: HashMap::new(),
                    next_token: FIRST_CONN_TOKEN,
                    scheduler,
                    metrics,
                    completions,
                    control,
                    mutate_tx,
                    max_conns: event_config.max_conns.max(1),
                    draining: false,
                };
                lp.run();
            })?
    });

    Ok(EventParts {
        local_addr,
        scheduler,
        metrics,
        control,
        threads,
    })
}

/// One registered connection: its socket, state machine, and the
/// interest mask currently programmed into epoll.
struct Entry {
    stream: TcpStream,
    conn: Connection,
    interest: u32,
}

struct Loop {
    epoll: Epoll,
    listener: TcpListener,
    waker_rx: std::os::unix::net::UnixStream,
    conns: HashMap<u64, Entry>,
    next_token: u64,
    scheduler: Arc<Scheduler>,
    metrics: Arc<Metrics>,
    completions: Arc<Completions>,
    control: Arc<EventControl>,
    mutate_tx: Sender<(Box<Request>, Arc<ReplyCell>)>,
    max_conns: usize,
    draining: bool,
}

impl Loop {
    fn run(&mut self) {
        let sweep_every = self.sweep_interval();
        let mut last_sweep = Instant::now();
        let mut events = vec![EpollEvent::default(); 512];
        let mut scratch = vec![0u8; 64 << 10];
        loop {
            let timeout_ms = if self.draining {
                10
            } else {
                sweep_every.as_millis() as i32
            };
            let n = match self.epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("cbir-server: epoll_wait failed, stopping loop: {e}");
                    return;
                }
            };
            self.metrics.on_epoll_wakeup();
            cbir_obs::epoll_wakeups_add(1);
            let now = Instant::now();

            let fired: Vec<(u64, u32)> = events[..n].iter().map(|e| (e.data, e.events)).collect();
            for (token, bits) in fired {
                match token {
                    LISTENER_TOKEN => self.accept_ready(now),
                    WAKER_TOKEN => self.drain_waker(),
                    t => self.conn_event(t, bits, now, &mut scratch),
                }
            }

            // Completions posted by compute threads since the last pass:
            // pump exactly those connections (and dispatch frames a
            // cleared mutation barrier was holding back).
            for token in self.completions.drain() {
                if token == CONTROL_TOKEN {
                    continue; // handled via the stop flag below
                }
                self.progress(token, now);
            }

            if self.control.stop.load(Ordering::SeqCst) {
                self.begin_drain();
            }

            if now.saturating_duration_since(last_sweep) >= sweep_every {
                last_sweep = now;
                self.sweep(now);
            }

            cbir_obs::set_event_loop_state(self.conns.len() as u64, 0);
            if self.draining && self.conns.is_empty() {
                return;
            }
        }
    }

    /// Reap-granularity: a quarter of the tightest configured timeout,
    /// clamped to [25ms, 1s].
    fn sweep_interval(&self) -> Duration {
        let cfg = self.scheduler.config();
        let tightest = [cfg.idle_timeout, cfg.write_timeout]
            .into_iter()
            .flatten()
            .min()
            .unwrap_or(Duration::from_secs(4));
        (tightest / 4).clamp(Duration::from_millis(25), Duration::from_secs(1))
    }

    fn accept_ready(&mut self, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        continue; // refused: dropped immediately
                    }
                    if self.conns.len() >= self.max_conns {
                        // At capacity: close immediately rather than
                        // queue unbounded connection state.
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = EPOLLIN | EPOLLRDHUP;
                    if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Entry {
                            stream,
                            conn: Connection::new(token, now),
                            interest,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) => {
                    // Transient accept failures (EMFILE under fd
                    // pressure, aborted handshakes) must not kill the
                    // loop; pause briefly so an exhausted-fd condition
                    // does not hot-spin (level-triggered epoll will
                    // re-report the listener).
                    eprintln!("cbir-server: accept error (continuing): {e}");
                    std::thread::sleep(Duration::from_millis(10));
                    return;
                }
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.waker_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    /// Handle readiness on one connection, then settle it.
    fn conn_event(&mut self, token: u64, bits: u32, now: Instant, scratch: &mut [u8]) {
        let Some(entry) = self.conns.get_mut(&token) else {
            return; // already closed; stale event
        };
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            // Socket error or full hangup: nothing we read or write goes
            // anywhere, and both conditions are level-triggered — keeping
            // the fd registered would spin the loop. Drop it.
            self.remove(token);
            return;
        }
        let mut shutdown_requested = false;
        let mut dead = false;

        if bits & EPOLLOUT != 0 && entry.conn.wants_write() {
            dead = entry.conn.write_to(&mut &entry.stream, now) == WriteStatus::Gone;
        }
        if !dead {
            if !entry.conn.read_closed() {
                match entry.conn.read_from(&mut &entry.stream, scratch, now) {
                    ReadStatus::Open => {}
                    ReadStatus::Eof => entry.conn.close_read(),
                    // Corrupt stream: frames ahead of the corruption are
                    // answered by the dispatch below, then the error
                    // reply — byte-for-byte the blocking reader's —
                    // closes only this connection.
                    ReadStatus::Corrupt(e) => entry.conn.set_corrupt(e),
                    ReadStatus::Gone => dead = true,
                }
            }
            if !dead {
                match dispatch_ready(
                    &mut entry.conn,
                    &self.scheduler,
                    &self.completions,
                    &mut |req, cell| {
                        let _ = self.mutate_tx.send((req, cell));
                    },
                ) {
                    Dispatched::Shutdown => shutdown_requested = true,
                    Dispatched::Done | Dispatched::Malformed | Dispatched::Mutation(..) => {}
                }
                let depth = entry.conn.inflight_len() as u64;
                self.metrics.on_pipeline_depth(depth);
                cbir_obs::set_event_loop_state(self.conns.len() as u64, depth);
            }
        }

        if dead {
            self.remove(token);
        } else {
            self.settle(token, now);
        }
        if shutdown_requested {
            self.control.stop.store(true, Ordering::SeqCst);
            self.begin_drain();
        }
    }

    /// A compute thread finished something for `token`: flush completed
    /// replies and dispatch anything a mutation barrier was holding.
    fn progress(&mut self, token: u64, now: Instant) {
        let Some(entry) = self.conns.get_mut(&token) else {
            return;
        };
        let mut shutdown_requested = false;
        // Even after reading stopped, a cleared mutation barrier may be
        // holding reassembled frames (or an owed corrupt-stream error)
        // that still need to dispatch.
        match dispatch_ready(
            &mut entry.conn,
            &self.scheduler,
            &self.completions,
            &mut |req, cell| {
                let _ = self.mutate_tx.send((req, cell));
            },
        ) {
            Dispatched::Shutdown => shutdown_requested = true,
            Dispatched::Done | Dispatched::Malformed | Dispatched::Mutation(..) => {}
        }
        self.settle(token, now);
        if shutdown_requested {
            self.control.stop.store(true, Ordering::SeqCst);
            self.begin_drain();
        }
    }

    /// Pump completed replies into the buffer, flush opportunistically,
    /// reconcile epoll interest, and close the connection once finished.
    fn settle(&mut self, token: u64, now: Instant) {
        let Some(entry) = self.conns.get_mut(&token) else {
            return;
        };
        entry.conn.pump();
        if entry.conn.wants_write()
            && entry.conn.write_to(&mut &entry.stream, now) == WriteStatus::Gone
        {
            self.remove(token);
            return;
        }
        let entry = self.conns.get_mut(&token).expect("entry still present");
        if entry.conn.finished() {
            self.remove(token);
            return;
        }
        let want = if entry.conn.read_closed() {
            0
        } else {
            EPOLLIN | EPOLLRDHUP
        } | if entry.conn.wants_write() {
            EPOLLOUT
        } else {
            0
        };
        if want != entry.interest {
            if self
                .epoll
                .modify(entry.stream.as_raw_fd(), want, token)
                .is_err()
            {
                self.remove(token);
                return;
            }
            entry.interest = want;
        }
    }

    fn remove(&mut self, token: u64) {
        if let Some(entry) = self.conns.remove(&token) {
            let _ = self.epoll.del(entry.stream.as_raw_fd());
            // Dropping the stream closes the fd.
        }
    }

    /// Start the graceful drain: stop admitting and accepting, stop
    /// reading on every connection, and let in-flight replies flush.
    /// Mirrors the blocking engine's `Controller::trigger`.
    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.scheduler.begin_shutdown();
        let _ = self.epoll.del(self.listener.as_raw_fd());
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        let now = Instant::now();
        for token in tokens {
            if let Some(entry) = self.conns.get_mut(&token) {
                entry.conn.close_read();
                entry.conn.discard_frames();
                // Read half only: the peer sees EOF; queued replies
                // still flush through the write half.
                let _ = entry.stream.shutdown(Shutdown::Read);
            }
            self.settle(token, now);
        }
    }

    /// Periodic pass: reap idle peers, bound write stalls, and collect
    /// connections that finished while no event was pending.
    fn sweep(&mut self, now: Instant) {
        let cfg = self.scheduler.config().clone();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(entry) = self.conns.get_mut(&token) else {
                continue;
            };
            if let Some(limit) = cfg.idle_timeout {
                if !entry.conn.read_closed() && entry.conn.idle_for(now) >= limit {
                    // Idle peer: reap silently — no courtesy error
                    // frame — exactly like the blocking read timeout.
                    // In-flight replies (if any) still flush before the
                    // socket closes.
                    self.metrics.on_io_timeout();
                    entry.conn.close_read();
                    entry.conn.discard_frames();
                    let _ = entry.stream.shutdown(Shutdown::Read);
                }
            }
            if let Some(limit) = cfg.write_timeout {
                if entry.conn.stalled_for(now).is_some_and(|d| d >= limit) {
                    // A peer that stopped draining responses: counted
                    // and closed both ways, like the blocking writer's
                    // timeout abort.
                    self.metrics.on_io_timeout();
                    let _ = entry.stream.shutdown(Shutdown::Both);
                    self.remove(token);
                    continue;
                }
            }
            self.settle(token, now);
        }
    }
}
