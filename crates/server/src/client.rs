//! Blocking client for the `CBIRRPC1` protocol.
//!
//! [`Client`] offers one-call request/response methods (`knn`, `range`,
//! `knn_by_id`, `ping`, `stats`, `shutdown`) plus a pipelined pair
//! (`send_*` / `recv_hits`) used by load generators: send a window of
//! requests before reading any reply, and the server — whose replies are
//! always in request order — keeps its micro-batches full.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Hit, Request, Response,
    StatsSnapshot, WireError,
};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a request did not return hits.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server closed the connection mid-conversation (process
    /// death, idle reaping, network partition). Distinguished from
    /// [`ClientError::Io`] so retry logic can treat it as transient:
    /// reconnect and resend.
    ConnectionLost(String),
    /// The peer sent something that is not a valid response frame, or a
    /// response of an unexpected kind.
    Protocol(String),
    /// The server rejected or failed the request with an explicit reply.
    Rejected(Rejection),
}

impl ClientError {
    /// Whether retrying the request (possibly on a fresh connection) can
    /// plausibly succeed: lost connections, timeouts, refused connects,
    /// and overload shedding are transient; protocol violations and
    /// explicit server errors are not.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::ConnectionLost(_) => true,
            ClientError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::Interrupted
            ),
            ClientError::Rejected(Rejection::Overloaded(_)) => true,
            _ => false,
        }
    }
}

/// An explicit non-hit server reply, preserved so callers can tell
/// overload shedding apart from failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// Per-request failure; the connection is still usable.
    Error(String),
    /// Admission control shed the request (queue full).
    Overloaded(String),
    /// The server is draining and no longer admits requests.
    ShuttingDown(String),
    /// The request's deadline expired before execution.
    DeadlineExpired(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::ConnectionLost(msg) => write!(f, "connection lost: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Rejected(r) => match r {
                Rejection::Error(m) => write!(f, "server error: {m}"),
                Rejection::Overloaded(m) => write!(f, "server overloaded: {m}"),
                Rejection::ShuttingDown(m) => write!(f, "server shutting down: {m}"),
                Rejection::DeadlineExpired(m) => write!(f, "deadline expired: {m}"),
            },
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // A reply torn by mid-frame EOF is the connection dying, not the
        // server speaking a different protocol — classify it with the
        // other peer-vanished shapes so failover and retry cover it.
        if crate::protocol::is_torn_frame(&e) {
            return ClientError::ConnectionLost(format!("{} ({})", e, e.kind()));
        }
        match e.kind() {
            // The peer vanished under us — typed so retry logic can
            // tell "reconnect and resend" apart from a fatal failure.
            std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::NotConnected
            | std::io::ErrorKind::UnexpectedEof => {
                ClientError::ConnectionLost(format!("{} ({})", e, e.kind()))
            }
            _ => ClientError::Io(e),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Protocol(e.0)
    }
}

/// Convenience alias.
pub type ClientResult<T> = Result<T, ClientError>;

/// A hits reply with its per-query approximate-search counters. Both
/// counters are zero when the server executed the exact path (always the
/// case at `recall_target = 1.0`).
#[derive(Clone, Debug, PartialEq)]
pub struct HitsReply {
    /// The ranked hits.
    pub hits: Vec<Hit>,
    /// Coarse-stage candidates the query surfaced (zero on the exact
    /// path).
    pub coarse_candidates: u64,
    /// Exact rerank evaluations the query performed (zero on the exact
    /// path).
    pub rerank_evaluations: u64,
    /// `true` when this reply came back as `HitsPartial`: a router
    /// running in partial-results mode merged only the shards that were
    /// reachable. Always `false` from a single backend.
    pub degraded: bool,
    /// Shards that contributed to a degraded reply; `0` when
    /// [`HitsReply::degraded`] is `false` (full coverage is implied).
    pub shards_answered: u32,
    /// Shards the router's plan declares; `0` from a single backend.
    pub shards_total: u32,
}

impl HitsReply {
    /// A full-coverage reply body (the non-degraded constructor every
    /// single-backend path uses).
    pub fn full(hits: Vec<Hit>, coarse_candidates: u64, rerank_evaluations: u64) -> HitsReply {
        HitsReply {
            hits,
            coarse_candidates,
            rerank_evaluations,
            degraded: false,
            shards_answered: 0,
            shards_total: 0,
        }
    }
}

/// A blocking connection to a `cbir` query server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server address (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// [`Client::connect`] with a bound on every blocking step: the dial,
    /// each read, and each write all time out after `timeout`. This is
    /// the connect a health prober wants — a black-holed peer (accepts,
    /// then never answers) must cost at most `timeout`, not hang the
    /// probe loop forever.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let mut last_err = None;
        for sock in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    let writer = BufWriter::new(stream.try_clone()?);
                    return Ok(Client {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        }))
    }

    fn send(&mut self, req: &Request) -> std::io::Result<()> {
        write_frame(&mut self.writer, &encode_request(req))
    }

    /// Flush buffered request frames to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    fn recv(&mut self) -> ClientResult<Response> {
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::ConnectionLost("server closed the connection mid-conversation".into())
        })?;
        Ok(decode_response(&payload)?)
    }

    fn expect_hits(resp: Response) -> ClientResult<HitsReply> {
        match resp {
            Response::Hits {
                hits,
                coarse_candidates,
                rerank_evaluations,
            } => Ok(HitsReply::full(hits, coarse_candidates, rerank_evaluations)),
            Response::HitsPartial {
                hits,
                coarse_candidates,
                rerank_evaluations,
                shards_answered,
                shards_total,
            } => Ok(HitsReply {
                hits,
                coarse_candidates,
                rerank_evaluations,
                degraded: true,
                shards_answered,
                shards_total,
            }),
            Response::Error(m) => Err(ClientError::Rejected(Rejection::Error(m))),
            Response::Overloaded(m) => Err(ClientError::Rejected(Rejection::Overloaded(m))),
            Response::ShuttingDown(m) => Err(ClientError::Rejected(Rejection::ShuttingDown(m))),
            Response::DeadlineExpired(m) => {
                Err(ClientError::Rejected(Rejection::DeadlineExpired(m)))
            }
            other => Err(ClientError::Protocol(format!(
                "expected hits, got {other:?}"
            ))),
        }
    }

    /// k-NN over a raw descriptor. `deadline_us` is a relative budget in
    /// microseconds (0 = no deadline); `recall_target` in `(0, 1]`
    /// selects the exact path at `1.0` and the two-stage approximate
    /// path below it.
    pub fn knn(
        &mut self,
        descriptor: &[f32],
        k: usize,
        deadline_us: u64,
        recall_target: f32,
    ) -> ClientResult<Vec<Hit>> {
        Ok(self
            .knn_detailed(descriptor, k, deadline_us, recall_target)?
            .hits)
    }

    /// [`Client::knn`] keeping the reply's approximate-search counters.
    pub fn knn_detailed(
        &mut self,
        descriptor: &[f32],
        k: usize,
        deadline_us: u64,
        recall_target: f32,
    ) -> ClientResult<HitsReply> {
        self.send_knn(descriptor, k, deadline_us, recall_target)?;
        self.flush()?;
        self.recv_hits_detailed()
    }

    /// Range search over a raw descriptor.
    pub fn range(
        &mut self,
        descriptor: &[f32],
        radius: f32,
        deadline_us: u64,
    ) -> ClientResult<Vec<Hit>> {
        Ok(self.range_detailed(descriptor, radius, deadline_us)?.hits)
    }

    /// [`Client::range`] keeping the reply's counters (always zero today
    /// — range search has no approximate path — but a gathering router
    /// forwards them rather than assuming so).
    pub fn range_detailed(
        &mut self,
        descriptor: &[f32],
        radius: f32,
        deadline_us: u64,
    ) -> ClientResult<HitsReply> {
        self.send(&Request::Range {
            radius,
            deadline_us,
            descriptor: descriptor.to_vec(),
        })?;
        self.flush()?;
        self.recv_hits_detailed()
    }

    /// Self-excluding k-NN by database image id.
    pub fn knn_by_id(
        &mut self,
        id: usize,
        k: usize,
        deadline_us: u64,
        recall_target: f32,
    ) -> ClientResult<Vec<Hit>> {
        Ok(self
            .knn_by_id_detailed(id, k, deadline_us, recall_target)?
            .hits)
    }

    /// [`Client::knn_by_id`] keeping the reply's approximate-search
    /// counters.
    pub fn knn_by_id_detailed(
        &mut self,
        id: usize,
        k: usize,
        deadline_us: u64,
        recall_target: f32,
    ) -> ClientResult<HitsReply> {
        self.send(&Request::KnnById {
            k: k as u32,
            deadline_us,
            recall_target,
            id: id as u64,
        })?;
        self.flush()?;
        self.recv_hits_detailed()
    }

    /// Pipelined send half of [`Client::knn`]: buffers the request
    /// without reading a reply. Call [`Client::flush`] after the window
    /// and [`Client::recv_hits`] once per outstanding request, in order.
    pub fn send_knn(
        &mut self,
        descriptor: &[f32],
        k: usize,
        deadline_us: u64,
        recall_target: f32,
    ) -> ClientResult<()> {
        self.send(&Request::Knn {
            k: k as u32,
            deadline_us,
            recall_target,
            descriptor: descriptor.to_vec(),
        })?;
        Ok(())
    }

    /// Pipelined receive half: the next in-order hits reply.
    pub fn recv_hits(&mut self) -> ClientResult<Vec<Hit>> {
        Ok(self.recv_hits_detailed()?.hits)
    }

    /// Pipelined receive half keeping the reply's approximate-search
    /// counters.
    pub fn recv_hits_detailed(&mut self) -> ClientResult<HitsReply> {
        let resp = self.recv()?;
        Self::expect_hits(resp)
    }

    /// Liveness probe; returns `(database length, descriptor dim)`.
    pub fn ping(&mut self) -> ClientResult<(u64, u32)> {
        self.send(&Request::Ping)?;
        self.flush()?;
        match self.recv()? {
            Response::Pong { db_len, dim } => Ok((db_len, dim)),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Server counter snapshot.
    pub fn stats(&mut self) -> ClientResult<StatsSnapshot> {
        self.send(&Request::Stats)?;
        self.flush()?;
        match self.recv()? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Server-side observability snapshot, rendered as JSON (or
    /// Prometheus text exposition when `prometheus` is set).
    pub fn obs_stats(&mut self, prometheus: bool) -> ClientResult<String> {
        self.send(&Request::ObsStats { prometheus })?;
        self.flush()?;
        match self.recv()? {
            Response::ObsText(text) => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "expected obs text, got {other:?}"
            ))),
        }
    }

    /// The server's sampled query traces, rendered as JSON.
    pub fn explain(&mut self) -> ClientResult<String> {
        self.send(&Request::Explain)?;
        self.flush()?;
        match self.recv()? {
            Response::ObsText(text) => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "expected obs text, got {other:?}"
            ))),
        }
    }

    /// Insert one descriptor into a live store; returns the assigned
    /// global id and the store epoch after the insert. Servers fronting
    /// a static database answer with a rejection.
    pub fn insert(
        &mut self,
        name: &str,
        label: Option<u32>,
        descriptor: &[f32],
    ) -> ClientResult<(u64, u64)> {
        self.send(&Request::Insert {
            name: name.to_string(),
            label,
            descriptor: descriptor.to_vec(),
        })?;
        self.flush()?;
        match self.recv()? {
            Response::InsertAck { id, epoch } => Ok((id, epoch)),
            Response::Error(m) => Err(ClientError::Rejected(Rejection::Error(m))),
            other => Err(ClientError::Protocol(format!(
                "expected insert ack, got {other:?}"
            ))),
        }
    }

    /// Tombstone the row with global id `id`; returns the store epoch
    /// after the delete.
    pub fn delete(&mut self, id: u64) -> ClientResult<u64> {
        self.send(&Request::Delete { id })?;
        self.flush()?;
        match self.recv()? {
            Response::DeleteAck { epoch } => Ok(epoch),
            Response::Error(m) => Err(ClientError::Rejected(Rejection::Error(m))),
            other => Err(ClientError::Protocol(format!(
                "expected delete ack, got {other:?}"
            ))),
        }
    }

    /// Fold the store's memtable and tombstones into fresh immutable
    /// segments; returns `(epoch, segments, rows)` after compaction.
    pub fn compact(&mut self) -> ClientResult<(u64, u32, u64)> {
        self.send(&Request::Compact)?;
        self.flush()?;
        match self.recv()? {
            Response::CompactAck {
                epoch,
                segments,
                rows,
            } => Ok((epoch, segments, rows)),
            Response::Error(m) => Err(ClientError::Rejected(Rejection::Error(m))),
            other => Err(ClientError::Protocol(format!(
                "expected compact ack, got {other:?}"
            ))),
        }
    }

    /// Fetch the stored descriptor of row `id`, bit-for-bit as the server
    /// holds it (the lookup half of a router-side knn-by-id).
    pub fn get_descriptor(&mut self, id: u64) -> ClientResult<Vec<f32>> {
        self.send(&Request::GetDescriptor { id })?;
        self.flush()?;
        match self.recv()? {
            Response::Descriptor { descriptor } => Ok(descriptor),
            Response::Error(m) => Err(ClientError::Rejected(Rejection::Error(m))),
            other => Err(ClientError::Protocol(format!(
                "expected descriptor, got {other:?}"
            ))),
        }
    }

    /// Ask the server to drain and stop; returns once acknowledged.
    ///
    /// Must not be called with pipelined requests still unread: replies
    /// are in request order, so drain every outstanding
    /// [`Client::recv_hits`] first (or use the pipelined
    /// [`Client::send_shutdown`] / [`Client::recv_shutdown_ack`] pair).
    pub fn shutdown(&mut self) -> ClientResult<()> {
        self.send_shutdown()?;
        self.flush()?;
        self.recv_shutdown_ack()
    }

    /// Pipelined send half of [`Client::shutdown`]: buffers the shutdown
    /// op behind any outstanding requests without reading a reply.
    pub fn send_shutdown(&mut self) -> ClientResult<()> {
        self.send(&Request::Shutdown)?;
        Ok(())
    }

    /// Pipelined receive half of [`Client::shutdown`]: expects the next
    /// in-order reply to be the shutdown acknowledgement.
    pub fn recv_shutdown_ack(&mut self) -> ClientResult<()> {
        match self.recv()? {
            Response::ShutdownAck => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected shutdown ack, got {other:?}"
            ))),
        }
    }
}
