//! Server-side counters: admission outcomes, micro-batch shape, and
//! enqueue-to-reply latency tails.
//!
//! Cheap monotonically-increasing counters are atomics updated lock-free
//! on the request path; the batch-size histogram, latency samples, and
//! aggregated engine [`BatchStats`] live behind one mutex taken once per
//! *batch* (not per request), so metric upkeep amortizes exactly like the
//! work it measures.

use crate::protocol::StatsSnapshot;
use cbir_index::{percentile, BatchStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Inclusive upper bounds of the batch-size histogram buckets.
pub const BATCH_HIST_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, u64::MAX];

/// Cap on retained latency samples; beyond it the reservoir stops growing
/// (the tail summary then reflects the first `LATENCY_SAMPLE_CAP`
/// executed requests, which a long-running server reports explicitly via
/// the `requests` counter).
const LATENCY_SAMPLE_CAP: usize = 1 << 20;

#[derive(Default)]
struct Sampled {
    batch_hist: [u64; BATCH_HIST_BOUNDS.len()],
    latency_us: Vec<u64>,
    search: BatchStats,
}

/// Shared counter block; one per server.
#[derive(Default)]
pub struct Metrics {
    requests: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    rejected_shutdown: AtomicU64,
    expired: AtomicU64,
    executed: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    io_timeouts: AtomicU64,
    panics_isolated: AtomicU64,
    epoll_wakeups: AtomicU64,
    max_pipeline_depth: AtomicU64,
    sampled: Mutex<Sampled>,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// A query request was decoded (before admission).
    pub fn on_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered the bounded queue.
    pub fn on_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was shed because the queue was full.
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was refused because the server is shutting down.
    pub fn on_rejected_shutdown(&self) {
        self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was answered with a per-request error.
    pub fn on_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was reaped after a read/write timeout (idle peer or
    /// stuck transfer).
    pub fn on_io_timeout(&self) {
        self.io_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// A panic during batch execution was caught and converted into
    /// error replies for the affected group.
    pub fn on_panic_isolated(&self) {
        self.panics_isolated.fetch_add(1, Ordering::Relaxed);
    }

    /// The event loop returned from one `epoll_wait` (zero on the
    /// blocking path).
    pub fn on_epoll_wakeup(&self) {
        self.epoll_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was observed with `depth` requests concurrently in
    /// flight; the snapshot keeps the high-water mark.
    pub fn on_pipeline_depth(&self, depth: u64) {
        self.max_pipeline_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one dispatched micro-batch: its size, how many of its
    /// members had already expired, each executed member's
    /// enqueue-to-reply latency, and the engine's per-batch search stats.
    pub fn on_batch(&self, size: usize, expired: usize, latencies_us: &[u64], search: &BatchStats) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.expired.fetch_add(expired as u64, Ordering::Relaxed);
        self.executed
            .fetch_add(latencies_us.len() as u64, Ordering::Relaxed);
        let bucket = BATCH_HIST_BOUNDS
            .iter()
            .position(|&b| size as u64 <= b)
            .expect("last bound is u64::MAX");
        let mut s = self.sampled.lock().expect("metrics lock");
        s.batch_hist[bucket] += 1;
        let room = LATENCY_SAMPLE_CAP.saturating_sub(s.latency_us.len());
        s.latency_us
            .extend_from_slice(&latencies_us[..latencies_us.len().min(room)]);
        s.search.merge(search);
    }

    /// Snapshot every counter; `queue_depth` is supplied by the caller
    /// (the queue lives in the scheduler, not here).
    pub fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        let s = self.sampled.lock().expect("metrics lock");
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            queue_depth: queue_depth as u64,
            latency_p50_us: percentile(&s.latency_us, 50),
            latency_p95_us: percentile(&s.latency_us, 95),
            distance_computations: s.search.total().distance_computations,
            io_timeouts: self.io_timeouts.load(Ordering::Relaxed),
            panics_isolated: self.panics_isolated.load(Ordering::Relaxed),
            epoll_wakeups: self.epoll_wakeups.load(Ordering::Relaxed),
            max_pipeline_depth: self.max_pipeline_depth.load(Ordering::Relaxed),
            batch_hist: BATCH_HIST_BOUNDS
                .iter()
                .zip(s.batch_hist.iter())
                .map(|(&b, &c)| (b, c))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbir_index::SearchStats;

    #[test]
    fn batch_recording_and_snapshot() {
        let m = Metrics::new();
        for _ in 0..10 {
            m.on_request();
        }
        for _ in 0..8 {
            m.on_admitted();
        }
        m.on_shed();
        m.on_rejected_shutdown();
        m.on_io_timeout();
        m.on_panic_isolated();
        m.on_epoll_wakeup();
        m.on_epoll_wakeup();
        m.on_pipeline_depth(4);
        m.on_pipeline_depth(2);

        let mut search = BatchStats::new();
        search.record(&SearchStats {
            distance_computations: 40,
            nodes_visited: 4,
            ..SearchStats::default()
        });
        m.on_batch(5, 1, &[100, 200, 300, 400], &search);
        m.on_batch(1, 0, &[50], &BatchStats::new());

        let snap = m.snapshot(3);
        assert_eq!(snap.requests, 10);
        assert_eq!(snap.admitted, 8);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.rejected_shutdown, 1);
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.executed, 5);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.distance_computations, 40);
        assert_eq!(snap.io_timeouts, 1);
        assert_eq!(snap.panics_isolated, 1);
        assert_eq!(snap.epoll_wakeups, 2);
        assert_eq!(snap.max_pipeline_depth, 4, "high-water mark, not last");
        assert_eq!(snap.latency_p50_us, 200);
        assert_eq!(snap.latency_p95_us, 400);
        // Size 5 lands in the `<= 8` bucket, size 1 in `<= 1`.
        let hist: std::collections::BTreeMap<u64, u64> = snap.batch_hist.into_iter().collect();
        assert_eq!(hist[&1], 1);
        assert_eq!(hist[&8], 1);
        assert_eq!(hist.values().sum::<u64>(), 2);
    }
}
