//! # `cbir-server` — the network query-serving layer
//!
//! A long-running TCP server that keeps a built [`cbir_core::QueryEngine`]
//! hot and answers similarity queries over the `CBIRRPC1` length-prefixed
//! binary protocol, plus the matching blocking [`Client`].
//!
//! The serving model is **dynamic micro-batching**: concurrent requests
//! land in a bounded admission queue; a dispatcher claims up to
//! `max_batch` of them (waiting at most `max_delay` for stragglers) and
//! executes the whole batch through the engine's amortized
//! `knn_batch`/`range_batch` path. Under load, per-request dispatch
//! overhead — wakeups, scratch setup, allocator traffic — is paid once
//! per batch instead of once per query; responses stay **bit-identical**
//! to direct engine calls because the batched path itself is
//! bit-identical to the single-query path (the PR 1 contract).
//!
//! Overload is handled by **admission control**, not queueing: when the
//! bounded queue is full, requests are shed immediately with an explicit
//! overloaded reply, and per-request deadlines expire queued work that
//! can no longer be answered in time. Shutdown is graceful — admitted
//! work is drained and answered before the server stops.
//!
//! ```no_run
//! use cbir_core::{ImageDatabase, IndexKind, QueryEngine};
//! use cbir_distance::Measure;
//! use cbir_features::Pipeline;
//! use cbir_server::{Client, SchedulerConfig, Server};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = ImageDatabase::new(Pipeline::color_histogram_default());
//! // ... insert images ...
//! let engine = QueryEngine::build(db, IndexKind::VpTree, Measure::L1)?;
//! let handle = Server::spawn(engine, "127.0.0.1:0", SchedulerConfig::default())?;
//!
//! let mut client = Client::connect(handle.local_addr())?;
//! let (db_len, dim) = client.ping()?;
//! let hits = client.knn(&vec![0.0; dim as usize], 10, 0, 1.0)?;
//! client.shutdown()?;
//! handle.join();
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

pub mod chaosnet;
pub mod client;
pub mod conn;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub mod event_loop;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod retry;
pub mod scheduler;
pub mod server;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys;

pub use chaosnet::{ChaosHandle, ChaosProxy, ChaosStats, WireMode};
pub use client::{Client, ClientError, ClientResult, HitsReply, Rejection};
pub use conn::{Completions, Connection, ReplyCell};
pub use metrics::Metrics;
pub use pool::ClientPool;
pub use protocol::{FrameDecoder, Hit, Request, Response, StatsSnapshot, WireError};
pub use retry::{RetryPolicy, RetryStats, RetryingClient};
pub use scheduler::{Pending, QueryWork, ReplySink, Scheduler, SchedulerConfig};
pub use server::{EventLoopConfig, Server, ServerHandle};
