//! Wire-level fault injection: an in-process TCP proxy that sits
//! between a client and a `CBIRRPC1` peer and breaks the byte stream on
//! purpose.
//!
//! `core::faults` injects failures at the file/stream *API* boundary
//! inside one process. This module extends the same idea to the wire:
//! a [`ChaosProxy`] listens on its own port, forwards every accepted
//! connection to a fixed upstream address, and applies a per-connection
//! [`WireMode`] — added latency, bandwidth throttling, immediate
//! connection drops, torn mid-frame writes, single-bit corruption, or a
//! black-hole that accepts and then never answers.
//!
//! Determinism is the point: the modes that make per-connection random
//! choices ([`WireMode::TornReply`], [`WireMode::FlipBit`]) derive them
//! from `(seed, connection index)` with a fixed mixer, so a chaos sweep
//! replays byte-for-byte — the wire analog of the seeded
//! `cbir_core::faults::FaultPolicy` scripts used for storage faults.
//! Connections are indexed in accept order starting at 0.
//!
//! The proxy is zero-dependency and runs entirely in-process, so tests
//! and benchmarks can put one in front of any replica without external
//! tooling. [`ChaosHandle::set_mode`] switches the fault live (severing
//! existing connections so the new behavior applies immediately), which
//! is how a "flapping replica" is scripted: `Drop` for a while, then
//! back to `Pass`.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The fault a connection through the proxy experiences. Modes carrying
/// a `seed` make their per-connection choices deterministically from
/// `(seed, connection index)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMode {
    /// Forward bytes untouched (the healthy baseline).
    Pass,
    /// Sleep this long before forwarding each upstream-to-client chunk:
    /// a slow replica whose replies are intact but late.
    Delay(Duration),
    /// Cap forwarded bandwidth in both directions.
    Throttle {
        /// Maximum sustained bytes per second per direction.
        bytes_per_sec: u64,
    },
    /// Accept, then close immediately: the replica's process is gone
    /// but the listener backlog still answers the TCP handshake.
    Drop,
    /// Accept and read forever without ever answering: the pathological
    /// peer that only a client-side timeout can escape.
    BlackHole,
    /// Forward only a seeded per-connection prefix of the
    /// upstream-to-client bytes, then sever the connection — a reply
    /// torn mid-frame.
    TornReply {
        /// Sweep seed; same seed and accept order replay the same tears.
        seed: u64,
        /// Tear after `1 + mix(seed, conn) % max_prefix` reply bytes.
        max_prefix: u64,
    },
    /// Flip one bit at a seeded per-connection offset in the
    /// upstream-to-client byte stream: silent corruption in flight.
    FlipBit {
        /// Sweep seed; same seed and accept order flip the same bits.
        seed: u64,
        /// The flipped byte offset is `mix(seed, conn) % window`.
        window: u64,
    },
}

/// Counters the proxy keeps about the faults it actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections closed immediately by [`WireMode::Drop`].
    pub dropped: u64,
    /// Connections held open unanswered by [`WireMode::BlackHole`].
    pub black_holed: u64,
    /// Replies torn mid-stream by [`WireMode::TornReply`].
    pub torn: u64,
    /// Bits flipped by [`WireMode::FlipBit`].
    pub bits_flipped: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    dropped: AtomicU64,
    black_holed: AtomicU64,
    torn: AtomicU64,
    bits_flipped: AtomicU64,
}

struct Inner {
    upstream: String,
    mode: Mutex<WireMode>,
    stopping: AtomicBool,
    counters: Counters,
    /// Clones of every live proxied stream (client and upstream sides),
    /// severed on mode changes and at shutdown so blocked pumps wake up.
    conns: Mutex<Vec<TcpStream>>,
}

impl Inner {
    fn sever(&self) {
        let mut conns = self.conns.lock().expect("chaos conn registry");
        for s in conns.iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
        conns.clear();
    }

    fn register(&self, s: &TcpStream) {
        if let Ok(clone) = s.try_clone() {
            self.conns.lock().expect("chaos conn registry").push(clone);
        }
    }
}

/// SplitMix64 over `(seed, connection index)`: the deterministic source
/// for every per-connection choice a seeded [`WireMode`] makes.
fn mix(seed: u64, conn: u64) -> u64 {
    let mut x = seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// The chaos proxy entry point.
pub struct ChaosProxy;

/// A running [`ChaosProxy`]. Dropping the handle without
/// [`ChaosHandle::shutdown`] detaches the proxy threads.
pub struct ChaosHandle {
    local_addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: JoinHandle<()>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Listen on `addr` (use port 0 for an ephemeral port) and forward
    /// every accepted connection to `upstream` under `mode`.
    pub fn spawn(
        upstream: impl Into<String>,
        mode: WireMode,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ChaosHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            upstream: upstream.into(),
            mode: Mutex::new(mode),
            stopping: AtomicBool::new(false),
            counters: Counters::default(),
            conns: Mutex::new(Vec::new()),
        });
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let inner = Arc::clone(&inner);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("cbir-chaos-accept".into())
                .spawn(move || {
                    let mut conn_index = 0u64;
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if inner.stopping.load(Ordering::SeqCst) {
                                    break;
                                }
                                let index = conn_index;
                                conn_index += 1;
                                inner.counters.connections.fetch_add(1, Ordering::Relaxed);
                                let inner = Arc::clone(&inner);
                                let spawned = std::thread::Builder::new()
                                    .name("cbir-chaos-conn".into())
                                    .spawn(move || proxy_connection(stream, index, inner));
                                if let Ok(h) = spawned {
                                    conn_threads.lock().expect("chaos threads").push(h);
                                }
                            }
                            Err(_) => {
                                if inner.stopping.load(Ordering::SeqCst) {
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                    }
                })?
        };
        Ok(ChaosHandle {
            local_addr,
            inner,
            acceptor,
            conn_threads,
        })
    }
}

impl ChaosHandle {
    /// The address the proxy is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// What the proxy has injected so far.
    pub fn stats(&self) -> ChaosStats {
        let c = &self.inner.counters;
        ChaosStats {
            connections: c.connections.load(Ordering::Relaxed),
            dropped: c.dropped.load(Ordering::Relaxed),
            black_holed: c.black_holed.load(Ordering::Relaxed),
            torn: c.torn.load(Ordering::Relaxed),
            bits_flipped: c.bits_flipped.load(Ordering::Relaxed),
        }
    }

    /// Switch the fault mode live. Existing proxied connections are
    /// severed so the new behavior takes effect immediately — exactly
    /// what a scripted replica flap (`Drop`, later back to `Pass`)
    /// needs; connection indices keep counting up across the switch.
    pub fn set_mode(&self, mode: WireMode) {
        *self.inner.mode.lock().expect("chaos mode") = mode;
        self.inner.sever();
    }

    /// Stop accepting, sever every proxied connection, and join the
    /// proxy threads. The upstream peer is untouched.
    pub fn shutdown(self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        self.inner.sever();
        let _ = self.acceptor.join();
        let handles = std::mem::take(&mut *self.conn_threads.lock().expect("chaos threads"));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Handle one accepted client connection under the mode snapshotted at
/// accept time.
fn proxy_connection(client: TcpStream, index: u64, inner: Arc<Inner>) {
    let mode = inner.mode.lock().expect("chaos mode").clone();
    match mode {
        WireMode::Drop => {
            inner.counters.dropped.fetch_add(1, Ordering::Relaxed);
            // Falling out of scope closes the socket: accept-then-RST
            // from the client's point of view.
        }
        WireMode::BlackHole => {
            inner.counters.black_holed.fetch_add(1, Ordering::Relaxed);
            inner.register(&client);
            // Read and discard so the client's writes succeed; never
            // answer. Only the client timing out (or a sever) ends this.
            let mut client = client;
            let mut buf = [0u8; 4096];
            loop {
                match client.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        }
        mode => {
            let upstream = match TcpStream::connect(inner.upstream.as_str()) {
                Ok(s) => s,
                Err(_) => return, // closing the client socket says it all
            };
            let _ = upstream.set_nodelay(true);
            let _ = client.set_nodelay(true);
            inner.register(&client);
            inner.register(&upstream);
            let (c2u_client, c2u_upstream) = match (client.try_clone(), upstream.try_clone()) {
                (Ok(c), Ok(u)) => (c, u),
                _ => return,
            };
            // Client→upstream: requests are only throttled, never
            // corrupted — every fault this proxy studies is about what
            // the *replica's answer* looks like on a bad wire.
            let throttle = match mode {
                WireMode::Throttle { bytes_per_sec } => Some(bytes_per_sec),
                _ => None,
            };
            let request_pump = std::thread::Builder::new()
                .name("cbir-chaos-pump-req".into())
                .spawn(move || pump_plain(c2u_client, c2u_upstream, throttle));
            pump_reply(upstream, client, &mode, index, &inner);
            if let Ok(h) = request_pump {
                let _ = h.join();
            }
        }
    }
}

/// Throttle helper: sleep long enough that `n` bytes took at least
/// `n / bytes_per_sec` seconds.
fn throttle_sleep(n: usize, bytes_per_sec: u64) {
    if bytes_per_sec == 0 {
        return;
    }
    let nanos = (n as u64).saturating_mul(1_000_000_000) / bytes_per_sec;
    std::thread::sleep(Duration::from_nanos(nanos));
}

/// Forward bytes verbatim (optionally throttled) until EOF or error,
/// then propagate the half-close.
fn pump_plain(mut from: TcpStream, mut to: TcpStream, throttle: Option<u64>) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if let Some(bps) = throttle {
            throttle_sleep(n, bps);
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}

/// Forward the upstream→client direction with the connection's fault
/// applied.
fn pump_reply(mut from: TcpStream, mut to: TcpStream, mode: &WireMode, index: u64, inner: &Inner) {
    let mut buf = [0u8; 16 * 1024];
    // TornReply: bytes still allowed through before the tear.
    let mut tear_budget: Option<u64> = match mode {
        WireMode::TornReply { seed, max_prefix } => {
            Some(1 + mix(*seed, index) % (*max_prefix).max(1))
        }
        _ => None,
    };
    // FlipBit: (absolute byte offset, bit) still ahead of the cursor.
    let mut flip: Option<(u64, u32)> = match mode {
        WireMode::FlipBit { seed, window } => {
            let m = mix(*seed, index);
            Some((m % (*window).max(1), (m >> 32) as u32 % 8))
        }
        _ => None,
    };
    let mut offset = 0u64;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        match mode {
            WireMode::Delay(d) => std::thread::sleep(*d),
            WireMode::Throttle { bytes_per_sec } => throttle_sleep(n, *bytes_per_sec),
            _ => {}
        }
        if let Some((at, bit)) = flip {
            if at >= offset && at < offset + n as u64 {
                chunk[(at - offset) as usize] ^= 1u8 << bit;
                inner.counters.bits_flipped.fetch_add(1, Ordering::Relaxed);
                flip = None;
            }
        }
        if let Some(budget) = tear_budget.as_mut() {
            if (n as u64) >= *budget {
                // Forward the allowed prefix, then tear the connection
                // mid-frame in both directions.
                let keep = *budget as usize;
                let _ = to.write_all(&chunk[..keep]);
                let _ = to.flush();
                inner.counters.torn.fetch_add(1, Ordering::Relaxed);
                let _ = to.shutdown(Shutdown::Both);
                let _ = from.shutdown(Shutdown::Both);
                return;
            }
            *budget -= n as u64;
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        if to.flush().is_err() {
            break;
        }
        offset += n as u64;
    }
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An upstream that echoes everything it reads, one connection at a
    /// time per thread.
    fn spawn_echo() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 4096];
                    loop {
                        match s.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if s.write_all(&buf[..n]).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, h)
    }

    fn roundtrip(addr: SocketAddr, payload: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        s.write_all(payload)?;
        s.shutdown(Shutdown::Write)?;
        let mut out = Vec::new();
        s.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn pass_mode_forwards_bytes_verbatim() {
        let (up, _h) = spawn_echo();
        let proxy = ChaosProxy::spawn(up.to_string(), WireMode::Pass, "127.0.0.1:0").unwrap();
        let msg = b"hello through the chaos proxy".to_vec();
        assert_eq!(roundtrip(proxy.local_addr(), &msg).unwrap(), msg);
        assert_eq!(proxy.stats().connections, 1);
        proxy.shutdown();
    }

    #[test]
    fn drop_mode_closes_immediately() {
        let (up, _h) = spawn_echo();
        let proxy = ChaosProxy::spawn(up.to_string(), WireMode::Drop, "127.0.0.1:0").unwrap();
        let got = roundtrip(proxy.local_addr(), b"anyone there?");
        // Either a clean EOF (empty reply) or a reset: never an answer.
        assert!(got.map(|v| v.is_empty()).unwrap_or(true));
        assert_eq!(proxy.stats().dropped, 1);
        proxy.shutdown();
    }

    #[test]
    fn black_hole_accepts_and_never_answers() {
        let (up, _h) = spawn_echo();
        let proxy = ChaosProxy::spawn(up.to_string(), WireMode::BlackHole, "127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(proxy.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        s.write_all(b"ping?").unwrap();
        let mut buf = [0u8; 16];
        let err = s.read(&mut buf).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "black hole must time the reader out, got {err}"
        );
        assert_eq!(proxy.stats().black_holed, 1);
        proxy.shutdown();
    }

    #[test]
    fn torn_reply_truncates_deterministically() {
        let payload = vec![0xABu8; 4096];
        let run = || {
            let (up, _h) = spawn_echo();
            let proxy = ChaosProxy::spawn(
                up.to_string(),
                WireMode::TornReply {
                    seed: 0xF16,
                    max_prefix: 512,
                },
                "127.0.0.1:0",
            )
            .unwrap();
            let mut lens = Vec::new();
            for _ in 0..4 {
                let got = roundtrip(proxy.local_addr(), &payload).unwrap_or_default();
                assert!(got.len() < payload.len(), "reply must be torn");
                assert!(got.iter().all(|&b| b == 0xAB), "prefix stays intact");
                lens.push(got.len());
            }
            assert!(proxy.stats().torn >= 1);
            proxy.shutdown();
            lens
        };
        // Same seed, same accept order → byte-identical tear points.
        assert_eq!(run(), run());
    }

    #[test]
    fn flip_bit_corrupts_exactly_one_bit() {
        let (up, _h) = spawn_echo();
        let proxy = ChaosProxy::spawn(
            up.to_string(),
            WireMode::FlipBit {
                seed: 7,
                window: 64,
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let payload = vec![0u8; 64];
        let got = roundtrip(proxy.local_addr(), &payload).unwrap();
        assert_eq!(got.len(), payload.len());
        let flipped: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");
        assert_eq!(proxy.stats().bits_flipped, 1);
        proxy.shutdown();
    }

    #[test]
    fn delay_mode_adds_latency() {
        let (up, _h) = spawn_echo();
        let proxy = ChaosProxy::spawn(
            up.to_string(),
            WireMode::Delay(Duration::from_millis(40)),
            "127.0.0.1:0",
        )
        .unwrap();
        let started = std::time::Instant::now();
        let got = roundtrip(proxy.local_addr(), b"slow down").unwrap();
        assert_eq!(got, b"slow down");
        assert!(
            started.elapsed() >= Duration::from_millis(40),
            "reply must be delayed"
        );
        proxy.shutdown();
    }

    #[test]
    fn set_mode_severs_existing_connections() {
        let (up, _h) = spawn_echo();
        let proxy = ChaosProxy::spawn(up.to_string(), WireMode::Pass, "127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(proxy.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"warm").unwrap();
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"warm");

        proxy.set_mode(WireMode::Drop);
        // The established connection dies...
        let mut rest = Vec::new();
        let dead = match s.read_to_end(&mut rest) {
            Ok(_) => rest.is_empty(),
            Err(_) => true,
        };
        assert!(dead, "existing connection must be severed");
        // ...and new ones are dropped.
        let got = roundtrip(proxy.local_addr(), b"hello?");
        assert!(got.map(|v| v.is_empty()).unwrap_or(true));

        proxy.set_mode(WireMode::Pass);
        assert_eq!(
            roundtrip(proxy.local_addr(), b"back").unwrap(),
            b"back".to_vec()
        );
        proxy.shutdown();
    }
}
