//! Client-side fault handling: transparent reconnect and bounded
//! exponential backoff with jitter for transient failures.
//!
//! [`RetryingClient`] wraps the blocking [`Client`] with a retry loop.
//! Only errors classified transient by [`ClientError::is_transient`]
//! (lost connections, timeouts, refused connects, overload shedding)
//! are retried; protocol violations and explicit server errors pass
//! straight through. Between attempts the client sleeps an
//! exponentially growing, jittered backoff bounded by
//! [`RetryPolicy::max_backoff`], and the whole loop honors the caller's
//! request deadline: a retry is never attempted if its backoff would
//! overrun the remaining budget, and each resent request carries only
//! the budget that remains.
//!
//! Retries are counted client-side (in [`RetryStats`]) rather than on
//! the server's wire counters — a resent request is indistinguishable
//! from a fresh one at the server, so only the client can know.

use crate::client::{Client, ClientError, ClientResult};
use crate::protocol::{Hit, StatsSnapshot};
use std::time::{Duration, Instant};

/// Bounds for the retry loop.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (so `max_retries = 3` means up
    /// to 4 attempts).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter (tests fix it; production can
    /// use any value, e.g. a connection counter).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The default bounds with a caller-chosen jitter seed. Fault sweeps
    /// construct every client through this so two runs of the same sweep
    /// replay the exact same backoff schedule — the retry-timing analog
    /// of `core::faults`' seeded fault scripts.
    pub fn seeded(seed: u64) -> RetryPolicy {
        RetryPolicy {
            jitter_seed: seed,
            ..RetryPolicy::default()
        }
    }
}

/// What the retry loop did, observable for tests and operators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Requests resent after a transient failure.
    pub retries: u64,
    /// Fresh connections established after the first.
    pub reconnects: u64,
}

/// A [`Client`] with transparent reconnect + backoff on transient
/// failures.
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
    client: Option<Client>,
    stats: RetryStats,
    rng: u64,
}

impl std::fmt::Debug for RetryingClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryingClient")
            .field("addr", &self.addr)
            .field("policy", &self.policy)
            .field("connected", &self.client.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl RetryingClient {
    /// Connect to `addr` (e.g. `"127.0.0.1:7878"`). The initial connect
    /// itself is retried under the policy.
    pub fn connect(addr: impl Into<String>, policy: RetryPolicy) -> ClientResult<RetryingClient> {
        let rng = policy.jitter_seed | 1;
        let mut c = RetryingClient {
            addr: addr.into(),
            policy,
            client: None,
            stats: RetryStats::default(),
            rng,
        };
        c.run(0, |client, _| client.ping().map(|_| ()))?;
        Ok(c)
    }

    /// Like [`RetryingClient::connect`] but without touching the network:
    /// the first operation establishes the connection (under its own
    /// deadline and retry budget). Useful when the server may not be up
    /// yet, or when the caller wants connection errors attributed to the
    /// operation that needed the connection.
    pub fn new_disconnected(addr: impl Into<String>, policy: RetryPolicy) -> RetryingClient {
        let rng = policy.jitter_seed | 1;
        RetryingClient {
            addr: addr.into(),
            policy,
            client: None,
            stats: RetryStats::default(),
            rng,
        }
    }

    /// What the retry loop has done so far.
    pub fn retry_stats(&self) -> RetryStats {
        self.stats
    }

    /// The configured policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// k-NN with reconnect/backoff. `deadline_us` (0 = none) bounds the
    /// *whole* call including retries and backoff sleeps; the server
    /// sees only the remaining budget on each attempt.
    pub fn knn(
        &mut self,
        descriptor: &[f32],
        k: usize,
        deadline_us: u64,
        recall_target: f32,
    ) -> ClientResult<Vec<Hit>> {
        self.run(deadline_us, |client, remaining_us| {
            client.knn(descriptor, k, remaining_us, recall_target)
        })
    }

    /// Range search with reconnect/backoff (deadline semantics as
    /// [`RetryingClient::knn`]).
    pub fn range(
        &mut self,
        descriptor: &[f32],
        radius: f32,
        deadline_us: u64,
    ) -> ClientResult<Vec<Hit>> {
        self.run(deadline_us, |client, remaining_us| {
            client.range(descriptor, radius, remaining_us)
        })
    }

    /// k-NN by database id with reconnect/backoff (deadline semantics
    /// as [`RetryingClient::knn`]).
    pub fn knn_by_id(
        &mut self,
        id: usize,
        k: usize,
        deadline_us: u64,
        recall_target: f32,
    ) -> ClientResult<Vec<Hit>> {
        self.run(deadline_us, |client, remaining_us| {
            client.knn_by_id(id, k, remaining_us, recall_target)
        })
    }

    /// Liveness probe with reconnect/backoff.
    pub fn ping(&mut self) -> ClientResult<(u64, u32)> {
        self.run(0, |client, _| client.ping())
    }

    /// Server counters with reconnect/backoff.
    pub fn stats(&mut self) -> ClientResult<StatsSnapshot> {
        self.run(0, |client, _| client.stats())
    }

    /// Graceful server shutdown; not retried past a lost connection
    /// (a vanished server has already stopped).
    pub fn shutdown(&mut self) -> ClientResult<()> {
        let client = self.ensure_connected()?;
        client.shutdown()
    }

    fn ensure_connected(&mut self) -> ClientResult<&mut Client> {
        if self.client.is_none() {
            let fresh = Client::connect(self.addr.as_str()).map_err(ClientError::from)?;
            if self.stats.reconnects > 0 || self.stats.retries > 0 {
                self.stats.reconnects += 1;
            }
            self.client = Some(fresh);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// The retry loop shared by every operation. `deadline_us == 0`
    /// means no deadline; otherwise it is the total budget from now,
    /// and each attempt is handed what remains of it.
    fn run<T>(
        &mut self,
        deadline_us: u64,
        mut op: impl FnMut(&mut Client, u64) -> ClientResult<T>,
    ) -> ClientResult<T> {
        let start = Instant::now();
        let budget = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
        let mut attempt: u32 = 0;
        // The most recent transient failure. When the budget runs out the
        // caller gets *this* back, not a generic timeout: "every retry hit
        // an overloaded server" and "the replica is gone" demand different
        // operator responses, and only the underlying error tells them
        // apart.
        let mut last_err: Option<ClientError> = None;
        loop {
            let result = match self.ensure_connected() {
                Ok(client) => {
                    let remaining_us = match budget {
                        None => 0,
                        Some(b) => match b.checked_sub(start.elapsed()) {
                            Some(rem) if !rem.is_zero() => rem.as_micros() as u64,
                            // Budget already gone before the attempt.
                            _ => {
                                return Err(last_err.take().unwrap_or_else(|| {
                                    ClientError::Rejected(
                                        crate::client::Rejection::DeadlineExpired(
                                            "deadline exhausted before attempt".into(),
                                        ),
                                    )
                                }));
                            }
                        },
                    };
                    op(client, remaining_us)
                }
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            // A failed conversation leaves the stream in an unknown
            // framing state; reconnect rather than resynchronize.
            if matches!(err, ClientError::ConnectionLost(_) | ClientError::Io(_)) {
                self.client = None;
            }
            if !err.is_transient() || attempt >= self.policy.max_retries {
                return Err(err);
            }
            let backoff = self.backoff_for(attempt);
            if let Some(b) = budget {
                if start.elapsed() + backoff >= b {
                    // Sleeping would overrun the caller's deadline:
                    // surface the transient error instead of lying.
                    return Err(err);
                }
            }
            std::thread::sleep(backoff);
            attempt += 1;
            self.stats.retries += 1;
            last_err = Some(err);
        }
    }

    /// Exponential backoff with deterministic jitter: `base * 2^attempt`
    /// capped at `max_backoff`, scaled by a factor in `[0.5, 1.0)`.
    fn backoff_for(&mut self, attempt: u32) -> Duration {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.policy.max_backoff);
        // xorshift64* step for the jitter scale.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let scale = 0.5
            + 0.5 * ((x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64);
        Duration::from_nanos((exp.as_nanos() as f64 * scale) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_within_bounds() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 42,
        };
        let mut c = RetryingClient {
            addr: "unused".into(),
            policy: policy.clone(),
            client: None,
            stats: RetryStats::default(),
            rng: policy.jitter_seed | 1,
        };
        let mut prev_cap = Duration::ZERO;
        for attempt in 0..10 {
            let cap = policy
                .base_backoff
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(policy.max_backoff);
            for _ in 0..32 {
                let b = c.backoff_for(attempt);
                assert!(b <= cap, "attempt {attempt}: {b:?} above cap {cap:?}");
                assert!(
                    b >= cap / 2,
                    "attempt {attempt}: {b:?} below jitter floor {:?}",
                    cap / 2
                );
            }
            assert!(cap >= prev_cap, "cap must be monotone");
            prev_cap = cap;
        }
        // The cap saturates at max_backoff.
        assert_eq!(prev_cap, policy.max_backoff);
    }

    #[test]
    fn jitter_is_deterministic_for_a_seed() {
        let mk = || RetryingClient {
            addr: "unused".into(),
            policy: RetryPolicy {
                jitter_seed: 7,
                ..RetryPolicy::default()
            },
            client: None,
            stats: RetryStats::default(),
            rng: 7 | 1,
        };
        let (mut a, mut b) = (mk(), mk());
        for attempt in 0..8 {
            assert_eq!(a.backoff_for(attempt), b.backoff_for(attempt));
        }
    }

    #[test]
    fn seeded_policies_replay_identical_backoff_schedules() {
        let mk = |seed| RetryingClient::new_disconnected("unused", RetryPolicy::seeded(seed));
        let (mut a, mut b) = (mk(17), mk(17));
        let schedule_a: Vec<_> = (0..8).map(|i| a.backoff_for(i)).collect();
        let schedule_b: Vec<_> = (0..8).map(|i| b.backoff_for(i)).collect();
        assert_eq!(schedule_a, schedule_b, "same seed, same schedule");
        let mut c = mk(18);
        let schedule_c: Vec<_> = (0..8).map(|i| c.backoff_for(i)).collect();
        assert_ne!(schedule_a, schedule_c, "different seed, different jitter");
    }

    #[test]
    fn deadline_exhaustion_surfaces_last_underlying_error() {
        use crate::client::Rejection;
        // A listener that accepts (so ensure_connected succeeds) without
        // ever speaking — the op below never touches the socket.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accept = std::thread::spawn(move || while listener.accept().is_ok() {});

        let mut c = RetryingClient::new_disconnected(
            addr,
            RetryPolicy {
                max_retries: 100,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
        );
        // Every attempt burns past the remaining budget and fails with a
        // *specific* transient rejection. When the 20ms budget is gone,
        // that rejection — not a synthesized DeadlineExpired — must come
        // back: "all retries were shed by an overloaded server" and
        // "deadline too tight" call for different fixes.
        let err = c
            .run(20_000, |_, remaining_us| -> ClientResult<()> {
                std::thread::sleep(Duration::from_micros(remaining_us) + Duration::from_millis(1));
                Err(ClientError::Rejected(Rejection::Overloaded(
                    "queue full".into(),
                )))
            })
            .expect_err("budget must run out");
        match err {
            ClientError::Rejected(Rejection::Overloaded(m)) => assert_eq!(m, "queue full"),
            other => panic!("expected the last Overloaded rejection, got: {other}"),
        }
        drop(c);
        drop(accept);
    }

    #[test]
    fn refused_connection_exhausts_retries_with_transient_error() {
        // Nothing listens on this port (bound-then-dropped): connect is
        // refused, retried max_retries times, then surfaced.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let started = Instant::now();
        let err = RetryingClient::connect(
            addr,
            RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
                ..RetryPolicy::default()
            },
        )
        .expect_err("connect to a dead port must fail");
        assert!(err.is_transient(), "refused connect is transient: {err}");
        // 2 retries with ~1ms and ~2ms backoff: well under a second.
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
