//! The TCP server: accept loop, per-connection framing, and lifecycle.
//!
//! Two interchangeable connection engines sit behind one
//! [`ServerHandle`]:
//!
//! * **Blocking** ([`Server::spawn`]): each connection gets a reader
//!   thread (decode frames, admit work) and a writer thread (encode
//!   replies in request order).
//! * **Event-driven** ([`Server::spawn_event`]): a single epoll loop
//!   thread owns every socket and reassembles frames incrementally; see
//!   [`crate::event_loop`]. Linux/x86-64 only.
//!
//! Both engines speak the same wire protocol, share the same scheduler,
//! and produce bit-identical query replies — the event engine is a
//! capacity upgrade, not a behavior change.
//!
//! In either engine the connection layer never blocks on execution:
//! every request — including admission rejections and control ops —
//! produces exactly one reply slot pushed onto the connection's in-order
//! reply queue, so a connection may keep many requests in flight
//! (pipelining) and responses still arrive in the order the requests
//! were sent.
//!
//! Failures are isolated per connection: a malformed frame is answered
//! with an error reply and closes only that connection; a per-request
//! validation failure is answered and the connection stays usable.
//!
//! Graceful shutdown (client `shutdown` op or [`ServerHandle::shutdown`])
//! stops admission and accepting, shuts down the *read* half of every
//! connection, drains everything already admitted through the dispatcher,
//! flushes every queued reply, then joins all threads.

use crate::conn::{control_response, query_work};
use crate::metrics::Metrics;
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, StatsSnapshot,
};
use crate::scheduler::{Pending, QueryWork, ReplySink, Scheduler, SchedulerConfig};
use cbir_core::{QueryEngine, ServedCorpus};
use std::io::{BufReader, BufWriter, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connection registry: read-half handles used to unblock reader threads
/// at shutdown, plus the closing flag that stops new registrations.
/// Entries are keyed by a connection token so a finished connection can
/// drop its clone — otherwise the registry would hold every socket open
/// (and leak one fd per connection) for the server's whole lifetime.
struct ConnRegistry {
    streams: Vec<(u64, TcpStream)>,
    next_token: u64,
    closing: bool,
}

/// Shared shutdown switch: idempotently stops admission, accepting, and
/// reading, leaving write halves open so queued replies still flush.
struct Controller {
    scheduler: Arc<Scheduler>,
    conns: Mutex<ConnRegistry>,
    local_addr: SocketAddr,
    triggered: AtomicBool,
}

impl Controller {
    /// Register a live connection; `None` means the server is closing
    /// and the stream should be dropped instead of served. The returned
    /// token must be passed to [`Controller::deregister`] when the
    /// connection ends.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let mut reg = self.conns.lock().expect("conn registry lock");
        if reg.closing {
            return None;
        }
        let token = reg.next_token;
        reg.next_token += 1;
        if let Ok(clone) = stream.try_clone() {
            reg.streams.push((token, clone));
        }
        Some(token)
    }

    /// Drop the registry's clone of a finished connection so the socket
    /// actually closes when the reader and writer halves are done.
    fn deregister(&self, token: u64) {
        let mut reg = self.conns.lock().expect("conn registry lock");
        reg.streams.retain(|(t, _)| *t != token);
    }

    fn trigger(&self) {
        if self.triggered.swap(true, Ordering::SeqCst) {
            return;
        }
        // Stop admitting; the dispatcher will drain what remains.
        self.scheduler.begin_shutdown();
        {
            let mut reg = self.conns.lock().expect("conn registry lock");
            reg.closing = true;
            for (_, s) in &reg.streams {
                // Read half only: readers see EOF, writers keep flushing.
                let _ = s.shutdown(Shutdown::Read);
            }
        }
        // Unblock the accept loop; the dummy connection is refused by
        // `register` and dropped.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// Tuning knobs for the event-driven engine ([`Server::spawn_event`]).
#[derive(Clone, Debug)]
pub struct EventLoopConfig {
    /// Hard cap on simultaneously open connections; new sockets beyond
    /// the cap are accepted and immediately closed so the kernel backlog
    /// cannot grow unbounded.
    pub max_conns: usize,
    /// Threads servicing mutation ops (`insert`/`delete`/`compact`).
    /// Mutations serialize on the store's writer lock anyway, so one is
    /// usually right; the point is keeping them off the loop thread.
    pub mutation_workers: usize,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            max_conns: 8192,
            mutation_workers: 1,
        }
    }
}

/// Which connection engine is running behind a [`ServerHandle`].
enum Engine {
    /// Thread-per-connection reader/writer pairs.
    Blocking {
        controller: Arc<Controller>,
        acceptor: JoinHandle<()>,
        dispatcher: JoinHandle<()>,
        conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    },
    /// Single epoll loop plus a compute worker pool.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Event {
        control: Arc<crate::event_loop::EventControl>,
        threads: Vec<JoinHandle<()>>,
    },
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] or [`ServerHandle::join`] detaches the
/// worker threads (they keep serving until the process exits).
pub struct ServerHandle {
    local_addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    metrics: Arc<Metrics>,
    engine: Engine,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counter snapshot.
    pub fn metrics(&self) -> StatsSnapshot {
        self.metrics.snapshot(self.scheduler.queue_depth())
    }

    /// Make the next executed batch group panic mid-execution. Test
    /// hook for exercising panic isolation over a real connection.
    #[doc(hidden)]
    pub fn trip_panic_trap(&self) {
        self.scheduler.trip_panic_trap();
    }

    /// Initiate graceful shutdown and wait for it to complete; returns
    /// the final counter snapshot.
    pub fn shutdown(self) -> StatsSnapshot {
        match &self.engine {
            Engine::Blocking { controller, .. } => controller.trigger(),
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Engine::Event { control, .. } => control.trigger(),
        }
        self.join()
    }

    /// Wait for the server to finish (a client `shutdown` op, or a prior
    /// [`ServerHandle::shutdown`] call); returns the final counters.
    pub fn join(self) -> StatsSnapshot {
        let ServerHandle {
            metrics, engine, ..
        } = self;
        match engine {
            Engine::Blocking {
                acceptor,
                dispatcher,
                conn_threads,
                ..
            } => {
                let _ = acceptor.join();
                let _ = dispatcher.join();
                // Connection readers exit on EOF/read-shutdown; each
                // joins its own writer after the reply queue drains.
                let handles = std::mem::take(&mut *conn_threads.lock().expect("conn threads lock"));
                for h in handles {
                    let _ = h.join();
                }
            }
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Engine::Event { threads, .. } => {
                // The loop thread exits once drained; dropping its side
                // of the mutation queue then releases the workers, and
                // `begin_shutdown` releases the dispatcher.
                for t in threads {
                    let _ = t.join();
                }
            }
        }
        metrics.snapshot(0)
    }
}

/// The serving entry point.
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `engine` until shutdown. Mutation ops are refused (the engine is
    /// immutable); serve a live store via [`Server::spawn_corpus`].
    pub fn spawn(
        engine: QueryEngine,
        addr: impl ToSocketAddrs,
        config: SchedulerConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_shared(Arc::new(engine), addr, config)
    }

    /// [`Server::spawn`] over an engine the caller keeps a handle to
    /// (tests compare server responses against direct engine calls).
    pub fn spawn_shared(
        engine: Arc<QueryEngine>,
        addr: impl ToSocketAddrs,
        config: SchedulerConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_corpus(ServedCorpus::Static(engine), addr, config)
    }

    /// Serve a [`ServedCorpus`]: a static engine, or a live store whose
    /// `Insert`/`Delete`/`Compact` ops are answered inline on the
    /// connection thread (queries keep flowing through the scheduler
    /// against pinned snapshots).
    pub fn spawn_corpus(
        corpus: ServedCorpus,
        addr: impl ToSocketAddrs,
        config: SchedulerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let scheduler = Arc::new(Scheduler::new(corpus, config, Arc::clone(&metrics)));
        let controller = Arc::new(Controller {
            scheduler: Arc::clone(&scheduler),
            conns: Mutex::new(ConnRegistry {
                streams: Vec::new(),
                next_token: 0,
                closing: false,
            }),
            local_addr,
            triggered: AtomicBool::new(false),
        });
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let dispatcher = {
            let scheduler = Arc::clone(&scheduler);
            std::thread::Builder::new()
                .name("cbir-dispatch".into())
                .spawn(move || scheduler.run())?
        };

        let acceptor = {
            let controller = Arc::clone(&controller);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("cbir-accept".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // The writer already coalesces replies via
                            // BufWriter + explicit flushes; Nagle on top
                            // of that only delays flushed segments.
                            let _ = stream.set_nodelay(true);
                            let Some(token) = controller.register(&stream) else {
                                break; // shutting down
                            };
                            let controller = Arc::clone(&controller);
                            let spawned = std::thread::Builder::new()
                                .name("cbir-conn".into())
                                .spawn(move || serve_connection(stream, controller, token));
                            if let Ok(h) = spawned {
                                conn_threads.lock().expect("conn threads lock").push(h);
                            }
                        }
                        Err(e) => {
                            if controller.triggered.load(Ordering::SeqCst) {
                                break;
                            }
                            // Transient accept failures (EMFILE/ENFILE
                            // under fd pressure, aborted handshakes)
                            // must not kill the listener: log, pause
                            // briefly so an exhausted-fd condition does
                            // not hot-spin, and keep accepting.
                            eprintln!("cbir-server: accept error (continuing): {e}");
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                })?
        };

        Ok(ServerHandle {
            local_addr,
            scheduler,
            metrics,
            engine: Engine::Blocking {
                controller,
                acceptor,
                dispatcher,
                conn_threads,
            },
        })
    }

    /// [`Server::spawn`], but on the event-driven epoll engine: one loop
    /// thread owns every socket instead of two threads per connection.
    /// Linux/x86-64 only; other targets get `ErrorKind::Unsupported`.
    pub fn spawn_event(
        engine: QueryEngine,
        addr: impl ToSocketAddrs,
        config: SchedulerConfig,
        event_config: EventLoopConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_event_shared(Arc::new(engine), addr, config, event_config)
    }

    /// [`Server::spawn_event`] over an engine the caller keeps a handle
    /// to (tests compare server responses against direct engine calls).
    pub fn spawn_event_shared(
        engine: Arc<QueryEngine>,
        addr: impl ToSocketAddrs,
        config: SchedulerConfig,
        event_config: EventLoopConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_event_corpus(ServedCorpus::Static(engine), addr, config, event_config)
    }

    /// [`Server::spawn_corpus`] on the event-driven epoll engine.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub fn spawn_event_corpus(
        corpus: ServedCorpus,
        addr: impl ToSocketAddrs,
        config: SchedulerConfig,
        event_config: EventLoopConfig,
    ) -> std::io::Result<ServerHandle> {
        let parts = crate::event_loop::spawn(corpus, addr, config, event_config)?;
        Ok(ServerHandle {
            local_addr: parts.local_addr,
            scheduler: parts.scheduler,
            metrics: parts.metrics,
            engine: Engine::Event {
                control: parts.control,
                threads: parts.threads,
            },
        })
    }

    /// Stub on targets without the raw-epoll backend.
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    pub fn spawn_event_corpus(
        corpus: ServedCorpus,
        addr: impl ToSocketAddrs,
        config: SchedulerConfig,
        event_config: EventLoopConfig,
    ) -> std::io::Result<ServerHandle> {
        let _ = (corpus, addr, config, event_config);
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "the event-loop engine requires linux/x86-64; use the blocking engine",
        ))
    }
}

/// Reader half of one connection: decode frames, admit work, and push one
/// in-order reply slot per request. Spawns and finally joins the writer.
fn serve_connection(stream: TcpStream, controller: Arc<Controller>, token: u64) {
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            controller.deregister(token);
            return;
        }
    };
    // Bound both directions: an idle peer is reaped by the read
    // timeout, a peer that stops draining responses by the write
    // timeout. Neither can wedge a connection thread forever.
    let metrics = controller.scheduler.shared_metrics();
    {
        let config = controller.scheduler.config();
        let _ = stream.set_read_timeout(config.idle_timeout);
        let _ = writer_stream.set_write_timeout(config.write_timeout);
    }
    let (slots_tx, slots_rx): (Sender<Receiver<Response>>, _) = channel();
    let writer = {
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("cbir-write".into())
            .spawn(move || write_replies(writer_stream, slots_rx, metrics))
    };

    let scheduler = &controller.scheduler;
    let mut reader = BufReader::new(stream);
    // Every request produces exactly one slot, pushed before the next
    // frame is read, so replies leave in request order.
    let respond_now = |resp: Response| {
        let (tx, rx) = sync_channel(1);
        let _ = tx.send(resp);
        let _ = slots_tx.send(rx);
    };
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => break, // clean EOF (or read-half shutdown)
            Err(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) => {
                // Idle (or stalled) peer: reap the connection silently.
                // No courtesy error frame — an unsolicited reply would
                // desync the client's request/response pairing if a
                // request did arrive later.
                metrics.on_io_timeout();
                break;
            }
            Err(e) => {
                // Corrupt stream: answer if possible, then isolate the
                // failure by closing only this connection.
                respond_now(Response::Error(format!("malformed frame: {e}")));
                break;
            }
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                respond_now(Response::Error(format!("malformed request: {e}")));
                break;
            }
        };
        match request {
            Request::Shutdown => {
                respond_now(Response::ShutdownAck);
                controller.trigger();
                break;
            }
            req => match query_work(req) {
                Ok((work, deadline_us)) => submit_query(scheduler, &slots_tx, work, deadline_us),
                // Control ops and mutations are answered inline on the
                // connection thread: mutations take the store's writer
                // lock and publish a new snapshot, while queries already
                // admitted keep executing against their pinned
                // (pre-mutation) snapshots. Shared with the event
                // engine so both paths reply byte-for-byte alike.
                Err(req) => respond_now(control_response(scheduler, req)),
            },
        }
    }
    // Close the slot queue; the writer flushes what remains and exits.
    drop(slots_tx);
    if let Ok(w) = writer {
        let _ = w.join();
    }
    controller.deregister(token);
}

fn submit_query(
    scheduler: &Scheduler,
    slots_tx: &Sender<Receiver<Response>>,
    work: QueryWork,
    deadline_us: u64,
) {
    let now = Instant::now();
    let (tx, rx) = sync_channel(1);
    let _ = slots_tx.send(rx);
    scheduler.submit(Pending {
        work,
        deadline: (deadline_us > 0).then(|| now + Duration::from_micros(deadline_us)),
        enqueued: now,
        reply: ReplySink::Channel(tx),
    });
}

/// Writer half: emit replies in slot order, flushing whenever the next
/// reply isn't immediately ready (batched syscalls under load, prompt
/// delivery when idle).
///
/// A write failure closes the whole connection: the socket is shut down
/// both ways so the reader (possibly blocked on a quiet peer) wakes up
/// instead of lingering until its own timeout. Timeouts — a peer that
/// stopped draining — are counted in `io_timeouts`.
fn write_replies(stream: TcpStream, slots: Receiver<Receiver<Response>>, metrics: Arc<Metrics>) {
    let mut out = BufWriter::new(stream);
    let mut dirty = false;
    let abort = |out: &BufWriter<TcpStream>, e: &std::io::Error| {
        if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
            metrics.on_io_timeout();
        }
        let _ = out.get_ref().shutdown(Shutdown::Both);
    };
    loop {
        let slot = match slots.try_recv() {
            Ok(s) => s,
            Err(TryRecvError::Empty) => {
                if dirty {
                    if let Err(e) = out.flush() {
                        abort(&out, &e);
                        return;
                    }
                }
                dirty = false;
                match slots.recv() {
                    Ok(s) => s,
                    Err(_) => return,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        let response = match slot.try_recv() {
            Ok(r) => r,
            Err(_) => {
                // About to block on an executing request: flush what is
                // already encoded so finished replies reach the client.
                if dirty {
                    if let Err(e) = out.flush() {
                        abort(&out, &e);
                        return;
                    }
                }
                slot.recv()
                    .unwrap_or_else(|_| Response::Error("internal: reply dropped".into()))
            }
        };
        if let Err(e) = write_frame(&mut out, &encode_response(&response)) {
            abort(&out, &e);
            return;
        }
        dirty = true;
    }
    if let Err(e) = out.flush() {
        abort(&out, &e);
    }
}
