//! The TCP server: accept loop, per-connection framing, and lifecycle.
//!
//! Each connection gets a reader thread (decode frames, admit work) and a
//! writer thread (encode replies in request order). The reader never
//! blocks on execution: every request — including admission rejections
//! and control ops — produces exactly one reply slot pushed onto the
//! connection's in-order reply queue, so a connection may keep many
//! requests in flight (pipelining) and responses still arrive in the
//! order the requests were sent.
//!
//! Failures are isolated per connection: a malformed frame is answered
//! with an error reply and closes only that connection; a per-request
//! validation failure is answered and the connection stays usable.
//!
//! Graceful shutdown (client `shutdown` op or [`ServerHandle::shutdown`])
//! stops admission and accepting, shuts down the *read* half of every
//! connection, drains everything already admitted through the dispatcher,
//! flushes every queued reply, then joins all threads.

use crate::metrics::Metrics;
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, StatsSnapshot,
};
use crate::scheduler::{Pending, QueryWork, Scheduler, SchedulerConfig};
use cbir_core::{ImageMeta, QueryEngine, ServedCorpus};
use std::io::{BufReader, BufWriter, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connection registry: read-half handles used to unblock reader threads
/// at shutdown, plus the closing flag that stops new registrations.
/// Entries are keyed by a connection token so a finished connection can
/// drop its clone — otherwise the registry would hold every socket open
/// (and leak one fd per connection) for the server's whole lifetime.
struct ConnRegistry {
    streams: Vec<(u64, TcpStream)>,
    next_token: u64,
    closing: bool,
}

/// Shared shutdown switch: idempotently stops admission, accepting, and
/// reading, leaving write halves open so queued replies still flush.
struct Controller {
    scheduler: Arc<Scheduler>,
    conns: Mutex<ConnRegistry>,
    local_addr: SocketAddr,
    triggered: AtomicBool,
}

impl Controller {
    /// Register a live connection; `None` means the server is closing
    /// and the stream should be dropped instead of served. The returned
    /// token must be passed to [`Controller::deregister`] when the
    /// connection ends.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let mut reg = self.conns.lock().expect("conn registry lock");
        if reg.closing {
            return None;
        }
        let token = reg.next_token;
        reg.next_token += 1;
        if let Ok(clone) = stream.try_clone() {
            reg.streams.push((token, clone));
        }
        Some(token)
    }

    /// Drop the registry's clone of a finished connection so the socket
    /// actually closes when the reader and writer halves are done.
    fn deregister(&self, token: u64) {
        let mut reg = self.conns.lock().expect("conn registry lock");
        reg.streams.retain(|(t, _)| *t != token);
    }

    fn trigger(&self) {
        if self.triggered.swap(true, Ordering::SeqCst) {
            return;
        }
        // Stop admitting; the dispatcher will drain what remains.
        self.scheduler.begin_shutdown();
        {
            let mut reg = self.conns.lock().expect("conn registry lock");
            reg.closing = true;
            for (_, s) in &reg.streams {
                // Read half only: readers see EOF, writers keep flushing.
                let _ = s.shutdown(Shutdown::Read);
            }
        }
        // Unblock the accept loop; the dummy connection is refused by
        // `register` and dropped.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] or [`ServerHandle::join`] detaches the
/// worker threads (they keep serving until the process exits).
pub struct ServerHandle {
    local_addr: SocketAddr,
    controller: Arc<Controller>,
    metrics: Arc<Metrics>,
    acceptor: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counter snapshot.
    pub fn metrics(&self) -> StatsSnapshot {
        self.metrics
            .snapshot(self.controller.scheduler.queue_depth())
    }

    /// Make the next executed batch group panic mid-execution. Test
    /// hook for exercising panic isolation over a real connection.
    #[doc(hidden)]
    pub fn trip_panic_trap(&self) {
        self.controller.scheduler.trip_panic_trap();
    }

    /// Initiate graceful shutdown and wait for it to complete; returns
    /// the final counter snapshot.
    pub fn shutdown(self) -> StatsSnapshot {
        self.controller.trigger();
        self.join()
    }

    /// Wait for the server to finish (a client `shutdown` op, or a prior
    /// [`ServerHandle::shutdown`] call); returns the final counters.
    pub fn join(self) -> StatsSnapshot {
        let _ = self.acceptor.join();
        let _ = self.dispatcher.join();
        // Connection readers exit on EOF/read-shutdown; each joins its
        // own writer after the reply queue drains.
        let handles = std::mem::take(&mut *self.conn_threads.lock().expect("conn threads lock"));
        for h in handles {
            let _ = h.join();
        }
        self.metrics.snapshot(0)
    }
}

/// The serving entry point.
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `engine` until shutdown. Mutation ops are refused (the engine is
    /// immutable); serve a live store via [`Server::spawn_corpus`].
    pub fn spawn(
        engine: QueryEngine,
        addr: impl ToSocketAddrs,
        config: SchedulerConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_shared(Arc::new(engine), addr, config)
    }

    /// [`Server::spawn`] over an engine the caller keeps a handle to
    /// (tests compare server responses against direct engine calls).
    pub fn spawn_shared(
        engine: Arc<QueryEngine>,
        addr: impl ToSocketAddrs,
        config: SchedulerConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_corpus(ServedCorpus::Static(engine), addr, config)
    }

    /// Serve a [`ServedCorpus`]: a static engine, or a live store whose
    /// `Insert`/`Delete`/`Compact` ops are answered inline on the
    /// connection thread (queries keep flowing through the scheduler
    /// against pinned snapshots).
    pub fn spawn_corpus(
        corpus: ServedCorpus,
        addr: impl ToSocketAddrs,
        config: SchedulerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let scheduler = Arc::new(Scheduler::new(corpus, config, Arc::clone(&metrics)));
        let controller = Arc::new(Controller {
            scheduler: Arc::clone(&scheduler),
            conns: Mutex::new(ConnRegistry {
                streams: Vec::new(),
                next_token: 0,
                closing: false,
            }),
            local_addr,
            triggered: AtomicBool::new(false),
        });
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let dispatcher = {
            let scheduler = Arc::clone(&scheduler);
            std::thread::Builder::new()
                .name("cbir-dispatch".into())
                .spawn(move || scheduler.run())?
        };

        let acceptor = {
            let controller = Arc::clone(&controller);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("cbir-accept".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // The writer already coalesces replies via
                            // BufWriter + explicit flushes; Nagle on top
                            // of that only delays flushed segments.
                            let _ = stream.set_nodelay(true);
                            let Some(token) = controller.register(&stream) else {
                                break; // shutting down
                            };
                            let controller = Arc::clone(&controller);
                            let spawned = std::thread::Builder::new()
                                .name("cbir-conn".into())
                                .spawn(move || serve_connection(stream, controller, token));
                            if let Ok(h) = spawned {
                                conn_threads.lock().expect("conn threads lock").push(h);
                            }
                        }
                        Err(e) => {
                            if controller.triggered.load(Ordering::SeqCst) {
                                break;
                            }
                            // Transient accept failures (EMFILE/ENFILE
                            // under fd pressure, aborted handshakes)
                            // must not kill the listener: log, pause
                            // briefly so an exhausted-fd condition does
                            // not hot-spin, and keep accepting.
                            eprintln!("cbir-server: accept error (continuing): {e}");
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                })?
        };

        Ok(ServerHandle {
            local_addr,
            controller,
            metrics,
            acceptor,
            dispatcher,
            conn_threads,
        })
    }
}

/// Reader half of one connection: decode frames, admit work, and push one
/// in-order reply slot per request. Spawns and finally joins the writer.
fn serve_connection(stream: TcpStream, controller: Arc<Controller>, token: u64) {
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            controller.deregister(token);
            return;
        }
    };
    // Bound both directions: an idle peer is reaped by the read
    // timeout, a peer that stops draining responses by the write
    // timeout. Neither can wedge a connection thread forever.
    let metrics = controller.scheduler.shared_metrics();
    {
        let config = controller.scheduler.config();
        let _ = stream.set_read_timeout(config.idle_timeout);
        let _ = writer_stream.set_write_timeout(config.write_timeout);
    }
    let (slots_tx, slots_rx): (Sender<Receiver<Response>>, _) = channel();
    let writer = {
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("cbir-write".into())
            .spawn(move || write_replies(writer_stream, slots_rx, metrics))
    };

    let scheduler = &controller.scheduler;
    let mut reader = BufReader::new(stream);
    // Every request produces exactly one slot, pushed before the next
    // frame is read, so replies leave in request order.
    let respond_now = |resp: Response| {
        let (tx, rx) = sync_channel(1);
        let _ = tx.send(resp);
        let _ = slots_tx.send(rx);
    };
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => break, // clean EOF (or read-half shutdown)
            Err(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) => {
                // Idle (or stalled) peer: reap the connection silently.
                // No courtesy error frame — an unsolicited reply would
                // desync the client's request/response pairing if a
                // request did arrive later.
                metrics.on_io_timeout();
                break;
            }
            Err(e) => {
                // Corrupt stream: answer if possible, then isolate the
                // failure by closing only this connection.
                respond_now(Response::Error(format!("malformed frame: {e}")));
                break;
            }
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                respond_now(Response::Error(format!("malformed request: {e}")));
                break;
            }
        };
        match request {
            Request::Ping => {
                let view = scheduler.corpus().pin();
                respond_now(Response::Pong {
                    db_len: view.len() as u64,
                    dim: view.dim() as u32,
                });
            }
            Request::Stats => {
                respond_now(Response::Stats(
                    controller
                        .scheduler
                        .metrics()
                        .snapshot(scheduler.queue_depth()),
                ));
            }
            Request::ObsStats { prometheus } => {
                // Refresh the queue-depth gauge so a snapshot taken from an
                // otherwise idle server still reads the live value.
                cbir_obs::set_queue_depth(scheduler.queue_depth() as u64);
                let snap = cbir_obs::snapshot();
                let text = if prometheus {
                    cbir_obs::to_prometheus(&snap)
                } else {
                    cbir_obs::to_json(&snap)
                };
                respond_now(Response::ObsText(text));
            }
            Request::Explain => {
                respond_now(Response::ObsText(cbir_obs::traces_to_json(
                    &cbir_obs::traces(),
                )));
            }
            Request::Shutdown => {
                respond_now(Response::ShutdownAck);
                controller.trigger();
                break;
            }
            Request::Knn {
                k,
                deadline_us,
                recall_target,
                descriptor,
            } => submit_query(
                scheduler,
                &slots_tx,
                QueryWork::Knn {
                    descriptor,
                    k: k as usize,
                    recall_target,
                },
                deadline_us,
            ),
            Request::Range {
                radius,
                deadline_us,
                descriptor,
            } => submit_query(
                scheduler,
                &slots_tx,
                QueryWork::Range { descriptor, radius },
                deadline_us,
            ),
            Request::KnnById {
                k,
                deadline_us,
                recall_target,
                id,
            } => submit_query(
                scheduler,
                &slots_tx,
                QueryWork::KnnById {
                    id: id as usize,
                    k: k as usize,
                    recall_target,
                },
                deadline_us,
            ),
            // Mutations run inline on the connection thread: they take
            // the store's writer lock, publish a new snapshot, and ack.
            // Queries already admitted keep executing against their
            // pinned (pre-mutation) snapshots.
            Request::Insert {
                name,
                label,
                descriptor,
            } => match scheduler.corpus().store() {
                None => respond_now(static_corpus_error()),
                Some(store) => match store.insert(ImageMeta { name, label }, descriptor) {
                    Ok(id) => respond_now(Response::InsertAck {
                        id,
                        epoch: store.snapshot().epoch(),
                    }),
                    Err(e) => {
                        metrics.on_error();
                        respond_now(Response::Error(e.to_string()));
                    }
                },
            },
            Request::Delete { id } => match scheduler.corpus().store() {
                None => respond_now(static_corpus_error()),
                Some(store) => match store.delete(id) {
                    Ok(()) => respond_now(Response::DeleteAck {
                        epoch: store.snapshot().epoch(),
                    }),
                    Err(e) => {
                        metrics.on_error();
                        respond_now(Response::Error(e.to_string()));
                    }
                },
            },
            Request::Compact => match scheduler.corpus().store() {
                None => respond_now(static_corpus_error()),
                Some(store) => match store.compact() {
                    Ok(stats) => respond_now(Response::CompactAck {
                        epoch: stats.epoch,
                        segments: stats.segments as u32,
                        rows: stats.rows,
                    }),
                    Err(e) => {
                        metrics.on_error();
                        respond_now(Response::Error(e.to_string()));
                    }
                },
            },
            // Row fetch runs inline: it is a point read against a pinned
            // view, with none of the batching/admission machinery a
            // search needs.
            Request::GetDescriptor { id } => match scheduler.corpus().pin().descriptor(id) {
                Ok(descriptor) => respond_now(Response::Descriptor { descriptor }),
                Err(e) => {
                    metrics.on_error();
                    respond_now(Response::Error(e.to_string()));
                }
            },
        }
    }
    // Close the slot queue; the writer flushes what remains and exits.
    drop(slots_tx);
    if let Ok(w) = writer {
        let _ = w.join();
    }
    controller.deregister(token);
}

/// The refusal every mutation op gets when the server fronts an
/// immutable offline-built engine instead of a live segment store.
fn static_corpus_error() -> Response {
    Response::Error(
        "server is serving a static database; mutations require serving a segment store \
         (serve --mmap)"
            .into(),
    )
}

fn submit_query(
    scheduler: &Scheduler,
    slots_tx: &Sender<Receiver<Response>>,
    work: QueryWork,
    deadline_us: u64,
) {
    let now = Instant::now();
    let (tx, rx) = sync_channel(1);
    let _ = slots_tx.send(rx);
    scheduler.submit(Pending {
        work,
        deadline: (deadline_us > 0).then(|| now + Duration::from_micros(deadline_us)),
        enqueued: now,
        reply: tx,
    });
}

/// Writer half: emit replies in slot order, flushing whenever the next
/// reply isn't immediately ready (batched syscalls under load, prompt
/// delivery when idle).
///
/// A write failure closes the whole connection: the socket is shut down
/// both ways so the reader (possibly blocked on a quiet peer) wakes up
/// instead of lingering until its own timeout. Timeouts — a peer that
/// stopped draining — are counted in `io_timeouts`.
fn write_replies(stream: TcpStream, slots: Receiver<Receiver<Response>>, metrics: Arc<Metrics>) {
    let mut out = BufWriter::new(stream);
    let mut dirty = false;
    let abort = |out: &BufWriter<TcpStream>, e: &std::io::Error| {
        if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
            metrics.on_io_timeout();
        }
        let _ = out.get_ref().shutdown(Shutdown::Both);
    };
    loop {
        let slot = match slots.try_recv() {
            Ok(s) => s,
            Err(TryRecvError::Empty) => {
                if dirty {
                    if let Err(e) = out.flush() {
                        abort(&out, &e);
                        return;
                    }
                }
                dirty = false;
                match slots.recv() {
                    Ok(s) => s,
                    Err(_) => return,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        let response = match slot.try_recv() {
            Ok(r) => r,
            Err(_) => {
                // About to block on an executing request: flush what is
                // already encoded so finished replies reach the client.
                if dirty {
                    if let Err(e) = out.flush() {
                        abort(&out, &e);
                        return;
                    }
                }
                slot.recv()
                    .unwrap_or_else(|_| Response::Error("internal: reply dropped".into()))
            }
        };
        if let Err(e) = write_frame(&mut out, &encode_response(&response)) {
            abort(&out, &e);
            return;
        }
        dirty = true;
    }
    if let Err(e) = out.flush() {
        abort(&out, &e);
    }
}
