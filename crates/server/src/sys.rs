//! Raw `epoll` bindings for the event loop — zero dependencies, so the
//! three syscalls the loop needs are issued directly via the `syscall`
//! instruction (x86-64 Linux only; the event loop is gated on the same
//! target). Everything else the loop touches (nonblocking sockets, the
//! waker pipe, fd lifetimes) comes from `std`.

#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

use std::io;
use std::os::fd::RawFd;

const SYS_EPOLL_WAIT: i64 = 232;
const SYS_EPOLL_CTL: i64 = 233;
const SYS_EPOLL_CREATE1: i64 = 291;

const EPOLL_CLOEXEC: i64 = 0o2000000;
const EPOLL_CTL_ADD: i64 = 1;
const EPOLL_CTL_DEL: i64 = 2;
const EPOLL_CTL_MOD: i64 = 3;

/// Readable (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`; always reported, never registered).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`; always reported, never registered).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness event, in the kernel's x86-64 ABI layout (packed: the
/// 64-bit data field is *not* 8-byte aligned on this architecture).
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Readiness bits (`EPOLLIN` | …).
    pub events: u32,
    /// The caller's token for the fd, returned verbatim.
    pub data: u64,
}

/// Issue a raw syscall with up to four arguments, mapping the kernel's
/// negative-errno convention onto `io::Error`.
///
/// # Safety
/// The caller must uphold the specific syscall's contract (valid fds,
/// valid pointers with correct lengths).
unsafe fn syscall4(nr: i64, a1: i64, a2: i64, a3: i64, a4: i64) -> io::Result<i64> {
    let ret: i64;
    core::arch::asm!(
        "syscall",
        inlateout("rax") nr => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        // The kernel clobbers rcx (return rip) and r11 (rflags).
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    if ret < 0 {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret)
    }
}

/// An epoll instance; the fd is closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers.
        let fd = unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) }?;
        Ok(Epoll { fd: fd as RawFd })
    }

    fn ctl(&self, op: i64, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; DEL ignores the pointer.
        unsafe {
            syscall4(
                SYS_EPOLL_CTL,
                self.fd as i64,
                op,
                fd as i64,
                &ev as *const EpollEvent as i64,
            )
        }?;
        Ok(())
    }

    /// Register `fd` with interest `events`, tagged `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change a registered fd's interest set.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Remove a registered fd.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block for up to `timeout_ms` (-1 = forever) and fill `events`;
    /// returns how many fired. `EINTR` retries internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer pointer/len pair is valid for the call.
            let r = unsafe {
                syscall4(
                    SYS_EPOLL_WAIT,
                    self.fd as i64,
                    events.as_mut_ptr() as i64,
                    events.len() as i64,
                    timeout_ms as i64,
                )
            };
            match r {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own; close(2) takes no pointers.
        let _ = unsafe {
            syscall4(3 /* SYS_close */, self.fd as i64, 0, 0, 0)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readiness_on_a_pipe() {
        let ep = Epoll::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 7).unwrap();

        // Nothing readable yet: a zero-timeout wait returns no events.
        let mut evs = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        let n = ep.wait(&mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ evs[0].data }, 7);
        assert_ne!({ evs[0].events } & EPOLLIN, 0);

        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 1);

        // Interest can be switched to write-readiness and removed.
        ep.modify(b.as_raw_fd(), EPOLLOUT, 7).unwrap();
        let n = ep.wait(&mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!({ evs[0].events } & EPOLLOUT, 0);
        ep.del(b.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0);
    }
}
