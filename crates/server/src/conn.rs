//! Transport-agnostic connection state for the event-driven server.
//!
//! The epoll loop ([`crate::event_loop`]) and the deterministic test
//! harness both drive the same [`Connection`] state machine: incremental
//! frame reassembly in, an in-order queue of single-use reply cells out,
//! partial writes tracked by a cursor. Nothing here touches a socket —
//! the transport is any `Read`/`Write` pair — which is what lets the
//! harness replay arbitrary byte-boundary splits, partial writes, and
//! completion interleavings without real I/O.
//!
//! ## Reply ordering
//!
//! Every request — including rejections and control ops — claims exactly
//! one [`ReplyCell`] in arrival order *before* the next frame is
//! dispatched. Compute may finish cells in any order (that is the point
//! of pipelining), but [`Connection::pump`] only encodes the head of the
//! queue once it is done, so responses leave in request order: the same
//! contract the blocking path enforces with its slot queue.

use crate::protocol::{
    decode_request, encode_response, write_frame, FrameDecoder, Request, Response,
};
use crate::scheduler::{Pending, QueryWork, ReplySink, Scheduler};
use cbir_core::ImageMeta;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Completion mailbox shared by every connection on one event loop.
///
/// Compute threads (the dispatcher, mutation workers) finish a
/// [`ReplyCell`] and post its connection token here; the loop drains the
/// mailbox on its next wakeup and pumps exactly those connections. The
/// one-byte waker write is collapsed by the `signaled` flag so a burst
/// of completions costs one syscall, not one per reply.
#[derive(Debug, Default)]
pub struct Completions {
    ready: Mutex<Vec<u64>>,
    signaled: AtomicBool,
    waker: Mutex<Option<UnixStream>>,
}

impl Completions {
    /// A mailbox with no waker (the deterministic harness polls).
    pub fn new() -> Completions {
        Completions::default()
    }

    /// Attach the write end of the loop's waker pipe.
    pub fn set_waker(&self, w: UnixStream) {
        *self.waker.lock().expect("waker lock") = Some(w);
    }

    /// Post a completion for connection `token` and wake the loop if it
    /// has not already been signaled since its last drain.
    pub fn notify(&self, token: u64) {
        self.ready.lock().expect("completions lock").push(token);
        if !self.signaled.swap(true, Ordering::AcqRel) {
            if let Some(w) = self.waker.lock().expect("waker lock").as_mut() {
                // A full pipe means a wakeup is already pending: fine.
                let _ = w.write(&[1u8]);
            }
        }
    }

    /// Take every posted token. Clearing `signaled` *before* taking the
    /// vector means a completion racing this drain either lands in the
    /// taken batch or re-signals — never gets lost.
    pub fn drain(&self) -> Vec<u64> {
        self.signaled.store(false, Ordering::Release);
        std::mem::take(&mut *self.ready.lock().expect("completions lock"))
    }
}

/// A single-use reply slot owned by one connection, completed by one
/// compute thread. The event-loop analogue of the blocking path's
/// rendezvous channel: filling it never blocks and never fails.
#[derive(Debug)]
pub struct ReplyCell {
    token: u64,
    slot: Mutex<Option<Response>>,
    done: AtomicBool,
    completions: Option<Arc<Completions>>,
}

impl ReplyCell {
    /// Store the response and (if attached) wake the owning loop.
    pub fn fill(&self, resp: Response) {
        *self.slot.lock().expect("reply slot lock") = Some(resp);
        self.done.store(true, Ordering::Release);
        if let Some(c) = &self.completions {
            c.notify(self.token);
        }
    }

    /// Whether the response has been stored.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn take(&self) -> Option<Response> {
        if !self.is_done() {
            return None;
        }
        self.slot.lock().expect("reply slot lock").take()
    }
}

/// What a readiness-driven read pass concluded about the stream.
#[derive(Debug)]
pub enum ReadStatus {
    /// Socket drained (would block); the connection stays open.
    Open,
    /// Peer closed cleanly at a frame boundary.
    Eof,
    /// The stream is corrupt (bad magic, oversized frame, or EOF inside
    /// a frame): answer with this error — phrased exactly as the
    /// blocking reader phrases it — then stop reading.
    Corrupt(std::io::Error),
    /// Transport failure (reset, aborted): close silently.
    Gone,
}

/// How far a flush pass got.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteStatus {
    /// Everything buffered so far is on the wire (or the socket would
    /// block; check [`Connection::wants_write`]).
    Open,
    /// Transport failure: close the connection.
    Gone,
}

/// Per-connection state machine: frame reassembly in, ordered replies
/// out. Transport-agnostic; see the module docs.
#[derive(Debug)]
pub struct Connection {
    token: u64,
    decoder: FrameDecoder,
    frames: VecDeque<Vec<u8>>,
    inflight: VecDeque<Arc<ReplyCell>>,
    /// A dispatched-but-unfinished mutation; no later frame on this
    /// connection may dispatch past it (the blocking path serializes
    /// ops per connection, so the event path must too).
    barrier: Option<Arc<ReplyCell>>,
    /// Error text of a corrupt-stream reply still owed to the peer. It
    /// queues *after* every frame reassembled before the corruption —
    /// the blocking reader answers those frames first too, and reply
    /// bytes must stay identical between the engines.
    corrupt: Option<String>,
    outbuf: Vec<u8>,
    out_at: usize,
    read_closed: bool,
    last_activity: Instant,
    last_progress: Instant,
    max_inflight: usize,
}

impl Connection {
    /// Fresh connection state; `token` identifies it in the loop's table
    /// and in completion notifications.
    pub fn new(token: u64, now: Instant) -> Connection {
        Connection {
            token,
            decoder: FrameDecoder::new(),
            frames: VecDeque::new(),
            inflight: VecDeque::new(),
            barrier: None,
            corrupt: None,
            outbuf: Vec::new(),
            out_at: 0,
            read_closed: false,
            last_activity: now,
            last_progress: now,
            max_inflight: 0,
        }
    }

    /// This connection's loop token.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Read until the transport would block (or ends), feeding every
    /// chunk through the frame decoder. Completed frames queue up for
    /// [`Connection::next_frame`].
    pub fn read_from<T: Read>(
        &mut self,
        io: &mut T,
        scratch: &mut [u8],
        now: Instant,
    ) -> ReadStatus {
        loop {
            match io.read(scratch) {
                Ok(0) => {
                    return if self.decoder.at_boundary() {
                        ReadStatus::Eof
                    } else {
                        ReadStatus::Corrupt(self.decoder.eof_error())
                    };
                }
                Ok(n) => {
                    self.last_activity = now;
                    let mut at = 0;
                    while at < n {
                        match self.decoder.feed(&scratch[at..n]) {
                            Ok((used, frame)) => {
                                at += used;
                                if let Some(f) = frame {
                                    self.frames.push_back(f);
                                }
                            }
                            Err(e) => return ReadStatus::Corrupt(e),
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return ReadStatus::Open,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return ReadStatus::Gone,
            }
        }
    }

    /// Pop the next completely reassembled, not-yet-dispatched frame.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        self.frames.pop_front()
    }

    /// Drop frames that were reassembled but will never dispatch (the
    /// connection is closing).
    pub fn discard_frames(&mut self) {
        self.frames.clear();
    }

    /// Claim the next in-order reply cell. Pass the loop's completion
    /// mailbox when a compute thread fills the cell later; `None` for a
    /// cell the caller fills immediately.
    pub fn push_cell(&mut self, completions: Option<Arc<Completions>>) -> Arc<ReplyCell> {
        let cell = Arc::new(ReplyCell {
            token: self.token,
            slot: Mutex::new(None),
            done: AtomicBool::new(false),
            completions,
        });
        self.inflight.push_back(Arc::clone(&cell));
        self.max_inflight = self.max_inflight.max(self.inflight.len());
        cell
    }

    /// Claim a cell and fill it in one step (inline control replies).
    pub fn push_ready(&mut self, resp: Response) {
        let cell = self.push_cell(None);
        cell.fill(resp);
    }

    /// Encode every completed head-of-line reply into the output buffer,
    /// preserving request order. Returns how many replies were encoded.
    pub fn pump(&mut self) -> usize {
        let mut encoded = 0;
        while let Some(head) = self.inflight.front() {
            let Some(resp) = head.take() else { break };
            self.inflight.pop_front();
            write_frame(&mut self.outbuf, &encode_response(&resp))
                .expect("Vec<u8> writes are infallible");
            encoded += 1;
        }
        encoded
    }

    /// Flush the output buffer as far as the transport allows, tracking
    /// the partial-write cursor across calls.
    pub fn write_to<T: Write>(&mut self, io: &mut T, now: Instant) -> WriteStatus {
        while self.out_at < self.outbuf.len() {
            match io.write(&self.outbuf[self.out_at..]) {
                Ok(0) => return WriteStatus::Gone,
                Ok(n) => {
                    self.out_at += n;
                    self.last_progress = now;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return WriteStatus::Open,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return WriteStatus::Gone,
            }
        }
        self.outbuf.clear();
        self.out_at = 0;
        self.last_progress = now;
        WriteStatus::Open
    }

    /// Whether flushed-but-unwritten bytes remain (EPOLLOUT interest).
    pub fn wants_write(&self) -> bool {
        self.out_at < self.outbuf.len()
    }

    /// Requests dispatched but not yet encoded onto the wire.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// High-water mark of concurrently in-flight requests (pipeline
    /// depth) over the connection's lifetime.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Stop reading from this connection (EOF, idle reap, or server
    /// drain). Frames already reassembled still dispatch — the blocking
    /// reader answers every complete frame it read before noticing EOF —
    /// and in-flight replies still complete and flush. Callers that must
    /// also abandon undispatched frames (drain, reap) follow up with
    /// [`Connection::discard_frames`].
    pub fn close_read(&mut self) {
        self.read_closed = true;
    }

    /// Record a torn/garbled stream: reading stops now, and the error
    /// reply — phrased exactly like the blocking reader's — is owed to
    /// the peer *after* the frames reassembled ahead of the corruption
    /// (queued by the next [`dispatch_ready`] pass).
    pub fn set_corrupt(&mut self, e: std::io::Error) {
        self.corrupt = Some(format!("malformed frame: {e}"));
        self.read_closed = true;
    }

    /// Whether reading has stopped.
    pub fn read_closed(&self) -> bool {
        self.read_closed
    }

    /// Fully drained: reading stopped, every claimed reply delivered,
    /// no error reply still owed, nothing left to flush. The loop closes
    /// the socket at this point.
    pub fn finished(&self) -> bool {
        self.read_closed
            && self.inflight.is_empty()
            && self.frames.is_empty()
            && self.corrupt.is_none()
            && !self.wants_write()
    }

    /// How long since the peer last delivered bytes (idle-reap clock).
    pub fn idle_for(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.last_activity)
    }

    /// How long since a flush last made progress while output is
    /// pending; `None` when nothing is waiting to flush
    /// (write-stall clock).
    pub fn stalled_for(&self, now: Instant) -> Option<Duration> {
        self.wants_write()
            .then(|| now.saturating_duration_since(self.last_progress))
    }
}

/// What dispatching one frame asked of the caller, beyond the reply
/// cells already claimed.
#[derive(Debug)]
pub enum Dispatched {
    /// Nothing: the request was answered inline or queued.
    Done,
    /// A mutation op: run [`control_response`] for it off the loop
    /// thread and fill the cell (a dispatch barrier is already set, so
    /// no later frame on this connection runs ahead of it).
    Mutation(Box<Request>, Arc<ReplyCell>),
    /// Client-initiated shutdown: the ack is queued; the caller drains
    /// the whole server.
    Shutdown,
    /// Malformed request: the error reply is queued and the connection
    /// must stop reading — same isolation as the blocking path.
    Malformed,
}

/// Dispatch every reassembled frame that is allowed to run, in arrival
/// order, stopping at a mutation barrier, a malformed frame, or a
/// shutdown op. Both the epoll loop and the deterministic harness call
/// this; it is the event-path equivalent of the blocking
/// `serve_connection` request match.
pub fn dispatch_ready(
    conn: &mut Connection,
    scheduler: &Scheduler,
    completions: &Arc<Completions>,
    mutate: &mut dyn FnMut(Box<Request>, Arc<ReplyCell>),
) -> Dispatched {
    loop {
        if let Some(b) = &conn.barrier {
            if b.is_done() {
                conn.barrier = None;
            } else {
                return Dispatched::Done;
            }
        }
        let Some(payload) = conn.next_frame() else {
            // Every frame ahead of a stream corruption has been
            // answered; now the owed error reply takes its in-order
            // place, exactly where the blocking reader would emit it.
            if let Some(msg) = conn.corrupt.take() {
                conn.push_ready(Response::Error(msg));
            }
            return Dispatched::Done;
        };
        match dispatch_frame(conn, &payload, scheduler, completions) {
            Dispatched::Done => {}
            Dispatched::Mutation(req, cell) => {
                conn.barrier = Some(Arc::clone(&cell));
                mutate(req, cell);
            }
            Dispatched::Shutdown => {
                conn.close_read();
                conn.discard_frames();
                conn.corrupt = None;
                return Dispatched::Shutdown;
            }
            Dispatched::Malformed => {
                // The blocking reader stops at a malformed request and
                // never sees later bytes; drop them (and any corruption
                // they contained) the same way.
                conn.close_read();
                conn.discard_frames();
                conn.corrupt = None;
                return Dispatched::Malformed;
            }
        }
    }
}

/// Dispatch a single reassembled frame: decode, then answer inline,
/// admit to the scheduler, or hand back a mutation for offload.
fn dispatch_frame(
    conn: &mut Connection,
    payload: &[u8],
    scheduler: &Scheduler,
    completions: &Arc<Completions>,
) -> Dispatched {
    let request = match decode_request(payload) {
        Ok(r) => r,
        Err(e) => {
            conn.push_ready(Response::Error(format!("malformed request: {e}")));
            return Dispatched::Malformed;
        }
    };
    if is_mutation(&request) {
        let cell = conn.push_cell(Some(Arc::clone(completions)));
        return Dispatched::Mutation(Box::new(request), cell);
    }
    match query_work(request) {
        Ok((work, deadline_us)) => {
            let now = Instant::now();
            let cell = conn.push_cell(Some(Arc::clone(completions)));
            scheduler.submit(Pending {
                work,
                deadline: (deadline_us > 0).then(|| now + Duration::from_micros(deadline_us)),
                enqueued: now,
                reply: ReplySink::Cell(cell),
            });
            Dispatched::Done
        }
        Err(Request::Shutdown) => {
            conn.push_ready(Response::ShutdownAck);
            Dispatched::Shutdown
        }
        Err(req) => {
            conn.push_ready(control_response(scheduler, req));
            Dispatched::Done
        }
    }
}

/// Whether an op mutates the store. The blocking path runs these inline
/// on the connection thread; the event loop offloads them to a worker
/// behind a per-connection dispatch barrier.
pub fn is_mutation(req: &Request) -> bool {
    matches!(
        req,
        Request::Insert { .. } | Request::Delete { .. } | Request::Compact
    )
}

/// Split a request into schedulable query work plus its deadline, or
/// hand the request back for inline handling.
pub fn query_work(req: Request) -> Result<(QueryWork, u64), Request> {
    match req {
        Request::Knn {
            k,
            deadline_us,
            recall_target,
            descriptor,
        } => Ok((
            QueryWork::Knn {
                descriptor,
                k: k as usize,
                recall_target,
            },
            deadline_us,
        )),
        Request::Range {
            radius,
            deadline_us,
            descriptor,
        } => Ok((QueryWork::Range { descriptor, radius }, deadline_us)),
        Request::KnnById {
            k,
            deadline_us,
            recall_target,
            id,
        } => Ok((
            QueryWork::KnnById {
                id: id as usize,
                k: k as usize,
                recall_target,
            },
            deadline_us,
        )),
        other => Err(other),
    }
}

/// Answer a control or mutation op against the scheduler's corpus.
/// Shared verbatim between the blocking connection thread and the event
/// path (loop thread for reads, worker pool for mutations), so the two
/// engines cannot drift in what they reply.
pub fn control_response(scheduler: &Scheduler, req: Request) -> Response {
    let metrics = scheduler.metrics();
    match req {
        Request::Ping => {
            let view = scheduler.corpus().pin();
            Response::Pong {
                db_len: view.len() as u64,
                dim: view.dim() as u32,
            }
        }
        Request::Stats => Response::Stats(metrics.snapshot(scheduler.queue_depth())),
        Request::ObsStats { prometheus } => {
            // Refresh the queue-depth gauge so a snapshot taken from an
            // otherwise idle server still reads the live value.
            cbir_obs::set_queue_depth(scheduler.queue_depth() as u64);
            let snap = cbir_obs::snapshot();
            Response::ObsText(if prometheus {
                cbir_obs::to_prometheus(&snap)
            } else {
                cbir_obs::to_json(&snap)
            })
        }
        Request::Explain => Response::ObsText(cbir_obs::traces_to_json(&cbir_obs::traces())),
        Request::Shutdown => Response::ShutdownAck,
        // Mutations take the store's writer lock, publish a new
        // snapshot, and ack. Queries already admitted keep executing
        // against their pinned (pre-mutation) snapshots.
        Request::Insert {
            name,
            label,
            descriptor,
        } => match scheduler.corpus().store() {
            None => static_corpus_error(),
            Some(store) => match store.insert(ImageMeta { name, label }, descriptor) {
                Ok(id) => Response::InsertAck {
                    id,
                    epoch: store.snapshot().epoch(),
                },
                Err(e) => {
                    metrics.on_error();
                    Response::Error(e.to_string())
                }
            },
        },
        Request::Delete { id } => match scheduler.corpus().store() {
            None => static_corpus_error(),
            Some(store) => match store.delete(id) {
                Ok(()) => Response::DeleteAck {
                    epoch: store.snapshot().epoch(),
                },
                Err(e) => {
                    metrics.on_error();
                    Response::Error(e.to_string())
                }
            },
        },
        Request::Compact => match scheduler.corpus().store() {
            None => static_corpus_error(),
            Some(store) => match store.compact() {
                Ok(stats) => Response::CompactAck {
                    epoch: stats.epoch,
                    segments: stats.segments as u32,
                    rows: stats.rows,
                },
                Err(e) => {
                    metrics.on_error();
                    Response::Error(e.to_string())
                }
            },
        },
        // Row fetch runs inline: a point read against a pinned view.
        Request::GetDescriptor { id } => match scheduler.corpus().pin().descriptor(id) {
            Ok(descriptor) => Response::Descriptor { descriptor },
            Err(e) => {
                metrics.on_error();
                Response::Error(e.to_string())
            }
        },
        query @ (Request::Knn { .. } | Request::Range { .. } | Request::KnnById { .. }) => {
            unreachable!("queries go through the scheduler, got {query:?}")
        }
    }
}

/// The refusal every mutation op gets when the server fronts an
/// immutable offline-built engine instead of a live segment store.
pub(crate) fn static_corpus_error() -> Response {
    Response::Error(
        "server is serving a static database; mutations require serving a segment store \
         (serve --mmap)"
            .into(),
    )
}
