//! A small idle-connection pool over [`Client`].
//!
//! A scatter-gather router serves many concurrent front-side connections,
//! and each request fans out to every shard backend; opening a fresh TCP
//! connection per fan-out leg would put a connect round-trip on every
//! query *and* defeat the backend's micro-batch scheduler (batches form
//! from concurrent in-flight requests on established connections). The
//! pool keeps connections that finished a request warm for the next one.
//!
//! The discipline is **check out / check in**: [`ClientPool::get`] pops
//! an idle connection (or dials a new one), and the caller returns it
//! with [`ClientPool::put`] only after a successful exchange. A
//! connection that saw any error is simply dropped — the next `get`
//! dials a replacement — so a poisoned stream (half-written frame,
//! desynced reply order) can never be handed to another request.

use crate::client::Client;
use std::sync::Mutex;

/// An idle-connection pool for one backend address.
pub struct ClientPool {
    addr: String,
    idle: Mutex<Vec<Client>>,
    max_idle: usize,
}

impl ClientPool {
    /// A pool dialing `addr`, keeping at most `max_idle` warm connections
    /// (returns beyond the cap are dropped and close their socket).
    pub fn new(addr: impl Into<String>, max_idle: usize) -> ClientPool {
        ClientPool {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
            max_idle,
        }
    }

    /// The backend address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Check out a connection: an idle one when available, otherwise a
    /// fresh dial. Fails only when dialing fails.
    pub fn get(&self) -> std::io::Result<Client> {
        if let Some(c) = self.idle.lock().unwrap().pop() {
            return Ok(c);
        }
        Client::connect(&self.addr)
    }

    /// Check a connection back in after a *successful* exchange. Never
    /// return a connection that saw an error — drop it instead.
    pub fn put(&self, client: Client) {
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < self.max_idle {
            idle.push(client);
        }
    }

    /// Warm connections currently parked in the pool.
    pub fn idle_len(&self) -> usize {
        self.idle.lock().unwrap().len()
    }

    /// Drop every idle connection (e.g. when a replica is marked
    /// unhealthy: parked streams to a dead process would all fail their
    /// next request anyway).
    pub fn clear(&self) {
        self.idle.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    // The pool only needs an accepting socket; no protocol traffic flows
    // in these tests.
    fn listener() -> (TcpListener, String) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        (l, addr)
    }

    #[test]
    fn connections_are_reused_and_capped() {
        let (listener, addr) = listener();
        let accept = std::thread::spawn(move || {
            // Park accepted sockets so they stay open for the test body.
            let mut held = Vec::new();
            for stream in listener.incoming().take(3) {
                held.push(stream.unwrap());
            }
            // Wait for the far end to close everything down.
            for s in &mut held {
                let _ = s.read(&mut [0u8; 1]);
            }
        });
        let pool = ClientPool::new(&addr, 2);
        assert_eq!(pool.idle_len(), 0);
        let a = pool.get().unwrap();
        let b = pool.get().unwrap();
        let c = pool.get().unwrap();
        pool.put(a);
        pool.put(b);
        pool.put(c); // beyond max_idle: dropped
        assert_eq!(pool.idle_len(), 2);
        // Reuse does not dial: take both warm connections back out.
        let _a = pool.get().unwrap();
        let _b = pool.get().unwrap();
        assert_eq!(pool.idle_len(), 0);
        pool.clear();
        drop((_a, _b));
        accept.join().unwrap();
    }

    #[test]
    fn get_fails_when_nobody_listens() {
        let (listener, addr) = listener();
        drop(listener);
        let pool = ClientPool::new(&addr, 4);
        assert!(pool.get().is_err());
    }
}
