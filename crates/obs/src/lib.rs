//! # `cbir-obs` — the observability substrate
//!
//! A zero-dependency, process-global registry of lock-free counters,
//! log₂ latency histograms, per-extraction-stage hit/miss accounting, and
//! a sampled per-query trace ring — the runtime measurement surface for
//! the quantities the offline evaluation (pruning effectiveness, per-stage
//! extraction cost, query cost distribution) measures in batch.
//!
//! ## Design rules
//!
//! * **Bit-invisible**: instrumentation only observes; query results are
//!   identical with observation on or off (asserted by the engine's
//!   equivalence tests and the `verify.sh` traced-vs-untraced smoke).
//! * **Out of the hot loop**: index traversals accumulate into plain
//!   per-query `SearchStats` fields exactly as before; the engine layer
//!   flushes those totals here once per query (or once per batch call),
//!   so the registry's relaxed atomics are touched O(queries), not
//!   O(distance computations).
//! * **Near-free when off**: every recording entry point first checks a
//!   relaxed [`enabled`] flag; timers are never started when disabled.
//!   The additive `noop` cargo feature removes even the flag load for
//!   builds that must not observe at all.
//!
//! ```
//! cbir_obs::record_query(
//!     "vp-tree",
//!     cbir_obs::QueryOp::Knn,
//!     1,
//!     250,
//!     &cbir_obs::QueryCounters {
//!         distance_evaluations: 40,
//!         nodes_visited: 12,
//!         subtrees_pruned: 7,
//!         postfilter_candidates: 35,
//!         coarse_candidates: 0,
//!         rerank_evaluations: 0,
//!     },
//!     10,
//! );
//! let snap = cbir_obs::snapshot();
//! let json = cbir_obs::to_json(&snap);
//! assert!(json.contains("\"indexes\""));
//! ```

#![warn(missing_docs)]

mod export;
mod hist;
mod trace;

pub use export::{render_trace, to_json, to_prometheus, trace_to_json, traces_to_json};
pub use hist::{bucket_bound, bucket_of, HistSnapshot, LogHistogram, LOG2_BUCKETS};
pub use trace::{QueryTrace, TraceSpan, TRACE_RING_CAP};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use trace::TraceRing;

/// Index slots tracked by the registry, in export order. Unknown index
/// names fall into the final `"other"` slot.
pub const INDEX_NAMES: [&str; 8] = [
    "linear", "kd-tree", "vp-tree", "antipole", "r*-tree", "m-tree", "lsh", "other",
];

/// Shared-intermediate extraction stages tracked by the registry.
///
/// A **miss** is the stage actually computing (timed); a **hit** is a
/// family requesting an intermediate that the planner already has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Canonical bilinear resize of the input frame.
    Resize = 0,
    /// Grayscale (luma) conversion of the canonical frame.
    Grayscale = 1,
    /// Fused Sobel gradient pass.
    Sobel = 2,
    /// Gradient magnitude/orientation planes.
    MagOri = 3,
    /// Normalized-magnitude plane.
    MagNorm = 4,
    /// Otsu foreground mask.
    Mask = 5,
    /// Grayscale integral image.
    Integral = 6,
    /// Salience distance transform.
    Sdt = 7,
    /// Per-quantizer bin plane.
    Quantize = 8,
}

impl Stage {
    /// Every stage, in export order.
    pub const ALL: [Stage; 9] = [
        Stage::Resize,
        Stage::Grayscale,
        Stage::Sobel,
        Stage::MagOri,
        Stage::MagNorm,
        Stage::Mask,
        Stage::Integral,
        Stage::Sdt,
        Stage::Quantize,
    ];

    /// Stable export name of the stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Resize => "resize",
            Stage::Grayscale => "grayscale",
            Stage::Sobel => "sobel",
            Stage::MagOri => "mag_ori",
            Stage::MagNorm => "mag_norm",
            Stage::Mask => "mask",
            Stage::Integral => "integral",
            Stage::Sdt => "sdt",
            Stage::Quantize => "quantize",
        }
    }
}

/// Which search operation a flushed query ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOp {
    /// k-nearest-neighbour search (single or batched).
    Knn,
    /// Range search (single or batched).
    Range,
}

impl QueryOp {
    /// Stable export name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            QueryOp::Knn => "knn",
            QueryOp::Range => "range",
        }
    }
}

/// Per-query pruning counters flushed from a `SearchStats` total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// Full distance evaluations performed.
    pub distance_evaluations: u64,
    /// Index nodes (internal or leaf) visited.
    pub nodes_visited: u64,
    /// Subtrees/clusters/pages excluded by a pruning bound.
    pub subtrees_pruned: u64,
    /// Dataset members surfaced as candidates for exact-distance
    /// evaluation (leaf scans, bucket hits).
    pub postfilter_candidates: u64,
    /// Candidates surfaced by the coarse stage of a two-stage approximate
    /// query. Zero on the exact path.
    pub coarse_candidates: u64,
    /// Exact distance evaluations spent reranking coarse candidates.
    /// Zero on the exact path.
    pub rerank_evaluations: u64,
}

struct IndexSlot {
    queries: AtomicU64,
    distance_evaluations: AtomicU64,
    nodes_visited: AtomicU64,
    subtrees_pruned: AtomicU64,
    postfilter_candidates: AtomicU64,
    coarse_candidates: AtomicU64,
    rerank_evaluations: AtomicU64,
    results: AtomicU64,
}

impl IndexSlot {
    const fn new() -> Self {
        IndexSlot {
            queries: AtomicU64::new(0),
            distance_evaluations: AtomicU64::new(0),
            nodes_visited: AtomicU64::new(0),
            subtrees_pruned: AtomicU64::new(0),
            postfilter_candidates: AtomicU64::new(0),
            coarse_candidates: AtomicU64::new(0),
            rerank_evaluations: AtomicU64::new(0),
            results: AtomicU64::new(0),
        }
    }
}

struct StageSlot {
    hits: AtomicU64,
    misses: AtomicU64,
    nanos: AtomicU64,
}

impl StageSlot {
    const fn new() -> Self {
        StageSlot {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
        }
    }
}

struct StoreSlot {
    inserts: AtomicU64,
    deletes: AtomicU64,
    compactions: AtomicU64,
    segments: AtomicU64,
    memtable_rows: AtomicU64,
    tombstones: AtomicU64,
    epoch: AtomicU64,
}

impl StoreSlot {
    const fn new() -> Self {
        StoreSlot {
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            segments: AtomicU64::new(0),
            memtable_rows: AtomicU64::new(0),
            tombstones: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }
}

/// One router backend replica's counters. Unlike the fixed index/stage
/// slots, router slots are registered dynamically (shard count and replica
/// fan-out are deployment choices, not compile-time constants); the
/// registry holds them behind a mutex that is only taken at registration
/// and snapshot time — recording itself is relaxed atomics on an `Arc`'d
/// slot held by the router, so the query hot path never locks.
struct RouterSlot {
    shard: u32,
    role: String,
    requests: AtomicU64,
    failures: AtomicU64,
    failovers: AtomicU64,
    shed: AtomicU64,
    healthy: AtomicU64,
    breaker_open: AtomicU64,
    probe_rejoins: AtomicU64,
    latency: LogHistogram,
}

/// Router-tier counters that are not attributable to a single replica:
/// hedged requests race two replicas, a degraded reply is the property
/// of a whole scatter, and the retry budget is shared across shards.
/// One static slot per process — a process hosts at most one routing
/// tier, and benchmarks that spawn several routers in sequence reset
/// between scenarios.
struct RouterTierSlot {
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    degraded_replies: AtomicU64,
    breaker_opens: AtomicU64,
    retry_budget_exhausted: AtomicU64,
    probe_failures: AtomicU64,
    probe_latency: LogHistogram,
}

static ROUTER_TIER: RouterTierSlot = RouterTierSlot {
    hedges_fired: AtomicU64::new(0),
    hedges_won: AtomicU64::new(0),
    degraded_replies: AtomicU64::new(0),
    breaker_opens: AtomicU64::new(0),
    retry_budget_exhausted: AtomicU64::new(0),
    probe_failures: AtomicU64::new(0),
    probe_latency: LogHistogram::new(),
};

/// Record one hedge fired: the primary attempt outlived the hedge delay
/// and a second replica was raced against it. No-op when disabled.
#[inline]
pub fn router_hedge_fired() {
    if !enabled() {
        return;
    }
    ROUTER_TIER.hedges_fired.fetch_add(1, Ordering::Relaxed);
}

/// Record one hedge won: the *hedged* (second) attempt answered first.
/// No-op when disabled.
#[inline]
pub fn router_hedge_won() {
    if !enabled() {
        return;
    }
    ROUTER_TIER.hedges_won.fetch_add(1, Ordering::Relaxed);
}

/// Record one degraded (partial-coverage) reply sent to a front client.
/// No-op when disabled.
#[inline]
pub fn router_degraded_reply() {
    if !enabled() {
        return;
    }
    ROUTER_TIER.degraded_replies.fetch_add(1, Ordering::Relaxed);
}

/// Record one circuit-breaker open transition (any replica). No-op when
/// disabled.
#[inline]
pub fn router_breaker_opened() {
    if !enabled() {
        return;
    }
    ROUTER_TIER.breaker_opens.fetch_add(1, Ordering::Relaxed);
}

/// Record one failover attempt suppressed because the global retry
/// budget was exhausted. No-op when disabled.
#[inline]
pub fn router_retry_budget_exhausted() {
    if !enabled() {
        return;
    }
    ROUTER_TIER
        .retry_budget_exhausted
        .fetch_add(1, Ordering::Relaxed);
}

/// Record one successful health probe with its round-trip latency.
/// No-op when disabled.
#[inline]
pub fn router_probe_ok(latency_us: u64) {
    if !enabled() {
        return;
    }
    ROUTER_TIER.probe_latency.record(latency_us);
}

/// Record one failed health probe. No-op when disabled.
#[inline]
pub fn router_probe_failed() {
    if !enabled() {
        return;
    }
    ROUTER_TIER.probe_failures.fetch_add(1, Ordering::Relaxed);
}

/// Event-loop serving counters: how often the loop woke, how many
/// connections it is holding, and the deepest per-connection pipeline
/// it has observed. All zero on the blocking serving path.
struct EventLoopSlot {
    epoll_wakeups: AtomicU64,
    open_conns: AtomicU64,
    max_pipeline_depth: AtomicU64,
}

impl EventLoopSlot {
    const fn new() -> Self {
        EventLoopSlot {
            epoll_wakeups: AtomicU64::new(0),
            open_conns: AtomicU64::new(0),
            max_pipeline_depth: AtomicU64::new(0),
        }
    }
}

struct Registry {
    enabled: AtomicBool,
    indexes: [IndexSlot; INDEX_NAMES.len()],
    stages: [StageSlot; Stage::ALL.len()],
    knn_latency: LogHistogram,
    range_latency: LogHistogram,
    queue_depth: AtomicU64,
    store: StoreSlot,
    event_loop: EventLoopSlot,
    traces: TraceRing,
}

static ROUTER_SLOTS: Mutex<Vec<Arc<RouterSlot>>> = Mutex::new(Vec::new());

static REGISTRY: Registry = Registry {
    enabled: AtomicBool::new(true),
    indexes: [
        IndexSlot::new(),
        IndexSlot::new(),
        IndexSlot::new(),
        IndexSlot::new(),
        IndexSlot::new(),
        IndexSlot::new(),
        IndexSlot::new(),
        IndexSlot::new(),
    ],
    stages: [
        StageSlot::new(),
        StageSlot::new(),
        StageSlot::new(),
        StageSlot::new(),
        StageSlot::new(),
        StageSlot::new(),
        StageSlot::new(),
        StageSlot::new(),
        StageSlot::new(),
    ],
    knn_latency: LogHistogram::new(),
    range_latency: LogHistogram::new(),
    queue_depth: AtomicU64::new(0),
    store: StoreSlot::new(),
    event_loop: EventLoopSlot::new(),
    traces: TraceRing::new(),
};

/// Whether recording is active. Compile-time `false` under the `noop`
/// feature; otherwise a relaxed load of the runtime switch (default on).
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    REGISTRY.enabled.load(Ordering::Relaxed)
}

/// Turn runtime recording on or off. Has no effect under the `noop`
/// feature (recording stays off).
pub fn set_enabled(on: bool) {
    REGISTRY.enabled.store(on, Ordering::Relaxed);
}

/// Slot index for an index-kind name; unknown names map to `"other"`.
fn slot_of(index: &str) -> usize {
    INDEX_NAMES
        .iter()
        .position(|&n| n == index)
        .unwrap_or(INDEX_NAMES.len() - 1)
}

/// Flush one finished query (or one batched engine call covering
/// `queries` queries) into the registry: pruning counters under the index
/// slot, the call latency into the op's histogram. No-op when disabled.
pub fn record_query(
    index: &str,
    op: QueryOp,
    queries: u64,
    latency_us: u64,
    counters: &QueryCounters,
    results: u64,
) {
    if !enabled() {
        return;
    }
    let slot = &REGISTRY.indexes[slot_of(index)];
    slot.queries.fetch_add(queries, Ordering::Relaxed);
    slot.distance_evaluations
        .fetch_add(counters.distance_evaluations, Ordering::Relaxed);
    slot.nodes_visited
        .fetch_add(counters.nodes_visited, Ordering::Relaxed);
    slot.subtrees_pruned
        .fetch_add(counters.subtrees_pruned, Ordering::Relaxed);
    slot.postfilter_candidates
        .fetch_add(counters.postfilter_candidates, Ordering::Relaxed);
    slot.coarse_candidates
        .fetch_add(counters.coarse_candidates, Ordering::Relaxed);
    slot.rerank_evaluations
        .fetch_add(counters.rerank_evaluations, Ordering::Relaxed);
    slot.results.fetch_add(results, Ordering::Relaxed);
    match op {
        QueryOp::Knn => REGISTRY.knn_latency.record(latency_us),
        QueryOp::Range => REGISTRY.range_latency.record(latency_us),
    }
}

/// Record a planner stage hit: the intermediate was requested and already
/// available. No-op when disabled.
#[inline]
pub fn stage_hit(stage: Stage) {
    if !enabled() {
        return;
    }
    REGISTRY.stages[stage as usize]
        .hits
        .fetch_add(1, Ordering::Relaxed);
}

/// Record a planner stage miss: the intermediate was computed, taking
/// `nanos`. No-op when disabled.
#[inline]
pub fn stage_miss(stage: Stage, nanos: u64) {
    if !enabled() {
        return;
    }
    let s = &REGISTRY.stages[stage as usize];
    s.misses.fetch_add(1, Ordering::Relaxed);
    s.nanos.fetch_add(nanos, Ordering::Relaxed);
}

/// A stage-compute timer: started before the work, finished after.
/// Carries no clock when recording is disabled, so the disabled path
/// costs one relaxed load and no `Instant::now` call.
#[must_use]
pub struct StageTimer {
    stage: Stage,
    start: Option<Instant>,
}

impl StageTimer {
    /// Start timing a stage compute (no-op when disabled).
    #[inline]
    pub fn start(stage: Stage) -> Self {
        StageTimer {
            stage,
            start: enabled().then(Instant::now),
        }
    }

    /// Record the stage miss with the elapsed time.
    #[inline]
    pub fn finish(self) {
        if let Some(start) = self.start {
            stage_miss(self.stage, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Update the scheduler queue-depth gauge.
#[inline]
pub fn set_queue_depth(depth: u64) {
    if !enabled() {
        return;
    }
    REGISTRY.queue_depth.store(depth, Ordering::Relaxed);
}

/// Record `n` `epoll_wait` returns in the event loop. No-op when
/// disabled.
#[inline]
pub fn epoll_wakeups_add(n: u64) {
    if !enabled() {
        return;
    }
    REGISTRY
        .event_loop
        .epoll_wakeups
        .fetch_add(n, Ordering::Relaxed);
}

/// Update the event-loop connection gauge and fold `pipeline_depth`
/// (requests concurrently in flight on one connection) into the
/// high-water mark. No-op when disabled.
#[inline]
pub fn set_event_loop_state(open_conns: u64, pipeline_depth: u64) {
    if !enabled() {
        return;
    }
    REGISTRY
        .event_loop
        .open_conns
        .store(open_conns, Ordering::Relaxed);
    REGISTRY
        .event_loop
        .max_pipeline_depth
        .fetch_max(pipeline_depth, Ordering::Relaxed);
}

/// Record `n` rows inserted into the live segment store. No-op when
/// disabled.
#[inline]
pub fn store_inserted(n: u64) {
    if !enabled() {
        return;
    }
    REGISTRY.store.inserts.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` rows tombstoned in the live segment store. No-op when
/// disabled.
#[inline]
pub fn store_deleted(n: u64) {
    if !enabled() {
        return;
    }
    REGISTRY.store.deletes.fetch_add(n, Ordering::Relaxed);
}

/// Record one committed compaction. No-op when disabled.
#[inline]
pub fn store_compacted() {
    if !enabled() {
        return;
    }
    REGISTRY.store.compactions.fetch_add(1, Ordering::Relaxed);
}

/// Update the segment-store shape gauges (published with every store
/// snapshot). No-op when disabled.
#[inline]
pub fn set_store_state(segments: u64, memtable_rows: u64, tombstones: u64, epoch: u64) {
    if !enabled() {
        return;
    }
    REGISTRY.store.segments.store(segments, Ordering::Relaxed);
    REGISTRY
        .store
        .memtable_rows
        .store(memtable_rows, Ordering::Relaxed);
    REGISTRY
        .store
        .tombstones
        .store(tombstones, Ordering::Relaxed);
    REGISTRY.store.epoch.store(epoch, Ordering::Relaxed);
}

/// Set trace sampling: `0` disables tracing, `1` traces every query,
/// `n > 1` traces every n-th query.
pub fn set_trace_sample_n(n: u64) {
    REGISTRY.traces.set_sample_n(n);
}

/// The current trace sampling rate (`0` = off).
pub fn trace_sample_n() -> u64 {
    REGISTRY.traces.sample_n()
}

/// Advance the query sequence and decide whether the caller should
/// capture a trace for this query; returns the sequence number when it
/// should. Always `None` when recording is disabled or sampling is off.
pub fn trace_should_sample() -> Option<u64> {
    if !enabled() {
        return None;
    }
    REGISTRY.traces.should_sample()
}

/// Store a captured trace in the ring (oldest dropped when full).
pub fn push_trace(trace: QueryTrace) {
    if !enabled() {
        return;
    }
    REGISTRY.traces.push(trace);
}

/// A recording handle for one router backend replica, obtained from
/// [`router_replica`]. Cloning is cheap (`Arc`); recording is relaxed
/// atomics and never locks.
#[derive(Clone)]
pub struct RouterReplicaHandle {
    slot: Arc<RouterSlot>,
}

impl RouterReplicaHandle {
    /// Record one request answered by this replica, with its end-to-end
    /// latency in microseconds. No-op when disabled.
    #[inline]
    pub fn request_ok(&self, latency_us: u64) {
        if !enabled() {
            return;
        }
        self.slot.requests.fetch_add(1, Ordering::Relaxed);
        self.slot.latency.record(latency_us);
    }

    /// Record one failed attempt against this replica (transport error or
    /// terminal rejection). No-op when disabled.
    #[inline]
    pub fn failure(&self) {
        if !enabled() {
            return;
        }
        self.slot.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one failover *away* from this replica onto a sibling.
    /// No-op when disabled.
    #[inline]
    pub fn failover(&self) {
        if !enabled() {
            return;
        }
        self.slot.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `Overloaded` shed observed from this replica. No-op
    /// when disabled.
    #[inline]
    pub fn shed(&self) {
        if !enabled() {
            return;
        }
        self.slot.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Update the health gauge (`true` = considered healthy). Recorded
    /// even when disabled: health is routing state, not a sample.
    #[inline]
    pub fn set_healthy(&self, healthy: bool) {
        self.slot.healthy.store(healthy as u64, Ordering::Relaxed);
    }

    /// Update the circuit-breaker gauge (`true` = breaker open, replica
    /// excluded from routing). Recorded even when disabled: breaker
    /// position is routing state, not a sample.
    #[inline]
    pub fn set_breaker_open(&self, open: bool) {
        self.slot.breaker_open.store(open as u64, Ordering::Relaxed);
    }

    /// Record one probe-driven rejoin: a background health probe found
    /// this previously-down replica answering and returned it to the
    /// rotation. No-op when disabled.
    #[inline]
    pub fn probe_rejoin(&self) {
        if !enabled() {
            return;
        }
        self.slot.probe_rejoins.fetch_add(1, Ordering::Relaxed);
    }
}

/// Register (or look up) the counter slot for router backend replica
/// `role` of shard `shard` and return a recording handle. Re-registering
/// the same `(shard, role)` pair returns the existing slot, so repeated
/// router spawns in one process (tests, benches) do not grow the
/// registry. New replicas start healthy.
pub fn router_replica(shard: u32, role: &str) -> RouterReplicaHandle {
    let mut slots = ROUTER_SLOTS.lock().unwrap();
    if let Some(s) = slots.iter().find(|s| s.shard == shard && s.role == role) {
        return RouterReplicaHandle {
            slot: Arc::clone(s),
        };
    }
    let slot = Arc::new(RouterSlot {
        shard,
        role: role.to_string(),
        requests: AtomicU64::new(0),
        failures: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        healthy: AtomicU64::new(1),
        breaker_open: AtomicU64::new(0),
        probe_rejoins: AtomicU64::new(0),
        latency: LogHistogram::new(),
    });
    slots.push(Arc::clone(&slot));
    RouterReplicaHandle { slot }
}

/// The most recently captured trace, if any.
pub fn latest_trace() -> Option<QueryTrace> {
    REGISTRY.traces.latest()
}

/// Every trace currently in the ring, oldest first.
pub fn traces() -> Vec<QueryTrace> {
    REGISTRY.traces.all()
}

/// Counters of one index slot at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexCounters {
    /// Index kind name (one of [`INDEX_NAMES`]).
    pub index: &'static str,
    /// Queries flushed under this index.
    pub queries: u64,
    /// Total full distance evaluations.
    pub distance_evaluations: u64,
    /// Total index nodes visited.
    pub nodes_visited: u64,
    /// Total subtrees excluded by a pruning bound.
    pub subtrees_pruned: u64,
    /// Total candidates surfaced for exact-distance evaluation.
    pub postfilter_candidates: u64,
    /// Total coarse-stage candidates from two-stage approximate queries.
    pub coarse_candidates: u64,
    /// Total exact rerank evaluations from two-stage approximate queries.
    pub rerank_evaluations: u64,
    /// Total result rows returned.
    pub results: u64,
}

/// Counters of one extraction stage at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageCounters {
    /// Stage name (see [`Stage::name`]).
    pub stage: &'static str,
    /// Requests answered from the planner cache.
    pub hits: u64,
    /// Actual computes.
    pub misses: u64,
    /// Total nanoseconds spent computing.
    pub nanos: u64,
}

/// Latency tail summary of one op's histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Calls recorded.
    pub count: u64,
    /// Sum of recorded latencies, microseconds.
    pub sum_us: u64,
    /// Estimated p50 (log₂-bucket upper bound), microseconds.
    pub p50_us: u64,
    /// Estimated p95, microseconds.
    pub p95_us: u64,
    /// Estimated p99, microseconds.
    pub p99_us: u64,
}

impl LatencySummary {
    fn from_hist(h: &HistSnapshot) -> Self {
        LatencySummary {
            count: h.count,
            sum_us: h.sum,
            p50_us: h.quantile(50),
            p95_us: h.quantile(95),
            p99_us: h.quantile(99),
        }
    }
}

/// Event-loop serving counters at snapshot time (all zero on the
/// blocking path).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventLoopCounters {
    /// `epoll_wait` returns in the event loop.
    pub epoll_wakeups: u64,
    /// Gauge: connections the loop currently holds.
    pub open_conns: u64,
    /// High-water mark of requests concurrently in flight on one
    /// connection (pipeline depth).
    pub max_pipeline_depth: u64,
}

/// Segment-store counters and shape gauges at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Rows inserted through the live store.
    pub inserts: u64,
    /// Rows tombstoned through the live store.
    pub deletes: u64,
    /// Compactions committed.
    pub compactions: u64,
    /// Gauge: live immutable segments.
    pub segments: u64,
    /// Gauge: rows currently in the memtable.
    pub memtable_rows: u64,
    /// Gauge: tombstoned rows awaiting compaction.
    pub tombstones: u64,
    /// Gauge: store epoch at the last published snapshot.
    pub epoch: u64,
}

/// Counters of one router backend replica at snapshot time, in
/// registration order (shard-major for a router spawned normally).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouterReplicaCounters {
    /// Shard this replica serves.
    pub shard: u32,
    /// Replica role within the shard (`"primary"`, `"backup-1"`, …).
    pub role: String,
    /// Requests this replica answered successfully.
    pub requests: u64,
    /// Failed attempts against this replica.
    pub failures: u64,
    /// Failovers away from this replica onto a sibling.
    pub failovers: u64,
    /// `Overloaded` sheds observed from this replica.
    pub shed: u64,
    /// Gauge: whether the router currently considers the replica healthy.
    pub healthy: bool,
    /// Gauge: whether this replica's circuit breaker is currently open.
    pub breaker_open: bool,
    /// Probe-driven rejoins: times a background health probe returned
    /// this replica to the rotation.
    pub probe_rejoins: u64,
    /// Per-replica request latency summary.
    pub latency: LatencySummary,
}

/// Router-tier (cross-replica) counters at snapshot time. All-zero in
/// processes that never routed anything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterTierCounters {
    /// Hedged requests fired (second replica raced after the hedge delay).
    pub hedges_fired: u64,
    /// Hedged requests won by the hedge (second attempt answered first).
    pub hedges_won: u64,
    /// Degraded (partial shard coverage) replies sent to front clients.
    pub degraded_replies: u64,
    /// Circuit-breaker open transitions across all replicas.
    pub breaker_opens: u64,
    /// Failover attempts suppressed by an exhausted global retry budget.
    pub retry_budget_exhausted: u64,
    /// Health probes that failed (timed out or errored).
    pub probe_failures: u64,
    /// Latency summary of successful health probes.
    pub probe_latency: LatencySummary,
}

/// A point-in-time copy of every registry counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Whether recording was enabled at snapshot time.
    pub enabled: bool,
    /// Trace sampling rate at snapshot time (`0` = off).
    pub trace_sample_n: u64,
    /// Scheduler queue-depth gauge.
    pub queue_depth: u64,
    /// Per-index pruning counters, in [`INDEX_NAMES`] order.
    pub indexes: Vec<IndexCounters>,
    /// Per-stage planner counters, in [`Stage::ALL`] order.
    pub stages: Vec<StageCounters>,
    /// k-NN call latency summary.
    pub knn_latency: LatencySummary,
    /// Range call latency summary.
    pub range_latency: LatencySummary,
    /// Segment-store counters and gauges.
    pub store: StoreCounters,
    /// Event-loop serving counters (all zero on the blocking path).
    pub event_loop: EventLoopCounters,
    /// Per-replica router counters (empty in processes that never
    /// registered any, i.e. everything but a router).
    pub router: Vec<RouterReplicaCounters>,
    /// Router-tier hedging/degradation counters (all-zero outside a
    /// router).
    pub router_tier: RouterTierCounters,
    /// Traces currently held in the ring.
    pub trace_count: u64,
}

/// Snapshot every counter in the registry.
pub fn snapshot() -> ObsSnapshot {
    let indexes = INDEX_NAMES
        .iter()
        .zip(&REGISTRY.indexes)
        .map(|(&name, s)| IndexCounters {
            index: name,
            queries: s.queries.load(Ordering::Relaxed),
            distance_evaluations: s.distance_evaluations.load(Ordering::Relaxed),
            nodes_visited: s.nodes_visited.load(Ordering::Relaxed),
            subtrees_pruned: s.subtrees_pruned.load(Ordering::Relaxed),
            postfilter_candidates: s.postfilter_candidates.load(Ordering::Relaxed),
            coarse_candidates: s.coarse_candidates.load(Ordering::Relaxed),
            rerank_evaluations: s.rerank_evaluations.load(Ordering::Relaxed),
            results: s.results.load(Ordering::Relaxed),
        })
        .collect();
    let stages = Stage::ALL
        .iter()
        .zip(&REGISTRY.stages)
        .map(|(&stage, s)| StageCounters {
            stage: stage.name(),
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            nanos: s.nanos.load(Ordering::Relaxed),
        })
        .collect();
    let router = ROUTER_SLOTS
        .lock()
        .unwrap()
        .iter()
        .map(|s| RouterReplicaCounters {
            shard: s.shard,
            role: s.role.clone(),
            requests: s.requests.load(Ordering::Relaxed),
            failures: s.failures.load(Ordering::Relaxed),
            failovers: s.failovers.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            healthy: s.healthy.load(Ordering::Relaxed) != 0,
            breaker_open: s.breaker_open.load(Ordering::Relaxed) != 0,
            probe_rejoins: s.probe_rejoins.load(Ordering::Relaxed),
            latency: LatencySummary::from_hist(&s.latency.snapshot()),
        })
        .collect();
    let router_tier = RouterTierCounters {
        hedges_fired: ROUTER_TIER.hedges_fired.load(Ordering::Relaxed),
        hedges_won: ROUTER_TIER.hedges_won.load(Ordering::Relaxed),
        degraded_replies: ROUTER_TIER.degraded_replies.load(Ordering::Relaxed),
        breaker_opens: ROUTER_TIER.breaker_opens.load(Ordering::Relaxed),
        retry_budget_exhausted: ROUTER_TIER.retry_budget_exhausted.load(Ordering::Relaxed),
        probe_failures: ROUTER_TIER.probe_failures.load(Ordering::Relaxed),
        probe_latency: LatencySummary::from_hist(&ROUTER_TIER.probe_latency.snapshot()),
    };
    ObsSnapshot {
        enabled: enabled(),
        trace_sample_n: trace_sample_n(),
        queue_depth: REGISTRY.queue_depth.load(Ordering::Relaxed),
        indexes,
        stages,
        router,
        router_tier,
        knn_latency: LatencySummary::from_hist(&REGISTRY.knn_latency.snapshot()),
        range_latency: LatencySummary::from_hist(&REGISTRY.range_latency.snapshot()),
        store: StoreCounters {
            inserts: REGISTRY.store.inserts.load(Ordering::Relaxed),
            deletes: REGISTRY.store.deletes.load(Ordering::Relaxed),
            compactions: REGISTRY.store.compactions.load(Ordering::Relaxed),
            segments: REGISTRY.store.segments.load(Ordering::Relaxed),
            memtable_rows: REGISTRY.store.memtable_rows.load(Ordering::Relaxed),
            tombstones: REGISTRY.store.tombstones.load(Ordering::Relaxed),
            epoch: REGISTRY.store.epoch.load(Ordering::Relaxed),
        },
        event_loop: EventLoopCounters {
            epoll_wakeups: REGISTRY.event_loop.epoll_wakeups.load(Ordering::Relaxed),
            open_conns: REGISTRY.event_loop.open_conns.load(Ordering::Relaxed),
            max_pipeline_depth: REGISTRY
                .event_loop
                .max_pipeline_depth
                .load(Ordering::Relaxed),
        },
        trace_count: REGISTRY.traces.all().len() as u64,
    }
}

/// Zero every counter, histogram, gauge, and the trace ring. The enabled
/// flag and sampling rate are left as set. Intended for process startup
/// and benchmark harnesses, not for concurrent use with recording.
pub fn reset() {
    for s in &REGISTRY.indexes {
        s.queries.store(0, Ordering::Relaxed);
        s.distance_evaluations.store(0, Ordering::Relaxed);
        s.nodes_visited.store(0, Ordering::Relaxed);
        s.subtrees_pruned.store(0, Ordering::Relaxed);
        s.postfilter_candidates.store(0, Ordering::Relaxed);
        s.coarse_candidates.store(0, Ordering::Relaxed);
        s.rerank_evaluations.store(0, Ordering::Relaxed);
        s.results.store(0, Ordering::Relaxed);
    }
    for s in &REGISTRY.stages {
        s.hits.store(0, Ordering::Relaxed);
        s.misses.store(0, Ordering::Relaxed);
        s.nanos.store(0, Ordering::Relaxed);
    }
    REGISTRY.knn_latency.reset();
    REGISTRY.range_latency.reset();
    REGISTRY.queue_depth.store(0, Ordering::Relaxed);
    REGISTRY.store.inserts.store(0, Ordering::Relaxed);
    REGISTRY.store.deletes.store(0, Ordering::Relaxed);
    REGISTRY.store.compactions.store(0, Ordering::Relaxed);
    REGISTRY.store.segments.store(0, Ordering::Relaxed);
    REGISTRY.store.memtable_rows.store(0, Ordering::Relaxed);
    REGISTRY.store.tombstones.store(0, Ordering::Relaxed);
    REGISTRY.store.epoch.store(0, Ordering::Relaxed);
    REGISTRY
        .event_loop
        .epoll_wakeups
        .store(0, Ordering::Relaxed);
    REGISTRY.event_loop.open_conns.store(0, Ordering::Relaxed);
    REGISTRY
        .event_loop
        .max_pipeline_depth
        .store(0, Ordering::Relaxed);
    // Drop router replica registrations entirely: shard topology is
    // per-router-spawn state, and a fresh harness run should not inherit
    // slots from a previous topology.
    ROUTER_SLOTS.lock().unwrap().clear();
    ROUTER_TIER.hedges_fired.store(0, Ordering::Relaxed);
    ROUTER_TIER.hedges_won.store(0, Ordering::Relaxed);
    ROUTER_TIER.degraded_replies.store(0, Ordering::Relaxed);
    ROUTER_TIER.breaker_opens.store(0, Ordering::Relaxed);
    ROUTER_TIER
        .retry_budget_exhausted
        .store(0, Ordering::Relaxed);
    ROUTER_TIER.probe_failures.store(0, Ordering::Relaxed);
    ROUTER_TIER.probe_latency.reset();
    REGISTRY.traces.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and `cargo test` runs tests on
    // threads; serialize the tests that flip the enabled flag or assert
    // counter deltas.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn record_query_accumulates_under_the_right_slot() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let before = snapshot();
        let b = &before.indexes[slot_of("vp-tree")];
        let (q0, d0) = (b.queries, b.distance_evaluations);
        record_query(
            "vp-tree",
            QueryOp::Knn,
            2,
            100,
            &QueryCounters {
                distance_evaluations: 30,
                nodes_visited: 10,
                subtrees_pruned: 4,
                postfilter_candidates: 25,
                coarse_candidates: 0,
                rerank_evaluations: 0,
            },
            6,
        );
        let after = snapshot();
        let a = &after.indexes[slot_of("vp-tree")];
        assert_eq!(a.index, "vp-tree");
        assert_eq!(a.queries - q0, 2);
        assert_eq!(a.distance_evaluations - d0, 30);
        assert!(after.knn_latency.count > before.knn_latency.count);
    }

    #[test]
    fn unknown_index_names_fall_into_other() {
        assert_eq!(slot_of("linear"), 0);
        assert_eq!(slot_of("no-such-index"), INDEX_NAMES.len() - 1);
        assert_eq!(INDEX_NAMES[slot_of("no-such-index")], "other");
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let s0 = snapshot();
        set_enabled(false);
        record_query(
            "linear",
            QueryOp::Range,
            1,
            50,
            &QueryCounters {
                distance_evaluations: 1_000_000,
                ..QueryCounters::default()
            },
            1,
        );
        stage_hit(Stage::Resize);
        stage_miss(Stage::Resize, 1_000_000);
        assert_eq!(trace_should_sample(), None);
        set_enabled(true);
        let s1 = snapshot();
        // Nothing recorded while disabled (other tests may have recorded
        // concurrently, so only check the unmistakable million-unit spike
        // is absent).
        let spike = s1.indexes[slot_of("linear")].distance_evaluations
            - s0.indexes[slot_of("linear")].distance_evaluations;
        assert!(spike < 1_000_000);
    }

    #[test]
    fn store_counters_accumulate_and_gauges_overwrite() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let before = snapshot().store;
        store_inserted(5);
        store_deleted(2);
        store_compacted();
        set_store_state(3, 17, 2, 9);
        let after = snapshot().store;
        assert_eq!(after.inserts - before.inserts, 5);
        assert_eq!(after.deletes - before.deletes, 2);
        assert_eq!(after.compactions - before.compactions, 1);
        assert_eq!(after.segments, 3);
        assert_eq!(after.memtable_rows, 17);
        assert_eq!(after.tombstones, 2);
        assert_eq!(after.epoch, 9);
        set_store_state(0, 0, 0, 0);
    }

    #[test]
    fn router_replica_slots_register_once_and_accumulate() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let h = router_replica(7, "primary");
        let before = snapshot()
            .router
            .into_iter()
            .find(|r| r.shard == 7 && r.role == "primary")
            .expect("slot registered");
        assert!(before.healthy);
        h.request_ok(120);
        h.failure();
        h.failover();
        h.shed();
        h.set_healthy(false);
        // Same (shard, role) resolves to the same slot.
        let h2 = router_replica(7, "primary");
        h2.request_ok(80);
        let after = snapshot()
            .router
            .into_iter()
            .find(|r| r.shard == 7 && r.role == "primary")
            .unwrap();
        assert_eq!(after.requests - before.requests, 2);
        assert_eq!(after.failures - before.failures, 1);
        assert_eq!(after.failovers - before.failovers, 1);
        assert_eq!(after.shed - before.shed, 1);
        assert!(!after.healthy);
        assert!(after.latency.count >= before.latency.count + 2);
        h.set_healthy(true);
    }

    #[test]
    fn router_tier_counters_accumulate_and_reset() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let before = snapshot().router_tier;
        router_hedge_fired();
        router_hedge_fired();
        router_hedge_won();
        router_degraded_reply();
        router_breaker_opened();
        router_retry_budget_exhausted();
        router_probe_ok(250);
        router_probe_failed();
        let after = snapshot().router_tier;
        assert_eq!(after.hedges_fired - before.hedges_fired, 2);
        assert_eq!(after.hedges_won - before.hedges_won, 1);
        assert_eq!(after.degraded_replies - before.degraded_replies, 1);
        assert_eq!(after.breaker_opens - before.breaker_opens, 1);
        assert_eq!(
            after.retry_budget_exhausted - before.retry_budget_exhausted,
            1
        );
        assert_eq!(after.probe_failures - before.probe_failures, 1);
        assert_eq!(after.probe_latency.count - before.probe_latency.count, 1);
        reset();
        assert_eq!(snapshot().router_tier, RouterTierCounters::default());
    }

    #[test]
    fn breaker_gauge_and_probe_rejoins_record_per_replica() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let h = router_replica(9, "backup-1");
        let find = |snap: ObsSnapshot| {
            snap.router
                .into_iter()
                .find(|r| r.shard == 9 && r.role == "backup-1")
                .unwrap()
        };
        let before = find(snapshot());
        assert!(!before.breaker_open);
        h.set_breaker_open(true);
        h.probe_rejoin();
        let after = find(snapshot());
        assert!(after.breaker_open);
        assert_eq!(after.probe_rejoins - before.probe_rejoins, 1);
        // Breaker position is routing state: recorded even when disabled.
        set_enabled(false);
        h.set_breaker_open(false);
        assert!(!find(snapshot()).breaker_open);
        set_enabled(true);
    }

    #[test]
    fn stage_counters_accumulate() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let h0 = snapshot().stages[Stage::Mask as usize].hits;
        stage_hit(Stage::Mask);
        let t = StageTimer::start(Stage::Mask);
        t.finish();
        let s = snapshot();
        assert_eq!(s.stages[Stage::Mask as usize].stage, "mask");
        assert!(s.stages[Stage::Mask as usize].hits > h0);
        assert!(s.stages[Stage::Mask as usize].misses >= 1);
    }
}
