//! Fixed-bucket log₂ histograms with lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit length of a `u64` (0..=64).
pub const LOG2_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (latencies in microseconds,
/// typically). Bucket `b` holds samples whose bit length is `b`: bucket 0
/// holds the value 0, bucket `b ≥ 1` holds values in `[2^(b-1), 2^b - 1]`.
/// Recording is a single relaxed fetch-add, so the histogram is safe to
/// update from any number of threads on the hot path.
///
/// Quantiles are estimated by walking the cumulative counts and reporting
/// the **inclusive upper bound** of the bucket containing the requested
/// rank — an overestimate by at most 2×, which is the precision log₂
/// buckets buy. Exact per-batch tails still come from
/// `cbir_index::percentile` over raw samples; this histogram is the
/// unbounded-lifetime process-wide summary.
pub struct LogHistogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Bucket index for a sample: its bit length (0 for the value 0).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b` (`0` for bucket 0, else `2^b - 1`).
#[inline]
pub fn bucket_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// A fresh, zeroed histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; the inline-const repeat builds the
        // array element by element.
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; LOG2_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample (relaxed atomics; never blocks).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Zero every bucket and the count/sum.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's contents.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; LOG2_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`LogHistogram`] at one moment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`] for the bucketing rule).
    pub buckets: [u64; LOG2_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wraps on overflow; practically unreachable for
    /// microsecond latencies).
    pub sum: u64,
}

impl HistSnapshot {
    /// Nearest-rank quantile estimate: the inclusive upper bound of the
    /// bucket containing the `q`-quantile sample (`q` in 0..=100). Returns
    /// 0 when the histogram is empty.
    pub fn quantile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Same nearest-rank convention as `cbir_index::percentile`.
        let rank = (q * self.count).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(LOG2_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_rule() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 5, 5, 7, 100, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 1118);
        // Rank 4 of 7 at p50 lands in the [4,7] bucket.
        assert_eq!(snap.quantile(50), 7);
        // The p99 rank is the largest sample's bucket.
        assert_eq!(snap.quantile(99), 1023);
        h.reset();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(50), 0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LogHistogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum, 0);
        assert_eq!(snap.quantile(95), 0);
    }
}
