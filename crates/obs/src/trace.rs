//! Per-query trace capture: a sampled ring buffer of stage timelines.
//!
//! Tracing is **bit-invisible**: a trace only observes the timings and
//! counters of a query that executes exactly as it would untraced. It is
//! also off by default — [`set_trace_sample_n`] with `n = 0` (the initial
//! state) disables sampling entirely, `n = 1` traces every query, and
//! `n > 1` traces every n-th query (by a process-wide sequence number).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity of the trace ring; older traces are dropped once full.
pub const TRACE_RING_CAP: usize = 64;

/// One timed stage inside a traced query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Stage name (`"extract"`, `"search"`, `"rank"`, ...).
    pub name: &'static str,
    /// Offset from the start of the query, nanoseconds.
    pub start_ns: u64,
    /// Stage duration, nanoseconds.
    pub dur_ns: u64,
}

/// The recorded timeline and counters of one sampled query (or one
/// batched engine call, for the batch entry points).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryTrace {
    /// Process-wide query sequence number at capture time.
    pub seq: u64,
    /// Operation (`"knn"`, `"range"`, `"knn_batch"`, ...).
    pub op: &'static str,
    /// Index kind that served the query (`"vp-tree"`, `"linear"`, ...).
    pub index: &'static str,
    /// Queries covered by this trace (1 for single-query ops).
    pub queries: u64,
    /// End-to-end duration, nanoseconds.
    pub total_ns: u64,
    /// Stage timeline, in execution order.
    pub spans: Vec<TraceSpan>,
    /// Full distance evaluations during the traced call.
    pub distance_evaluations: u64,
    /// Index nodes visited during the traced call.
    pub nodes_visited: u64,
    /// Subtrees excluded by a pruning bound during the traced call.
    pub subtrees_pruned: u64,
    /// Candidates surfaced for exact-distance evaluation.
    pub postfilter_candidates: u64,
    /// Coarse-stage candidates from a two-stage approximate query (zero
    /// on the exact path).
    pub coarse_candidates: u64,
    /// Exact rerank evaluations from a two-stage approximate query (zero
    /// on the exact path).
    pub rerank_evaluations: u64,
    /// Result rows returned (summed over the batch for batch ops).
    pub results: u64,
}

pub(crate) struct TraceRing {
    sample_n: AtomicU64,
    seq: AtomicU64,
    ring: Mutex<VecDeque<QueryTrace>>,
}

impl TraceRing {
    pub(crate) const fn new() -> Self {
        TraceRing {
            sample_n: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn set_sample_n(&self, n: u64) {
        self.sample_n.store(n, Ordering::Relaxed);
    }

    pub(crate) fn sample_n(&self) -> u64 {
        self.sample_n.load(Ordering::Relaxed)
    }

    /// Advance the query sequence number and decide whether this query is
    /// sampled. Returns the sequence number when it is.
    pub(crate) fn should_sample(&self) -> Option<u64> {
        let n = self.sample_n.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        seq.is_multiple_of(n).then_some(seq)
    }

    pub(crate) fn push(&self, trace: QueryTrace) {
        let mut ring = self.ring.lock().expect("trace ring lock");
        if ring.len() == TRACE_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    pub(crate) fn latest(&self) -> Option<QueryTrace> {
        self.ring.lock().expect("trace ring lock").back().cloned()
    }

    pub(crate) fn all(&self) -> Vec<QueryTrace> {
        self.ring
            .lock()
            .expect("trace ring lock")
            .iter()
            .cloned()
            .collect()
    }

    pub(crate) fn reset(&self) {
        self.seq.store(0, Ordering::Relaxed);
        self.ring.lock().expect("trace ring lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seq: u64) -> QueryTrace {
        QueryTrace {
            seq,
            op: "knn",
            index: "linear",
            queries: 1,
            total_ns: 10,
            spans: vec![TraceSpan {
                name: "search",
                start_ns: 0,
                dur_ns: 10,
            }],
            distance_evaluations: 5,
            nodes_visited: 1,
            subtrees_pruned: 0,
            postfilter_candidates: 5,
            coarse_candidates: 0,
            rerank_evaluations: 0,
            results: 3,
        }
    }

    #[test]
    fn sampling_off_by_default() {
        let ring = TraceRing::new();
        assert_eq!(ring.should_sample(), None);
        ring.set_sample_n(1);
        assert_eq!(ring.should_sample(), Some(0));
        assert_eq!(ring.should_sample(), Some(1));
        ring.set_sample_n(3);
        // seq is at 2 now: 2 % 3 != 0, 3 % 3 == 0.
        assert_eq!(ring.should_sample(), None);
        assert_eq!(ring.should_sample(), Some(3));
    }

    #[test]
    fn ring_keeps_the_latest_traces() {
        let ring = TraceRing::new();
        for i in 0..(TRACE_RING_CAP as u64 + 5) {
            ring.push(trace(i));
        }
        let all = ring.all();
        assert_eq!(all.len(), TRACE_RING_CAP);
        assert_eq!(all.first().unwrap().seq, 5);
        assert_eq!(ring.latest().unwrap().seq, TRACE_RING_CAP as u64 + 4);
        ring.reset();
        assert!(ring.latest().is_none());
    }
}
