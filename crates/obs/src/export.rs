//! Text export surfaces: hand-rolled JSON and Prometheus text exposition
//! (both dependency-free; every value the registry holds is a `u64`, a
//! `bool`, or a static string, so no general serializer is needed).

use crate::trace::{QueryTrace, TraceSpan};
use crate::{LatencySummary, ObsSnapshot};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn latency_json(l: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"sum_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
        l.count, l.sum_us, l.p50_us, l.p95_us, l.p99_us
    )
}

/// Render a registry snapshot as a JSON object.
///
/// Top-level keys: `enabled`, `trace_sample_n`, `queue_depth`, `indexes`
/// (array, one object per [`crate::INDEX_NAMES`] slot), `stages` (array,
/// one object per [`crate::Stage`]), `latency` (object with `knn` and
/// `range` summaries), `store`, `event_loop` (epoll serving counters;
/// all-zero on the blocking path), `router` (array, one object per
/// registered router backend replica; empty outside a router process),
/// `router_tier` (hedging/degradation counters; all-zero outside a
/// router), `trace_count`.
pub fn to_json(snap: &ObsSnapshot) -> String {
    let indexes: Vec<String> = snap
        .indexes
        .iter()
        .map(|s| {
            format!(
                "    {{\"index\": \"{}\", \"queries\": {}, \"distance_evaluations\": {}, \
                 \"nodes_visited\": {}, \"subtrees_pruned\": {}, \"postfilter_candidates\": {}, \
                 \"coarse_candidates\": {}, \"rerank_evaluations\": {}, \"results\": {}}}",
                json_escape(s.index),
                s.queries,
                s.distance_evaluations,
                s.nodes_visited,
                s.subtrees_pruned,
                s.postfilter_candidates,
                s.coarse_candidates,
                s.rerank_evaluations,
                s.results
            )
        })
        .collect();
    let stages: Vec<String> = snap
        .stages
        .iter()
        .map(|s| {
            format!(
                "    {{\"stage\": \"{}\", \"hits\": {}, \"misses\": {}, \"nanos\": {}}}",
                json_escape(s.stage),
                s.hits,
                s.misses,
                s.nanos
            )
        })
        .collect();
    let router: Vec<String> = snap
        .router
        .iter()
        .map(|r| {
            format!(
                "    {{\"shard\": {}, \"replica\": \"{}\", \"requests\": {}, \
                 \"failures\": {}, \"failovers\": {}, \"shed\": {}, \"healthy\": {}, \
                 \"breaker_open\": {}, \"probe_rejoins\": {}, \"latency\": {}}}",
                r.shard,
                json_escape(&r.role),
                r.requests,
                r.failures,
                r.failovers,
                r.shed,
                r.healthy,
                r.breaker_open,
                r.probe_rejoins,
                latency_json(&r.latency)
            )
        })
        .collect();
    let router = if router.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", router.join(",\n"))
    };
    let tier = &snap.router_tier;
    let router_tier = format!(
        "{{\"hedges_fired\": {}, \"hedges_won\": {}, \"degraded_replies\": {}, \
         \"breaker_opens\": {}, \"retry_budget_exhausted\": {}, \"probe_failures\": {}, \
         \"probe_latency\": {}}}",
        tier.hedges_fired,
        tier.hedges_won,
        tier.degraded_replies,
        tier.breaker_opens,
        tier.retry_budget_exhausted,
        tier.probe_failures,
        latency_json(&tier.probe_latency)
    );
    let store = format!(
        "{{\"inserts\": {}, \"deletes\": {}, \"compactions\": {}, \"segments\": {}, \
         \"memtable_rows\": {}, \"tombstones\": {}, \"epoch\": {}}}",
        snap.store.inserts,
        snap.store.deletes,
        snap.store.compactions,
        snap.store.segments,
        snap.store.memtable_rows,
        snap.store.tombstones,
        snap.store.epoch
    );
    let event_loop = format!(
        "{{\"epoll_wakeups\": {}, \"open_conns\": {}, \"max_pipeline_depth\": {}}}",
        snap.event_loop.epoll_wakeups,
        snap.event_loop.open_conns,
        snap.event_loop.max_pipeline_depth
    );
    format!(
        "{{\n  \"enabled\": {},\n  \"trace_sample_n\": {},\n  \"queue_depth\": {},\n  \
         \"indexes\": [\n{}\n  ],\n  \"stages\": [\n{}\n  ],\n  \"latency\": {{\"knn\": {}, \
         \"range\": {}}},\n  \"store\": {},\n  \"event_loop\": {},\n  \"router\": {},\n  \
         \"router_tier\": {},\n  \"trace_count\": {}\n}}\n",
        snap.enabled,
        snap.trace_sample_n,
        snap.queue_depth,
        indexes.join(",\n"),
        stages.join(",\n"),
        latency_json(&snap.knn_latency),
        latency_json(&snap.range_latency),
        store,
        event_loop,
        router,
        router_tier,
        snap.trace_count
    )
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP`/`# TYPE` comment pairs followed by
/// `name{labels} value` sample lines, ending with a trailing newline.
pub fn to_prometheus(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, rows: &[(String, u64)]| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        for (labels, value) in rows {
            out.push_str(&format!("{name}{labels} {value}\n"));
        }
    };

    let idx_rows = |f: &dyn Fn(&crate::IndexCounters) -> u64| -> Vec<(String, u64)> {
        snap.indexes
            .iter()
            .map(|s| (format!("{{index=\"{}\"}}", prom_escape(s.index)), f(s)))
            .collect()
    };
    counter(
        "cbir_index_queries_total",
        "Queries flushed per index kind.",
        &idx_rows(&|s| s.queries),
    );
    counter(
        "cbir_index_distance_evaluations_total",
        "Full distance evaluations per index kind.",
        &idx_rows(&|s| s.distance_evaluations),
    );
    counter(
        "cbir_index_nodes_visited_total",
        "Index nodes visited per index kind.",
        &idx_rows(&|s| s.nodes_visited),
    );
    counter(
        "cbir_index_subtrees_pruned_total",
        "Subtrees excluded by a pruning bound per index kind.",
        &idx_rows(&|s| s.subtrees_pruned),
    );
    counter(
        "cbir_index_postfilter_candidates_total",
        "Candidates surfaced for exact-distance evaluation per index kind.",
        &idx_rows(&|s| s.postfilter_candidates),
    );
    counter(
        "cbir_index_coarse_candidates_total",
        "Coarse-stage candidates from two-stage approximate queries per index kind.",
        &idx_rows(&|s| s.coarse_candidates),
    );
    counter(
        "cbir_index_rerank_evaluations_total",
        "Exact rerank evaluations from two-stage approximate queries per index kind.",
        &idx_rows(&|s| s.rerank_evaluations),
    );
    counter(
        "cbir_index_results_total",
        "Result rows returned per index kind.",
        &idx_rows(&|s| s.results),
    );

    let stage_rows = |f: &dyn Fn(&crate::StageCounters) -> u64| -> Vec<(String, u64)> {
        snap.stages
            .iter()
            .map(|s| (format!("{{stage=\"{}\"}}", prom_escape(s.stage)), f(s)))
            .collect()
    };
    counter(
        "cbir_stage_hits_total",
        "Extraction-planner requests answered from cached intermediates.",
        &stage_rows(&|s| s.hits),
    );
    counter(
        "cbir_stage_misses_total",
        "Extraction-planner stage computes.",
        &stage_rows(&|s| s.misses),
    );
    counter(
        "cbir_stage_nanoseconds_total",
        "Nanoseconds spent computing each extraction stage.",
        &stage_rows(&|s| s.nanos),
    );

    if !snap.router.is_empty() {
        let replica_rows =
            |f: &dyn Fn(&crate::RouterReplicaCounters) -> u64| -> Vec<(String, u64)> {
                snap.router
                    .iter()
                    .map(|r| {
                        (
                            format!(
                                "{{shard=\"{}\",replica=\"{}\"}}",
                                r.shard,
                                prom_escape(&r.role)
                            ),
                            f(r),
                        )
                    })
                    .collect()
            };
        counter(
            "cbir_router_requests_total",
            "Requests answered per router backend replica.",
            &replica_rows(&|r| r.requests),
        );
        counter(
            "cbir_router_failures_total",
            "Failed attempts per router backend replica.",
            &replica_rows(&|r| r.failures),
        );
        counter(
            "cbir_router_failovers_total",
            "Failovers away from each router backend replica onto a sibling.",
            &replica_rows(&|r| r.failovers),
        );
        counter(
            "cbir_router_shed_total",
            "Overloaded sheds observed per router backend replica.",
            &replica_rows(&|r| r.shed),
        );
        counter(
            "cbir_router_replica_probe_rejoins_total",
            "Probe-driven rejoins per router backend replica.",
            &replica_rows(&|r| r.probe_rejoins),
        );
        out.push_str(
            "# HELP cbir_router_replica_healthy Whether the router currently considers the \
             replica healthy.\n# TYPE cbir_router_replica_healthy gauge\n",
        );
        for (labels, v) in replica_rows(&|r| r.healthy as u64) {
            out.push_str(&format!("cbir_router_replica_healthy{labels} {v}\n"));
        }
        out.push_str(
            "# HELP cbir_router_replica_breaker_open Whether the replica's circuit breaker \
             is currently open.\n# TYPE cbir_router_replica_breaker_open gauge\n",
        );
        for (labels, v) in replica_rows(&|r| r.breaker_open as u64) {
            out.push_str(&format!("cbir_router_replica_breaker_open{labels} {v}\n"));
        }
        out.push_str(
            "# HELP cbir_router_replica_latency_microseconds Per-replica request latency \
             (log2-bucket estimate).\n\
             # TYPE cbir_router_replica_latency_microseconds summary\n",
        );
        for r in &snap.router {
            let labels = format!("shard=\"{}\",replica=\"{}\"", r.shard, prom_escape(&r.role));
            let l = &r.latency;
            for (q, v) in [("0.5", l.p50_us), ("0.95", l.p95_us), ("0.99", l.p99_us)] {
                out.push_str(&format!(
                    "cbir_router_replica_latency_microseconds{{{labels},quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!(
                "cbir_router_replica_latency_microseconds_sum{{{labels}}} {}\n",
                l.sum_us
            ));
            out.push_str(&format!(
                "cbir_router_replica_latency_microseconds_count{{{labels}}} {}\n",
                l.count
            ));
        }

        let tier = &snap.router_tier;
        for (name, help, value) in [
            (
                "cbir_router_hedges_fired_total",
                "Hedged requests fired (second replica raced after the hedge delay).",
                tier.hedges_fired,
            ),
            (
                "cbir_router_hedges_won_total",
                "Hedged requests won by the hedge (second attempt answered first).",
                tier.hedges_won,
            ),
            (
                "cbir_router_degraded_replies_total",
                "Degraded (partial shard coverage) replies sent to front clients.",
                tier.degraded_replies,
            ),
            (
                "cbir_router_breaker_opens_total",
                "Circuit-breaker open transitions across all replicas.",
                tier.breaker_opens,
            ),
            (
                "cbir_router_retry_budget_exhausted_total",
                "Failover attempts suppressed by an exhausted global retry budget.",
                tier.retry_budget_exhausted,
            ),
            (
                "cbir_router_probe_failures_total",
                "Health probes that timed out or errored.",
                tier.probe_failures,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {value}\n"));
        }
        out.push_str(
            "# HELP cbir_router_probe_latency_microseconds Successful health-probe round-trip \
             latency (log2-bucket estimate).\n\
             # TYPE cbir_router_probe_latency_microseconds summary\n",
        );
        let l = &tier.probe_latency;
        for (q, v) in [("0.5", l.p50_us), ("0.95", l.p95_us), ("0.99", l.p99_us)] {
            out.push_str(&format!(
                "cbir_router_probe_latency_microseconds{{quantile=\"{q}\"}} {v}\n"
            ));
        }
        out.push_str(&format!(
            "cbir_router_probe_latency_microseconds_sum {}\n",
            l.sum_us
        ));
        out.push_str(&format!(
            "cbir_router_probe_latency_microseconds_count {}\n",
            l.count
        ));
    }

    out.push_str(
        "# HELP cbir_query_latency_microseconds Engine call latency (log2-bucket estimate).\n\
         # TYPE cbir_query_latency_microseconds summary\n",
    );
    for (op, l) in [("knn", &snap.knn_latency), ("range", &snap.range_latency)] {
        for (q, v) in [("0.5", l.p50_us), ("0.95", l.p95_us), ("0.99", l.p99_us)] {
            out.push_str(&format!(
                "cbir_query_latency_microseconds{{op=\"{op}\",quantile=\"{q}\"}} {v}\n"
            ));
        }
        out.push_str(&format!(
            "cbir_query_latency_microseconds_sum{{op=\"{op}\"}} {}\n",
            l.sum_us
        ));
        out.push_str(&format!(
            "cbir_query_latency_microseconds_count{{op=\"{op}\"}} {}\n",
            l.count
        ));
    }

    for (name, help, value) in [
        (
            "cbir_store_inserts_total",
            "Rows inserted through the live segment store.",
            snap.store.inserts,
        ),
        (
            "cbir_store_deletes_total",
            "Rows tombstoned through the live segment store.",
            snap.store.deletes,
        ),
        (
            "cbir_store_compactions_total",
            "Compactions committed by the live segment store.",
            snap.store.compactions,
        ),
    ] {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        out.push_str(&format!("{name} {value}\n"));
    }
    for (name, help, value) in [
        (
            "cbir_store_segments",
            "Live immutable segments.",
            snap.store.segments,
        ),
        (
            "cbir_store_memtable_rows",
            "Rows currently in the store memtable.",
            snap.store.memtable_rows,
        ),
        (
            "cbir_store_tombstones",
            "Tombstoned rows awaiting compaction.",
            snap.store.tombstones,
        ),
        (
            "cbir_store_epoch",
            "Store epoch at the last published snapshot.",
            snap.store.epoch,
        ),
    ] {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
        out.push_str(&format!("{name} {value}\n"));
    }

    out.push_str(
        "# HELP cbir_queue_depth Requests admitted but not yet dispatched.\n\
         # TYPE cbir_queue_depth gauge\n",
    );
    out.push_str(&format!("cbir_queue_depth {}\n", snap.queue_depth));
    out.push_str(
        "# HELP cbir_epoll_wakeups_total epoll_wait returns in the event loop.\n\
         # TYPE cbir_epoll_wakeups_total counter\n",
    );
    out.push_str(&format!(
        "cbir_epoll_wakeups_total {}\n",
        snap.event_loop.epoll_wakeups
    ));
    out.push_str(
        "# HELP cbir_event_loop_conns Connections currently held by the event loop.\n\
         # TYPE cbir_event_loop_conns gauge\n",
    );
    out.push_str(&format!(
        "cbir_event_loop_conns {}\n",
        snap.event_loop.open_conns
    ));
    out.push_str(
        "# HELP cbir_pipeline_depth_max High-water mark of requests in flight on one \
         connection.\n\
         # TYPE cbir_pipeline_depth_max gauge\n",
    );
    out.push_str(&format!(
        "cbir_pipeline_depth_max {}\n",
        snap.event_loop.max_pipeline_depth
    ));
    out.push_str(
        "# HELP cbir_traces_held Traces currently in the sampling ring.\n\
         # TYPE cbir_traces_held gauge\n",
    );
    out.push_str(&format!("cbir_traces_held {}\n", snap.trace_count));
    out
}

fn span_json(s: &TraceSpan) -> String {
    format!(
        "{{\"name\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}}}",
        json_escape(s.name),
        s.start_ns,
        s.dur_ns
    )
}

/// Render one trace as a JSON object. Keys: `seq`, `op`, `index`,
/// `queries`, `total_ns`, `spans` (array of `{name, start_ns, dur_ns}`),
/// `distance_evaluations`, `nodes_visited`, `subtrees_pruned`,
/// `postfilter_candidates`, `coarse_candidates`, `rerank_evaluations`,
/// `results`.
pub fn trace_to_json(t: &QueryTrace) -> String {
    let spans: Vec<String> = t.spans.iter().map(span_json).collect();
    format!(
        "{{\"seq\": {}, \"op\": \"{}\", \"index\": \"{}\", \"queries\": {}, \"total_ns\": {}, \
         \"spans\": [{}], \"distance_evaluations\": {}, \"nodes_visited\": {}, \
         \"subtrees_pruned\": {}, \"postfilter_candidates\": {}, \"coarse_candidates\": {}, \
         \"rerank_evaluations\": {}, \"results\": {}}}",
        t.seq,
        json_escape(t.op),
        json_escape(t.index),
        t.queries,
        t.total_ns,
        spans.join(", "),
        t.distance_evaluations,
        t.nodes_visited,
        t.subtrees_pruned,
        t.postfilter_candidates,
        t.coarse_candidates,
        t.rerank_evaluations,
        t.results
    )
}

/// Render a list of traces as a JSON object `{"traces": [...]}` (the
/// `explain` RPC payload; empty list when nothing has been sampled).
pub fn traces_to_json(traces: &[QueryTrace]) -> String {
    let rows: Vec<String> = traces
        .iter()
        .map(|t| format!("  {}", trace_to_json(t)))
        .collect();
    if rows.is_empty() {
        "{\"traces\": []}\n".to_string()
    } else {
        format!("{{\"traces\": [\n{}\n]}}\n", rows.join(",\n"))
    }
}

/// Render one trace as a human-readable stage timeline.
pub fn render_trace(t: &QueryTrace) -> String {
    let mut out = format!(
        "trace #{} — {} on {} ({} quer{}, {:.3} ms total)\n",
        t.seq,
        t.op,
        t.index,
        t.queries,
        if t.queries == 1 { "y" } else { "ies" },
        t.total_ns as f64 / 1e6
    );
    for s in &t.spans {
        let share = if t.total_ns > 0 {
            s.dur_ns as f64 / t.total_ns as f64 * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<10} +{:>9.3} ms  {:>9.3} ms  {share:>5.1}%\n",
            s.name,
            s.start_ns as f64 / 1e6,
            s.dur_ns as f64 / 1e6,
        ));
    }
    out.push_str(&format!(
        "  counters: {} distance evaluations, {} nodes visited, {} subtrees pruned, \
         {} postfilter candidates, {} results\n",
        t.distance_evaluations,
        t.nodes_visited,
        t.subtrees_pruned,
        t.postfilter_candidates,
        t.results
    ));
    if t.coarse_candidates > 0 || t.rerank_evaluations > 0 {
        out.push_str(&format!(
            "  approx: {} coarse candidates, {} rerank evaluations\n",
            t.coarse_candidates, t.rerank_evaluations
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexCounters, StageCounters};

    fn snap() -> ObsSnapshot {
        ObsSnapshot {
            enabled: true,
            trace_sample_n: 1,
            queue_depth: 2,
            indexes: vec![IndexCounters {
                index: "vp-tree",
                queries: 3,
                distance_evaluations: 40,
                nodes_visited: 12,
                subtrees_pruned: 7,
                postfilter_candidates: 33,
                coarse_candidates: 21,
                rerank_evaluations: 20,
                results: 9,
            }],
            stages: vec![StageCounters {
                stage: "resize",
                hits: 1,
                misses: 2,
                nanos: 5000,
            }],
            knn_latency: LatencySummary {
                count: 3,
                sum_us: 900,
                p50_us: 255,
                p95_us: 511,
                p99_us: 511,
            },
            range_latency: LatencySummary::default(),
            store: crate::StoreCounters {
                inserts: 11,
                deletes: 2,
                compactions: 1,
                segments: 3,
                memtable_rows: 7,
                tombstones: 1,
                epoch: 14,
            },
            event_loop: crate::EventLoopCounters {
                epoll_wakeups: 17,
                open_conns: 4,
                max_pipeline_depth: 3,
            },
            router: vec![
                crate::RouterReplicaCounters {
                    shard: 0,
                    role: "primary".to_string(),
                    requests: 42,
                    failures: 1,
                    failovers: 1,
                    shed: 2,
                    healthy: true,
                    breaker_open: false,
                    probe_rejoins: 0,
                    latency: LatencySummary {
                        count: 42,
                        sum_us: 8400,
                        p50_us: 127,
                        p95_us: 255,
                        p99_us: 255,
                    },
                },
                crate::RouterReplicaCounters {
                    shard: 1,
                    role: "backup-1".to_string(),
                    requests: 5,
                    failures: 0,
                    failovers: 0,
                    shed: 0,
                    healthy: false,
                    breaker_open: true,
                    probe_rejoins: 3,
                    latency: LatencySummary::default(),
                },
            ],
            router_tier: crate::RouterTierCounters {
                hedges_fired: 6,
                hedges_won: 4,
                degraded_replies: 2,
                breaker_opens: 1,
                retry_budget_exhausted: 5,
                probe_failures: 7,
                probe_latency: LatencySummary {
                    count: 9,
                    sum_us: 1800,
                    p50_us: 127,
                    p95_us: 255,
                    p99_us: 255,
                },
            },
            trace_count: 1,
        }
    }

    #[test]
    fn json_has_every_section() {
        let j = to_json(&snap());
        for key in [
            "\"enabled\"",
            "\"trace_sample_n\"",
            "\"queue_depth\"",
            "\"indexes\"",
            "\"stages\"",
            "\"latency\"",
            "\"store\"",
            "\"memtable_rows\"",
            "\"subtrees_pruned\"",
            "\"postfilter_candidates\"",
            "\"coarse_candidates\"",
            "\"rerank_evaluations\"",
            "\"p99_us\"",
            "\"router\"",
            "\"replica\"",
            "\"failovers\"",
            "\"healthy\"",
            "\"breaker_open\"",
            "\"probe_rejoins\"",
            "\"router_tier\"",
            "\"hedges_fired\"",
            "\"hedges_won\"",
            "\"degraded_replies\"",
            "\"retry_budget_exhausted\"",
            "\"probe_latency\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.contains("\"replica\": \"backup-1\""));
        assert!(j.contains("\"hedges_fired\": 6"));
        assert!(j.contains("\"degraded_replies\": 2"));
        // router_tier is always present, even with no registered replicas.
        let mut bare = snap();
        bare.router.clear();
        assert!(to_json(&bare).contains("\"router_tier\""));
        // Balanced braces/brackets — cheap structural sanity.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let p = to_prometheus(&snap());
        assert!(p.ends_with('\n'));
        for line in p.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            // Sample lines: metric_name[{labels}] value
            let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
            let name = name_part.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name: {line}"
            );
            if let Some(rest) = name_part.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(rest.starts_with('{') && rest.ends_with('}'), "{line}");
                }
            }
        }
        assert!(p.contains("cbir_index_subtrees_pruned_total{index=\"vp-tree\"} 7"));
        assert!(p.contains("cbir_index_coarse_candidates_total{index=\"vp-tree\"} 21"));
        assert!(p.contains("cbir_index_rerank_evaluations_total{index=\"vp-tree\"} 20"));
        assert!(p.contains("cbir_queue_depth 2"));
        assert!(p.contains("quantile=\"0.99\""));
        assert!(p.contains("cbir_store_inserts_total 11"));
        assert!(p.contains("cbir_store_segments 3"));
        assert!(p.contains("cbir_store_epoch 14"));
    }

    // Schema test for the router metric family: every metric name the
    // router tier adds must appear with the shard + replica-role labels,
    // and the labels must carry the fixture's values.
    #[test]
    fn prometheus_router_metrics_carry_shard_and_replica_labels() {
        let p = to_prometheus(&snap());
        for name in [
            "cbir_router_requests_total",
            "cbir_router_failures_total",
            "cbir_router_failovers_total",
            "cbir_router_shed_total",
            "cbir_router_replica_probe_rejoins_total",
            "cbir_router_replica_healthy",
            "cbir_router_replica_breaker_open",
        ] {
            assert!(
                p.contains(&format!("{name}{{shard=\"0\",replica=\"primary\"}}")),
                "missing primary sample for {name}"
            );
            assert!(
                p.contains(&format!("{name}{{shard=\"1\",replica=\"backup-1\"}}")),
                "missing backup sample for {name}"
            );
        }
        assert!(p.contains("cbir_router_requests_total{shard=\"0\",replica=\"primary\"} 42"));
        assert!(p.contains("cbir_router_replica_healthy{shard=\"1\",replica=\"backup-1\"} 0"));
        assert!(p.contains(
            "cbir_router_replica_latency_microseconds{shard=\"0\",replica=\"primary\",quantile=\"0.5\"} 127"
        ));
        assert!(p.contains(
            "cbir_router_replica_latency_microseconds_count{shard=\"0\",replica=\"primary\"} 42"
        ));
        assert!(p.contains("cbir_router_replica_breaker_open{shard=\"1\",replica=\"backup-1\"} 1"));
        assert!(p.contains(
            "cbir_router_replica_probe_rejoins_total{shard=\"1\",replica=\"backup-1\"} 3"
        ));
        // Tier-level hedging/degradation counters ride in the same
        // router-gated family.
        assert!(p.contains("cbir_router_hedges_fired_total 6"));
        assert!(p.contains("cbir_router_hedges_won_total 4"));
        assert!(p.contains("cbir_router_degraded_replies_total 2"));
        assert!(p.contains("cbir_router_breaker_opens_total 1"));
        assert!(p.contains("cbir_router_retry_budget_exhausted_total 5"));
        assert!(p.contains("cbir_router_probe_failures_total 7"));
        assert!(p.contains("cbir_router_probe_latency_microseconds{quantile=\"0.99\"} 255"));
        assert!(p.contains("cbir_router_probe_latency_microseconds_count 9"));
        // A snapshot with no registered replicas emits no router family
        // at all (no empty HELP/TYPE stubs).
        let mut bare = snap();
        bare.router.clear();
        assert!(!to_prometheus(&bare).contains("cbir_router_"));
    }

    #[test]
    fn trace_json_and_rendering() {
        let t = QueryTrace {
            seq: 4,
            op: "knn",
            index: "kd-tree",
            queries: 1,
            total_ns: 2_000_000,
            spans: vec![
                TraceSpan {
                    name: "extract",
                    start_ns: 0,
                    dur_ns: 1_500_000,
                },
                TraceSpan {
                    name: "search",
                    start_ns: 1_500_000,
                    dur_ns: 500_000,
                },
            ],
            distance_evaluations: 20,
            nodes_visited: 8,
            subtrees_pruned: 3,
            postfilter_candidates: 16,
            coarse_candidates: 0,
            rerank_evaluations: 0,
            results: 10,
        };
        let j = trace_to_json(&t);
        for key in [
            "\"seq\"",
            "\"op\"",
            "\"spans\"",
            "\"dur_ns\"",
            "\"results\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
        let wrapped = traces_to_json(std::slice::from_ref(&t));
        assert!(wrapped.starts_with("{\"traces\": ["));
        assert_eq!(traces_to_json(&[]), "{\"traces\": []}\n");
        let r = render_trace(&t);
        assert!(r.contains("extract"));
        assert!(r.contains("75.0%"));
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(prom_escape("r*-tree"), "r*-tree");
        assert_eq!(prom_escape("a\"b"), "a\\\"b");
    }
}
