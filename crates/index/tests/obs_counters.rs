//! Invariants of the per-query pruning counters that feed the
//! observability layer. The counters are documentation of the search's
//! actual work, so each claim the docs make is checked here against
//! every index on generated workloads:
//!
//! - exact indexes never evaluate more full distances than there are
//!   database vectors (the m-tree may re-evaluate routing objects that
//!   also appear in leaves, so its documented bound is `2n`);
//! - `postfilter_candidates` counts a subset of `distance_computations`
//!   (routing evaluations are excluded);
//! - linear scan prunes nothing and post-filters everything;
//! - counters are additive: a `knn_batch` total equals the sum of the
//!   same queries run one at a time;
//! - pruned searches return the same answers as the unpruned scan.

use cbir_distance::Measure;
use cbir_index::{
    knn_search_simple, range_search_simple, AntipoleTree, BatchStats, Dataset, KdTree, LinearScan,
    MTree, RStarTree, SearchIndex, SearchStats, VpTree,
};
use cbir_workload::Pcg32;

const CASES: usize = 24;

fn gen_dataset(rng: &mut Pcg32) -> Vec<Vec<f32>> {
    let dim = 2 + rng.below(4);
    let n = 8 + rng.below(150);
    (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| (rng.below(21) as f32 - 10.0) * 0.5)
                .collect()
        })
        .collect()
}

fn all_indexes(ds: &Dataset) -> Vec<Box<dyn SearchIndex>> {
    vec![
        Box::new(LinearScan::build(ds.clone(), Measure::L2).unwrap()),
        Box::new(KdTree::with_leaf_size(ds.clone(), Measure::L2, 4).unwrap()),
        Box::new(VpTree::with_leaf_size(ds.clone(), Measure::L2, 4).unwrap()),
        Box::new(AntipoleTree::build(ds.clone(), Measure::L2, 2.0).unwrap()),
        Box::new(RStarTree::bulk_load_with_capacity(ds.clone(), 4).unwrap()),
        Box::new(MTree::with_capacity(ds.clone(), Measure::L2, 4).unwrap()),
    ]
}

/// The documented ceiling on full distance evaluations for one query.
fn distance_budget(name: &str, n: u64) -> u64 {
    match name {
        // Routing objects are database members; the m-tree may pay for
        // one routing evaluation and one leaf evaluation of the same id.
        "m-tree" => 2 * n,
        _ => n,
    }
}

#[test]
fn distance_evaluations_bounded_by_database_size() {
    let mut rng = Pcg32::new(0xC0FE);
    for _ in 0..CASES {
        let vectors = gen_dataset(&mut rng);
        let ds = Dataset::from_vectors(&vectors).unwrap();
        let n = ds.len() as u64;
        let q: Vec<f32> = (0..ds.dim()).map(|_| rng.range_f32(-6.0, 6.0)).collect();
        let k = 1 + rng.below(12);
        let radius = rng.range_f32(0.5, 6.0);

        for idx in all_indexes(&ds) {
            let mut stats = SearchStats::new();
            idx.knn_search(&q, k, &mut stats);
            idx.range_search(&q, radius, &mut stats);
            // Two queries ran into one stats block, hence 2×.
            let budget = 2 * distance_budget(idx.name(), n);
            assert!(
                stats.distance_computations <= budget,
                "{}: {} distance evaluations over budget {budget} (n = {n})",
                idx.name(),
                stats.distance_computations,
            );
            assert!(
                stats.postfilter_candidates <= stats.distance_computations,
                "{}: postfilter {} > distance evaluations {}",
                idx.name(),
                stats.postfilter_candidates,
                stats.distance_computations,
            );
        }
    }
}

#[test]
fn linear_scan_prunes_nothing_and_postfilters_everything() {
    let mut rng = Pcg32::new(0xC1);
    for _ in 0..CASES {
        let vectors = gen_dataset(&mut rng);
        let ds = Dataset::from_vectors(&vectors).unwrap();
        let n = ds.len() as u64;
        let q: Vec<f32> = (0..ds.dim()).map(|_| rng.range_f32(-6.0, 6.0)).collect();
        let lin = LinearScan::build(ds, Measure::L2).unwrap();

        let mut stats = SearchStats::new();
        lin.knn_search(&q, 5, &mut stats);
        assert_eq!(stats.subtrees_pruned, 0, "linear scan cannot prune");
        assert_eq!(stats.postfilter_candidates, n);
        assert_eq!(stats.distance_computations, n);

        stats.reset();
        lin.range_search(&q, 2.0, &mut stats);
        assert_eq!(stats.subtrees_pruned, 0);
        assert_eq!(stats.postfilter_candidates, n);
    }
}

#[test]
fn pruned_results_match_linear_scan() {
    let mut rng = Pcg32::new(0xC2);
    for _ in 0..CASES {
        let vectors = gen_dataset(&mut rng);
        let ds = Dataset::from_vectors(&vectors).unwrap();
        let q: Vec<f32> = (0..ds.dim()).map(|_| rng.range_f32(-6.0, 6.0)).collect();
        let k = 1 + rng.below(12);
        let radius = rng.range_f32(0.5, 6.0);

        let lin = LinearScan::build(ds.clone(), Measure::L2).unwrap();
        let lin_range: Vec<usize> = range_search_simple(&lin, &q, radius)
            .iter()
            .map(|h| h.id)
            .collect();
        let lin_knn: Vec<u32> = knn_search_simple(&lin, &q, k)
            .iter()
            .map(|h| h.distance.to_bits())
            .collect();

        for idx in all_indexes(&ds) {
            // Range: pruning may only skip non-answers, so the id set is
            // contained in (and in fact equals) the scan's id set.
            let got: Vec<usize> = range_search_simple(idx.as_ref(), &q, radius)
                .iter()
                .map(|h| h.id)
                .collect();
            for id in &got {
                assert!(
                    lin_range.contains(id),
                    "{}: range returned id {id} the linear scan did not",
                    idx.name()
                );
            }
            assert_eq!(got.len(), lin_range.len(), "{}", idx.name());

            // k-NN: ties may reorder ids, but the distance multiset is
            // fixed by the dataset.
            let got: Vec<u32> = knn_search_simple(idx.as_ref(), &q, k)
                .iter()
                .map(|h| h.distance.to_bits())
                .collect();
            assert_eq!(
                got,
                lin_knn,
                "{}: knn distance profile diverged",
                idx.name()
            );
        }
    }
}

#[test]
fn batch_counters_equal_sum_of_single_queries() {
    let mut rng = Pcg32::new(0xC3);
    for _ in 0..8 {
        let vectors = gen_dataset(&mut rng);
        let ds = Dataset::from_vectors(&vectors).unwrap();
        let queries: Vec<Vec<f32>> = (0..5)
            .map(|_| (0..ds.dim()).map(|_| rng.range_f32(-6.0, 6.0)).collect())
            .collect();

        for idx in all_indexes(&ds) {
            let mut batch = BatchStats::new();
            idx.knn_batch(&queries, 4, &mut batch);

            let mut summed = SearchStats::new();
            for q in &queries {
                let mut one = SearchStats::new();
                idx.knn_search(q, 4, &mut one);
                summed.merge(&one);
            }

            let total = batch.total();
            assert_eq!(batch.queries(), queries.len(), "{}", idx.name());
            assert_eq!(
                total.distance_computations,
                summed.distance_computations,
                "{}: batch distance evaluations not additive",
                idx.name()
            );
            assert_eq!(
                total.nodes_visited,
                summed.nodes_visited,
                "{}: nodes_visited not additive",
                idx.name()
            );
            assert_eq!(
                total.subtrees_pruned,
                summed.subtrees_pruned,
                "{}: subtrees_pruned not additive",
                idx.name()
            );
            assert_eq!(
                total.postfilter_candidates,
                summed.postfilter_candidates,
                "{}: postfilter_candidates not additive",
                idx.name()
            );
        }
    }
}
