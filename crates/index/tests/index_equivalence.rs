//! The core correctness property of the whole indexing layer, checked on
//! deterministic generated workloads (no external property-testing
//! dependency, so the suite builds offline and every run checks the same
//! cases): **every index returns exactly the same result set as a
//! sequential scan** for both range and k-NN queries, on arbitrary
//! datasets, queries, radii and k — including adversarial cases
//! (duplicate points, collinear data, radius 0, k > n).

use cbir_distance::Measure;
use cbir_index::{
    knn_search_simple, range_search_simple, AntipoleTree, Dataset, KdTree, LinearScan, MTree,
    Neighbor, RStarTree, SearchIndex, VpTree,
};
use cbir_workload::Pcg32;

const CASES: usize = 64;

/// Dimension 1..=5, 1..=120 vectors, coordinates on a coarse half-integer
/// grid so duplicates and ties are common.
fn gen_dataset(rng: &mut Pcg32) -> (Vec<Vec<f32>>, usize) {
    let dim = 1 + rng.below(5);
    let n = 1 + rng.below(120);
    let vectors = (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| (rng.below(17) as f32 - 8.0) * 0.5)
                .collect()
        })
        .collect();
    (vectors, dim)
}

fn gen_query(rng: &mut Pcg32, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.range_f32(-10.0, 10.0)).collect()
}

fn close_enough(a: &[Neighbor], b: &[Neighbor]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.id == y.id && (x.distance - y.distance).abs() <= 1e-4)
}

#[test]
fn all_indexes_agree_with_linear_scan() {
    let mut rng = Pcg32::new(0xB1);
    for _ in 0..CASES {
        let (vectors, dim) = gen_dataset(&mut rng);
        let query = gen_query(&mut rng, dim);
        let radius = rng.range_f32(0.0, 10.0);
        let k = 1 + rng.below(20);

        let ds = Dataset::from_vectors(&vectors).unwrap();
        let lin = LinearScan::build(ds.clone(), Measure::L2).unwrap();
        let expected_range = range_search_simple(&lin, &query, radius);
        let expected_knn = knn_search_simple(&lin, &query, k);

        let indexes: Vec<Box<dyn SearchIndex>> = vec![
            Box::new(KdTree::with_leaf_size(ds.clone(), Measure::L2, 4).unwrap()),
            Box::new(VpTree::with_leaf_size(ds.clone(), Measure::L2, 4).unwrap()),
            Box::new(AntipoleTree::build(ds.clone(), Measure::L2, 2.0).unwrap()),
            Box::new(RStarTree::bulk_load_with_capacity(ds.clone(), 4).unwrap()),
            Box::new(RStarTree::build_incremental_with_capacity(ds.clone(), 4).unwrap()),
            Box::new(MTree::with_capacity(ds.clone(), Measure::L2, 4).unwrap()),
        ];
        for idx in &indexes {
            let got_range = range_search_simple(idx.as_ref(), &query, radius);
            assert!(
                close_enough(&got_range, &expected_range),
                "{} range mismatch: got {:?} expected {:?}",
                idx.name(),
                got_range,
                expected_range
            );
            let got_knn = knn_search_simple(idx.as_ref(), &query, k);
            assert!(
                close_enough(&got_knn, &expected_knn),
                "{} knn mismatch: got {:?} expected {:?}",
                idx.name(),
                got_knn,
                expected_knn
            );
        }
    }
}

#[test]
fn metric_trees_agree_under_l1_and_match() {
    let mut rng = Pcg32::new(0xB2);
    for _ in 0..CASES {
        let (vectors, dim) = gen_dataset(&mut rng);
        let query = gen_query(&mut rng, dim);
        let k = 1 + rng.below(10);
        let ds = Dataset::from_vectors(&vectors).unwrap();
        for measure in [Measure::L1, Measure::Match] {
            let lin = LinearScan::build(ds.clone(), measure.clone()).unwrap();
            let expected = knn_search_simple(&lin, &query, k);
            let vp = VpTree::build(ds.clone(), measure.clone()).unwrap();
            let ap = AntipoleTree::build(ds.clone(), measure.clone(), 1.0).unwrap();
            let mt = MTree::build(ds.clone(), measure.clone()).unwrap();
            assert!(
                close_enough(&knn_search_simple(&vp, &query, k), &expected),
                "vp-tree under {}",
                measure.name()
            );
            assert!(
                close_enough(&knn_search_simple(&ap, &query, k), &expected),
                "antipole under {}",
                measure.name()
            );
            assert!(
                close_enough(&knn_search_simple(&mt, &query, k), &expected),
                "m-tree under {}",
                measure.name()
            );
        }
    }
}

#[test]
fn range_zero_returns_exact_matches_only() {
    let mut rng = Pcg32::new(0xB3);
    for _ in 0..CASES {
        let (vectors, _dim) = gen_dataset(&mut rng);
        let pick = rng.below(120);
        let ds = Dataset::from_vectors(&vectors).unwrap();
        let q: Vec<f32> = ds.vector(pick % ds.len()).to_vec();
        for idx in [
            Box::new(KdTree::build(ds.clone(), Measure::L2).unwrap()) as Box<dyn SearchIndex>,
            Box::new(VpTree::build(ds.clone(), Measure::L2).unwrap()),
            Box::new(AntipoleTree::build(ds.clone(), Measure::L2, 0.5).unwrap()),
            Box::new(RStarTree::bulk_load(ds.clone()).unwrap()),
        ] {
            let hits = range_search_simple(idx.as_ref(), &q, 0.0);
            assert!(
                !hits.is_empty(),
                "{}: query point itself not found",
                idx.name()
            );
            for h in &hits {
                assert_eq!(
                    ds.vector(h.id),
                    &q[..],
                    "{} returned a non-match",
                    idx.name()
                );
            }
        }
    }
}

#[test]
fn knn_results_are_sorted_and_unique() {
    let mut rng = Pcg32::new(0xB4);
    for _ in 0..CASES {
        let (vectors, _dim) = gen_dataset(&mut rng);
        let k = 1 + rng.below(30);
        let ds = Dataset::from_vectors(&vectors).unwrap();
        let q: Vec<f32> = ds.vector(0).to_vec();
        for idx in [
            Box::new(KdTree::build(ds.clone(), Measure::L2).unwrap()) as Box<dyn SearchIndex>,
            Box::new(VpTree::build(ds.clone(), Measure::L2).unwrap()),
            Box::new(AntipoleTree::build(ds.clone(), Measure::L2, 2.0).unwrap()),
            Box::new(RStarTree::bulk_load(ds.clone()).unwrap()),
        ] {
            let hits = knn_search_simple(idx.as_ref(), &q, k);
            assert_eq!(hits.len(), k.min(ds.len()), "{}", idx.name());
            for w in hits.windows(2) {
                assert!(
                    w[0].distance < w[1].distance
                        || (w[0].distance == w[1].distance && w[0].id < w[1].id),
                    "{}: unsorted or duplicate results",
                    idx.name()
                );
            }
        }
    }
}
