//! The core correctness property of the whole indexing layer, checked with
//! property-based testing: **every index returns exactly the same result
//! set as a sequential scan** for both range and k-NN queries, on arbitrary
//! datasets, queries, radii and k — including adversarial cases (duplicate
//! points, collinear data, radius 0, k > n).

use cbir_distance::Measure;
use cbir_index::{
    knn_search_simple, range_search_simple, AntipoleTree, Dataset, KdTree, LinearScan, MTree,
    Neighbor, RStarTree, SearchIndex, VpTree,
};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = (Vec<Vec<f32>>, usize)> {
    // Dimension 1..=5, 1..=120 vectors, coordinates that often collide.
    (1usize..=5).prop_flat_map(|dim| {
        (
            prop::collection::vec(
                prop::collection::vec((-8i8..=8).prop_map(|v| v as f32 * 0.5), dim),
                1..=120,
            ),
            Just(dim),
        )
    })
}

fn close_enough(a: &[Neighbor], b: &[Neighbor]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.id == y.id && (x.distance - y.distance).abs() <= 1e-4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_indexes_agree_with_linear_scan(
        (vectors, dim) in dataset_strategy(),
        query_raw in prop::collection::vec(-10.0f32..10.0, 5),
        radius in 0.0f32..10.0,
        k in 1usize..=20,
    ) {
        let ds = Dataset::from_vectors(&vectors).unwrap();
        let query: Vec<f32> = query_raw[..dim].to_vec();
        let lin = LinearScan::build(ds.clone(), Measure::L2).unwrap();
        let expected_range = range_search_simple(&lin, &query, radius);
        let expected_knn = knn_search_simple(&lin, &query, k);

        let indexes: Vec<Box<dyn SearchIndex>> = vec![
            Box::new(KdTree::with_leaf_size(ds.clone(), Measure::L2, 4).unwrap()),
            Box::new(VpTree::with_leaf_size(ds.clone(), Measure::L2, 4).unwrap()),
            Box::new(AntipoleTree::build(ds.clone(), Measure::L2, 2.0).unwrap()),
            Box::new(RStarTree::bulk_load_with_capacity(ds.clone(), 4).unwrap()),
            Box::new(RStarTree::build_incremental_with_capacity(ds.clone(), 4).unwrap()),
            Box::new(MTree::with_capacity(ds.clone(), Measure::L2, 4).unwrap()),
        ];
        for idx in &indexes {
            let got_range = range_search_simple(idx.as_ref(), &query, radius);
            prop_assert!(
                close_enough(&got_range, &expected_range),
                "{} range mismatch: got {:?} expected {:?}",
                idx.name(), got_range, expected_range
            );
            let got_knn = knn_search_simple(idx.as_ref(), &query, k);
            prop_assert!(
                close_enough(&got_knn, &expected_knn),
                "{} knn mismatch: got {:?} expected {:?}",
                idx.name(), got_knn, expected_knn
            );
        }
    }

    #[test]
    fn metric_trees_agree_under_l1_and_match(
        (vectors, dim) in dataset_strategy(),
        query_raw in prop::collection::vec(-10.0f32..10.0, 5),
        k in 1usize..=10,
    ) {
        let ds = Dataset::from_vectors(&vectors).unwrap();
        let query: Vec<f32> = query_raw[..dim].to_vec();
        for measure in [Measure::L1, Measure::Match] {
            let lin = LinearScan::build(ds.clone(), measure.clone()).unwrap();
            let expected = knn_search_simple(&lin, &query, k);
            let vp = VpTree::build(ds.clone(), measure.clone()).unwrap();
            let ap = AntipoleTree::build(ds.clone(), measure.clone(), 1.0).unwrap();
            let mt = MTree::build(ds.clone(), measure.clone()).unwrap();
            prop_assert!(close_enough(&knn_search_simple(&vp, &query, k), &expected),
                "vp-tree under {}", measure.name());
            prop_assert!(close_enough(&knn_search_simple(&ap, &query, k), &expected),
                "antipole under {}", measure.name());
            prop_assert!(close_enough(&knn_search_simple(&mt, &query, k), &expected),
                "m-tree under {}", measure.name());
        }
    }

    #[test]
    fn range_zero_returns_exact_matches_only(
        (vectors, dim) in dataset_strategy(),
        pick in 0usize..120,
    ) {
        let ds = Dataset::from_vectors(&vectors).unwrap();
        let q: Vec<f32> = ds.vector(pick % ds.len()).to_vec();
        let _ = dim;
        for idx in [
            Box::new(KdTree::build(ds.clone(), Measure::L2).unwrap()) as Box<dyn SearchIndex>,
            Box::new(VpTree::build(ds.clone(), Measure::L2).unwrap()),
            Box::new(AntipoleTree::build(ds.clone(), Measure::L2, 0.5).unwrap()),
            Box::new(RStarTree::bulk_load(ds.clone()).unwrap()),
        ] {
            let hits = range_search_simple(idx.as_ref(), &q, 0.0);
            prop_assert!(!hits.is_empty(), "{}: query point itself not found", idx.name());
            for h in &hits {
                prop_assert_eq!(ds.vector(h.id), &q[..], "{} returned a non-match", idx.name());
            }
        }
    }

    #[test]
    fn knn_results_are_sorted_and_unique(
        (vectors, _dim) in dataset_strategy(),
        k in 1usize..=30,
    ) {
        let ds = Dataset::from_vectors(&vectors).unwrap();
        let q: Vec<f32> = ds.vector(0).to_vec();
        for idx in [
            Box::new(KdTree::build(ds.clone(), Measure::L2).unwrap()) as Box<dyn SearchIndex>,
            Box::new(VpTree::build(ds.clone(), Measure::L2).unwrap()),
            Box::new(AntipoleTree::build(ds.clone(), Measure::L2, 2.0).unwrap()),
            Box::new(RStarTree::bulk_load(ds.clone()).unwrap()),
        ] {
            let hits = knn_search_simple(idx.as_ref(), &q, k);
            prop_assert_eq!(hits.len(), k.min(ds.len()), "{}", idx.name());
            for w in hits.windows(2) {
                prop_assert!(
                    w[0].distance < w[1].distance
                        || (w[0].distance == w[1].distance && w[0].id < w[1].id),
                    "{}: unsorted or duplicate results", idx.name()
                );
            }
        }
    }
}
