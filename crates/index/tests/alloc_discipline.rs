//! Allocation discipline of the batched query path: after one warm-up
//! pass over the query set, running steady-state searches through
//! `knn_into` / `range_into` with a reused [`QueryScratch`] performs
//! **zero** heap allocations. Verified with a counting global allocator.
//!
//! This file holds exactly one `#[test]` so no sibling test thread can
//! allocate inside the measured window.

use cbir_distance::Measure;
use cbir_index::{
    Dataset, KdTree, LinearScan, Neighbor, QueryScratch, SearchIndex, SearchStats, VpTree,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn run_pass(
    index: &dyn SearchIndex,
    queries: &[Vec<f32>],
    scratch: &mut QueryScratch,
    out: &mut Vec<Neighbor>,
) {
    let mut stats = SearchStats::new();
    for q in queries {
        index.knn_into(q, 10, scratch, &mut stats, out);
        std::hint::black_box(&out);
        index.range_into(q, 3.0, scratch, &mut stats, out);
        std::hint::black_box(&out);
    }
}

#[test]
fn steady_state_queries_do_not_allocate() {
    let vectors = cbir_workload::clustered(2_000, 8, 8, 1.0, 10.0, 3);
    let queries = cbir_workload::queries(&vectors, 32, 0.5, 5);
    let ds = Dataset::from_vectors(&vectors).unwrap();

    let indexes: Vec<Box<dyn SearchIndex>> = vec![
        Box::new(VpTree::build(ds.clone(), Measure::L2).unwrap()),
        Box::new(KdTree::build(ds.clone(), Measure::L2).unwrap()),
        Box::new(LinearScan::build(ds, Measure::L2).unwrap()),
    ];
    for index in &indexes {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        // Warm-up: scratch buffers and the output vector reach their
        // high-water capacity on the first pass over the query set.
        run_pass(index.as_ref(), &queries, &mut scratch, &mut out);

        let before = ALLOCATIONS.load(Ordering::SeqCst);
        run_pass(index.as_ref(), &queries, &mut scratch, &mut out);
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "{}: {} heap allocations in steady state",
            index.name(),
            after - before
        );
    }
}
