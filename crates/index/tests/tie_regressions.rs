//! Regression tests for 1-ulp pruning errors at exact-tie boundaries:
//! triangle-inequality lower bounds computed from rounded f32 distances
//! could wrongfully prune an equal-distance candidate with a smaller id,
//! changing deterministic tie-breaking. Fixed by `tri_slack` margins in
//! every pruning comparison.

use cbir_distance::Measure;
use cbir_index::{knn_search_simple, AntipoleTree, Dataset, LinearScan, MTree};

#[test]
fn duplicate_heavy_ties_resolve_to_lowest_id_small() {
    let vectors: Vec<Vec<f32>> = vec![
        [0.0],
        [0.0],
        [0.0],
        [0.0],
        [0.5],
        [0.0],
        [0.0],
        [-0.5],
        [-4.0],
        [0.0],
        [-0.5],
        [0.5],
        [0.5],
        [0.0],
        [0.5],
        [-2.5],
        [0.5],
        [-0.5],
        [0.0],
        [0.5],
        [0.5],
        [0.5],
        [4.0],
        [-2.5],
        [-3.5],
        [-1.0],
        [-0.5],
        [0.5],
        [3.0],
        [0.5],
        [-2.5],
        [-1.5],
        [4.0],
        [-3.5],
        [3.0],
        [1.5],
        [1.5],
        [2.5],
        [0.0],
        [2.0],
        [-2.0],
        [3.5],
        [1.0],
        [1.5],
        [4.0],
        [1.0],
        [-4.0],
        [-0.5],
        [-2.0],
        [-2.0],
        [-2.5],
        [-3.0],
        [4.0],
        [-4.0],
        [3.5],
        [-4.0],
        [2.0],
        [0.0],
        [-1.0],
        [2.5],
        [-1.0],
        [-2.5],
        [-1.5],
        [-1.5],
        [-3.5],
        [-2.5],
        [-1.5],
        [-3.0],
        [1.5],
        [-0.5],
        [-1.5],
        [-0.5],
        [-3.5],
        [0.5],
        [3.0],
        [-1.5],
        [0.0],
        [-4.0],
        [4.0],
        [1.0],
        [0.5],
        [3.5],
        [3.5],
        [3.5],
        [1.5],
        [-1.5],
        [-3.5],
    ]
    .into_iter()
    .map(|v: [f32; 1]| v.to_vec())
    .collect();
    let ds = Dataset::from_vectors(&vectors).unwrap();
    let q = vec![0.19732653f32];
    for measure in [Measure::L1, Measure::Match] {
        let lin = LinearScan::build(ds.clone(), measure.clone()).unwrap();
        let e = knn_search_simple(&lin, &q, 1);
        let ap = AntipoleTree::build(ds.clone(), measure.clone(), 1.0).unwrap();
        let g = knn_search_simple(&ap, &q, 1);
        assert_eq!(
            g,
            e,
            "antipole {}: expected {e:?} got {g:?}",
            measure.name()
        );
        let mt = MTree::build(ds.clone(), measure.clone()).unwrap();
        let g = knn_search_simple(&mt, &q, 1);
        assert_eq!(g, e, "m-tree {}", measure.name());
    }
}

#[test]
fn duplicate_heavy_full_search_finds_all_ties() {
    let vectors: Vec<Vec<f32>> = vec![
        [0.0f32],
        [0.0],
        [0.0],
        [0.0],
        [0.5],
        [0.0],
        [0.0],
        [-0.5],
        [-4.0],
        [0.0],
        [-0.5],
        [0.5],
        [0.5],
        [0.0],
        [0.5],
        [-2.5],
        [0.5],
        [-0.5],
        [0.0],
        [0.5],
        [0.5],
        [0.5],
        [4.0],
        [-2.5],
        [-3.5],
        [-1.0],
        [-0.5],
        [0.5],
        [3.0],
        [0.5],
        [-2.5],
        [-1.5],
        [4.0],
        [-3.5],
        [3.0],
        [1.5],
        [1.5],
        [2.5],
        [0.0],
        [2.0],
        [-2.0],
        [3.5],
        [1.0],
        [1.5],
        [4.0],
        [1.0],
        [-4.0],
        [-0.5],
        [-2.0],
        [-2.0],
        [-2.5],
        [-3.0],
        [4.0],
        [-4.0],
        [3.5],
        [-4.0],
        [2.0],
        [0.0],
        [-1.0],
        [2.5],
        [-1.0],
        [-2.5],
        [-1.5],
        [-1.5],
        [-3.5],
        [-2.5],
        [-1.5],
        [-3.0],
        [1.5],
        [-0.5],
        [-1.5],
        [-0.5],
        [-3.5],
        [0.5],
        [3.0],
        [-1.5],
        [0.0],
        [-4.0],
        [4.0],
        [1.0],
        [0.5],
        [3.5],
        [3.5],
        [3.5],
        [1.5],
        [-1.5],
        [-3.5],
    ]
    .into_iter()
    .map(|v: [f32; 1]| v.to_vec())
    .collect();
    let ds = cbir_index::Dataset::from_vectors(&vectors).unwrap();
    let q = vec![0.19732653f32];
    let ap = cbir_index::AntipoleTree::build(ds.clone(), cbir_distance::Measure::L1, 1.0).unwrap();
    // All ids at distance 0.19732653 (value 0.0):
    let hits = cbir_index::knn_search_simple(&ap, &q, 87);
    let zeros: Vec<usize> = hits
        .iter()
        .filter(|h| h.distance < 0.2)
        .map(|h| h.id)
        .collect();
    assert_eq!(zeros, vec![0, 1, 2, 3, 5, 6, 9, 13, 18, 38, 57, 76]);
    let r = cbir_index::range_search_simple(&ap, &q, 0.2);
    assert_eq!(r.iter().map(|h| h.id).collect::<Vec<_>>(), zeros);
}
