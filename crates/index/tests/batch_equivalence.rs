//! The batched execution contract: for every index kind, across a grid of
//! measures, radii, and k, `knn_batch` / `range_batch` (and their
//! parallel fan-out variants) return results **bit-identical** — same
//! ids, same f32 distance bits, same ordering — to the single-query
//! path, and every index agrees bit-for-bit with the sequential scan.

use cbir_distance::Measure;
use cbir_index::{
    knn_batch_parallel, range_batch_parallel, AntipoleTree, BatchStats, Dataset, KdTree,
    LinearScan, MTree, Neighbor, RStarTree, SearchIndex, SearchStats, VpTree,
};

const RADII: [f32; 4] = [0.0, 0.5, 2.0, 50.0];
const KS: [usize; 4] = [1, 3, 10, 500];
const THREADS: [usize; 3] = [1, 2, 5];

fn test_dataset() -> (Dataset, Vec<Vec<f32>>) {
    let vectors = cbir_workload::clustered(300, 4, 6, 1.0, 10.0, 77);
    let queries = cbir_workload::queries(&vectors, 24, 0.5, 99);
    (Dataset::from_vectors(&vectors).unwrap(), queries)
}

/// Every index kind that supports `measure`, including both R*-tree
/// construction paths, plus the sequential-scan reference in slot 0.
fn lineup(ds: &Dataset, measure: &Measure) -> Vec<Box<dyn SearchIndex>> {
    let mut out: Vec<Box<dyn SearchIndex>> = vec![Box::new(
        LinearScan::build(ds.clone(), measure.clone()).unwrap(),
    )];
    if matches!(measure, Measure::L1 | Measure::L2 | Measure::LInf) {
        out.push(Box::new(
            KdTree::with_leaf_size(ds.clone(), measure.clone(), 4).unwrap(),
        ));
    }
    if measure.is_true_metric() {
        out.push(Box::new(
            VpTree::with_leaf_size(ds.clone(), measure.clone(), 4).unwrap(),
        ));
        out.push(Box::new(
            AntipoleTree::build(ds.clone(), measure.clone(), 2.0).unwrap(),
        ));
        out.push(Box::new(
            MTree::with_capacity(ds.clone(), measure.clone(), 4).unwrap(),
        ));
    }
    if matches!(measure, Measure::L2) {
        out.push(Box::new(
            RStarTree::bulk_load_with_capacity(ds.clone(), 4).unwrap(),
        ));
        out.push(Box::new(
            RStarTree::build_incremental_with_capacity(ds.clone(), 4).unwrap(),
        ));
    }
    out
}

/// Bitwise equality: same ids, same order, same f32 bit patterns.
fn assert_bit_identical(got: &[Vec<Neighbor>], want: &[Vec<Neighbor>], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: result count");
    for (qi, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{what}: query {qi} hit count");
        for (a, b) in g.iter().zip(w) {
            assert_eq!(a.id, b.id, "{what}: query {qi} id");
            assert_eq!(
                a.distance.to_bits(),
                b.distance.to_bits(),
                "{what}: query {qi} distance bits ({} vs {})",
                a.distance,
                b.distance
            );
        }
    }
}

#[test]
fn knn_batch_bit_identical_to_single_path_and_scan() {
    let (ds, queries) = test_dataset();
    for measure in [Measure::L1, Measure::L2, Measure::LInf, Measure::Match] {
        let indexes = lineup(&ds, &measure);
        for &k in &KS {
            let scan_single: Vec<Vec<Neighbor>> = queries
                .iter()
                .map(|q| {
                    let mut stats = SearchStats::new();
                    indexes[0].knn_search(q, k, &mut stats)
                })
                .collect();
            for idx in &indexes {
                let what = format!("{} {} k={k}", idx.name(), measure.name());
                let single: Vec<Vec<Neighbor>> = queries
                    .iter()
                    .map(|q| {
                        let mut stats = SearchStats::new();
                        idx.knn_search(q, k, &mut stats)
                    })
                    .collect();
                assert_bit_identical(&single, &scan_single, &format!("{what} vs scan"));

                let mut stats = BatchStats::new();
                let batched = idx.knn_batch(&queries, k, &mut stats);
                assert_bit_identical(&batched, &single, &format!("{what} batch"));
                assert_eq!(stats.queries(), queries.len(), "{what}");

                for &threads in &THREADS {
                    let mut stats = BatchStats::new();
                    let par = knn_batch_parallel(idx.as_ref(), &queries, k, threads, &mut stats);
                    assert_bit_identical(&par, &single, &format!("{what} threads={threads}"));
                    assert_eq!(stats.queries(), queries.len(), "{what}");
                }
            }
        }
    }
}

#[test]
fn range_batch_bit_identical_to_single_path_and_scan() {
    let (ds, queries) = test_dataset();
    for measure in [Measure::L1, Measure::L2, Measure::LInf, Measure::Match] {
        let indexes = lineup(&ds, &measure);
        for &radius in &RADII {
            let scan_single: Vec<Vec<Neighbor>> = queries
                .iter()
                .map(|q| {
                    let mut stats = SearchStats::new();
                    indexes[0].range_search(q, radius, &mut stats)
                })
                .collect();
            for idx in &indexes {
                let what = format!("{} {} r={radius}", idx.name(), measure.name());
                let single: Vec<Vec<Neighbor>> = queries
                    .iter()
                    .map(|q| {
                        let mut stats = SearchStats::new();
                        idx.range_search(q, radius, &mut stats)
                    })
                    .collect();
                assert_bit_identical(&single, &scan_single, &format!("{what} vs scan"));

                let mut stats = BatchStats::new();
                let batched = idx.range_batch(&queries, radius, &mut stats);
                assert_bit_identical(&batched, &single, &format!("{what} batch"));

                for &threads in &THREADS {
                    let mut stats = BatchStats::new();
                    let par =
                        range_batch_parallel(idx.as_ref(), &queries, radius, threads, &mut stats);
                    assert_bit_identical(&par, &single, &format!("{what} threads={threads}"));
                }
            }
        }
    }
}

#[test]
fn batch_stats_match_single_query_totals() {
    let (ds, queries) = test_dataset();
    for idx in lineup(&ds, &Measure::L2) {
        let mut total_single = 0u64;
        for q in &queries {
            let mut stats = SearchStats::new();
            idx.knn_search(q, 5, &mut stats);
            total_single += stats.distance_computations;
        }
        let mut batch = BatchStats::new();
        idx.knn_batch(&queries, 5, &mut batch);
        assert_eq!(
            batch.total().distance_computations,
            total_single,
            "{}: batch stats diverge from single-query totals",
            idx.name()
        );
        for &threads in &THREADS {
            let mut par = BatchStats::new();
            knn_batch_parallel(idx.as_ref(), &queries, 5, threads, &mut par);
            assert_eq!(
                par.total().distance_computations,
                total_single,
                "{}: parallel stats diverge ({threads} threads)",
                idx.name()
            );
        }
    }
}

#[test]
fn duplicate_distance_ties_break_by_id_across_thread_counts() {
    // 60 distinct vectors, each stored 5 times: every candidate distance
    // occurs in runs of five bit-identical values, so k = 7 always cuts
    // through a tie group and the winner is decided purely by the
    // documented ascending-id rule.
    let base = cbir_workload::clustered(60, 4, 6, 1.0, 10.0, 5);
    let mut vectors = Vec::new();
    for v in &base {
        for _ in 0..5 {
            vectors.push(v.clone());
        }
    }
    let ds = Dataset::from_vectors(&vectors).unwrap();
    let queries = cbir_workload::queries(&base, 16, 0.25, 123);
    let k = 7;
    for measure in [Measure::L1, Measure::L2] {
        for index in lineup(&ds, &measure) {
            let mut sstats = SearchStats::new();
            let want: Vec<Vec<Neighbor>> = queries
                .iter()
                .map(|q| index.knn_search(q, k, &mut sstats))
                .collect();
            for (qi, hits) in want.iter().enumerate() {
                assert_eq!(hits.len(), k);
                // Sorted by (distance, id); with quintuplicated vectors at
                // k = 7 every result list must actually contain a tie.
                let mut saw_tie = false;
                for w in hits.windows(2) {
                    let tied = w[0].distance.to_bits() == w[1].distance.to_bits();
                    saw_tie |= tied;
                    assert!(
                        w[0].distance < w[1].distance || (tied && w[0].id < w[1].id),
                        "{}: query {qi} violates (distance, id) order",
                        index.name()
                    );
                }
                assert!(saw_tie, "{}: query {qi} produced no tie", index.name());
            }
            for threads in [1usize, 2, 3, 8] {
                let mut stats = BatchStats::new();
                let got = knn_batch_parallel(index.as_ref(), &queries, k, threads, &mut stats);
                assert_bit_identical(
                    &got,
                    &want,
                    &format!("{} duplicate-tie knn, {threads} threads", index.name()),
                );
            }
        }
    }
}
