//! Error type for index construction.

use std::fmt;

/// Errors produced while building or querying an index.
#[derive(Debug)]
pub enum IndexError {
    /// A construction parameter is outside its valid domain.
    InvalidParameter(String),
    /// The dataset is empty or malformed.
    BadDataset(String),
    /// The chosen measure cannot support this index's pruning strategy.
    UnsupportedMeasure {
        /// Index that rejected the measure.
        index: &'static str,
        /// Name of the offending measure.
        measure: &'static str,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            IndexError::BadDataset(msg) => write!(f, "bad dataset: {msg}"),
            IndexError::UnsupportedMeasure { index, measure } => write!(
                f,
                "{index} requires a true metric for correct pruning; {measure} is not one"
            ),
        }
    }
}

impl std::error::Error for IndexError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, IndexError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(IndexError::InvalidParameter("x".into())
            .to_string()
            .contains("x"));
        assert!(IndexError::BadDataset("empty".into())
            .to_string()
            .contains("empty"));
        let e = IndexError::UnsupportedMeasure {
            index: "vp-tree",
            measure: "cosine",
        };
        let s = e.to_string();
        assert!(s.contains("vp-tree") && s.contains("cosine"));
    }
}
