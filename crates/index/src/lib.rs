//! # `cbir-index` — similarity-search index structures
//!
//! The indexing layer: given a [`Dataset`] of feature signatures and a
//! distance [`Measure`](cbir_distance::Measure), answer *range* queries
//! (all signatures within `t` of the query) and *k-nearest-neighbour*
//! queries — exactly, never approximately — while computing far fewer
//! distances than a sequential scan.
//!
//! Implementations, all behind the common [`SearchIndex`] trait:
//!
//! | index | pruning principle | measures |
//! |-------|------------------|----------|
//! | [`LinearScan`] | none (baseline) | any |
//! | [`KdTree`] | splitting-plane lower bound | Minkowski family |
//! | [`VpTree`] | triangle inequality on vantage balls | true metrics |
//! | [`AntipoleTree`] | triangle inequality on antipole clusters | true metrics |
//! | [`RStarTree`] | MINDIST to page rectangles | L2 |
//!
//! Exactness is the default contract; approximation is strictly opt-in.
//! The [`ApproxSearch`] trait is the coarse half of a two-stage
//! coarse-to-fine mode ([`CoarseHaarIndex`], [`BestBinFirst`], and
//! [`LshIndex`] behind one interface) whose candidates are reranked
//! *exactly* via [`rerank_exact`]; with an unbounded candidate budget it
//! degenerates to the exact answer.
//!
//! Cost accounting ([`SearchStats`]) counts distance computations — the
//! hardware-independent cost model used by the evaluation suite.
//!
//! ```
//! use cbir_index::{Dataset, KdTree, SearchIndex, SearchStats};
//! use cbir_distance::Measure;
//!
//! let ds = Dataset::from_vectors(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![9.0, 9.0]]).unwrap();
//! let kd = KdTree::build(ds.clone(), Measure::L2).unwrap();
//! let mut stats = SearchStats::new();
//! let hits = kd.knn_search(&[0.0, 0.0], 2, &mut stats);
//! assert_eq!(hits[0].id, 0);
//! assert_eq!(hits[1].id, 1);
//! assert_eq!(hits[1].distance, 5.0);
//! ```

#![warn(missing_docs)]

mod antipole;
mod approx;
mod dataset;
mod error;
mod kdtree;
mod knn_heap;
mod linear;
mod lsh;
mod mtree;
mod rect;
mod rng;
mod rstar;
mod scratch;
mod stats;
mod traits;
mod vptree;

pub use antipole::AntipoleTree;
pub use approx::{
    approx_knn, approx_knn_batch, approx_knn_batch_parallel, haar_coarse_to_fine_for_tests,
    rerank_exact, ApproxScratch, ApproxSearch, BestBinFirst, CoarseHaarIndex,
};
pub use dataset::Dataset;
pub use error::{IndexError, Result};
pub use kdtree::KdTree;
pub use knn_heap::KnnHeap;
pub use linear::LinearScan;
pub use lsh::LshIndex;
pub use mtree::MTree;
pub use rect::Rect;
pub use rng::SplitMix64;
pub use rstar::RStarTree;
pub use scratch::QueryScratch;
pub use stats::{percentile, sort_neighbors, BatchStats, Neighbor, SearchStats};
pub use traits::{
    knn_batch_parallel, knn_search_simple, range_batch_parallel, range_search_simple, SearchIndex,
};
pub use vptree::VpTree;
