//! Query cost accounting. Distance computations are the hardware-
//! independent cost model used throughout the evaluation; node visits track
//! traversal overhead.

/// Counters accumulated during a single query (or a batch, if reused).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Full distance evaluations performed.
    pub distance_computations: u64,
    /// Index nodes (internal or leaf) visited.
    pub nodes_visited: u64,
}

impl SearchStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        SearchStats::default()
    }

    /// Reset to zero in place (for reuse across queries).
    pub fn reset(&mut self) {
        *self = SearchStats::default();
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.distance_computations += other.distance_computations;
        self.nodes_visited += other.nodes_visited;
    }
}

/// Aggregated counters for a batch of queries: the grand totals plus the
/// per-query samples needed for tail summaries (p50/p95), which ad-hoc
/// summing in each experiment binary could not provide.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    total: SearchStats,
    per_query_comps: Vec<u64>,
    per_query_visits: Vec<u64>,
}

impl BatchStats {
    /// Fresh, empty aggregation.
    pub fn new() -> Self {
        BatchStats::default()
    }

    /// Record one query's counters.
    pub fn record(&mut self, stats: &SearchStats) {
        self.total.merge(stats);
        self.per_query_comps.push(stats.distance_computations);
        self.per_query_visits.push(stats.nodes_visited);
    }

    /// Append another batch's per-query samples and totals. Query order is
    /// preserved: `other`'s queries follow this batch's.
    pub fn merge(&mut self, other: &BatchStats) {
        self.total.merge(&other.total);
        self.per_query_comps
            .extend_from_slice(&other.per_query_comps);
        self.per_query_visits
            .extend_from_slice(&other.per_query_visits);
    }

    /// Number of queries recorded.
    pub fn queries(&self) -> usize {
        self.per_query_comps.len()
    }

    /// Grand totals over every recorded query.
    pub fn total(&self) -> &SearchStats {
        &self.total
    }

    /// Mean distance computations per query (0 if no queries recorded).
    pub fn mean_comps(&self) -> f64 {
        if self.per_query_comps.is_empty() {
            0.0
        } else {
            self.total.distance_computations as f64 / self.per_query_comps.len() as f64
        }
    }

    /// Median (p50) distance computations per query.
    pub fn p50_comps(&self) -> u64 {
        percentile(&self.per_query_comps, 50)
    }

    /// 95th-percentile distance computations per query.
    pub fn p95_comps(&self) -> u64 {
        percentile(&self.per_query_comps, 95)
    }

    /// Median (p50) node visits per query.
    pub fn p50_visits(&self) -> u64 {
        percentile(&self.per_query_visits, 50)
    }

    /// 95th-percentile node visits per query.
    pub fn p95_visits(&self) -> u64 {
        percentile(&self.per_query_visits, 95)
    }
}

/// Nearest-rank percentile (`p` in 0..=100) of a sample set; 0 when empty.
///
/// Public because every layer that aggregates per-query samples — the
/// [`BatchStats`] summaries here, the serving layer's latency counters —
/// needs the same tail summary; keeping one definition keeps p50/p95
/// comparable across reports.
pub fn percentile(samples: &[u64], p: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (p as usize * sorted.len()).div_ceil(100);
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// A search hit: dataset offset plus its distance from the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Offset of the vector in the dataset the index was built over.
    pub id: usize,
    /// Distance from the query under the index's measure.
    pub distance: f32,
}

/// Slack added to triangle-inequality pruning bounds to absorb f32
/// rounding: a lower bound computed as the difference of two rounded
/// distances can exceed the true (rounded) distance by a few ulps, which
/// would wrongfully prune exact-tie candidates. A few-ulp relative margin
/// restores safety at negligible extra search cost.
#[inline]
pub(crate) fn tri_slack(a: f32, b: f32) -> f32 {
    a.abs().max(b.abs()) * 4e-6
}

/// Sort hits by ascending distance, breaking ties by id so results are
/// fully deterministic and comparable across index implementations.
pub fn sort_neighbors(hits: &mut [Neighbor]) {
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.id.cmp(&b.id))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_stats_percentiles() {
        let mut b = BatchStats::new();
        for comps in 1..=100u64 {
            b.record(&SearchStats {
                distance_computations: comps,
                nodes_visited: comps * 2,
            });
        }
        assert_eq!(b.queries(), 100);
        assert_eq!(b.total().distance_computations, 5050);
        assert_eq!(b.p50_comps(), 50);
        assert_eq!(b.p95_comps(), 95);
        assert_eq!(b.p95_visits(), 190);
        assert!((b.mean_comps() - 50.5).abs() < 1e-9);

        let mut other = BatchStats::new();
        other.record(&SearchStats {
            distance_computations: 1000,
            nodes_visited: 1,
        });
        b.merge(&other);
        assert_eq!(b.queries(), 101);
        assert_eq!(b.total().distance_computations, 6050);
    }

    #[test]
    fn empty_batch_stats() {
        let b = BatchStats::new();
        assert_eq!(b.queries(), 0);
        assert_eq!(b.p50_comps(), 0);
        assert_eq!(b.mean_comps(), 0.0);
    }

    #[test]
    fn reset_and_merge() {
        let mut a = SearchStats {
            distance_computations: 5,
            nodes_visited: 2,
        };
        let b = SearchStats {
            distance_computations: 3,
            nodes_visited: 10,
        };
        a.merge(&b);
        assert_eq!(a.distance_computations, 8);
        assert_eq!(a.nodes_visited, 12);
        a.reset();
        assert_eq!(a, SearchStats::new());
    }

    #[test]
    fn neighbor_sorting_is_deterministic() {
        let mut hits = vec![
            Neighbor {
                id: 7,
                distance: 1.0,
            },
            Neighbor {
                id: 3,
                distance: 1.0,
            },
            Neighbor {
                id: 1,
                distance: 0.5,
            },
        ];
        sort_neighbors(&mut hits);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 3); // tie broken by id
        assert_eq!(hits[2].id, 7);
    }
}
