//! Query cost accounting. Distance computations are the hardware-
//! independent cost model used throughout the evaluation; node visits track
//! traversal overhead.

/// Counters accumulated during a single query (or a batch, if reused).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Full distance evaluations performed.
    pub distance_computations: u64,
    /// Index nodes (internal or leaf) visited.
    pub nodes_visited: u64,
}

impl SearchStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        SearchStats::default()
    }

    /// Reset to zero in place (for reuse across queries).
    pub fn reset(&mut self) {
        *self = SearchStats::default();
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.distance_computations += other.distance_computations;
        self.nodes_visited += other.nodes_visited;
    }
}

/// A search hit: dataset offset plus its distance from the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Offset of the vector in the dataset the index was built over.
    pub id: usize,
    /// Distance from the query under the index's measure.
    pub distance: f32,
}

/// Slack added to triangle-inequality pruning bounds to absorb f32
/// rounding: a lower bound computed as the difference of two rounded
/// distances can exceed the true (rounded) distance by a few ulps, which
/// would wrongfully prune exact-tie candidates. A few-ulp relative margin
/// restores safety at negligible extra search cost.
#[inline]
pub(crate) fn tri_slack(a: f32, b: f32) -> f32 {
    a.abs().max(b.abs()) * 4e-6
}

/// Sort hits by ascending distance, breaking ties by id so results are
/// fully deterministic and comparable across index implementations.
pub fn sort_neighbors(hits: &mut [Neighbor]) {
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.id.cmp(&b.id))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_and_merge() {
        let mut a = SearchStats {
            distance_computations: 5,
            nodes_visited: 2,
        };
        let b = SearchStats {
            distance_computations: 3,
            nodes_visited: 10,
        };
        a.merge(&b);
        assert_eq!(a.distance_computations, 8);
        assert_eq!(a.nodes_visited, 12);
        a.reset();
        assert_eq!(a, SearchStats::new());
    }

    #[test]
    fn neighbor_sorting_is_deterministic() {
        let mut hits = vec![
            Neighbor {
                id: 7,
                distance: 1.0,
            },
            Neighbor {
                id: 3,
                distance: 1.0,
            },
            Neighbor {
                id: 1,
                distance: 0.5,
            },
        ];
        sort_neighbors(&mut hits);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 3); // tie broken by id
        assert_eq!(hits[2].id, 7);
    }
}
