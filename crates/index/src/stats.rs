//! Query cost accounting. Distance computations are the hardware-
//! independent cost model used throughout the evaluation; node visits track
//! traversal overhead.

/// Counters accumulated during a single query (or a batch, if reused).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Full distance evaluations performed.
    pub distance_computations: u64,
    /// Index nodes (internal or leaf) visited.
    pub nodes_visited: u64,
    /// Subtrees (or hash buckets) excluded by a pruning bound without
    /// being visited. Zero for linear scan, which has nothing to prune.
    pub subtrees_pruned: u64,
    /// Candidates that survived pruning and were scored with a full
    /// distance evaluation. For linear scan this is the database size; for
    /// tree indexes it counts leaf-level candidate scorings (routing-level
    /// evaluations are excluded, so it is ≤ `distance_computations`).
    pub postfilter_candidates: u64,
    /// Candidates surfaced by the coarse stage of a two-stage approximate
    /// search (see [`crate::ApproxSearch`]). Zero on the exact path.
    pub coarse_candidates: u64,
    /// Exact distance evaluations spent reranking coarse candidates. Zero
    /// on the exact path; on the approximate path these are also counted
    /// in `distance_computations` (they are full evaluations).
    pub rerank_evaluations: u64,
}

impl SearchStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        SearchStats::default()
    }

    /// Reset to zero in place (for reuse across queries).
    pub fn reset(&mut self) {
        *self = SearchStats::default();
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.distance_computations += other.distance_computations;
        self.nodes_visited += other.nodes_visited;
        self.subtrees_pruned += other.subtrees_pruned;
        self.postfilter_candidates += other.postfilter_candidates;
        self.coarse_candidates += other.coarse_candidates;
        self.rerank_evaluations += other.rerank_evaluations;
    }
}

/// Aggregated counters for a batch of queries: the grand totals plus the
/// per-query samples needed for tail summaries (p50/p95), which ad-hoc
/// summing in each experiment binary could not provide.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    total: SearchStats,
    per_query_comps: Vec<u64>,
    per_query_visits: Vec<u64>,
}

impl BatchStats {
    /// Fresh, empty aggregation.
    pub fn new() -> Self {
        BatchStats::default()
    }

    /// Record one query's counters.
    pub fn record(&mut self, stats: &SearchStats) {
        self.total.merge(stats);
        self.per_query_comps.push(stats.distance_computations);
        self.per_query_visits.push(stats.nodes_visited);
    }

    /// Append another batch's per-query samples and totals. Query order is
    /// preserved: `other`'s queries follow this batch's.
    pub fn merge(&mut self, other: &BatchStats) {
        self.total.merge(&other.total);
        self.per_query_comps
            .extend_from_slice(&other.per_query_comps);
        self.per_query_visits
            .extend_from_slice(&other.per_query_visits);
    }

    /// Number of queries recorded.
    pub fn queries(&self) -> usize {
        self.per_query_comps.len()
    }

    /// Grand totals over every recorded query.
    pub fn total(&self) -> &SearchStats {
        &self.total
    }

    /// Mean distance computations per query (0 if no queries recorded).
    pub fn mean_comps(&self) -> f64 {
        if self.per_query_comps.is_empty() {
            0.0
        } else {
            self.total.distance_computations as f64 / self.per_query_comps.len() as f64
        }
    }

    /// Median (p50) distance computations per query.
    pub fn p50_comps(&self) -> u64 {
        percentile(&self.per_query_comps, 50)
    }

    /// 95th-percentile distance computations per query.
    pub fn p95_comps(&self) -> u64 {
        percentile(&self.per_query_comps, 95)
    }

    /// Median (p50) node visits per query.
    pub fn p50_visits(&self) -> u64 {
        percentile(&self.per_query_visits, 50)
    }

    /// 95th-percentile node visits per query.
    pub fn p95_visits(&self) -> u64 {
        percentile(&self.per_query_visits, 95)
    }
}

/// Nearest-rank percentile (`p` in 0..=100) of a sample set; 0 when empty.
///
/// Public because every layer that aggregates per-query samples — the
/// [`BatchStats`] summaries here, the serving layer's latency counters —
/// needs the same tail summary; keeping one definition keeps p50/p95
/// comparable across reports.
pub fn percentile(samples: &[u64], p: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (p as usize * sorted.len()).div_ceil(100);
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// A search hit: dataset offset plus its distance from the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Offset of the vector in the dataset the index was built over.
    pub id: usize,
    /// Distance from the query under the index's measure.
    pub distance: f32,
}

/// Slack added to triangle-inequality pruning bounds to absorb f32
/// rounding: a lower bound computed as the difference of two rounded
/// distances can exceed the true (rounded) distance by a few ulps, which
/// would wrongfully prune exact-tie candidates. A few-ulp relative margin
/// restores safety at negligible extra search cost.
#[inline]
pub(crate) fn tri_slack(a: f32, b: f32) -> f32 {
    a.abs().max(b.abs()) * 4e-6
}

/// Sort hits by ascending distance, breaking ties by id so results are
/// fully deterministic and comparable across index implementations.
pub fn sort_neighbors(hits: &mut [Neighbor]) {
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.id.cmp(&b.id))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_stats_percentiles() {
        let mut b = BatchStats::new();
        for comps in 1..=100u64 {
            b.record(&SearchStats {
                distance_computations: comps,
                nodes_visited: comps * 2,
                ..SearchStats::default()
            });
        }
        assert_eq!(b.queries(), 100);
        assert_eq!(b.total().distance_computations, 5050);
        assert_eq!(b.p50_comps(), 50);
        assert_eq!(b.p95_comps(), 95);
        assert_eq!(b.p95_visits(), 190);
        assert!((b.mean_comps() - 50.5).abs() < 1e-9);

        let mut other = BatchStats::new();
        other.record(&SearchStats {
            distance_computations: 1000,
            nodes_visited: 1,
            ..SearchStats::default()
        });
        b.merge(&other);
        assert_eq!(b.queries(), 101);
        assert_eq!(b.total().distance_computations, 6050);
    }

    #[test]
    fn empty_batch_stats() {
        let b = BatchStats::new();
        assert_eq!(b.queries(), 0);
        assert_eq!(b.p50_comps(), 0);
        assert_eq!(b.mean_comps(), 0.0);
    }

    #[test]
    fn reset_and_merge() {
        let mut a = SearchStats {
            distance_computations: 5,
            nodes_visited: 2,
            subtrees_pruned: 1,
            postfilter_candidates: 4,
            coarse_candidates: 6,
            rerank_evaluations: 5,
        };
        let b = SearchStats {
            distance_computations: 3,
            nodes_visited: 10,
            subtrees_pruned: 2,
            postfilter_candidates: 3,
            coarse_candidates: 1,
            rerank_evaluations: 2,
        };
        a.merge(&b);
        assert_eq!(a.distance_computations, 8);
        assert_eq!(a.nodes_visited, 12);
        assert_eq!(a.subtrees_pruned, 3);
        assert_eq!(a.postfilter_candidates, 7);
        assert_eq!(a.coarse_candidates, 7);
        assert_eq!(a.rerank_evaluations, 7);
        a.reset();
        assert_eq!(a, SearchStats::new());
    }

    /// Count-based oracle for the nearest-rank percentile: the smallest
    /// sample value `v` such that at least `ceil(p·n/100)` samples are
    /// `≤ v` (and at least one, so p=0 yields the minimum). Derived
    /// directly from the nearest-rank definition rather than by indexing,
    /// so it cannot share an off-by-one with the implementation.
    fn percentile_oracle(samples: &[u64], p: u64) -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let n = samples.len() as u64;
        let rank = (p * n).div_ceil(100).max(1);
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        *sorted
            .iter()
            .find(|&&v| sorted.iter().filter(|&&s| s <= v).count() as u64 >= rank)
            .expect("rank ≤ n, so some value satisfies it")
    }

    #[test]
    fn percentile_matches_oracle_on_edge_cases() {
        // Empty, single-element, and all-equal inputs, across the full
        // percentile range including the 0 and 100 endpoints.
        for p in [0, 1, 50, 95, 99, 100] {
            assert_eq!(percentile(&[], p), 0, "empty, p={p}");
            assert_eq!(percentile(&[42], p), 42, "singleton, p={p}");
            assert_eq!(percentile(&[7; 9], p), 7, "all-equal, p={p}");
            assert_eq!(percentile(&[], p), percentile_oracle(&[], p));
            assert_eq!(percentile(&[42], p), percentile_oracle(&[42], p));
            assert_eq!(percentile(&[7; 9], p), percentile_oracle(&[7; 9], p));
        }
        // p=0 is the minimum, p=100 the maximum.
        assert_eq!(percentile(&[3, 1, 2], 0), 1);
        assert_eq!(percentile(&[3, 1, 2], 100), 3);
    }

    #[test]
    fn percentile_matches_oracle_on_random_samples() {
        let mut rng = cbir_workload::Pcg32::new(0xbeef);
        for case in 0..200 {
            let len = (rng.next_u32() % 50) as usize + 1;
            let samples: Vec<u64> = (0..len)
                .map(|_| {
                    // Mix small ranges (many duplicates) with wide ones.
                    let width = if case % 2 == 0 { 8 } else { 10_000 };
                    (rng.next_u32() % width) as u64
                })
                .collect();
            let p = (rng.next_u32() % 101) as u64;
            assert_eq!(
                percentile(&samples, p),
                percentile_oracle(&samples, p),
                "case {case}: p={p}, samples={samples:?}"
            );
        }
    }

    #[test]
    fn neighbor_sorting_is_deterministic() {
        let mut hits = vec![
            Neighbor {
                id: 7,
                distance: 1.0,
            },
            Neighbor {
                id: 3,
                distance: 1.0,
            },
            Neighbor {
                id: 1,
                distance: 0.5,
            },
        ];
        sort_neighbors(&mut hits);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 3); // tie broken by id
        assert_eq!(hits[2].id, 7);
    }
}
