//! Reusable per-search scratch space.
//!
//! Every index traversal needs transient state — a visit stack, the
//! candidate heap, a best-first frontier, distance buffers. Allocating
//! those per query dominates the cost of small searches and defeats cache
//! reuse in batched ones. A [`QueryScratch`] owns all of it: the first
//! query on a scratch grows each container to its steady-state size, and
//! every later query reuses the capacity, so steady-state search performs
//! zero heap allocations (verified by the counting-allocator test in
//! `tests/alloc_discipline.rs`).
//!
//! One scratch serves every index kind; a search only touches the fields
//! its traversal needs. Scratches are cheap to create and intentionally
//! not `Sync` — each worker thread of a parallel batch owns its own.

use crate::knn_heap::KnnHeap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A traversal stack frame: a node index plus up to two floats of pruning
/// state and a tag saying how to interpret them. Plain-old-data so the
/// stack never owns heap memory of its own.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Frame {
    /// Arena index of the node to visit.
    pub(crate) node: u32,
    /// Index-specific interpretation (0 = visit unconditionally).
    pub(crate) tag: u8,
    /// First pruning operand (e.g. distance from query to the router).
    pub(crate) a: f32,
    /// Second pruning operand (e.g. split median or covering radius).
    pub(crate) b: f32,
}

impl Frame {
    /// A frame that is visited unconditionally when popped.
    pub(crate) fn unconditional(node: u32) -> Self {
        Frame {
            node,
            tag: 0,
            a: 0.0,
            b: 0.0,
        }
    }
}

/// Reusable state for one in-flight search. See the module docs.
#[derive(Debug)]
pub struct QueryScratch {
    /// k-NN candidate heap, [`KnnHeap::reset`] per query.
    pub(crate) heap: KnnHeap,
    /// Depth-first visit stack (kd-, vp-, antipole and M-tree).
    pub(crate) frames: Vec<Frame>,
    /// Best-first frontier ordered by MINDIST² (R*-tree k-NN).
    pub(crate) frontier: BinaryHeap<Reverse<(OrderedF32, u32)>>,
    /// Child-ordering buffer `(lower bound, distance, child)` (M-tree).
    pub(crate) order: Vec<(f32, f32, u32)>,
    /// Batched distance output buffer (linear scan).
    pub(crate) dists: Vec<f32>,
}

impl QueryScratch {
    /// Fresh scratch with minimal capacity; containers grow to their
    /// steady-state sizes during the first query and are reused afterwards.
    pub fn new() -> Self {
        QueryScratch {
            heap: KnnHeap::new(1),
            frames: Vec::new(),
            frontier: BinaryHeap::new(),
            order: Vec::new(),
            dists: Vec::new(),
        }
    }
}

impl Default for QueryScratch {
    fn default() -> Self {
        QueryScratch::new()
    }
}

/// Total-order wrapper so f32 keys can live in a `BinaryHeap`.
#[derive(PartialEq, Debug, Clone, Copy)]
pub(crate) struct OrderedF32(pub(crate) f32);

impl Eq for OrderedF32 {}

impl PartialOrd for OrderedF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
