//! k-d tree: axis-aligned binary space partitioning for Minkowski metrics.
//!
//! Splits on the dimension of widest spread at the median, so the tree is
//! balanced regardless of data distribution. Pruning uses the splitting-
//! plane lower bound `|q[dim] - split|`, valid for every Minkowski order
//! (including L∞). The structure is the era's standard main-memory index for
//! low-dimensional feature vectors — and degrades gracefully into a scan as
//! dimensionality rises, which is exactly the effect the dimensionality
//! experiment measures.

use crate::dataset::Dataset;
use crate::error::{IndexError, Result};
use crate::scratch::{Frame, QueryScratch};
use crate::stats::{sort_neighbors, tri_slack, Neighbor, SearchStats};
use crate::traits::SearchIndex;
use cbir_distance::Measure;

#[derive(Debug)]
enum Node {
    Leaf {
        ids: Vec<u32>,
    },
    Split {
        dim: u32,
        value: f32,
        left: u32,
        right: u32,
    },
}

/// A balanced k-d tree over a [`Dataset`].
#[derive(Debug)]
pub struct KdTree {
    dataset: Dataset,
    measure: Measure,
    nodes: Vec<Node>,
    root: u32,
    leaf_size: usize,
}

impl KdTree {
    /// Default leaf capacity.
    pub const DEFAULT_LEAF_SIZE: usize = 16;

    /// Build with the default leaf size.
    pub fn build(dataset: Dataset, measure: Measure) -> Result<Self> {
        Self::with_leaf_size(dataset, measure, Self::DEFAULT_LEAF_SIZE)
    }

    /// Build with an explicit leaf capacity.
    pub fn with_leaf_size(dataset: Dataset, measure: Measure, leaf_size: usize) -> Result<Self> {
        match measure {
            Measure::L1 | Measure::L2 | Measure::LInf | Measure::Minkowski(_) => {}
            other => {
                return Err(IndexError::UnsupportedMeasure {
                    index: "kd-tree",
                    measure: other.name(),
                })
            }
        }
        if leaf_size == 0 {
            return Err(IndexError::InvalidParameter(
                "leaf size must be positive".into(),
            ));
        }
        let mut ids: Vec<u32> = (0..dataset.len() as u32).collect();
        let mut tree = KdTree {
            dataset,
            measure,
            nodes: Vec::new(),
            root: 0,
            leaf_size,
        };
        tree.root = tree.build_node(&mut ids);
        Ok(tree)
    }

    /// Recursively build over `ids`, returning the node index.
    fn build_node(&mut self, ids: &mut [u32]) -> u32 {
        if ids.len() <= self.leaf_size {
            self.nodes.push(Node::Leaf { ids: ids.to_vec() });
            return (self.nodes.len() - 1) as u32;
        }
        // Widest-spread dimension.
        let dim = {
            let mut best_dim = 0usize;
            let mut best_spread = -1.0f32;
            for d in 0..self.dataset.dim() {
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for &id in ids.iter() {
                    let v = self.dataset.vector(id as usize)[d];
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if hi - lo > best_spread {
                    best_spread = hi - lo;
                    best_dim = d;
                }
            }
            if best_spread <= 0.0 {
                // All points identical on every axis: cannot split.
                self.nodes.push(Node::Leaf { ids: ids.to_vec() });
                return (self.nodes.len() - 1) as u32;
            }
            best_dim
        };
        let mid = ids.len() / 2;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            self.dataset.vector(a as usize)[dim].total_cmp(&self.dataset.vector(b as usize)[dim])
        });
        let value = self.dataset.vector(ids[mid] as usize)[dim];
        // `select_nth` may leave equal keys on both sides; that is fine — the
        // plane bound remains correct because points equal to `value` can be
        // on either side and the search descends both when |diff| = 0.
        let (lo, hi) = ids.split_at_mut(mid);
        let left = self.build_node(lo);
        let right = self.build_node(hi);
        self.nodes.push(Node::Split {
            dim: dim as u32,
            value,
            left,
            right,
        });
        (self.nodes.len() - 1) as u32
    }

    /// Push a split node's children: far child first (tag 1, carrying the
    /// splitting-plane offset for the pop-time prune check), then the near
    /// child unconditionally, so near's whole subtree is explored before
    /// far's check runs.
    #[inline]
    fn push_children(&self, frames: &mut Vec<Frame>, query: &[f32], node: u32) -> Option<&[u32]> {
        match &self.nodes[node as usize] {
            Node::Leaf { ids } => Some(ids),
            Node::Split {
                dim,
                value,
                left,
                right,
            } => {
                let diff = query[*dim as usize] - value;
                let (near, far) = if diff < 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                frames.push(Frame {
                    node: far,
                    tag: 1,
                    a: diff,
                    b: 0.0,
                });
                frames.push(Frame::unconditional(near));
                None
            }
        }
    }

    /// Tree depth (for diagnostics).
    pub fn depth(&self) -> usize {
        fn go(nodes: &[Node], at: u32) -> usize {
            match &nodes[at as usize] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + go(nodes, *left).max(go(nodes, *right)),
            }
        }
        go(&self.nodes, self.root)
    }
}

impl SearchIndex for KdTree {
    fn len(&self) -> usize {
        self.dataset.len()
    }

    fn dim(&self) -> usize {
        self.dataset.dim()
    }

    fn range_into(
        &self,
        query: &[f32],
        radius: f32,
        scratch: &mut QueryScratch,
        stats: &mut SearchStats,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        let frames = &mut scratch.frames;
        frames.clear();
        frames.push(Frame::unconditional(self.root));
        while let Some(frame) = frames.pop() {
            if frame.tag == 1 && frame.a.abs() > radius + tri_slack(frame.a, radius) {
                stats.subtrees_pruned += 1;
                continue;
            }
            stats.nodes_visited += 1;
            if let Some(ids) = self.push_children(frames, query, frame.node) {
                for &id in ids {
                    stats.distance_computations += 1;
                    stats.postfilter_candidates += 1;
                    let d = self
                        .measure
                        .distance(query, self.dataset.vector(id as usize));
                    if d <= radius {
                        out.push(Neighbor {
                            id: id as usize,
                            distance: d,
                        });
                    }
                }
            }
        }
        sort_neighbors(out);
    }

    fn knn_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut QueryScratch,
        stats: &mut SearchStats,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        let QueryScratch { heap, frames, .. } = scratch;
        heap.reset(k);
        frames.clear();
        frames.push(Frame::unconditional(self.root));
        while let Some(frame) = frames.pop() {
            // Lazy prune: the bound can only have tightened since the push,
            // so this check prunes at least as much as the recursive form
            // while visiting exactly the same candidate set.
            if frame.tag == 1 {
                let t = heap.bound();
                if frame.a.abs() > t + tri_slack(frame.a, t) {
                    stats.subtrees_pruned += 1;
                    continue;
                }
            }
            stats.nodes_visited += 1;
            if let Some(ids) = self.push_children(frames, query, frame.node) {
                for &id in ids {
                    stats.distance_computations += 1;
                    stats.postfilter_candidates += 1;
                    let d = self
                        .measure
                        .distance(query, self.dataset.vector(id as usize));
                    heap.offer(id as usize, d);
                }
            }
        }
        heap.drain_sorted_into(out);
    }

    fn name(&self) -> &'static str {
        "kd-tree"
    }

    fn structure_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for n in &self.nodes {
            total += std::mem::size_of::<Node>();
            if let Node::Leaf { ids } = n {
                total += ids.len() * std::mem::size_of::<u32>();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use crate::traits::{knn_search_simple, range_search_simple};

    /// Deterministic pseudo-random dataset.
    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) & 0x7FFF_FFFF) as f32 / 0x8000_0000u32 as f32
        };
        let v: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| next() * 10.0).collect())
            .collect();
        Dataset::from_vectors(&v).unwrap()
    }

    #[test]
    fn matches_linear_scan_exactly() {
        let ds = random_dataset(500, 4, 42);
        for measure in [Measure::L1, Measure::L2, Measure::LInf] {
            let kd = KdTree::build(ds.clone(), measure.clone()).unwrap();
            let lin = LinearScan::build(ds.clone(), measure.clone()).unwrap();
            for qi in [0usize, 33, 77] {
                let q: Vec<f32> = ds.vector(qi).to_vec();
                for radius in [0.5f32, 2.0, 8.0] {
                    let a = range_search_simple(&kd, &q, radius);
                    let b = range_search_simple(&lin, &q, radius);
                    assert_eq!(a, b, "{} range r={radius}", measure.name());
                }
                for k in [1usize, 7, 50] {
                    let a = knn_search_simple(&kd, &q, k);
                    let b = knn_search_simple(&lin, &q, k);
                    assert_eq!(a, b, "{} knn k={k}", measure.name());
                }
            }
        }
    }

    #[test]
    fn prunes_in_low_dimensions() {
        let ds = random_dataset(2000, 2, 7);
        let kd = KdTree::build(ds.clone(), Measure::L2).unwrap();
        let mut stats = SearchStats::new();
        kd.knn_search(ds.vector(100), 5, &mut stats);
        assert!(
            stats.distance_computations < 700,
            "kd-tree barely pruned: {} computations",
            stats.distance_computations
        );
    }

    #[test]
    fn duplicate_points_handled() {
        let ds = Dataset::from_vectors(&vec![vec![1.0, 2.0]; 100]).unwrap();
        let kd = KdTree::build(ds, Measure::L2).unwrap();
        let hits = range_search_simple(&kd, &[1.0, 2.0], 0.0);
        assert_eq!(hits.len(), 100);
        let knn = knn_search_simple(&kd, &[0.0, 0.0], 5);
        assert_eq!(knn.len(), 5);
        // Deterministic tie-break: lowest ids win.
        assert_eq!(
            knn.iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn single_point_dataset() {
        let ds = Dataset::from_vectors(&[vec![3.0, 4.0]]).unwrap();
        let kd = KdTree::build(ds, Measure::L2).unwrap();
        let hits = knn_search_simple(&kd, &[0.0, 0.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].distance, 5.0);
    }

    #[test]
    fn rejects_non_minkowski_measures() {
        let ds = Dataset::from_vectors(&[vec![1.0]]).unwrap();
        assert!(matches!(
            KdTree::build(ds.clone(), Measure::Cosine),
            Err(IndexError::UnsupportedMeasure { .. })
        ));
        assert!(KdTree::build(ds.clone(), Measure::ChiSquare).is_err());
        assert!(KdTree::build(ds, Measure::Minkowski(3.0)).is_ok());
    }

    #[test]
    fn rejects_zero_leaf_size() {
        let ds = Dataset::from_vectors(&[vec![1.0]]).unwrap();
        assert!(KdTree::with_leaf_size(ds, Measure::L2, 0).is_err());
    }

    #[test]
    fn tree_is_balanced() {
        let ds = random_dataset(4096, 3, 99);
        let kd = KdTree::with_leaf_size(ds, Measure::L2, 8).unwrap();
        // 4096 / 8 = 512 leaves -> ~9 split levels; allow slack for uneven
        // medians but reject degenerate (linear) shapes.
        assert!(kd.depth() <= 14, "depth {}", kd.depth());
    }

    #[test]
    fn query_off_grid() {
        let ds = random_dataset(300, 3, 5);
        let kd = KdTree::build(ds.clone(), Measure::L2).unwrap();
        let lin = LinearScan::build(ds, Measure::L2).unwrap();
        // Query far outside the data's bounding box.
        let q = vec![100.0, -50.0, 42.0];
        assert_eq!(
            knn_search_simple(&kd, &q, 10),
            knn_search_simple(&lin, &q, 10)
        );
        assert_eq!(
            range_search_simple(&kd, &q, 120.0),
            range_search_simple(&lin, &q, 120.0)
        );
    }
}
