//! R\*-tree over point data: the classical disk-era spatial index, here
//! in-memory, with both Sort-Tile-Recursive (STR) bulk loading and dynamic
//! R\* insertion (ChooseSubtree by overlap enlargement, forced reinsertion,
//! margin-driven split-axis selection).
//!
//! Distances are Euclidean; pruning uses the MINDIST lower bound from query
//! point to page rectangle.

use crate::dataset::Dataset;
use crate::error::{IndexError, Result};
use crate::rect::Rect;
use crate::scratch::{Frame, OrderedF32, QueryScratch};
use crate::stats::{sort_neighbors, tri_slack, Neighbor, SearchStats};
use crate::traits::SearchIndex;
use cbir_distance::l2_squared;
use std::cmp::Reverse;

/// Arena node. `level` 0 = leaf; children of a level-`l` node are at
/// `l - 1`.
#[derive(Debug)]
struct Node {
    mbr: Rect,
    level: u32,
    /// Point ids when `level == 0`, child node indexes otherwise.
    slots: Vec<u32>,
}

/// R\*-tree configuration and arena.
#[derive(Debug)]
pub struct RStarTree {
    dataset: Dataset,
    nodes: Vec<Node>,
    root: u32,
    max_entries: usize,
    min_entries: usize,
}

/// Fraction of entries evicted during forced reinsertion.
const REINSERT_FRACTION: f64 = 0.3;

impl RStarTree {
    /// Default page capacity.
    pub const DEFAULT_MAX_ENTRIES: usize = 16;

    /// Bulk-load with STR packing (the fast path for static datasets).
    pub fn bulk_load(dataset: Dataset) -> Result<Self> {
        Self::bulk_load_with_capacity(dataset, Self::DEFAULT_MAX_ENTRIES)
    }

    /// STR bulk load with an explicit page capacity (≥ 4).
    pub fn bulk_load_with_capacity(dataset: Dataset, max_entries: usize) -> Result<Self> {
        Self::check_capacity(max_entries)?;
        let mut tree = RStarTree {
            dataset,
            nodes: Vec::new(),
            root: 0,
            max_entries,
            min_entries: (max_entries * 2 / 5).max(2),
        };
        // Pack leaves.
        let mut ids: Vec<u32> = (0..tree.dataset.len() as u32).collect();
        let dim = tree.dataset.dim();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        tree.str_tile(&mut ids, 0, dim, &mut groups);
        let mut level_nodes: Vec<u32> = groups.into_iter().map(|g| tree.new_leaf(g)).collect();
        // Pack upper levels until a single root remains.
        let mut level = 1u32;
        while level_nodes.len() > 1 {
            let mut parents: Vec<u32> = Vec::new();
            let mut order = level_nodes.clone();
            // Order pages by their centre coordinates with the same tiling.
            let centers: Vec<Vec<f32>> = order
                .iter()
                .map(|&n| tree.nodes[n as usize].mbr.center())
                .collect();
            let mut perm: Vec<u32> = (0..order.len() as u32).collect();
            let mut tiles: Vec<Vec<u32>> = Vec::new();
            tree.str_tile_by(&mut perm, 0, dim, &centers, &mut tiles);
            for tile in tiles {
                let children: Vec<u32> = tile.iter().map(|&i| order[i as usize]).collect();
                parents.push(tree.new_internal(children, level));
            }
            order.clear();
            level_nodes = parents;
            level += 1;
        }
        tree.root = level_nodes[0];
        Ok(tree)
    }

    /// Build by repeated R\* insertion (exercises ChooseSubtree, forced
    /// reinsertion, and the R\* split; slower than bulk loading but the
    /// right path for dynamic workloads).
    pub fn build_incremental(dataset: Dataset) -> Result<Self> {
        Self::build_incremental_with_capacity(dataset, Self::DEFAULT_MAX_ENTRIES)
    }

    /// Incremental build with an explicit page capacity (≥ 4).
    pub fn build_incremental_with_capacity(dataset: Dataset, max_entries: usize) -> Result<Self> {
        Self::check_capacity(max_entries)?;
        let mut tree = RStarTree {
            dataset,
            nodes: Vec::new(),
            root: 0,
            max_entries,
            min_entries: (max_entries * 2 / 5).max(2),
        };
        tree.root = tree.new_leaf(Vec::new());
        for id in 0..tree.dataset.len() as u32 {
            tree.insert_point(id);
        }
        Ok(tree)
    }

    fn check_capacity(max_entries: usize) -> Result<()> {
        if max_entries < 4 {
            return Err(IndexError::InvalidParameter(format!(
                "page capacity must be >= 4, got {max_entries}"
            )));
        }
        Ok(())
    }

    fn point(&self, id: u32) -> &[f32] {
        self.dataset.vector(id as usize)
    }

    fn slot_rect(&self, level: u32, slot: u32) -> Rect {
        if level == 0 {
            Rect::point(self.point(slot))
        } else {
            self.nodes[slot as usize].mbr.clone()
        }
    }

    fn new_leaf(&mut self, ids: Vec<u32>) -> u32 {
        let mut mbr = Rect::empty(self.dataset.dim());
        for &id in &ids {
            mbr.union_with(&Rect::point(self.point(id)));
        }
        self.nodes.push(Node {
            mbr,
            level: 0,
            slots: ids,
        });
        (self.nodes.len() - 1) as u32
    }

    fn new_internal(&mut self, children: Vec<u32>, level: u32) -> u32 {
        let mut mbr = Rect::empty(self.dataset.dim());
        for &c in &children {
            mbr.union_with(&self.nodes[c as usize].mbr);
        }
        self.nodes.push(Node {
            mbr,
            level,
            slots: children,
        });
        (self.nodes.len() - 1) as u32
    }

    /// STR tiling of point ids.
    fn str_tile(&self, ids: &mut [u32], dim: usize, dims: usize, out: &mut Vec<Vec<u32>>) {
        let m = self.max_entries;
        if ids.len() <= m {
            out.push(ids.to_vec());
            return;
        }
        if dim + 1 == dims {
            ids.sort_unstable_by(|&a, &b| self.point(a)[dim].total_cmp(&self.point(b)[dim]));
            for chunk in ids.chunks(m) {
                out.push(chunk.to_vec());
            }
            return;
        }
        ids.sort_unstable_by(|&a, &b| self.point(a)[dim].total_cmp(&self.point(b)[dim]));
        let n_pages = ids.len().div_ceil(m);
        let slabs = (n_pages as f64)
            .powf(1.0 / (dims - dim) as f64)
            .ceil()
            .max(1.0) as usize;
        let per_slab = ids.len().div_ceil(slabs);
        for chunk in ids.chunks_mut(per_slab) {
            self.str_tile(chunk, dim + 1, dims, out);
        }
    }

    /// STR tiling of arbitrary items identified by index into `centers`.
    fn str_tile_by(
        &self,
        idx: &mut [u32],
        dim: usize,
        dims: usize,
        centers: &[Vec<f32>],
        out: &mut Vec<Vec<u32>>,
    ) {
        let m = self.max_entries;
        if idx.len() <= m {
            out.push(idx.to_vec());
            return;
        }
        idx.sort_unstable_by(|&a, &b| {
            centers[a as usize][dim].total_cmp(&centers[b as usize][dim])
        });
        if dim + 1 == dims {
            for chunk in idx.chunks(m) {
                out.push(chunk.to_vec());
            }
            return;
        }
        let n_pages = idx.len().div_ceil(m);
        let slabs = (n_pages as f64)
            .powf(1.0 / (dims - dim) as f64)
            .ceil()
            .max(1.0) as usize;
        let per_slab = idx.len().div_ceil(slabs);
        for chunk in idx.chunks_mut(per_slab) {
            self.str_tile_by(chunk, dim + 1, dims, centers, out);
        }
    }

    // ------------------------------------------------------------------
    // R* insertion
    // ------------------------------------------------------------------

    /// Insert one point with the full R\* overflow treatment.
    fn insert_point(&mut self, id: u32) {
        // Levels that have already used their one forced reinsert for this
        // logical insertion (R* performs it once per level per insert).
        let mut reinserted = vec![false; (self.nodes[self.root as usize].level + 2) as usize];
        self.insert_entry(id, 0, &mut reinserted);
    }

    /// Insert `slot` (a point id or node index) at `target_level`.
    fn insert_entry(&mut self, slot: u32, target_level: u32, reinserted: &mut Vec<bool>) {
        let entry_rect = self.slot_rect(target_level, slot);
        // Descend, recording the path.
        let mut path = vec![self.root];
        while self.nodes[*path.last().unwrap() as usize].level > target_level {
            let cur = *path.last().unwrap();
            let next = self.choose_subtree(cur, &entry_rect);
            path.push(next);
        }
        let target = *path.last().unwrap();
        self.nodes[target as usize].slots.push(slot);
        self.nodes[target as usize].mbr.union_with(&entry_rect);
        // Tighten MBRs up the path.
        for w in path.windows(2).rev() {
            let child_mbr = self.nodes[w[1] as usize].mbr.clone();
            self.nodes[w[0] as usize].mbr.union_with(&child_mbr);
        }
        self.handle_overflows(path, reinserted);
    }

    /// Walk the path bottom-up fixing any overflowing node.
    fn handle_overflows(&mut self, mut path: Vec<u32>, reinserted: &mut Vec<bool>) {
        while let Some(node) = path.pop() {
            if self.nodes[node as usize].slots.len() <= self.max_entries {
                continue;
            }
            let level = self.nodes[node as usize].level;
            let is_root = path.is_empty();
            if !is_root && !reinserted[level as usize] {
                reinserted[level as usize] = true;
                let evicted = self.evict_farthest(node);
                self.recompute_mbr(node);
                self.tighten_path(&path);
                for slot in evicted {
                    self.insert_entry(slot, level, reinserted);
                }
                // The reinsertions may have restructured the tree; the
                // remaining path MBRs were tightened inside insert_entry.
                continue;
            }
            // Split.
            let sibling = self.split_node(node);
            if is_root {
                let level = self.nodes[node as usize].level;
                let new_root = self.new_internal(vec![node, sibling], level + 1);
                self.root = new_root;
            } else {
                let parent = *path.last().unwrap();
                self.nodes[parent as usize].slots.push(sibling);
                let sib_mbr = self.nodes[sibling as usize].mbr.clone();
                self.nodes[parent as usize].mbr.union_with(&sib_mbr);
                // Parent may now overflow; loop continues with it on the
                // path.
            }
        }
    }

    fn tighten_path(&mut self, path: &[u32]) {
        for &n in path.iter().rev() {
            self.recompute_mbr(n);
        }
    }

    fn recompute_mbr(&mut self, node: u32) {
        let level = self.nodes[node as usize].level;
        let slots = self.nodes[node as usize].slots.clone();
        let mut mbr = Rect::empty(self.dataset.dim());
        for s in slots {
            mbr.union_with(&self.slot_rect(level, s));
        }
        self.nodes[node as usize].mbr = mbr;
    }

    /// Remove the `REINSERT_FRACTION` of entries whose centres lie farthest
    /// from the node's MBR centre, farthest first (the R\* heuristic).
    fn evict_farthest(&mut self, node: u32) -> Vec<u32> {
        let level = self.nodes[node as usize].level;
        let center = self.nodes[node as usize].mbr.center();
        let mut with_d: Vec<(u32, f32)> = self.nodes[node as usize]
            .slots
            .iter()
            .map(|&s| {
                let c = self.slot_rect(level, s).center();
                (s, l2_squared(&c, &center))
            })
            .collect();
        with_d.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let n_evict = ((with_d.len() as f64 * REINSERT_FRACTION) as usize).max(1);
        let evicted: Vec<u32> = with_d[..n_evict].iter().map(|e| e.0).collect();
        let keep: Vec<u32> = with_d[n_evict..].iter().map(|e| e.0).collect();
        self.nodes[node as usize].slots = keep;
        evicted
    }

    /// R\* ChooseSubtree: overlap enlargement at the level above leaves,
    /// area enlargement higher up; ties by area enlargement then area.
    fn choose_subtree(&self, node: u32, entry: &Rect) -> u32 {
        let n = &self.nodes[node as usize];
        debug_assert!(n.level > 0);
        let children = &n.slots;
        let leaf_level = n.level == 1;
        let mut best = children[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &c in children {
            let crect = &self.nodes[c as usize].mbr;
            let enlarged = Rect::union(crect, entry);
            let area_enl = enlarged.area() - crect.area();
            let overlap_enl = if leaf_level {
                // Overlap of the enlarged child with its siblings, minus
                // the current overlap.
                let mut before = 0.0;
                let mut after = 0.0;
                for &o in children {
                    if o == c {
                        continue;
                    }
                    let orect = &self.nodes[o as usize].mbr;
                    before += crect.overlap(orect);
                    after += enlarged.overlap(orect);
                }
                after - before
            } else {
                0.0
            };
            let key = (overlap_enl, area_enl, crect.area());
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        best
    }

    /// R\* split: pick the axis minimizing total margin over candidate
    /// distributions, then the distribution minimizing overlap (ties by
    /// area). Returns the new sibling node index.
    fn split_node(&mut self, node: u32) -> u32 {
        let level = self.nodes[node as usize].level;
        let slots = self.nodes[node as usize].slots.clone();
        let rects: Vec<Rect> = slots.iter().map(|&s| self.slot_rect(level, s)).collect();
        let dim = self.dataset.dim();
        let m = self.min_entries;
        let total = slots.len();

        let mut best_axis = 0usize;
        let mut best_axis_margin = f64::INFINITY;
        let mut best_axis_order: Vec<usize> = Vec::new();
        for axis in 0..dim {
            // R* considers sorts by lower and upper bound; for the two we
            // pick the one with the better margin sum.
            for by_upper in [false, true] {
                let mut order: Vec<usize> = (0..total).collect();
                order.sort_by(|&a, &b| {
                    let (ka, kb) = if by_upper {
                        (rects[a].max[axis], rects[b].max[axis])
                    } else {
                        (rects[a].min[axis], rects[b].min[axis])
                    };
                    ka.total_cmp(&kb)
                });
                let mut margin_sum = 0.0f64;
                for k in m..=(total - m) {
                    let mut left = Rect::empty(dim);
                    for &i in &order[..k] {
                        left.union_with(&rects[i]);
                    }
                    let mut right = Rect::empty(dim);
                    for &i in &order[k..] {
                        right.union_with(&rects[i]);
                    }
                    margin_sum += left.margin() + right.margin();
                }
                if margin_sum < best_axis_margin {
                    best_axis_margin = margin_sum;
                    best_axis = axis;
                    best_axis_order = order;
                }
            }
        }
        let _ = best_axis;
        let order = best_axis_order;

        // Choose the distribution along the winning axis.
        let mut best_k = m;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for k in m..=(total - m) {
            let mut left = Rect::empty(dim);
            for &i in &order[..k] {
                left.union_with(&rects[i]);
            }
            let mut right = Rect::empty(dim);
            for &i in &order[k..] {
                right.union_with(&rects[i]);
            }
            let key = (left.overlap(&right), left.area() + right.area());
            if key < best_key {
                best_key = key;
                best_k = k;
            }
        }

        let left_slots: Vec<u32> = order[..best_k].iter().map(|&i| slots[i]).collect();
        let right_slots: Vec<u32> = order[best_k..].iter().map(|&i| slots[i]).collect();
        self.nodes[node as usize].slots = left_slots;
        self.recompute_mbr(node);
        if level == 0 {
            self.new_leaf(right_slots)
        } else {
            self.new_internal(right_slots, level)
        }
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Tree height (levels).
    pub fn height(&self) -> u32 {
        self.nodes[self.root as usize].level + 1
    }

    /// Verify structural invariants: child MBR containment, level
    /// monotonicity, and that every point is present exactly once.
    /// Used by the test suite.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let mut seen = vec![false; self.dataset.len()];
        let mut stack = vec![self.root];
        while let Some(at) = stack.pop() {
            let n = &self.nodes[at as usize];
            if n.level == 0 {
                for &id in &n.slots {
                    if !n.mbr.contains_point(self.point(id)) {
                        return Err(format!("leaf mbr does not contain point {id}"));
                    }
                    if seen[id as usize] {
                        return Err(format!("point {id} appears twice"));
                    }
                    seen[id as usize] = true;
                }
            } else {
                for &c in &n.slots {
                    let child = &self.nodes[c as usize];
                    if child.level + 1 != n.level {
                        return Err(format!(
                            "level mismatch: node level {} child level {}",
                            n.level, child.level
                        ));
                    }
                    let union = Rect::union(&n.mbr, &child.mbr);
                    if union != n.mbr {
                        return Err("child mbr escapes parent mbr".into());
                    }
                    stack.push(c);
                }
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            // An empty incremental tree legitimately has no points yet.
            if !self.dataset.is_empty() {
                return Err(format!("point {missing} missing from tree"));
            }
        }
        Ok(())
    }
}

impl SearchIndex for RStarTree {
    fn len(&self) -> usize {
        self.dataset.len()
    }

    fn dim(&self) -> usize {
        self.dataset.dim()
    }

    fn range_into(
        &self,
        query: &[f32],
        radius: f32,
        scratch: &mut QueryScratch,
        stats: &mut SearchStats,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        let radius_sq = radius * radius;
        let frames = &mut scratch.frames;
        frames.clear();
        frames.push(Frame::unconditional(self.root));
        while let Some(frame) = frames.pop() {
            stats.nodes_visited += 1;
            let n = &self.nodes[frame.node as usize];
            if n.level == 0 {
                for &id in &n.slots {
                    stats.distance_computations += 1;
                    stats.postfilter_candidates += 1;
                    let d2 = l2_squared(query, self.point(id));
                    if d2 <= radius_sq {
                        out.push(Neighbor {
                            id: id as usize,
                            distance: d2.sqrt(),
                        });
                    }
                }
            } else {
                for &c in &n.slots {
                    let md = self.nodes[c as usize].mbr.mindist_sq(query);
                    if md <= radius_sq + tri_slack(md, radius_sq) {
                        frames.push(Frame::unconditional(c));
                    } else {
                        stats.subtrees_pruned += 1;
                    }
                }
            }
        }
        sort_neighbors(out);
    }

    fn knn_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut QueryScratch,
        stats: &mut SearchStats,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        let QueryScratch { heap, frontier, .. } = scratch;
        heap.reset(k);
        // Best-first traversal over (mindist², node).
        frontier.clear();
        frontier.push(Reverse((
            OrderedF32(self.nodes[self.root as usize].mbr.mindist_sq(query)),
            self.root,
        )));
        while let Some(Reverse((OrderedF32(mindist_sq), at))) = frontier.pop() {
            let bound = heap.bound();
            if bound.is_finite()
                && mindist_sq > bound * bound + tri_slack(mindist_sq, bound * bound)
            {
                // Best-first order: the popped node and everything still on
                // the frontier are all beyond the bound.
                stats.subtrees_pruned += 1 + frontier.len() as u64;
                break;
            }
            stats.nodes_visited += 1;
            let n = &self.nodes[at as usize];
            if n.level == 0 {
                for &id in &n.slots {
                    stats.distance_computations += 1;
                    stats.postfilter_candidates += 1;
                    let d2 = l2_squared(query, self.point(id));
                    heap.offer(id as usize, d2.sqrt());
                }
            } else {
                for &c in &n.slots {
                    let md = self.nodes[c as usize].mbr.mindist_sq(query);
                    let bound = heap.bound();
                    if !bound.is_finite() || md <= bound * bound + tri_slack(md, bound * bound) {
                        frontier.push(Reverse((OrderedF32(md), c)));
                    } else {
                        stats.subtrees_pruned += 1;
                    }
                }
            }
        }
        heap.drain_sorted_into(out);
    }

    fn name(&self) -> &'static str {
        "r*-tree"
    }

    fn structure_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for n in &self.nodes {
            total += std::mem::size_of::<Node>()
                + n.slots.len() * std::mem::size_of::<u32>()
                + 2 * n.mbr.dim() * std::mem::size_of::<f32>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use crate::rng::SplitMix64;
    use crate::traits::{knn_search_simple, range_search_simple};
    use cbir_distance::Measure;

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let v: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.next_f32() * 10.0).collect())
            .collect();
        Dataset::from_vectors(&v).unwrap()
    }

    #[test]
    fn bulk_load_matches_linear() {
        let ds = random_dataset(800, 3, 17);
        let rt = RStarTree::bulk_load(ds.clone()).unwrap();
        rt.check_invariants().unwrap();
        let lin = LinearScan::build(ds.clone(), Measure::L2).unwrap();
        for qi in [0usize, 400, 799] {
            let q: Vec<f32> = ds.vector(qi).to_vec();
            for radius in [0.0f32, 1.0, 5.0] {
                assert_eq!(
                    range_search_simple(&rt, &q, radius),
                    range_search_simple(&lin, &q, radius),
                    "range r={radius}"
                );
            }
            for k in [1usize, 10, 50] {
                let a = knn_search_simple(&rt, &q, k);
                let b = knn_search_simple(&lin, &q, k);
                // Distances computed via sqrt(l2_squared) vs incremental l2
                // are both exact f32 sqrt of the same value -> identical.
                assert_eq!(a, b, "knn k={k}");
            }
        }
    }

    #[test]
    fn incremental_build_matches_linear() {
        let ds = random_dataset(500, 2, 23);
        let rt = RStarTree::build_incremental(ds.clone()).unwrap();
        rt.check_invariants().unwrap();
        let lin = LinearScan::build(ds.clone(), Measure::L2).unwrap();
        for qi in [3usize, 250, 499] {
            let q: Vec<f32> = ds.vector(qi).to_vec();
            assert_eq!(
                range_search_simple(&rt, &q, 2.0),
                range_search_simple(&lin, &q, 2.0)
            );
            assert_eq!(
                knn_search_simple(&rt, &q, 15),
                knn_search_simple(&lin, &q, 15)
            );
        }
    }

    #[test]
    fn incremental_equals_bulk_results() {
        let ds = random_dataset(300, 4, 31);
        let a = RStarTree::bulk_load(ds.clone()).unwrap();
        let b = RStarTree::build_incremental(ds.clone()).unwrap();
        let q = ds.vector(123);
        assert_eq!(knn_search_simple(&a, q, 20), knn_search_simple(&b, q, 20));
    }

    #[test]
    fn prunes_in_low_dimensions() {
        let ds = random_dataset(5000, 2, 3);
        let rt = RStarTree::bulk_load(ds.clone()).unwrap();
        let mut stats = SearchStats::new();
        rt.knn_search(ds.vector(10), 5, &mut stats);
        assert!(
            stats.distance_computations < 1000,
            "r*-tree barely pruned: {}",
            stats.distance_computations
        );
    }

    #[test]
    fn str_leaves_are_filled() {
        let ds = random_dataset(1000, 2, 7);
        let rt = RStarTree::bulk_load_with_capacity(ds, 16).unwrap();
        // 1000/16 = 62.5 -> at most ~70 leaves if packing is tight.
        let leaf_count = rt.nodes.iter().filter(|n| n.level == 0).count();
        assert!(leaf_count <= 80, "loose packing: {leaf_count} leaves");
        assert!(rt.height() >= 2);
    }

    #[test]
    fn duplicates_and_degenerate_data() {
        let ds = Dataset::from_vectors(&vec![vec![5.0, 5.0]; 100]).unwrap();
        for rt in [
            RStarTree::bulk_load(ds.clone()).unwrap(),
            RStarTree::build_incremental(ds.clone()).unwrap(),
        ] {
            rt.check_invariants().unwrap();
            assert_eq!(range_search_simple(&rt, &[5.0, 5.0], 0.0).len(), 100);
            assert_eq!(knn_search_simple(&rt, &[0.0, 0.0], 7).len(), 7);
        }
    }

    #[test]
    fn single_point_and_small() {
        for n in 1..=6 {
            let ds = random_dataset(n, 3, n as u64 + 100);
            let rt = RStarTree::bulk_load(ds.clone()).unwrap();
            rt.check_invariants().unwrap();
            let lin = LinearScan::build(ds.clone(), Measure::L2).unwrap();
            let q = ds.vector(0);
            assert_eq!(knn_search_simple(&rt, q, n), knn_search_simple(&lin, q, n));
        }
    }

    #[test]
    fn capacity_validation() {
        let ds = random_dataset(10, 2, 1);
        assert!(RStarTree::bulk_load_with_capacity(ds.clone(), 3).is_err());
        assert!(RStarTree::build_incremental_with_capacity(ds, 2).is_err());
    }

    #[test]
    fn higher_dim_still_exact() {
        let ds = random_dataset(400, 16, 5);
        let rt = RStarTree::bulk_load(ds.clone()).unwrap();
        rt.check_invariants().unwrap();
        let lin = LinearScan::build(ds.clone(), Measure::L2).unwrap();
        let q = ds.vector(200);
        assert_eq!(
            knn_search_simple(&rt, q, 10),
            knn_search_simple(&lin, q, 10)
        );
    }
}
