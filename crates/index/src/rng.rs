//! A tiny deterministic PRNG for tie-breaking and sampling during index
//! construction. SplitMix64 is statistically strong for this purpose, has
//! no dependencies, and keeps builds exactly reproducible across platforms.

/// SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; the same seed always yields the same stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below(0)");
        // Multiply-shift bounded sampling; bias is negligible for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Approximately standard-normal variate (Irwin-Hall sum of 12
    /// uniforms) — adequate for LSH projection vectors.
    pub fn next_normal(&mut self) -> f32 {
        let s: f32 = (0..12).map(|_| self.next_f32()).sum();
        s - 6.0
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(124);
        assert_ne!(SplitMix64::new(123).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_below_in_range_and_roughly_uniform() {
        let mut r = SplitMix64::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(31);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>()); // astronomically unlikely
    }

    #[test]
    fn normal_moments() {
        let mut r = SplitMix64::new(12);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.next_normal()).collect();
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
