//! Vantage-point tree: metric-space partitioning by distance to a chosen
//! vantage point, with triangle-inequality pruning. Works with any true
//! metric (not just coordinate spaces), making it the natural companion to
//! histogram match distances.

use crate::dataset::Dataset;
use crate::error::{IndexError, Result};
use crate::rng::SplitMix64;
use crate::scratch::{Frame, QueryScratch};
use crate::stats::{sort_neighbors, tri_slack, Neighbor, SearchStats};
use crate::traits::SearchIndex;
use cbir_distance::Measure;

/// Frame tags for the iterative traversal: how a pushed child relates to
/// its parent ball, determining the pop-time admission check.
const TAG_INNER: u8 = 1;
const TAG_OUTER: u8 = 2;

#[derive(Debug)]
enum Node {
    Leaf {
        /// `(id, distance to parent vantage point)` — kept for potential
        /// leaf-level pruning and diagnostics.
        ids: Vec<u32>,
    },
    Ball {
        /// The vantage point (also a data point, reported in results).
        vp: u32,
        /// Median distance: inner child holds points with `d <= mu`.
        mu: f32,
        /// Maximum distance from vp to any point in this subtree.
        radius: f32,
        inner: u32,
        outer: u32,
    },
}

/// A VP-tree over a [`Dataset`] under a true metric.
#[derive(Debug)]
pub struct VpTree {
    dataset: Dataset,
    measure: Measure,
    nodes: Vec<Node>,
    root: u32,
    leaf_size: usize,
}

impl VpTree {
    /// Default leaf capacity.
    pub const DEFAULT_LEAF_SIZE: usize = 16;

    /// Build with the default leaf size.
    pub fn build(dataset: Dataset, measure: Measure) -> Result<Self> {
        Self::with_leaf_size(dataset, measure, Self::DEFAULT_LEAF_SIZE)
    }

    /// Build with an explicit leaf capacity.
    ///
    /// Returns [`IndexError::UnsupportedMeasure`] unless the measure is a
    /// true metric — the pruning rule is unsound otherwise.
    pub fn with_leaf_size(dataset: Dataset, measure: Measure, leaf_size: usize) -> Result<Self> {
        if !measure.is_true_metric() {
            return Err(IndexError::UnsupportedMeasure {
                index: "vp-tree",
                measure: measure.name(),
            });
        }
        if leaf_size == 0 {
            return Err(IndexError::InvalidParameter(
                "leaf size must be positive".into(),
            ));
        }
        let mut ids: Vec<u32> = (0..dataset.len() as u32).collect();
        let mut tree = VpTree {
            dataset,
            measure,
            nodes: Vec::new(),
            root: 0,
            leaf_size,
        };
        let mut rng = SplitMix64::new(0x5eed_cafe);
        tree.root = tree.build_node(&mut ids, &mut rng);
        Ok(tree)
    }

    fn build_node(&mut self, ids: &mut [u32], rng: &mut SplitMix64) -> u32 {
        if ids.len() <= self.leaf_size {
            self.nodes.push(Node::Leaf { ids: ids.to_vec() });
            return (self.nodes.len() - 1) as u32;
        }
        // Pick the vantage point uniformly at (deterministic pseudo-)random;
        // the classical construction samples a few and keeps the one with
        // the best distance spread, but a random pick is within a few
        // percent and keeps construction O(n log n).
        let pick = rng.next_below(ids.len());
        ids.swap(0, pick);
        let vp = ids[0];
        let vp_vec: Vec<f32> = self.dataset.vector(vp as usize).to_vec();

        let rest = &mut ids[1..];
        let mut dists: Vec<(u32, f32)> = rest
            .iter()
            .map(|&id| {
                (
                    id,
                    self.measure
                        .distance(&vp_vec, self.dataset.vector(id as usize)),
                )
            })
            .collect();
        let mid = dists.len() / 2;
        dists.select_nth_unstable_by(mid, |a, b| a.1.total_cmp(&b.1));
        let mu = dists[mid].1;
        let radius = dists.iter().map(|d| d.1).fold(0.0f32, f32::max);
        for (slot, (id, _)) in rest.iter_mut().zip(&dists) {
            *slot = *id;
        }
        let (inner_ids, outer_ids) = rest.split_at_mut(mid);
        // `select_nth` guarantee: inner d <= mu, outer d >= mu... except the
        // pivot itself sits in `outer`; both halves respect the mu boundary.
        let inner = self.build_node(inner_ids, rng);
        let outer = self.build_node(outer_ids, rng);
        self.nodes.push(Node::Ball {
            vp,
            mu,
            radius,
            inner,
            outer,
        });
        (self.nodes.len() - 1) as u32
    }

    /// Whether a child frame pushed with `(tag, d, mu)` is admitted when the
    /// current search radius (range `t` or k-NN bound) is `t`.
    #[inline]
    fn admits(frame: &Frame, t: f32) -> bool {
        match frame.tag {
            TAG_INNER => frame.a - t <= frame.b + tri_slack(frame.a, frame.b),
            TAG_OUTER => frame.a + t >= frame.b - tri_slack(frame.a, frame.b),
            _ => true,
        }
    }
}

impl SearchIndex for VpTree {
    fn len(&self) -> usize {
        self.dataset.len()
    }

    fn dim(&self) -> usize {
        self.dataset.dim()
    }

    fn range_into(
        &self,
        query: &[f32],
        radius: f32,
        scratch: &mut QueryScratch,
        stats: &mut SearchStats,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        let frames = &mut scratch.frames;
        frames.clear();
        frames.push(Frame::unconditional(self.root));
        while let Some(frame) = frames.pop() {
            if !Self::admits(&frame, radius) {
                stats.subtrees_pruned += 1;
                continue;
            }
            stats.nodes_visited += 1;
            match &self.nodes[frame.node as usize] {
                Node::Leaf { ids } => {
                    for &id in ids {
                        stats.distance_computations += 1;
                        stats.postfilter_candidates += 1;
                        let d = self
                            .measure
                            .distance(query, self.dataset.vector(id as usize));
                        if d <= radius {
                            out.push(Neighbor {
                                id: id as usize,
                                distance: d,
                            });
                        }
                    }
                }
                Node::Ball {
                    vp,
                    mu,
                    radius: ball_radius,
                    inner,
                    outer,
                } => {
                    stats.distance_computations += 1;
                    let d = self
                        .measure
                        .distance(query, self.dataset.vector(*vp as usize));
                    if d <= radius {
                        out.push(Neighbor {
                            id: *vp as usize,
                            distance: d,
                        });
                    }
                    // Whole-subtree exclusion: everything is within
                    // ball_radius of vp, so if d > radius + ball_radius
                    // nothing below can qualify.
                    if d > radius + ball_radius + tri_slack(d, *ball_radius) {
                        // Ball exclusion skips both children at once.
                        stats.subtrees_pruned += 2;
                        continue;
                    }
                    frames.push(Frame {
                        node: *outer,
                        tag: TAG_OUTER,
                        a: d,
                        b: *mu,
                    });
                    frames.push(Frame {
                        node: *inner,
                        tag: TAG_INNER,
                        a: d,
                        b: *mu,
                    });
                }
            }
        }
        sort_neighbors(out);
    }

    fn knn_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut QueryScratch,
        stats: &mut SearchStats,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        let QueryScratch { heap, frames, .. } = scratch;
        heap.reset(k);
        frames.clear();
        frames.push(Frame::unconditional(self.root));
        while let Some(frame) = frames.pop() {
            // Lazy admission check against the current (possibly tightened)
            // bound — prunes at least as much as the recursive form.
            if !Self::admits(&frame, heap.bound()) {
                stats.subtrees_pruned += 1;
                continue;
            }
            stats.nodes_visited += 1;
            match &self.nodes[frame.node as usize] {
                Node::Leaf { ids } => {
                    for &id in ids {
                        stats.distance_computations += 1;
                        stats.postfilter_candidates += 1;
                        let d = self
                            .measure
                            .distance(query, self.dataset.vector(id as usize));
                        heap.offer(id as usize, d);
                    }
                }
                Node::Ball {
                    vp,
                    mu,
                    radius: ball_radius,
                    inner,
                    outer,
                } => {
                    stats.distance_computations += 1;
                    let d = self
                        .measure
                        .distance(query, self.dataset.vector(*vp as usize));
                    heap.offer(*vp as usize, d);
                    if d > heap.bound() + ball_radius + tri_slack(d, *ball_radius) {
                        // Ball exclusion skips both children at once.
                        stats.subtrees_pruned += 2;
                        continue;
                    }
                    // The more promising side is pushed last so it pops
                    // first and tightens the bound before the other side's
                    // admission check runs.
                    let (first, second) = if d <= *mu {
                        ((*inner, TAG_INNER), (*outer, TAG_OUTER))
                    } else {
                        ((*outer, TAG_OUTER), (*inner, TAG_INNER))
                    };
                    frames.push(Frame {
                        node: second.0,
                        tag: second.1,
                        a: d,
                        b: *mu,
                    });
                    frames.push(Frame {
                        node: first.0,
                        tag: first.1,
                        a: d,
                        b: *mu,
                    });
                }
            }
        }
        heap.drain_sorted_into(out);
    }

    fn name(&self) -> &'static str {
        "vp-tree"
    }

    fn structure_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for n in &self.nodes {
            total += std::mem::size_of::<Node>();
            if let Node::Leaf { ids } = n {
                total += ids.len() * std::mem::size_of::<u32>();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use crate::traits::{knn_search_simple, range_search_simple};

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let v: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.next_f32() * 10.0).collect())
            .collect();
        Dataset::from_vectors(&v).unwrap()
    }

    #[test]
    fn matches_linear_scan_exactly() {
        let ds = random_dataset(600, 6, 11);
        for measure in [Measure::L1, Measure::L2, Measure::LInf, Measure::Match] {
            let vp = VpTree::build(ds.clone(), measure.clone()).unwrap();
            let lin = LinearScan::build(ds.clone(), measure.clone()).unwrap();
            for qi in [0usize, 250, 599] {
                let q: Vec<f32> = ds.vector(qi).to_vec();
                for radius in [0.0f32, 1.5, 6.0] {
                    assert_eq!(
                        range_search_simple(&vp, &q, radius),
                        range_search_simple(&lin, &q, radius),
                        "{} range r={radius}",
                        measure.name()
                    );
                }
                for k in [1usize, 10, 100] {
                    assert_eq!(
                        knn_search_simple(&vp, &q, k),
                        knn_search_simple(&lin, &q, k),
                        "{} knn k={k}",
                        measure.name()
                    );
                }
            }
        }
    }

    #[test]
    fn off_dataset_queries_match_linear() {
        let ds = random_dataset(400, 3, 3);
        let vp = VpTree::build(ds.clone(), Measure::L2).unwrap();
        let lin = LinearScan::build(ds, Measure::L2).unwrap();
        let mut rng = SplitMix64::new(77);
        for _ in 0..20 {
            let q: Vec<f32> = (0..3).map(|_| rng.next_f32() * 20.0 - 5.0).collect();
            assert_eq!(
                knn_search_simple(&vp, &q, 5),
                knn_search_simple(&lin, &q, 5)
            );
            assert_eq!(
                range_search_simple(&vp, &q, 3.0),
                range_search_simple(&lin, &q, 3.0)
            );
        }
    }

    #[test]
    fn prunes_substantially_in_low_dimensions() {
        let ds = random_dataset(4000, 2, 21);
        let vp = VpTree::build(ds.clone(), Measure::L2).unwrap();
        let mut stats = SearchStats::new();
        vp.knn_search(ds.vector(17), 5, &mut stats);
        assert!(
            stats.distance_computations < 2000,
            "vp-tree barely pruned: {}",
            stats.distance_computations
        );
    }

    #[test]
    fn rejects_non_metrics() {
        let ds = Dataset::from_vectors(&[vec![1.0]]).unwrap();
        for m in [
            Measure::Cosine,
            Measure::ChiSquare,
            Measure::Intersection,
            Measure::Jeffrey,
        ] {
            assert!(matches!(
                VpTree::build(ds.clone(), m),
                Err(IndexError::UnsupportedMeasure { .. })
            ));
        }
    }

    #[test]
    fn duplicates_and_tiny_datasets() {
        let ds = Dataset::from_vectors(&vec![vec![2.0, 2.0]; 50]).unwrap();
        let vp = VpTree::build(ds, Measure::L2).unwrap();
        assert_eq!(range_search_simple(&vp, &[2.0, 2.0], 0.0).len(), 50);

        let one = Dataset::from_vectors(&[vec![1.0]]).unwrap();
        let vp = VpTree::build(one, Measure::L1).unwrap();
        let hits = knn_search_simple(&vp, &[4.0], 2);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].distance, 3.0);
    }

    #[test]
    fn leaf_size_affects_structure_not_results() {
        let ds = random_dataset(300, 4, 9);
        let a = VpTree::with_leaf_size(ds.clone(), Measure::L2, 4).unwrap();
        let b = VpTree::with_leaf_size(ds.clone(), Measure::L2, 64).unwrap();
        let q = ds.vector(5);
        assert_eq!(knn_search_simple(&a, q, 12), knn_search_simple(&b, q, 12));
        assert!(VpTree::with_leaf_size(ds, Measure::L2, 0).is_err());
    }
}
