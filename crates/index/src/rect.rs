//! Axis-aligned bounding rectangles in d dimensions, the geometry layer of
//! the R\*-tree.

/// An axis-aligned d-dimensional rectangle.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    /// Lower corner.
    pub min: Vec<f32>,
    /// Upper corner (component-wise ≥ `min`).
    pub max: Vec<f32>,
}

impl Rect {
    /// The degenerate rectangle covering a single point.
    pub fn point(p: &[f32]) -> Self {
        Rect {
            min: p.to_vec(),
            max: p.to_vec(),
        }
    }

    /// An "empty" rectangle that unions as the identity.
    pub fn empty(dim: usize) -> Self {
        Rect {
            min: vec![f32::INFINITY; dim],
            max: vec![f32::NEG_INFINITY; dim],
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Grow in place to cover `other`.
    pub fn union_with(&mut self, other: &Rect) {
        for d in 0..self.min.len() {
            self.min[d] = self.min[d].min(other.min[d]);
            self.max[d] = self.max[d].max(other.max[d]);
        }
    }

    /// The smallest rectangle covering both inputs.
    pub fn union(a: &Rect, b: &Rect) -> Rect {
        let mut out = a.clone();
        out.union_with(b);
        out
    }

    /// Hyper-volume (product of extents); 0 for degenerate rectangles.
    pub fn area(&self) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| (hi - lo).max(0.0) as f64)
            .product()
    }

    /// Margin (sum of extents) — the R\* split criterion's tie-breaker
    /// favouring square-ish pages.
    pub fn margin(&self) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| (hi - lo).max(0.0) as f64)
            .sum()
    }

    /// Overlap volume with `other` (0 when disjoint).
    pub fn overlap(&self, other: &Rect) -> f64 {
        let mut v = 1.0f64;
        for d in 0..self.min.len() {
            let lo = self.min[d].max(other.min[d]);
            let hi = self.max[d].min(other.max[d]);
            if hi <= lo {
                return 0.0;
            }
            v *= (hi - lo) as f64;
        }
        v
    }

    /// Area growth needed to absorb `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        Rect::union(self, other).area() - self.area()
    }

    /// Whether `p` lies inside (inclusive).
    pub fn contains_point(&self, p: &[f32]) -> bool {
        self.min
            .iter()
            .zip(&self.max)
            .zip(p)
            .all(|((lo, hi), x)| *lo <= *x && *x <= *hi)
    }

    /// Squared L2 distance from a point to the rectangle (0 inside) — the
    /// MINDIST lower bound used for pruning.
    pub fn mindist_sq(&self, p: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for ((&lo, &hi), &x) in self.min.iter().zip(&self.max).zip(p) {
            let delta = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            acc += delta * delta;
        }
        acc
    }

    /// Centre point.
    pub fn center(&self) -> Vec<f32> {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| (lo + hi) / 2.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(min: &[f32], max: &[f32]) -> Rect {
        Rect {
            min: min.to_vec(),
            max: max.to_vec(),
        }
    }

    #[test]
    fn point_rect_is_degenerate() {
        let r = Rect::point(&[1.0, 2.0]);
        assert_eq!(r.area(), 0.0);
        assert_eq!(r.margin(), 0.0);
        assert!(r.contains_point(&[1.0, 2.0]));
        assert!(!r.contains_point(&[1.0, 2.1]));
    }

    #[test]
    fn union_and_empty_identity() {
        let a = rect(&[0.0, 0.0], &[1.0, 1.0]);
        let e = Rect::empty(2);
        assert_eq!(Rect::union(&e, &a), a);
        let b = rect(&[2.0, -1.0], &[3.0, 0.5]);
        let u = Rect::union(&a, &b);
        assert_eq!(u, rect(&[0.0, -1.0], &[3.0, 1.0]));
    }

    #[test]
    fn area_margin() {
        let r = rect(&[0.0, 0.0, 0.0], &[2.0, 3.0, 4.0]);
        assert_eq!(r.area(), 24.0);
        assert_eq!(r.margin(), 9.0);
    }

    #[test]
    fn overlap_cases() {
        let a = rect(&[0.0, 0.0], &[2.0, 2.0]);
        let b = rect(&[1.0, 1.0], &[3.0, 3.0]);
        assert_eq!(a.overlap(&b), 1.0);
        let c = rect(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(a.overlap(&c), 0.0);
        // Touching edges overlap zero.
        let d = rect(&[2.0, 0.0], &[3.0, 2.0]);
        assert_eq!(a.overlap(&d), 0.0);
        // Full containment.
        let inner = rect(&[0.5, 0.5], &[1.0, 1.0]);
        assert_eq!(a.overlap(&inner), 0.25);
    }

    #[test]
    fn enlargement() {
        let a = rect(&[0.0, 0.0], &[2.0, 2.0]);
        let inside = Rect::point(&[1.0, 1.0]);
        assert_eq!(a.enlargement(&inside), 0.0);
        let outside = Rect::point(&[4.0, 2.0]);
        assert_eq!(a.enlargement(&outside), 4.0); // grows to 4x2
    }

    #[test]
    fn mindist() {
        let r = rect(&[1.0, 1.0], &[3.0, 3.0]);
        assert_eq!(r.mindist_sq(&[2.0, 2.0]), 0.0); // inside
        assert_eq!(r.mindist_sq(&[0.0, 2.0]), 1.0); // left face
        assert_eq!(r.mindist_sq(&[0.0, 0.0]), 2.0); // corner
        assert_eq!(r.mindist_sq(&[5.0, 4.0]), 5.0); // corner 2,1
    }

    #[test]
    fn center() {
        let r = rect(&[0.0, 2.0], &[4.0, 6.0]);
        assert_eq!(r.center(), vec![2.0, 4.0]);
    }
}
