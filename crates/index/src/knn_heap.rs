//! Bounded max-heap collecting the k nearest neighbours seen so far.

use crate::stats::{sort_neighbors, Neighbor};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry ordered by distance (max at the top), ties by id so eviction
/// is deterministic.
#[derive(Debug, PartialEq)]
struct Entry(Neighbor);

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .distance
            .total_cmp(&other.0.distance)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

/// Collects the `k` smallest-distance neighbours observed.
#[derive(Debug)]
pub struct KnnHeap {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl KnnHeap {
    /// A heap retaining the `k` nearest. `k` must be positive.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KnnHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Clear the heap and set a new `k`, retaining the allocated capacity
    /// so a heap can be reused across queries without touching the
    /// allocator. `k` must be positive.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "k must be positive");
        self.k = k;
        self.heap.clear();
        self.heap.reserve(k + 1);
    }

    /// Offer a candidate; it is retained iff it beats the current k-th best.
    pub fn offer(&mut self, id: usize, distance: f32) {
        if self.heap.len() < self.k {
            self.heap.push(Entry(Neighbor { id, distance }));
            return;
        }
        // Full: compare against the current worst.
        let worst = self.heap.peek().expect("non-empty").0;
        if distance < worst.distance || (distance == worst.distance && id < worst.id) {
            self.heap.pop();
            self.heap.push(Entry(Neighbor { id, distance }));
        }
    }

    /// Current pruning bound: the k-th best distance, or `+inf` while the
    /// heap is not yet full.
    pub fn bound(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().expect("full heap").0.distance
        }
    }

    /// Number of neighbours currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no neighbours have been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Extract the results sorted by ascending distance (ties by id).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut out: Vec<Neighbor> = self.heap.into_iter().map(|e| e.0).collect();
        sort_neighbors(&mut out);
        out
    }

    /// Drain the results, sorted by ascending distance (ties by id), into a
    /// caller-owned buffer (appended; callers clear first if they want only
    /// this query's hits). Leaves the heap empty but keeps its capacity, so
    /// heap and buffer can both be reused allocation-free across queries.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<Neighbor>) {
        let start = out.len();
        out.extend(self.heap.drain().map(|e| e.0));
        sort_neighbors(&mut out[start..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut h = KnnHeap::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 0.5), (4, 4.0)] {
            h.offer(id, d);
        }
        let out = h.into_sorted();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].id, 3);
        assert_eq!(out[1].id, 1);
        assert_eq!(out[2].id, 2);
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.bound(), f32::INFINITY);
        h.offer(0, 1.0);
        assert_eq!(h.bound(), f32::INFINITY);
        h.offer(1, 2.0);
        assert_eq!(h.bound(), 2.0);
        h.offer(2, 0.5);
        assert_eq!(h.bound(), 1.0);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn ties_prefer_smaller_id() {
        let mut h = KnnHeap::new(2);
        h.offer(9, 1.0);
        h.offer(5, 1.0);
        h.offer(1, 1.0);
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut h = KnnHeap::new(10);
        h.offer(0, 2.0);
        h.offer(1, 1.0);
        let out = h.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, 1);
    }

    #[test]
    fn empty_heap() {
        let h = KnnHeap::new(3);
        assert!(h.is_empty());
        assert!(h.into_sorted().is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        KnnHeap::new(0);
    }
}
