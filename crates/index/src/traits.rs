//! The common interface all index structures implement.

use crate::scratch::QueryScratch;
use crate::stats::{BatchStats, Neighbor, SearchStats};

/// A similarity-search index over a fixed dataset of feature vectors.
///
/// The contract, verified by the cross-implementation test suite: for any
/// query, both search modes return *exactly* the same result set as a
/// sequential scan under the same measure — indexes accelerate, never
/// approximate. The batched entry points extend the same contract: every
/// query in a batch returns results bit-identical (ids, distances,
/// ordering) to its single-query counterpart, regardless of batch size or
/// thread count.
///
/// Implementors provide the scratch-based [`range_into`](Self::range_into)
/// and [`knn_into`](Self::knn_into); the allocating single-query methods
/// and the batch loops are derived from them. Reusing one
/// [`QueryScratch`] across queries is what makes steady-state search
/// allocation-free.
///
/// # Tie-breaking
///
/// Equal distances are broken by **ascending id**, everywhere:
///
/// * result lists are sorted by `(distance, id)` — two hits at the same
///   distance always appear smaller id first;
/// * when the k-th place is contested (more than `k` candidates would
///   remain after including every vector tied with the k-th distance),
///   the candidates with the smallest ids win the remaining slots.
///
/// Because the rule depends only on the candidate set — not on traversal
/// order — every implementation resolves ties identically, which is what
/// makes the cross-index and cross-thread-count bit-identity contract
/// testable on data with duplicated vectors.
pub trait SearchIndex: Send + Sync {
    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// Whether the index is empty (never true; datasets are non-empty).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of indexed vectors.
    fn dim(&self) -> usize;

    /// All vectors within `radius` of `query` (inclusive) written into
    /// `out` (cleared first), sorted by ascending distance with ties broken
    /// by id. `scratch` provides the traversal state; reuse it across
    /// queries to avoid per-query allocation.
    fn range_into(
        &self,
        query: &[f32],
        radius: f32,
        scratch: &mut QueryScratch,
        stats: &mut SearchStats,
        out: &mut Vec<Neighbor>,
    );

    /// The `k` nearest vectors to `query` written into `out` (cleared
    /// first), sorted by ascending distance with ties broken by id. Fills
    /// fewer than `k` only when the dataset is smaller than `k`. `scratch`
    /// provides the traversal state; reuse it across queries to avoid
    /// per-query allocation.
    fn knn_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut QueryScratch,
        stats: &mut SearchStats,
        out: &mut Vec<Neighbor>,
    );

    /// All vectors within `radius` of `query` (inclusive), sorted by
    /// ascending distance with ties broken by id. Allocates fresh scratch;
    /// prefer [`range_into`](Self::range_into) or the batch entry points
    /// on hot paths.
    fn range_search(&self, query: &[f32], radius: f32, stats: &mut SearchStats) -> Vec<Neighbor> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.range_into(query, radius, &mut scratch, stats, &mut out);
        out
    }

    /// The `k` nearest vectors to `query`, sorted by ascending distance
    /// with ties broken by id. Returns fewer than `k` only when the dataset
    /// is smaller than `k`. Allocates fresh scratch; prefer
    /// [`knn_into`](Self::knn_into) or the batch entry points on hot paths.
    fn knn_search(&self, query: &[f32], k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.knn_into(query, k, &mut scratch, stats, &mut out);
        out
    }

    /// Range search over a batch of queries on the calling thread, reusing
    /// one scratch. Returns one result list per query, in query order;
    /// each is bit-identical to the single-query path. Per-query counters
    /// are recorded into `stats`.
    fn range_batch(
        &self,
        queries: &[Vec<f32>],
        radius: f32,
        stats: &mut BatchStats,
    ) -> Vec<Vec<Neighbor>> {
        let mut scratch = QueryScratch::new();
        let mut per_query = SearchStats::new();
        queries
            .iter()
            .map(|q| {
                per_query.reset();
                let mut out = Vec::new();
                self.range_into(q, radius, &mut scratch, &mut per_query, &mut out);
                stats.record(&per_query);
                out
            })
            .collect()
    }

    /// k-NN search over a batch of queries on the calling thread, reusing
    /// one scratch. Returns one result list per query, in query order;
    /// each is bit-identical to the single-query path. Per-query counters
    /// are recorded into `stats`.
    fn knn_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        stats: &mut BatchStats,
    ) -> Vec<Vec<Neighbor>> {
        let mut scratch = QueryScratch::new();
        let mut per_query = SearchStats::new();
        queries
            .iter()
            .map(|q| {
                per_query.reset();
                let mut out = Vec::new();
                self.knn_into(q, k, &mut scratch, &mut per_query, &mut out);
                stats.record(&per_query);
                out
            })
            .collect()
    }

    /// Short name for tables ("linear", "kd-tree", "vp-tree", ...).
    fn name(&self) -> &'static str;

    /// Approximate heap footprint of the index structure itself, excluding
    /// the shared dataset.
    fn structure_bytes(&self) -> usize;
}

/// Convenience: run a range search discarding stats.
pub fn range_search_simple(index: &dyn SearchIndex, query: &[f32], radius: f32) -> Vec<Neighbor> {
    let mut stats = SearchStats::new();
    index.range_search(query, radius, &mut stats)
}

/// Convenience: run a k-NN search discarding stats.
pub fn knn_search_simple(index: &dyn SearchIndex, query: &[f32], k: usize) -> Vec<Neighbor> {
    let mut stats = SearchStats::new();
    index.knn_search(query, k, &mut stats)
}

/// Fan a k-NN batch out across `threads` OS threads with
/// [`std::thread::scope`]. Queries are split into contiguous chunks, one
/// per thread; each worker runs [`SearchIndex::knn_batch`] with its own
/// scratch and [`BatchStats`], and the chunks are reassembled in query
/// order, so results and recorded per-query counters are identical to the
/// sequential batch regardless of thread count.
pub fn knn_batch_parallel(
    index: &dyn SearchIndex,
    queries: &[Vec<f32>],
    k: usize,
    threads: usize,
    stats: &mut BatchStats,
) -> Vec<Vec<Neighbor>> {
    run_parallel(queries, threads, stats, |chunk, chunk_stats| {
        index.knn_batch(chunk, k, chunk_stats)
    })
}

/// Fan a range batch out across `threads` OS threads; see
/// [`knn_batch_parallel`] for the execution model and determinism
/// guarantees.
pub fn range_batch_parallel(
    index: &dyn SearchIndex,
    queries: &[Vec<f32>],
    radius: f32,
    threads: usize,
    stats: &mut BatchStats,
) -> Vec<Vec<Neighbor>> {
    run_parallel(queries, threads, stats, |chunk, chunk_stats| {
        index.range_batch(chunk, radius, chunk_stats)
    })
}

/// Shared chunk-spawn-join scaffolding for the parallel batch entry points
/// (also reused by the approximate batch path in [`crate::approx`]).
pub(crate) fn run_parallel<F>(
    queries: &[Vec<f32>],
    threads: usize,
    stats: &mut BatchStats,
    search_chunk: F,
) -> Vec<Vec<Neighbor>>
where
    F: Fn(&[Vec<f32>], &mut BatchStats) -> Vec<Vec<Neighbor>> + Sync,
{
    let threads = threads.max(1).min(queries.len().max(1));
    if threads == 1 {
        return search_chunk(queries, stats);
    }
    let chunk_len = queries.len().div_ceil(threads);
    let parts: Vec<(Vec<Vec<Neighbor>>, BatchStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk_len)
            .map(|chunk| {
                let search_chunk = &search_chunk;
                scope.spawn(move || {
                    let mut chunk_stats = BatchStats::new();
                    let results = search_chunk(chunk, &mut chunk_stats);
                    (results, chunk_stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch search worker panicked"))
            .collect()
    });
    let mut all = Vec::with_capacity(queries.len());
    for (results, chunk_stats) in parts {
        all.extend(results);
        stats.merge(&chunk_stats);
    }
    all
}
