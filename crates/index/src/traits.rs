//! The common interface all index structures implement.

use crate::stats::{Neighbor, SearchStats};

/// A similarity-search index over a fixed dataset of feature vectors.
///
/// The contract, verified by the cross-implementation test suite: for any
/// query, both search modes return *exactly* the same result set as a
/// sequential scan under the same measure — indexes accelerate, never
/// approximate.
pub trait SearchIndex: Send + Sync {
    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// Whether the index is empty (never true; datasets are non-empty).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of indexed vectors.
    fn dim(&self) -> usize;

    /// All vectors within `radius` of `query` (inclusive), sorted by
    /// ascending distance with ties broken by id.
    fn range_search(&self, query: &[f32], radius: f32, stats: &mut SearchStats)
        -> Vec<Neighbor>;

    /// The `k` nearest vectors to `query`, sorted by ascending distance
    /// with ties broken by id. Returns fewer than `k` only when the dataset
    /// is smaller than `k`.
    fn knn_search(&self, query: &[f32], k: usize, stats: &mut SearchStats) -> Vec<Neighbor>;

    /// Short name for tables ("linear", "kd-tree", "vp-tree", ...).
    fn name(&self) -> &'static str;

    /// Approximate heap footprint of the index structure itself, excluding
    /// the shared dataset.
    fn structure_bytes(&self) -> usize;
}

/// Convenience: run a range search discarding stats.
pub fn range_search_simple(index: &dyn SearchIndex, query: &[f32], radius: f32) -> Vec<Neighbor> {
    let mut stats = SearchStats::new();
    index.range_search(query, radius, &mut stats)
}

/// Convenience: run a k-NN search discarding stats.
pub fn knn_search_simple(index: &dyn SearchIndex, query: &[f32], k: usize) -> Vec<Neighbor> {
    let mut stats = SearchStats::new();
    index.knn_search(query, k, &mut stats)
}
