//! Antipole tree (Cantone, Ferro, Pulvirenti, Reforgiato Recupero, Shasha):
//! a metric-space index built by recursive antipole splitting.
//!
//! Construction finds an approximate farthest pair (the *antipole*) of the
//! current set by a linear-time randomized tournament. If the pair's
//! distance exceeds the cluster-diameter threshold the set is split between
//! the two endpoints and the procedure recurses; otherwise the set becomes a
//! leaf cluster annotated with an approximate 1-median (its centroid), the
//! cluster radius, and each member's distance to the centroid. Search prunes
//! subtrees with the triangle inequality against the antipole endpoints and
//! prunes individual cluster members against the precomputed centroid
//! distances.

use crate::dataset::Dataset;
use crate::error::{IndexError, Result};
use crate::rng::SplitMix64;
use crate::scratch::{Frame, QueryScratch};
use crate::stats::{sort_neighbors, tri_slack, Neighbor, SearchStats};
use crate::traits::SearchIndex;
use cbir_distance::Measure;

/// Tournament size τ. The paper fixes τ = 3, where the fast and accurate
/// antipole variants coincide.
const TAU: usize = 3;

/// Below this size a set's exact 1-median / farthest pair is computed
/// directly instead of by tournament.
const EXACT_THRESHOLD: usize = 24;

#[derive(Debug)]
enum Node {
    /// An empty subtree (an antipole endpoint had no other points on its
    /// side).
    Empty,
    Leaf {
        /// Approximate 1-median of the cluster.
        centroid: u32,
        /// Remaining members with their precomputed distance to the
        /// centroid.
        members: Vec<(u32, f32)>,
        /// Max distance from the centroid to any member.
        radius: f32,
    },
    Internal {
        a: u32,
        b: u32,
        /// Covering radius of the left subtree around `a` (max over the
        /// subtree's points of their distance to `a`).
        rad_a: f32,
        /// Covering radius of the right subtree around `b`.
        rad_b: f32,
        left: u32,
        right: u32,
    },
}

/// The Antipole tree.
#[derive(Debug)]
pub struct AntipoleTree {
    dataset: Dataset,
    measure: Measure,
    nodes: Vec<Node>,
    root: u32,
    diameter: f32,
}

impl AntipoleTree {
    /// Build with the given cluster-diameter threshold: a set whose
    /// approximate diameter is at most `diameter` becomes one leaf cluster.
    ///
    /// Smaller thresholds give deeper trees (more pruning per query, more
    /// build work); larger give flatter trees. The measure must be a true
    /// metric.
    pub fn build(dataset: Dataset, measure: Measure, diameter: f32) -> Result<Self> {
        if !measure.is_true_metric() {
            return Err(IndexError::UnsupportedMeasure {
                index: "antipole tree",
                measure: measure.name(),
            });
        }
        if diameter.is_nan() || diameter < 0.0 || !diameter.is_finite() {
            return Err(IndexError::InvalidParameter(format!(
                "cluster diameter must be finite and non-negative, got {diameter}"
            )));
        }
        let ids: Vec<u32> = (0..dataset.len() as u32).collect();
        let mut tree = AntipoleTree {
            dataset,
            measure,
            nodes: Vec::new(),
            root: 0,
            diameter,
        };
        let mut rng = SplitMix64::new(0xA271_901E);
        tree.root = tree.build_node(ids, &mut rng);
        Ok(tree)
    }

    /// A data-driven diameter suggestion: half the median pairwise distance
    /// of a deterministic sample. A reasonable default for the classic
    /// build-vs-query trade-off.
    pub fn suggest_diameter(dataset: &Dataset, measure: &Measure) -> f32 {
        let mut rng = SplitMix64::new(42);
        let n = dataset.len();
        let samples = 64.min(n);
        let mut dists = Vec::with_capacity(samples * 2);
        for _ in 0..samples * 2 {
            let i = rng.next_below(n);
            let j = rng.next_below(n);
            if i != j {
                dists.push(measure.distance(dataset.vector(i), dataset.vector(j)));
            }
        }
        if dists.is_empty() {
            return 0.0;
        }
        let mid = dists.len() / 2;
        dists.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
        dists[mid] / 2.0
    }

    /// The diameter threshold the tree was built with.
    pub fn diameter(&self) -> f32 {
        self.diameter
    }

    #[inline]
    fn dist_ids(&self, a: u32, b: u32) -> f32 {
        self.measure.distance(
            self.dataset.vector(a as usize),
            self.dataset.vector(b as usize),
        )
    }

    /// Exact 1-median of a small set: the element minimizing the sum of
    /// distances to the others.
    fn exact_1_median(&self, ids: &[u32]) -> u32 {
        debug_assert!(!ids.is_empty());
        let mut best = ids[0];
        let mut best_sum = f32::INFINITY;
        for &x in ids {
            let s: f32 = ids.iter().map(|&y| self.dist_ids(x, y)).sum();
            if s < best_sum {
                best_sum = s;
                best = x;
            }
        }
        best
    }

    /// Approximate 1-median by tournament (τ-sized local rounds).
    fn approx_1_median(&self, ids: &[u32], rng: &mut SplitMix64) -> u32 {
        let mut current: Vec<u32> = ids.to_vec();
        rng.shuffle(&mut current);
        while current.len() > EXACT_THRESHOLD {
            let mut winners = Vec::with_capacity(current.len() / TAU + 1);
            for chunk in current.chunks(TAU) {
                winners.push(self.exact_1_median(chunk));
            }
            current = winners;
        }
        self.exact_1_median(&current)
    }

    /// Exact farthest pair of a small set.
    fn exact_antipole(&self, ids: &[u32]) -> (u32, u32, f32) {
        debug_assert!(ids.len() >= 2);
        let mut best = (ids[0], ids[1], -1.0f32);
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let d = self.dist_ids(ids[i], ids[j]);
                if d > best.2 {
                    best = (ids[i], ids[j], d);
                }
            }
        }
        best
    }

    /// Approximate antipole (farthest pair) by tournament: each τ-subset
    /// passes its local farthest pair to the next round.
    fn approx_antipole(&self, ids: &[u32], rng: &mut SplitMix64) -> (u32, u32, f32) {
        let mut current: Vec<u32> = ids.to_vec();
        rng.shuffle(&mut current);
        while current.len() > EXACT_THRESHOLD {
            let mut winners = Vec::with_capacity(2 * (current.len() / TAU) + 2);
            for chunk in current.chunks(TAU) {
                if chunk.len() >= 2 {
                    let (a, b, _) = self.exact_antipole(chunk);
                    winners.push(a);
                    winners.push(b);
                } else {
                    winners.extend_from_slice(chunk);
                }
            }
            if winners.len() >= current.len() {
                // τ-chunks of size 2 pass both elements through; no further
                // shrinkage is possible.
                current = winners;
                break;
            }
            current = winners;
        }
        self.exact_antipole(&current)
    }

    fn make_leaf(&mut self, ids: Vec<u32>, rng: &mut SplitMix64) -> u32 {
        if ids.is_empty() {
            self.nodes.push(Node::Empty);
            return (self.nodes.len() - 1) as u32;
        }
        let centroid = self.approx_1_median(&ids, rng);
        let mut members = Vec::with_capacity(ids.len() - 1);
        let mut radius = 0.0f32;
        for &id in &ids {
            if id == centroid {
                continue;
            }
            let d = self.dist_ids(centroid, id);
            radius = radius.max(d);
            members.push((id, d));
        }
        self.nodes.push(Node::Leaf {
            centroid,
            members,
            radius,
        });
        (self.nodes.len() - 1) as u32
    }

    fn build_node(&mut self, ids: Vec<u32>, rng: &mut SplitMix64) -> u32 {
        if ids.len() < 2 {
            return self.make_leaf(ids, rng);
        }
        let (a, b, dist_ab) = self.approx_antipole(&ids, rng);
        // Splitting condition Φ: split only while the approximate diameter
        // exceeds the threshold.
        if dist_ab <= self.diameter {
            return self.make_leaf(ids, rng);
        }
        let mut left_ids = Vec::new();
        let mut right_ids = Vec::new();
        let mut rad_a = 0.0f32;
        let mut rad_b = 0.0f32;
        for id in ids {
            if id == a || id == b {
                continue;
            }
            let da = self.dist_ids(a, id);
            let db = self.dist_ids(b, id);
            if da <= db {
                rad_a = rad_a.max(da);
                left_ids.push(id);
            } else {
                rad_b = rad_b.max(db);
                right_ids.push(id);
            }
        }
        let left = self.build_node(left_ids, rng);
        let right = self.build_node(right_ids, rng);
        self.nodes.push(Node::Internal {
            a,
            b,
            rad_a,
            rad_b,
            left,
            right,
        });
        (self.nodes.len() - 1) as u32
    }

    /// Pop-time admission check: a child frame carries `(d(q, router),
    /// covering radius)`; it is visited iff the router ball can still
    /// intersect the current search ball of radius `t`.
    #[inline]
    fn admits(frame: &Frame, t: f32) -> bool {
        frame.tag == 0 || frame.a <= t + frame.b + tri_slack(frame.a, frame.b)
    }

    /// Number of leaf clusters (diagnostic).
    pub fn cluster_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum leaf-cluster radius observed (diagnostic; bounded by the
    /// construction in terms of the diameter threshold).
    pub fn max_cluster_radius(&self) -> f32 {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Leaf { radius, .. } => Some(*radius),
                _ => None,
            })
            .fold(0.0, f32::max)
    }
}

impl SearchIndex for AntipoleTree {
    fn len(&self) -> usize {
        self.dataset.len()
    }

    fn dim(&self) -> usize {
        self.dataset.dim()
    }

    fn range_into(
        &self,
        query: &[f32],
        radius: f32,
        scratch: &mut QueryScratch,
        stats: &mut SearchStats,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        let t = radius;
        let frames = &mut scratch.frames;
        frames.clear();
        frames.push(Frame::unconditional(self.root));
        while let Some(frame) = frames.pop() {
            if !Self::admits(&frame, t) {
                stats.subtrees_pruned += 1;
                continue;
            }
            stats.nodes_visited += 1;
            match &self.nodes[frame.node as usize] {
                Node::Empty => {}
                Node::Leaf {
                    centroid,
                    members,
                    radius,
                } => {
                    stats.distance_computations += 1;
                    let dc = self
                        .measure
                        .distance(query, self.dataset.vector(*centroid as usize));
                    if dc <= t {
                        out.push(Neighbor {
                            id: *centroid as usize,
                            distance: dc,
                        });
                    }
                    // Whole-cluster exclusion.
                    if dc > t + radius + tri_slack(dc, *radius) {
                        stats.subtrees_pruned += 1;
                        continue;
                    }
                    for &(id, dcm) in members {
                        // Triangle exclusion: |d(q,c) - d(c,m)| ≤ d(q,m).
                        if (dc - dcm).abs() > t + tri_slack(dc, dcm) {
                            continue;
                        }
                        stats.distance_computations += 1;
                        stats.postfilter_candidates += 1;
                        let d = self
                            .measure
                            .distance(query, self.dataset.vector(id as usize));
                        if d <= t {
                            out.push(Neighbor {
                                id: id as usize,
                                distance: d,
                            });
                        }
                    }
                }
                Node::Internal {
                    a,
                    b,
                    rad_a,
                    rad_b,
                    left,
                    right,
                } => {
                    stats.distance_computations += 2;
                    let da = self
                        .measure
                        .distance(query, self.dataset.vector(*a as usize));
                    let db = self
                        .measure
                        .distance(query, self.dataset.vector(*b as usize));
                    if da <= t {
                        out.push(Neighbor {
                            id: *a as usize,
                            distance: da,
                        });
                    }
                    if db <= t {
                        out.push(Neighbor {
                            id: *b as usize,
                            distance: db,
                        });
                    }
                    frames.push(Frame {
                        node: *right,
                        tag: 1,
                        a: db,
                        b: *rad_b,
                    });
                    frames.push(Frame {
                        node: *left,
                        tag: 1,
                        a: da,
                        b: *rad_a,
                    });
                }
            }
        }
        sort_neighbors(out);
    }

    fn knn_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut QueryScratch,
        stats: &mut SearchStats,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        let QueryScratch { heap, frames, .. } = scratch;
        heap.reset(k);
        frames.clear();
        frames.push(Frame::unconditional(self.root));
        while let Some(frame) = frames.pop() {
            // Lazy admission check against the current (possibly tightened)
            // bound — prunes at least as much as the recursive form.
            if !Self::admits(&frame, heap.bound()) {
                stats.subtrees_pruned += 1;
                continue;
            }
            stats.nodes_visited += 1;
            match &self.nodes[frame.node as usize] {
                Node::Empty => {}
                Node::Leaf {
                    centroid,
                    members,
                    radius,
                } => {
                    stats.distance_computations += 1;
                    let dc = self
                        .measure
                        .distance(query, self.dataset.vector(*centroid as usize));
                    heap.offer(*centroid as usize, dc);
                    if dc > heap.bound() + radius + tri_slack(dc, *radius) {
                        stats.subtrees_pruned += 1;
                        continue;
                    }
                    for &(id, dcm) in members {
                        if (dc - dcm).abs() > heap.bound() + tri_slack(dc, dcm) {
                            continue;
                        }
                        stats.distance_computations += 1;
                        stats.postfilter_candidates += 1;
                        let d = self
                            .measure
                            .distance(query, self.dataset.vector(id as usize));
                        heap.offer(id as usize, d);
                    }
                }
                Node::Internal {
                    a,
                    b,
                    rad_a,
                    rad_b,
                    left,
                    right,
                } => {
                    stats.distance_computations += 2;
                    let da = self
                        .measure
                        .distance(query, self.dataset.vector(*a as usize));
                    let db = self
                        .measure
                        .distance(query, self.dataset.vector(*b as usize));
                    heap.offer(*a as usize, da);
                    heap.offer(*b as usize, db);
                    // The closer side is pushed last so it pops first and
                    // tightens the bound before the farther side's check.
                    let sides = if da - rad_a <= db - rad_b {
                        [(db, *rad_b, *right), (da, *rad_a, *left)]
                    } else {
                        [(da, *rad_a, *left), (db, *rad_b, *right)]
                    };
                    for (d, rad, child) in sides {
                        frames.push(Frame {
                            node: child,
                            tag: 1,
                            a: d,
                            b: rad,
                        });
                    }
                }
            }
        }
        heap.drain_sorted_into(out);
    }

    fn name(&self) -> &'static str {
        "antipole"
    }

    fn structure_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for n in &self.nodes {
            total += std::mem::size_of::<Node>();
            if let Node::Leaf { members, .. } = n {
                total += members.len() * std::mem::size_of::<(u32, f32)>();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use crate::traits::{knn_search_simple, range_search_simple};

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let v: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.next_f32() * 10.0).collect())
            .collect();
        Dataset::from_vectors(&v).unwrap()
    }

    /// Clustered data (the regime antipole trees are designed for).
    fn clustered_dataset(n: usize, dim: usize, clusters: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let centres: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.next_f32() * 100.0).collect())
            .collect();
        let v: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let c = &centres[i % clusters];
                c.iter().map(|&x| x + rng.next_f32() * 4.0 - 2.0).collect()
            })
            .collect();
        Dataset::from_vectors(&v).unwrap()
    }

    #[test]
    fn matches_linear_scan_exactly() {
        let ds = random_dataset(500, 5, 1234);
        for measure in [Measure::L1, Measure::L2, Measure::Match] {
            for diameter in [1.0f32, 5.0, 20.0] {
                let ap = AntipoleTree::build(ds.clone(), measure.clone(), diameter).unwrap();
                let lin = LinearScan::build(ds.clone(), measure.clone()).unwrap();
                for qi in [0usize, 123, 499] {
                    let q: Vec<f32> = ds.vector(qi).to_vec();
                    for radius in [0.0f32, 2.0, 7.5] {
                        assert_eq!(
                            range_search_simple(&ap, &q, radius),
                            range_search_simple(&lin, &q, radius),
                            "{} diam={diameter} range r={radius}",
                            measure.name()
                        );
                    }
                    for k in [1usize, 12, 60] {
                        assert_eq!(
                            knn_search_simple(&ap, &q, k),
                            knn_search_simple(&lin, &q, k),
                            "{} diam={diameter} knn k={k}",
                            measure.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn clustered_data_prunes_well() {
        let ds = clustered_dataset(3000, 8, 15, 9);
        let diam = AntipoleTree::suggest_diameter(&ds, &Measure::L2);
        let ap = AntipoleTree::build(ds.clone(), Measure::L2, diam).unwrap();
        let mut stats = SearchStats::new();
        ap.knn_search(ds.vector(42), 10, &mut stats);
        assert!(
            stats.distance_computations < 1500,
            "antipole barely pruned on clustered data: {}",
            stats.distance_computations
        );
        assert!(ap.cluster_count() > 1);
    }

    #[test]
    fn off_dataset_queries_match_linear() {
        let ds = clustered_dataset(800, 4, 8, 77);
        let ap = AntipoleTree::build(ds.clone(), Measure::L2, 6.0).unwrap();
        let lin = LinearScan::build(ds, Measure::L2).unwrap();
        let mut rng = SplitMix64::new(31);
        for _ in 0..15 {
            let q: Vec<f32> = (0..4).map(|_| rng.next_f32() * 120.0 - 10.0).collect();
            assert_eq!(
                knn_search_simple(&ap, &q, 7),
                knn_search_simple(&lin, &q, 7)
            );
            assert_eq!(
                range_search_simple(&ap, &q, 10.0),
                range_search_simple(&lin, &q, 10.0)
            );
        }
    }

    #[test]
    fn diameter_zero_splits_until_duplicates() {
        // With diameter 0, only exact-duplicate groups form clusters.
        let mut vecs = vec![vec![1.0f32, 1.0]; 5];
        vecs.extend(vec![vec![2.0f32, 2.0]; 5]);
        vecs.push(vec![9.0, 9.0]);
        let ds = Dataset::from_vectors(&vecs).unwrap();
        let ap = AntipoleTree::build(ds, Measure::L2, 0.0).unwrap();
        let hits = range_search_simple(&ap, &[1.0, 1.0], 0.0);
        assert_eq!(hits.len(), 5);
        assert_eq!(ap.max_cluster_radius(), 0.0);
    }

    #[test]
    fn huge_diameter_gives_single_cluster() {
        let ds = random_dataset(200, 3, 5);
        let ap = AntipoleTree::build(ds.clone(), Measure::L2, 1e9).unwrap();
        assert_eq!(ap.cluster_count(), 1);
        // Still exact.
        let lin = LinearScan::build(ds.clone(), Measure::L2).unwrap();
        let q = ds.vector(7);
        assert_eq!(knn_search_simple(&ap, q, 9), knn_search_simple(&lin, q, 9));
    }

    #[test]
    fn validation() {
        let ds = Dataset::from_vectors(&[vec![1.0]]).unwrap();
        assert!(AntipoleTree::build(ds.clone(), Measure::Cosine, 1.0).is_err());
        assert!(AntipoleTree::build(ds.clone(), Measure::L2, -1.0).is_err());
        assert!(AntipoleTree::build(ds.clone(), Measure::L2, f32::NAN).is_err());
        assert!(AntipoleTree::build(ds, Measure::L2, 1.0).is_ok());
    }

    #[test]
    fn tiny_datasets() {
        for n in 1..=5 {
            let ds = random_dataset(n, 2, n as u64);
            let ap = AntipoleTree::build(ds.clone(), Measure::L2, 1.0).unwrap();
            let lin = LinearScan::build(ds.clone(), Measure::L2).unwrap();
            let q = ds.vector(0);
            assert_eq!(
                knn_search_simple(&ap, q, n),
                knn_search_simple(&lin, q, n),
                "n={n}"
            );
        }
    }

    #[test]
    fn suggest_diameter_is_positive_for_spread_data() {
        let ds = random_dataset(300, 4, 8);
        let d = AntipoleTree::suggest_diameter(&ds, &Measure::L2);
        assert!(d > 0.0);
        // All-identical data suggests 0.
        let dup = Dataset::from_vectors(&vec![vec![3.0]; 50]).unwrap();
        assert_eq!(AntipoleTree::suggest_diameter(&dup, &Measure::L2), 0.0);
    }

    #[test]
    fn deeper_trees_for_smaller_diameters() {
        let ds = clustered_dataset(1000, 4, 10, 3);
        let coarse = AntipoleTree::build(ds.clone(), Measure::L2, 50.0).unwrap();
        let fine = AntipoleTree::build(ds, Measure::L2, 2.0).unwrap();
        assert!(fine.cluster_count() > coarse.cluster_count());
    }
}
