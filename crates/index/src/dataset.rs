//! The flat vector dataset every index is built over.

use crate::error::{IndexError, Result};
use std::sync::Arc;

/// Row storage: either an owned flat matrix or an externally managed
/// one (e.g. a checksummed memory-mapped segment) shared behind a trait
/// object so indexes stay oblivious to where the floats live.
#[derive(Clone)]
enum Rows {
    Owned(Arc<Vec<f32>>),
    Shared(Arc<dyn AsRef<[f32]> + Send + Sync>),
}

impl Rows {
    #[inline]
    fn flat(&self) -> &[f32] {
        match self {
            Rows::Owned(v) => v,
            Rows::Shared(s) => (**s).as_ref(),
        }
    }
}

/// An immutable, shared collection of equal-dimensional feature vectors
/// stored as one contiguous row-major matrix (cache-friendly and cheap to
/// share between several indexes in a comparison experiment).
#[derive(Clone)]
pub struct Dataset {
    dim: usize,
    data: Rows,
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("dim", &self.dim)
            .field("len", &self.len())
            .field("owned", &matches!(self.data, Rows::Owned(_)))
            .finish()
    }
}

impl Dataset {
    /// Build from a list of vectors. All must share one dimensionality,
    /// which must be positive, and every component must be finite.
    pub fn from_vectors(vectors: &[Vec<f32>]) -> Result<Self> {
        if vectors.is_empty() {
            return Err(IndexError::BadDataset("no vectors".into()));
        }
        let dim = vectors[0].len();
        if dim == 0 {
            return Err(IndexError::BadDataset("zero-dimensional vectors".into()));
        }
        let mut data = Vec::with_capacity(vectors.len() * dim);
        for (i, v) in vectors.iter().enumerate() {
            if v.len() != dim {
                return Err(IndexError::BadDataset(format!(
                    "vector {i} has dim {}, expected {dim}",
                    v.len()
                )));
            }
            if v.iter().any(|x| !x.is_finite()) {
                return Err(IndexError::BadDataset(format!(
                    "vector {i} contains a non-finite component"
                )));
            }
            data.extend_from_slice(v);
        }
        Ok(Dataset {
            dim,
            data: Rows::Owned(Arc::new(data)),
        })
    }

    /// Build from an already-flattened row-major matrix.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<Self> {
        if dim == 0 {
            return Err(IndexError::BadDataset("zero-dimensional vectors".into()));
        }
        if data.is_empty() || !data.len().is_multiple_of(dim) {
            return Err(IndexError::BadDataset(format!(
                "flat data length {} is not a positive multiple of dim {dim}",
                data.len()
            )));
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(IndexError::BadDataset(
                "data contains a non-finite component".into(),
            ));
        }
        Ok(Dataset {
            dim,
            data: Rows::Owned(Arc::new(data)),
        })
    }

    /// Build over externally managed row storage — typically a
    /// memory-mapped, checksummed segment file — without copying it into
    /// the heap.
    ///
    /// Unlike [`Dataset::from_flat`], no per-component finiteness scan is
    /// performed: scanning would fault in every page of an out-of-core
    /// matrix and defeat the O(1) open this constructor exists for. The
    /// caller guarantees finiteness instead (the segment formats only
    /// persist descriptors that were validated on ingest, and integrity
    /// against bit rot is covered by section checksums).
    pub fn from_shared(dim: usize, rows: Arc<dyn AsRef<[f32]> + Send + Sync>) -> Result<Self> {
        if dim == 0 {
            return Err(IndexError::BadDataset("zero-dimensional vectors".into()));
        }
        let len = (*rows).as_ref().len();
        if len == 0 || !len.is_multiple_of(dim) {
            return Err(IndexError::BadDataset(format!(
                "shared data length {len} is not a positive multiple of dim {dim}"
            )));
        }
        Ok(Dataset {
            dim,
            data: Rows::Shared(rows),
        })
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.data.flat().len() / self.dim
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.data.flat().is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th vector.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.data.flat()[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole dataset as one row-major matrix (`len() * dim()` floats) —
    /// the shape batched distance kernels consume.
    #[inline]
    pub fn flat(&self) -> &[f32] {
        self.data.flat()
    }

    /// Approximate in-memory footprint in bytes (for shared storage this
    /// counts the mapped bytes, which may live in the page cache rather
    /// than the heap).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.data.flat())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let ds = Dataset::from_vectors(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.vector(0), &[1.0, 2.0]);
        assert_eq!(ds.vector(2), &[5.0, 6.0]);
        assert!(!ds.is_empty());
        assert_eq!(ds.memory_bytes(), 24);
    }

    #[test]
    fn from_flat() {
        let ds = Dataset::from_flat(3, vec![0.0; 9]).unwrap();
        assert_eq!(ds.len(), 3);
        assert!(Dataset::from_flat(3, vec![0.0; 8]).is_err());
        assert!(Dataset::from_flat(0, vec![]).is_err());
        assert!(Dataset::from_flat(2, vec![]).is_err());
    }

    #[test]
    fn validation() {
        assert!(Dataset::from_vectors(&[]).is_err());
        assert!(Dataset::from_vectors(&[vec![]]).is_err());
        assert!(Dataset::from_vectors(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Dataset::from_vectors(&[vec![f32::NAN]]).is_err());
        assert!(Dataset::from_flat(1, vec![f32::INFINITY]).is_err());
    }

    #[test]
    fn cloning_shares_storage() {
        let ds = Dataset::from_vectors(&[vec![1.0, 2.0]]).unwrap();
        let ds2 = ds.clone();
        assert_eq!(ds.vector(0).as_ptr(), ds2.vector(0).as_ptr());
    }

    #[test]
    fn shared_storage_is_zero_copy() {
        let backing: Arc<Vec<f32>> = Arc::new(vec![1.0, 2.0, 3.0, 4.0]);
        let ds = Dataset::from_shared(2, backing.clone()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.vector(1), &[3.0, 4.0]);
        assert_eq!(ds.flat().as_ptr(), backing.as_ptr());
        let ds2 = ds.clone();
        assert_eq!(ds2.flat().as_ptr(), backing.as_ptr());
        assert!(format!("{ds:?}").contains("owned: false"));
    }

    #[test]
    fn shared_storage_validation() {
        let bad: Arc<Vec<f32>> = Arc::new(vec![1.0, 2.0, 3.0]);
        assert!(Dataset::from_shared(2, bad).is_err());
        let empty: Arc<Vec<f32>> = Arc::new(Vec::new());
        assert!(Dataset::from_shared(2, empty).is_err());
        let any: Arc<Vec<f32>> = Arc::new(vec![1.0]);
        assert!(Dataset::from_shared(0, any).is_err());
    }

    #[test]
    #[should_panic]
    fn out_of_range_vector_panics() {
        let ds = Dataset::from_vectors(&[vec![1.0]]).unwrap();
        ds.vector(1);
    }
}
